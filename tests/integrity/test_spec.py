"""IntegritySpec validation and its attachment to the collective config."""

import pytest

from repro.collio import CollectiveConfig
from repro.collio.api import RunSpec
from repro.errors import ConfigurationError
from repro.integrity import INTEGRITY_MODES, IntegritySpec

from tests.integrity.conftest import contiguous_views, small_cluster, small_fs


class TestIntegritySpec:
    def test_defaults_off(self):
        spec = IntegritySpec()
        assert spec.mode == "off"
        assert not spec.enabled
        assert not spec.repairs

    def test_modes(self):
        assert IntegritySpec(mode="detect").enabled
        assert not IntegritySpec(mode="detect").repairs
        assert IntegritySpec(mode="repair").repairs
        assert set(INTEGRITY_MODES) == {"off", "detect", "repair"}

    @pytest.mark.parametrize("bad", ["on", "verify", "", "DETECT"])
    def test_bad_mode_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            IntegritySpec(mode=bad)

    @pytest.mark.parametrize("bad", [0, -1])
    def test_bad_repair_attempts_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            IntegritySpec(max_repair_attempts=bad)

    def test_with_override(self):
        spec = IntegritySpec().with_(mode="repair", scrub=False)
        assert spec.repairs and not spec.scrub


class TestConfigAttachment:
    def test_config_accepts_spec(self):
        cfg = CollectiveConfig(integrity=IntegritySpec(mode="detect"))
        assert cfg.integrity.enabled

    def test_config_rejects_wrong_type(self):
        with pytest.raises(ConfigurationError, match="IntegritySpec"):
            CollectiveConfig(integrity="detect")

    def test_cache_key_includes_integrity(self):
        off = CollectiveConfig()
        on = CollectiveConfig(integrity=IntegritySpec(mode="detect"))
        assert off.cache_key() != on.cache_key()

    def test_size_only_run_rejected(self):
        """Checksums need real payload bytes: carry_data=False must fail
        loudly at validation time, not corrupt silently."""
        spec = RunSpec(
            cluster=small_cluster(), fs=small_fs(), nprocs=4,
            views=contiguous_views(4, 20_000), algorithm="write_overlap",
            carry_data=False,
            config=CollectiveConfig(integrity=IntegritySpec(mode="detect")),
        )
        with pytest.raises(ConfigurationError, match="carry_data"):
            spec.validate()

    def test_size_only_run_fine_with_mode_off(self):
        spec = RunSpec(
            cluster=small_cluster(), fs=small_fs(), nprocs=4,
            views=contiguous_views(4, 20_000), algorithm="write_overlap",
            carry_data=False,
            config=CollectiveConfig(integrity=IntegritySpec(mode="off")),
        )
        spec.validate()
