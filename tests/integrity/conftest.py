"""Shared helpers for the integrity test suite."""

from repro.collio.view import FileView
from repro.fs import FsSpec
from repro.hardware import ClusterSpec
from repro.units import MB


def small_cluster(**kw):
    base = dict(
        name="integ",
        num_nodes=4,
        cores_per_node=4,
        network_bandwidth=1000 * MB,
        network_latency=1e-6,
        eager_threshold=1024,
    )
    base.update(kw)
    return ClusterSpec(**base)


def small_fs(**kw):
    base = dict(
        name="integfs",
        num_targets=4,
        target_bandwidth=300 * MB,
        target_latency=5e-5,
        stripe_size=4096,
    )
    base.update(kw)
    return FsSpec(**base)


def contiguous_views(nprocs, per_rank):
    return {r: FileView.contiguous(r * per_rank, per_rank) for r in range(nprocs)}
