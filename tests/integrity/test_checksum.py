"""The shared extent checksum: round trips, sensitivity, journal reuse."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.integrity import extent_checksum
from repro.integrity.checksum import extent_checksum as direct
from repro.recovery.journal import CycleJournal


class TestExtentChecksum:
    def test_deterministic(self):
        buf = np.arange(256, dtype=np.uint8)
        assert extent_checksum(buf) == extent_checksum(buf.copy())

    def test_empty_buffer(self):
        assert extent_checksum(np.empty(0, dtype=np.uint8)) == 0

    def test_single_bit_flip_changes_crc(self):
        buf = np.zeros(1024, dtype=np.uint8)
        crc = extent_checksum(buf)
        for pos in (0, 511, 1023):
            flipped = buf.copy()
            flipped[pos] ^= 1 << (pos & 7)
            assert extent_checksum(flipped) != crc

    def test_noncontiguous_view_matches_copy(self):
        base = np.arange(512, dtype=np.uint8)
        strided = base[::2]
        assert extent_checksum(strided) == extent_checksum(strided.copy())

    def test_reexported_from_package(self):
        buf = np.arange(64, dtype=np.uint8)
        assert extent_checksum(buf) == direct(buf)

    @settings(max_examples=60, deadline=None)
    @given(st.binary(min_size=0, max_size=2048))
    def test_roundtrip_property(self, raw):
        """Same bytes -> same CRC; one flipped bit -> different CRC."""
        buf = np.frombuffer(raw, dtype=np.uint8).copy()
        crc = extent_checksum(buf)
        assert extent_checksum(buf.copy()) == crc
        if buf.size:
            flipped = buf.copy()
            flipped[buf.size // 2] ^= 0x01
            assert extent_checksum(flipped) != crc

    def test_journal_delegates_to_shared_helper(self):
        """Satellite 3: the journal's fingerprints are the shared CRC —
        factoring the helper out did not change the journal's hashes."""
        buf = np.arange(300, dtype=np.uint8)
        assert CycleJournal.checksum(buf) == extent_checksum(buf)


@pytest.mark.parametrize("dtype", [np.uint8, np.int32, np.float64])
def test_journal_commit_roundtrip_any_dtype(dtype):
    buf = np.arange(64).astype(dtype)
    view = buf.reshape(-1).view(np.uint8)
    assert CycleJournal.checksum(view) == extent_checksum(view)
