"""The checksum-carrying datapath: combine algebra, ledger tiling,
stored-CRC metadata, and the end-to-end reuse guarantee.

The carrying invariant (DESIGN Appendix F): a CRC computed once at the
producing rank, combined through any number of hops with
:func:`crc32_combine`, equals a fresh byte-level recompute of the bytes
it describes — and any payload mutation breaks the equality.  These
tests pin the algebra property-style against ``zlib.crc32`` and assert
the system-level consequences: detect-mode runs reuse carried CRCs
instead of recomputing, and produce byte-identical files to mode=off.
"""

import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collio import CollectiveConfig, run_collective_write
from repro.collio.api import RunSpec
from repro.fs.file import SimFile
from repro.integrity import IntegritySpec
from repro.integrity.checksum import (
    ChecksumLedger,
    crc32_combine,
    crc32_concat,
    extent_checksum,
)
from repro.staging.spec import StagingSpec

from tests.integrity.conftest import contiguous_views, small_cluster, small_fs


def _split(raw: bytes, cuts: list[int]) -> list[bytes]:
    """Split ``raw`` at the (sorted, deduplicated, in-range) cut points."""
    points = sorted({c % (len(raw) + 1) for c in cuts})
    bounds = [0] + points + [len(raw)]
    return [raw[a:b] for a, b in zip(bounds, bounds[1:]) if b > a]


class TestCombineAlgebra:
    """crc32_combine/crc32_concat against zlib's ground truth."""

    @settings(max_examples=80, deadline=None)
    @given(st.binary(max_size=1024), st.binary(max_size=1024))
    def test_combine_matches_whole_buffer_crc(self, a, b):
        assert crc32_combine(zlib.crc32(a), zlib.crc32(b), len(b)) == zlib.crc32(a + b)

    @settings(max_examples=60, deadline=None)
    @given(
        st.binary(min_size=1, max_size=2048),
        st.lists(st.integers(min_value=0, max_value=4096), max_size=8),
    )
    def test_concat_of_any_split_equals_whole(self, raw, cuts):
        """CRC of coalesced extents == whole-buffer CRC, for any split."""
        pieces = [(len(p), zlib.crc32(p)) for p in _split(raw, cuts)]
        assert crc32_concat(pieces) == zlib.crc32(raw)

    def test_combine_empty_suffix_is_identity(self):
        crc = zlib.crc32(b"payload")
        assert crc32_combine(crc, 0, 0) == crc


class TestChecksumLedger:
    """Offset-keyed piece registry: exact tiling or nothing."""

    @settings(max_examples=60, deadline=None)
    @given(
        st.binary(min_size=1, max_size=2048),
        st.lists(st.integers(min_value=0, max_value=4096), max_size=8),
        st.integers(min_value=0, max_value=1 << 30),
    )
    def test_tiled_combine_equals_fresh_recompute(self, raw, cuts, base):
        """Filed pieces tiling [base, base+len) combine to the whole CRC."""
        led = ChecksumLedger()
        pos = base
        for p in _split(raw, cuts):
            led.file(pos, len(p), zlib.crc32(p))
            pos += len(p)
        assert led.combine(base, base + len(raw)) == zlib.crc32(raw)

    @settings(max_examples=60, deadline=None)
    @given(st.binary(min_size=2, max_size=512), st.data())
    def test_mutation_invalidates_carried_crc(self, raw, data):
        """Flipping any payload byte breaks carried-vs-recompute equality."""
        led = ChecksumLedger()
        led.file(0, len(raw), zlib.crc32(raw))
        idx = data.draw(st.integers(min_value=0, max_value=len(raw) - 1))
        bit = data.draw(st.integers(min_value=0, max_value=7))
        mutated = bytearray(raw)
        mutated[idx] ^= 1 << bit
        assert led.combine(0, len(raw)) != zlib.crc32(bytes(mutated))

    def test_gap_returns_none(self):
        led = ChecksumLedger()
        led.file(0, 4, zlib.crc32(b"abcd"))
        led.file(8, 4, zlib.crc32(b"efgh"))
        assert led.combine(0, 12) is None  # hole at [4, 8)
        assert led.combine(0, 4) == zlib.crc32(b"abcd")

    def test_overhang_returns_none(self):
        led = ChecksumLedger()
        led.file(0, 8, zlib.crc32(b"abcdefgh"))
        assert led.combine(0, 4) is None  # piece overshoots the range

    def test_pop_consumes_only_on_success(self):
        led = ChecksumLedger()
        led.file(0, 4, zlib.crc32(b"abcd"))
        assert led.combine(0, 8, pop=True) is None
        assert len(led) == 1  # failed combine must not consume
        assert led.combine(0, 4, pop=True) == zlib.crc32(b"abcd")
        assert len(led) == 0

    def test_refile_replaces_and_clear_empties(self):
        led = ChecksumLedger()
        led.file(0, 4, 111)
        led.file(0, 4, zlib.crc32(b"wxyz"))
        assert led.combine(0, 4) == zlib.crc32(b"wxyz")
        led.clear()
        assert led.combine(0, 4) is None

    def test_empty_range_is_zero_reversed_is_none(self):
        led = ChecksumLedger()
        assert led.combine(5, 5) == 0
        assert led.combine(5, 4) is None


class TestStoredCrcMetadata:
    """SimFile commit-time CRC notes: hit on clean reuse, die on overlap."""

    def test_note_and_lookup(self):
        f = SimFile("/x")
        f.write(0, np.arange(16, dtype=np.uint8))
        crc = extent_checksum(f.read(0, 16))
        f.note_stored_crc(0, 16, crc)
        assert f.stored_crc(0, 16) == crc
        assert f.stored_crc(0, 8) is None  # different extent: no entry

    def test_overlapping_write_invalidates(self):
        f = SimFile("/x")
        f.write(0, np.zeros(16, dtype=np.uint8))
        f.note_stored_crc(0, 16, extent_checksum(f.read(0, 16)))
        f.note_stored_crc(32, 8, 12345)
        f.write(8, np.ones(4, dtype=np.uint8))  # overlaps [0, 16) only
        assert f.stored_crc(0, 16) is None
        assert f.stored_crc(32, 8) == 12345

    def test_adjacent_write_does_not_invalidate(self):
        f = SimFile("/x")
        f.write(0, np.zeros(16, dtype=np.uint8))
        crc = extent_checksum(f.read(0, 16))
        f.note_stored_crc(0, 16, crc)
        f.write(16, np.ones(4, dtype=np.uint8))  # touches [16, 20): no overlap
        assert f.stored_crc(0, 16) == crc


ALL_ALGORITHMS = [
    "no_overlap", "comm_overlap", "write_overlap", "write_comm", "write_comm2",
]


def _spec(algorithm, mode, shuffle="two_sided", staged=False, two_layer=None):
    return RunSpec(
        cluster=small_cluster(), fs=small_fs(), nprocs=8,
        views=contiguous_views(8, 40_000), algorithm=algorithm,
        shuffle=shuffle, verify=True, seed=11, two_layer=two_layer,
        config=CollectiveConfig(
            cb_buffer_size=16 * 1024,
            staging=StagingSpec() if staged else None,
            integrity=IntegritySpec(mode=mode) if mode else None,
        ),
    )


class TestEndToEndCarrying:
    """Detect-mode runs must *reuse* checksums, not recompute per hop."""

    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_detect_reuses_and_preserves_bytes(self, algorithm):
        base = run_collective_write(_spec(algorithm, None))
        checked = run_collective_write(_spec(algorithm, "detect"))
        assert checked.file_sha256 == base.file_sha256
        counters = checked.integrity["counters"]
        assert counters["integrity.checksum_reused"] > 0
        # Carrying must beat recomputing: each producer-side CRC is
        # reused at least once downstream (delivery verify + extent
        # record + commit + scrub all consume carried values).
        assert counters["integrity.checksum_reused"] >= counters[
            "integrity.checksum_computed"]

    @pytest.mark.parametrize("shuffle", ["one_sided_fence", "one_sided_lock"])
    def test_window_path_carries(self, shuffle):
        checked = run_collective_write(_spec("write_comm2", "detect", shuffle=shuffle))
        assert checked.integrity["counters"]["integrity.checksum_reused"] > 0

    def test_two_layer_gather_carries(self):
        checked = run_collective_write(_spec("write_overlap", "detect", two_layer=True))
        assert checked.integrity["counters"]["integrity.checksum_reused"] > 0

    def test_staging_path_carries(self):
        base = run_collective_write(_spec("write_overlap", None, staged=True))
        checked = run_collective_write(_spec("write_overlap", "detect", staged=True))
        assert checked.file_sha256 == base.file_sha256
        assert checked.integrity["counters"]["integrity.checksum_reused"] > 0

    def test_detect_adds_no_simulated_time_fault_free(self):
        """The tentpole's headline: carrying makes clean-run detect free."""
        base = run_collective_write(_spec("write_overlap", None))
        checked = run_collective_write(_spec("write_overlap", "detect"))
        assert checked.elapsed == pytest.approx(base.elapsed, rel=1e-9)
