"""mode="off" is byte-identical to a world without the integrity package.

The golden 45-case fingerprint suite (tests/golden) pins the absolute
numbers; these tests pin the sharper claim that attaching a disabled
IntegritySpec changes *nothing* — timing, counters, file bytes.
"""

from repro.collio import CollectiveConfig, run_collective_write
from repro.collio.api import RunSpec
from repro.faults import fault_preset
from repro.integrity import IntegritySpec
from repro.staging.spec import StagingSpec

from tests.integrity.conftest import contiguous_views, small_cluster, small_fs


def _run(integrity=None, staged=False, faults=None, algorithm="write_overlap"):
    return run_collective_write(RunSpec(
        cluster=small_cluster(), fs=small_fs(), nprocs=8,
        views=contiguous_views(8, 40_000), algorithm=algorithm,
        verify=True, seed=11, faults=faults,
        config=CollectiveConfig(
            cb_buffer_size=16 * 1024,
            staging=StagingSpec() if staged else None,
            integrity=integrity,
        ),
    ))


def test_mode_off_bit_identical_to_no_spec():
    plain = _run()
    off = _run(integrity=IntegritySpec(mode="off"))
    assert off.elapsed == plain.elapsed
    assert off.file_sha256 == plain.file_sha256
    assert off.trace_counters == plain.trace_counters
    assert off.integrity is None


def test_mode_off_bit_identical_with_staging():
    plain = _run(staged=True)
    off = _run(integrity=IntegritySpec(mode="off"), staged=True)
    assert off.elapsed == plain.elapsed
    assert off.file_sha256 == plain.file_sha256
    assert off.trace_counters == plain.trace_counters


def test_mode_off_identical_corruption_schedule():
    """Schedule parity: the corruption *draws* burn the same RNG stream
    whether or not anyone checks, so the mode="off" twin run is a valid
    ground-truth oracle for the campaign."""
    faults = fault_preset("bitrot_cluster")

    def damage(res_fn):
        try:
            res_fn()
        except AssertionError as exc:
            return str(exc)
        return None

    a = damage(lambda: _run(faults=faults))
    b = damage(lambda: _run(faults=faults))
    assert a == b  # same seed -> same silent damage, byte for byte


def test_every_algorithm_unchanged_under_off():
    for algorithm in ("no_overlap", "comm_overlap", "write_overlap",
                      "write_comm", "write_comm2"):
        plain = _run(algorithm=algorithm)
        off = _run(integrity=IntegritySpec(mode="off"), algorithm=algorithm)
        assert off.elapsed == plain.elapsed
        assert off.file_sha256 == plain.file_sha256
