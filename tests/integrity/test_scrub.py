"""The end-of-job scrub: read-back-off runs where corruption reaches the
stored file and only the scrub pass can catch it."""

import pytest

from repro.collio import CollectiveConfig, run_collective_write
from repro.collio.api import RunSpec
from repro.errors import CorruptDataError
from repro.faults.spec import FaultSpec
from repro.integrity import IntegritySpec

from tests.integrity.conftest import contiguous_views, small_cluster, small_fs

#: Storage-level corruption fires on ~1 in 4 PFS writes; with read-back
#: disabled it lands silently in the file and only the scrub sees it.
STORAGE_FAULTS = FaultSpec(storage_corrupt_rate=0.25)


def _spec(seed, mode, scrub=True, readback=False, faults=STORAGE_FAULTS):
    return RunSpec(
        cluster=small_cluster(), fs=small_fs(), nprocs=8,
        views=contiguous_views(8, 40_000), algorithm="write_overlap",
        verify=True, seed=seed, faults=faults,
        config=CollectiveConfig(
            cb_buffer_size=16 * 1024,
            integrity=IntegritySpec(mode=mode, scrub=scrub, readback=readback),
        ),
    )


def _corrupting_seed():
    for seed in range(7, 15):
        try:
            run_collective_write(RunSpec(
                cluster=small_cluster(), fs=small_fs(), nprocs=8,
                views=contiguous_views(8, 40_000), algorithm="write_overlap",
                verify=True, seed=seed, faults=STORAGE_FAULTS,
            ))
        except AssertionError:
            return seed
    raise RuntimeError("no seed corrupted in range")


def test_scrub_catches_what_readback_would_have():
    seed = _corrupting_seed()
    with pytest.raises(CorruptDataError, match="scrub"):
        run_collective_write(_spec(seed, "detect"))


def test_scrub_repairs_in_repair_mode():
    seed = _corrupting_seed()
    base = run_collective_write(_spec(seed, "off", faults=None))
    res = run_collective_write(_spec(seed, "repair"))
    assert res.verified
    assert res.file_sha256 == base.file_sha256
    reports = res.integrity["scrub_reports"]
    assert reports, "scrub produced no reports"
    assert sum(r["mismatches"] for r in reports) >= 1
    assert all(r["mismatches"] == r["repaired"] for r in reports)
    assert res.trace_counters.get("integrity.rewrite", 0) >= 1


def test_scrub_disabled_lets_storage_corruption_through():
    """scrub=False + readback=False on detect mode: nothing checks the
    stored bytes, so the corruption survives to the byte-exact verify."""
    seed = _corrupting_seed()
    with pytest.raises(AssertionError, match="corrupted the file"):
        run_collective_write(_spec(seed, "detect", scrub=False))


def test_scrub_reports_clean_on_fault_free_run():
    res = run_collective_write(_spec(7, "repair", faults=None))
    reports = res.integrity["scrub_reports"]
    assert reports
    assert all(r["mismatches"] == 0 and r["repaired"] == 0 for r in reports)
    total = sum(r["bytes_scrubbed"] for r in reports)
    assert total == 8 * 40_000  # every written byte re-read exactly once
