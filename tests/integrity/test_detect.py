"""Detection acceptance: every injected corruption is flagged, clean runs
never are.

Ground truth comes from the injector's schedule parity: the same
``(seed, faults)`` run with ``mode="off"`` either fails its byte-exact
verification (corruption reached the file) or passes (no corruption
fired this seed).  ``mode="detect"`` must raise CorruptDataError exactly
in the first case.
"""

import pytest

from repro.collio import CollectiveConfig, run_collective_write
from repro.collio.api import RunSpec
from repro.errors import CorruptDataError
from repro.faults import fault_preset
from repro.faults.spec import FaultSpec
from repro.integrity import IntegritySpec
from repro.staging.spec import StagingSpec

from tests.integrity.conftest import contiguous_views, small_cluster, small_fs

ALL_ALGORITHMS = ["no_overlap", "comm_overlap", "write_overlap", "write_comm", "write_comm2"]
SEEDS = (7, 8, 9)


def _spec(algorithm, seed, mode=None, faults=None, staged=False,
          shuffle="two_sided", **integrity_kw):
    return RunSpec(
        cluster=small_cluster(), fs=small_fs(), nprocs=8,
        views=contiguous_views(8, 40_000), algorithm=algorithm,
        shuffle=shuffle, verify=True, seed=seed, faults=faults,
        config=CollectiveConfig(
            cb_buffer_size=16 * 1024,
            staging=StagingSpec() if staged else None,
            integrity=IntegritySpec(mode=mode, **integrity_kw) if mode else None,
        ),
    )


def _ground_truth_corrupted(algorithm, seed, faults, staged=False, shuffle="two_sided"):
    try:
        run_collective_write(_spec(algorithm, seed, faults=faults,
                                   staged=staged, shuffle=shuffle))
    except AssertionError:
        return True
    return False


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
def test_every_injected_corruption_detected(algorithm):
    """Acceptance: under the bitrot preset, detect mode flags every run
    whose mode="off" twin ends with a corrupt file — no false negatives,
    and no false positives on the corruption-free seeds."""
    faults = fault_preset("bitrot_cluster")
    corrupted_seeds = 0
    for seed in SEEDS:
        corrupted = _ground_truth_corrupted(algorithm, seed, faults)
        corrupted_seeds += corrupted
        if corrupted:
            with pytest.raises(CorruptDataError):
                run_collective_write(_spec(algorithm, seed, mode="detect",
                                           faults=faults))
        else:
            res = run_collective_write(_spec(algorithm, seed, mode="detect",
                                             faults=faults))
            assert res.verified
    assert corrupted_seeds > 0, "preset rates too low: no corruption fired"


def test_detection_through_staging_tier():
    faults = fault_preset("bitrot_cluster")
    hit = False
    for seed in SEEDS:
        if _ground_truth_corrupted("write_overlap", seed, faults, staged=True):
            hit = True
            with pytest.raises(CorruptDataError):
                run_collective_write(_spec("write_overlap", seed, mode="detect",
                                           faults=faults, staged=True))
    assert hit


@pytest.mark.parametrize("shuffle", ["one_sided_fence", "one_sided_lock"])
def test_detection_on_rma_shuffles(shuffle):
    faults = fault_preset("bitrot_cluster")
    hit = False
    for seed in SEEDS:
        if _ground_truth_corrupted("write_overlap", seed, faults, shuffle=shuffle):
            hit = True
            with pytest.raises(CorruptDataError):
                run_collective_write(_spec("write_overlap", seed, mode="detect",
                                           faults=faults, shuffle=shuffle))
    assert hit


@pytest.mark.parametrize("mode", ["detect", "repair"])
def test_no_false_positives_on_clean_runs(mode):
    """Fault-free runs complete and verify under every checking mode."""
    for algorithm in ALL_ALGORITHMS:
        res = run_collective_write(_spec(algorithm, 7, mode=mode))
        assert res.verified
        assert res.integrity["detected"] == 0
        for report in res.integrity["scrub_reports"]:
            assert report["mismatches"] == 0


def test_torn_write_detected_by_readback():
    """A torn PFS write (prefix only) fails the read-back verify."""
    faults = FaultSpec(torn_write_rate=0.25)
    hit = False
    for seed in range(7, 13):
        if _ground_truth_corrupted("no_overlap", seed, faults):
            hit = True
            with pytest.raises(CorruptDataError):
                run_collective_write(_spec("no_overlap", seed, mode="detect",
                                           faults=faults))
    assert hit, "torn writes never fired in 6 seeds"


def test_detect_counters_surface_in_result():
    faults = fault_preset("bitrot_cluster")
    res = run_collective_write(_spec("write_overlap", 8, mode="repair",
                                     faults=faults))
    snap = res.integrity
    assert snap["mode"] == "repair"
    assert snap["detected"] >= 1
    assert snap["detected"] == snap["repaired"]
    assert res.trace_counters.get("integrity.detected", 0) == snap["detected"]
