"""Repair acceptance: under injected corruption, repair mode converges to
the byte-identical file a fault-free run of the same seed produces."""

import pytest

from repro.collio import CollectiveConfig, run_collective_write
from repro.collio.api import RunSpec
from repro.errors import CorruptDataError
from repro.faults import fault_preset
from repro.faults.spec import FaultSpec
from repro.integrity import IntegritySpec
from repro.staging.spec import StagingSpec

from tests.integrity.conftest import contiguous_views, small_cluster, small_fs

ALL_ALGORITHMS = ["no_overlap", "comm_overlap", "write_overlap", "write_comm", "write_comm2"]
SEEDS = (8, 9)  # both corrupt under bitrot_cluster at this scenario size


def _spec(algorithm, seed, mode=None, faults=None, staged=False,
          shuffle="two_sided", **integrity_kw):
    return RunSpec(
        cluster=small_cluster(), fs=small_fs(), nprocs=8,
        views=contiguous_views(8, 40_000), algorithm=algorithm,
        shuffle=shuffle, verify=True, seed=seed, faults=faults,
        config=CollectiveConfig(
            cb_buffer_size=16 * 1024,
            staging=StagingSpec() if staged else None,
            integrity=IntegritySpec(mode=mode, **integrity_kw) if mode else None,
        ),
    )


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
def test_repair_restores_fault_free_bytes(algorithm):
    """Acceptance: final file_sha256 under repair mode equals the
    fault-free run's, for every algorithm, on corrupting seeds."""
    faults = fault_preset("bitrot_cluster")
    for seed in SEEDS:
        base = run_collective_write(_spec(algorithm, seed))
        res = run_collective_write(_spec(algorithm, seed, mode="repair",
                                         faults=faults))
        assert res.verified
        assert res.file_sha256 == base.file_sha256
        assert res.integrity["repaired"] == res.integrity["detected"]


@pytest.mark.parametrize("staged", [False, True])
def test_repair_through_staging_tier(staged):
    faults = fault_preset("bitrot_cluster")
    base = run_collective_write(_spec("write_comm2", 9, staged=staged))
    res = run_collective_write(_spec("write_comm2", 9, mode="repair",
                                     faults=faults, staged=staged))
    assert res.file_sha256 == base.file_sha256


@pytest.mark.parametrize("shuffle", ["one_sided_fence", "one_sided_lock"])
def test_repair_on_rma_shuffles(shuffle):
    faults = fault_preset("bitrot_cluster")
    base = run_collective_write(_spec("write_overlap", 8, shuffle=shuffle))
    res = run_collective_write(_spec("write_overlap", 8, mode="repair",
                                     faults=faults, shuffle=shuffle))
    assert res.file_sha256 == base.file_sha256


def test_repair_visible_in_counters():
    faults = fault_preset("bitrot_cluster")
    res = run_collective_write(_spec("write_overlap", 8, mode="repair",
                                     faults=faults))
    assert res.trace_counters.get("integrity.repaired", 0) >= 1
    # Repair happened via retransmission/refetch/rewrite, never silently.
    repair_paths = (
        res.trace_counters.get("integrity.retransmit", 0)
        + res.trace_counters.get("integrity.refetch", 0)
        + res.trace_counters.get("integrity.rewrite", 0)
    )
    assert repair_paths >= 1


def test_certain_corruption_exhausts_bounded_attempts():
    """With corruption firing on every delivery, repair retransmissions
    are themselves corrupted: the bounded attempt budget must expire into
    CorruptDataError, not loop forever."""
    faults = FaultSpec(message_corrupt_rate=1.0)
    with pytest.raises(CorruptDataError, match="checksum"):
        run_collective_write(_spec("write_overlap", 7, mode="repair",
                                   faults=faults))


def test_repair_deterministic_per_seed():
    faults = fault_preset("bitrot_cluster")
    a = run_collective_write(_spec("write_overlap", 8, mode="repair", faults=faults))
    b = run_collective_write(_spec("write_overlap", 8, mode="repair", faults=faults))
    assert a.elapsed == b.elapsed
    assert a.file_sha256 == b.file_sha256
    assert a.integrity["counters"] == b.integrity["counters"]
