"""Tests for phase aggregation."""

import pytest

from repro.analysis.breakdown import PhaseBreakdown, aggregate_phases
from repro.collio.context import PhaseStats


def stats(**times):
    s = PhaseStats()
    for phase, t in times.items():
        s.add_time(phase, t)
    return s


class TestAggregate:
    def test_max_and_mean(self):
        per_rank = [stats(write=1.0, shuffle=0.2), stats(write=3.0, shuffle=0.4)]
        b = aggregate_phases(per_rank)
        assert b.max_times["write"] == 3.0
        assert b.mean_times["write"] == 2.0
        assert b.ranks_considered == 2

    def test_rank_selection(self):
        per_rank = [stats(write=1.0), stats(write=9.0)]
        b = aggregate_phases(per_rank, ranks=[0])
        assert b.max_times["write"] == 1.0

    def test_empty_selection_rejected(self):
        with pytest.raises(ValueError):
            aggregate_phases([])

    def test_shares(self):
        per_rank = [stats(write=0.9, shuffle=0.1)]
        b = aggregate_phases(per_rank)
        assert b.io_share == pytest.approx(0.9)
        assert b.communication_share == pytest.approx(0.1)
        assert b.communication_share + b.io_share == pytest.approx(1.0)

    def test_read_phases_count_as_io(self):
        per_rank = [stats(read=0.6, scatter=0.4)]
        b = aggregate_phases(per_rank)
        assert b.io_time == pytest.approx(0.6)
        assert b.communication_time == pytest.approx(0.4)

    def test_no_phases_zero_shares(self):
        b = PhaseBreakdown({}, {}, 1)
        assert b.io_share == 0.0 and b.communication_share == 0.0


class TestEndToEnd:
    def test_matches_bench_breakdown(self):
        """aggregate_phases on a real run reproduces the IV-A split."""
        from repro.bench.runner import specs_for
        from repro.collio import CollectiveConfig, run_collective_write
        from repro.workloads import make_workload

        cluster, fs = specs_for("crill", 64)
        w = make_workload("tile_1m", 96, element_size=4096)
        run = run_collective_write(
            cluster, fs, 96, w.views(), algorithm="no_overlap",
            config=CollectiveConfig.for_scale(64), carry_data=False,
        )
        b = aggregate_phases(run.per_rank_stats, ranks=[0])  # an aggregator
        assert b.io_share > 0.5  # crill is I/O dominated
        assert 0 < b.communication_share < 0.5
