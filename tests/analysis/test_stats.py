"""Tests for the paper's summary statistics."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.stats import (
    Series,
    average_positive_improvement,
    best_algorithm,
    relative_improvement,
    winner_counts,
)


def series(algo, *times):
    s = Series(key=("case",), algorithm=algo)
    for t in times:
        s.add(t)
    return s


class TestSeries:
    def test_point_is_min(self):
        assert series("a", 3.0, 1.0, 2.0).point == 1.0

    def test_mean(self):
        assert series("a", 1.0, 3.0).mean == 2.0

    def test_empty_series_point_raises(self):
        with pytest.raises(ValueError):
            _ = series("a").point

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            series("a", -1.0)

    def test_count(self):
        assert series("a").count == 0
        assert series("a", 1.0, 2.0, 3.0).count == 3

    def test_std_sample_definition(self):
        # ddof=1: std of [1, 3] is sqrt(((1-2)^2 + (3-2)^2) / 1) = sqrt(2)
        assert series("a", 1.0, 3.0).std == pytest.approx(2**0.5)
        assert series("a", 5.0, 5.0, 5.0).std == 0.0

    def test_std_single_measurement_is_zero(self):
        assert series("a", 4.2).std == 0.0

    def test_std_empty_series_raises(self):
        with pytest.raises(ValueError):
            _ = series("a").std


class TestWinners:
    def test_best_algorithm(self):
        case = {"a": series("a", 2.0), "b": series("b", 1.0), "c": series("c", 3.0)}
        assert best_algorithm(case) == "b"

    def test_tie_breaks_by_name(self):
        case = {"b": series("b", 1.0), "a": series("a", 1.0)}
        assert best_algorithm(case) == "a"

    def test_min_of_series_decides(self):
        """A noisy series with one great run wins under min-of-series."""
        case = {"steady": series("steady", 2.0, 2.0), "spiky": series("spiky", 5.0, 1.9)}
        assert best_algorithm(case) == "spiky"

    def test_empty_case_raises(self):
        with pytest.raises(ValueError):
            best_algorithm({})

    def test_winner_counts(self):
        cases = [
            {"a": series("a", 1.0), "b": series("b", 2.0)},
            {"a": series("a", 3.0), "b": series("b", 2.0)},
            {"a": series("a", 1.0), "b": series("b", 2.0)},
        ]
        assert winner_counts(cases) == {"a": 2, "b": 1}

    def test_winner_counts_empty_case_list_raises(self):
        with pytest.raises(ValueError, match="empty case list"):
            winner_counts([])


class TestImprovement:
    def test_relative_improvement(self):
        assert relative_improvement(2.0, 1.0) == 0.5
        assert relative_improvement(1.0, 2.0) == -1.0

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            relative_improvement(0.0, 1.0)

    def test_average_positive_excludes_losses(self):
        """The paper's Figs. 2-3 metric drops negative improvements."""
        cases = [
            {"no_overlap": series("no_overlap", 10.0), "x": series("x", 9.0)},   # +10%
            {"no_overlap": series("no_overlap", 10.0), "x": series("x", 12.0)},  # loss
            {"no_overlap": series("no_overlap", 10.0), "x": series("x", 7.0)},   # +30%
        ]
        assert average_positive_improvement(cases, "x") == pytest.approx(0.2)

    def test_never_winning_returns_none(self):
        cases = [{"no_overlap": series("no_overlap", 1.0), "x": series("x", 2.0)}]
        assert average_positive_improvement(cases, "x") is None

    def test_empty_case_list_raises(self):
        with pytest.raises(ValueError, match="empty case list"):
            average_positive_improvement([], "x")

    def test_missing_algorithm_skipped(self):
        cases = [
            {"no_overlap": series("no_overlap", 10.0)},
            {"no_overlap": series("no_overlap", 10.0), "x": series("x", 5.0)},
        ]
        assert average_positive_improvement(cases, "x") == pytest.approx(0.5)


@given(times=st.lists(st.floats(0.001, 1000), min_size=1, max_size=9))
def test_point_estimate_bounds(times):
    s = series("a", *times)
    assert s.point == min(times)
    # Mean stays within the sample range up to float summation rounding.
    eps = 1e-9 * max(times)
    assert s.point - eps <= s.mean <= max(times) + eps
