"""CLI argument validation and the ``tune`` subcommand."""

import pytest

from repro.bench.__main__ import main


class TestArgumentValidation:
    @pytest.mark.parametrize(
        "argv",
        [
            ["table1", "--reps", "0"],
            ["table1", "--reps", "-3"],
            ["table1", "--scale", "0"],
            ["fig1", "--scale", "-1"],
            ["tune", "--nprocs", "0"],
            ["tune", "--n-workers", "0"],
            ["tune", "--screen-reps", "0"],
            ["tune", "--screen-reps", "5", "--reps", "3"],
            ["tune", "--benchmark", "nope", "--nprocs", "2", "--scale", "512"],
            ["table1", "--jobs", "0"],
            ["integrity", "--jobs", "-2"],
            ["table1", "--max-integrity-overhead", "0.25"],  # perf-only flag
        ],
    )
    def test_bad_arguments_exit_with_usage_error(self, argv, capsys):
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2  # argparse usage-error convention
        err = capsys.readouterr().err
        assert "usage:" in err

    def test_reps_error_message_names_the_flag(self, capsys):
        with pytest.raises(SystemExit):
            main(["table1", "--reps", "0"])
        assert "--reps must be >= 1" in capsys.readouterr().err

    def test_scale_error_message_names_the_flag(self, capsys):
        with pytest.raises(SystemExit):
            main(["table1", "--scale", "0"])
        assert "--scale must be >= 1" in capsys.readouterr().err

    def test_jobs_error_message_names_the_flag(self, capsys):
        with pytest.raises(SystemExit):
            main(["table1", "--jobs", "0"])
        assert "--jobs must be >= 1" in capsys.readouterr().err


class TestTuneSubcommand:
    def test_tune_prints_ranked_table_and_writes_csv(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        csv_dir = tmp_path / "csv"
        rc = main([
            "tune", "--nprocs", "2", "--scale", "1024", "--reps", "2",
            "--n-workers", "1", "--cache-dir", cache_dir,
            "--csv-dir", str(csv_dir), "--quiet",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "TUNE — ior@crill:beegfs-crill P=2" in out
        assert "recommendation:" in out
        assert "cache:" in out
        csv = (csv_dir / "tune.csv").read_text()
        assert csv.splitlines()[0] == (
            "rank,algorithm,shuffle,cb_buffer_bytes,num_aggregators,"
            "seconds,write_bandwidth,reps,stage"
        )

        # warm rerun: everything comes from the cache, nothing simulates
        main([
            "tune", "--nprocs", "2", "--scale", "1024", "--reps", "2",
            "--n-workers", "1", "--cache-dir", cache_dir, "--quiet",
        ])
        out2 = capsys.readouterr().out
        assert "0 simulations run (100% cache hits)" in out2
