"""The parallel campaign executor's determinism contract.

``repro.bench.parallel`` promises that ``--jobs N`` output is
byte-identical to serial for any ``N``: tasks are pure functions of
plain descriptors, seeds live in the descriptors (never in worker
identity), and results fold back in input order.  These tests pin the
primitive (``parallel_map``, ``content_seed``) and the contract at the
campaign level — a real integrity campaign and experiment matrix run
serial and fanned-out must render identical CSVs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.integrity import integrity_campaign
from repro.bench.parallel import content_seed, parallel_map
from repro.bench.reporting import integrity_csv
from repro.bench.runner import Case, run_matrix


def _matrix_samples(matrix):
    """Every elapsed sample of every series, keyed for exact comparison."""
    return {
        (result.case.label, algorithm, shuffle): series.times
        for result in matrix.results
        for (algorithm, shuffle), series in result.series.items()
    }


def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError("boom")
    return x


class TestParallelMap:
    def test_serial_path_preserves_order(self):
        assert parallel_map(_square, [3, 1, 2], jobs=1) == [9, 1, 4]

    def test_fanned_out_matches_serial(self):
        items = list(range(20))
        assert parallel_map(_square, items, jobs=3) == parallel_map(
            _square, items, jobs=1)

    def test_jobs_below_one_rejected(self):
        with pytest.raises(ValueError):
            parallel_map(_square, [1], jobs=0)

    def test_empty_and_singleton_inputs(self):
        assert parallel_map(_square, [], jobs=4) == []
        assert parallel_map(_square, [5], jobs=4) == [25]

    def test_worker_exception_propagates(self):
        with pytest.raises(ValueError):
            parallel_map(_fail_on_three, [1, 2, 3], jobs=2)


class TestContentSeed:
    @settings(max_examples=40, deadline=None)
    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=8),
            st.one_of(st.integers(), st.text(max_size=8)),
            max_size=4,
        )
    )
    def test_deterministic_and_in_range(self, payload):
        seed = content_seed(payload)
        assert seed == content_seed(payload)
        assert 0 <= seed < 2**31 - 1

    def test_sensitive_to_every_field(self):
        base = {"seed": 0, "rep": 0}
        assert content_seed(base) != content_seed({"seed": 0, "rep": 1})
        assert content_seed(base) != content_seed({"seed": 1, "rep": 0})

    def test_independent_of_key_order(self):
        assert content_seed({"a": 1, "b": 2}) == content_seed({"b": 2, "a": 1})


class TestCampaignDeterminism:
    """--jobs N must be byte-identical to serial at the CSV level."""

    def test_integrity_campaign_csv_identical(self):
        serial = integrity_campaign(nprocs=4, reps=1, scale=64, seed=5)
        fanned = integrity_campaign(nprocs=4, reps=1, scale=64, seed=5, jobs=2)
        assert integrity_csv(fanned) == integrity_csv(serial)

    def test_run_matrix_samples_identical(self):
        cases = [Case("ior", "crill", 4), Case("ior", "ibex", 4)]
        serial = run_matrix(cases, ["no_overlap", "write_comm2"],
                            reps=2, scale=64)
        fanned = run_matrix(cases, ["no_overlap", "write_comm2"],
                            reps=2, scale=64, jobs=2)
        assert _matrix_samples(fanned) == _matrix_samples(serial)

    def test_run_matrix_progress_replayed_in_serial_order(self):
        cases = [Case("ior", "crill", 4), Case("ior", "ibex", 4)]
        calls: dict[int, list] = {1: [], 2: []}
        for jobs in (1, 2):
            run_matrix(
                cases, ["no_overlap", "write_comm2"], reps=1, scale=64,
                jobs=jobs,
                progress=lambda case, algorithm, shuffle, series, jobs=jobs:
                    calls[jobs].append((case.label, algorithm, shuffle)),
            )
        assert calls[2] == calls[1]
