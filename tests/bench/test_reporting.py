"""Tests for the text renderers."""

from repro.bench.experiments import (
    BreakdownResult,
    Fig1Result,
    Fig4Result,
    ImprovementResult,
    LustreResult,
    Table1Result,
)
from repro.bench.reporting import (
    render_breakdown,
    render_fig1,
    render_fig4,
    render_improvements,
    render_lustre,
    render_table1,
)


def test_render_table1_contains_rows_and_totals():
    r = Table1Result()
    r.rows = {
        b: {a: 1 for a in ("no_overlap", "comm_overlap", "write_overlap",
                           "write_comm", "write_comm2")}
        for b in ("ior", "tile_256", "tile_1m", "flash")
    }
    text = render_table1(r)
    assert "TABLE I" in text
    assert "Tile I/O 256" in text
    assert "Total:" in text
    assert "20" not in text.split("Total:")[0]  # totals only in the total row


def test_render_fig1():
    r = Fig1Result(nprocs_list=[100])
    for cluster in ("crill", "ibex"):
        for algo in ("no_overlap", "comm_overlap", "write_overlap",
                     "write_comm", "write_comm2"):
            r.points[(cluster, 100, algo)] = 0.5
    text = render_fig1(r)
    assert "FIG. 1" in text and "crill" in text and "ibex" in text


def test_render_improvements_handles_missing_values():
    r = ImprovementResult("crill")
    r.values[("write_overlap", "ior")] = 0.092
    r.values[("comm_overlap", "ior")] = None
    text = render_improvements(r, "FIG. 2")
    assert "9.2%" in text
    assert "—" in text


def test_render_fig4():
    r = Fig4Result()
    r.rows = {
        "ior": {"two_sided": 4, "one_sided_fence": 0, "one_sided_lock": 0},
        "tile_256": {"two_sided": 1, "one_sided_fence": 3, "one_sided_lock": 0},
        "tile_1m": {"two_sided": 3, "one_sided_fence": 1, "one_sided_lock": 0},
    }
    text = render_fig4(r)
    assert "FIG. 4" in text
    assert "two-sided share: 67%" in text


def test_render_breakdown():
    r = BreakdownResult()
    r.shares[("crill", 576)] = (0.07, 0.93)
    text = render_breakdown(r)
    assert "93%" in text and "7%" in text


class TestCsvExports:
    def test_table1_csv(self):
        from repro.bench.reporting import table1_csv

        r = Table1Result()
        r.rows = {"ior": {"no_overlap": 2, "write_overlap": 3}}
        csv = table1_csv(r)
        assert csv.splitlines()[0] == "benchmark,algorithm,wins"
        assert "ior,write_overlap,3" in csv

    def test_fig1_csv(self):
        from repro.bench.reporting import fig1_csv

        r = Fig1Result(nprocs_list=[100])
        r.points[("crill", 100, "no_overlap")] = 0.123456789
        csv = fig1_csv(r)
        assert "crill,100,no_overlap,0.123456789" in csv

    def test_improvements_csv_handles_none(self):
        from repro.bench.reporting import improvements_csv

        r = ImprovementResult("ibex")
        r.values[("write_overlap", "ior")] = 0.25
        r.values[("comm_overlap", "ior")] = None
        csv = improvements_csv(r)
        assert "ibex,write_overlap,ior,0.250000" in csv
        assert "ibex,comm_overlap,ior,\n" in csv or "ibex,comm_overlap,ior," in csv

    def test_fig4_csv(self):
        from repro.bench.reporting import fig4_csv

        r = Fig4Result()
        r.rows = {"tile_256": {"two_sided": 1, "one_sided_fence": 3}}
        csv = fig4_csv(r)
        assert "tile_256,one_sided_fence,3" in csv

    def test_csv_quotes_commas(self):
        from repro.bench.reporting import _csv

        out = _csv(["a"], [["x,y"]])
        assert '"x,y"' in out

    def test_csv_escapes_embedded_quotes(self):
        """RFC 4180: quoted cells double their internal quotes."""
        import csv
        import io

        from repro.bench.reporting import _csv

        out = _csv(["a", "b"], [['say "hi"', 'both, "kinds"']])
        assert '"say ""hi"""' in out
        parsed = list(csv.reader(io.StringIO(out)))
        assert parsed == [["a", "b"], ['say "hi"', 'both, "kinds"']]

    def test_csv_quotes_newlines(self):
        import csv
        import io

        from repro.bench.reporting import _csv

        out = _csv(["a"], [["two\nlines"]])
        parsed = list(csv.reader(io.StringIO(out)))
        assert parsed == [["a"], ["two\nlines"]]

    def test_csv_rejects_ragged_rows(self):
        import pytest

        from repro.bench.reporting import _csv

        with pytest.raises(ValueError, match="cells"):
            _csv(["a", "b"], [["only-one"]])

    def test_all_csv_emitters_have_uniform_row_width(self):
        """Header/row-width invariant across every ``*_csv`` function."""
        import csv
        import io

        from repro.bench.reporting import (
            fig1_csv,
            fig4_csv,
            improvements_csv,
            table1_csv,
            tuning_csv,
        )
        from repro.tune.search import CandidateResult, TuningResult
        from repro.tune.space import Candidate, ScenarioSpec

        t1 = Table1Result()
        t1.rows = {"ior": {"no_overlap": 2, "write_overlap": 3}}
        f1 = Fig1Result(nprocs_list=[100])
        f1.points[("crill", 100, "no_overlap")] = 0.5
        imp = ImprovementResult("crill")
        imp.values[("write_overlap", "ior")] = 0.1
        imp.values[("comm_overlap", "ior")] = None
        f4 = Fig4Result()
        f4.rows = {"ior": {"two_sided": 1, "one_sided_fence": 0}}
        tuned = TuningResult(
            scenario=ScenarioSpec("ior", "crill", 2, scale=512),
            search="halving", reps=2, base_seed=1, screen_reps=1,
            ranked=[CandidateResult(Candidate("write_overlap"), [0.5, 0.6],
                                    1e9, 2, 4)],
            pruned=[CandidateResult(Candidate("no_overlap"), [0.9],
                                    5e8, 2, 2, stage="screened")],
        )
        emitted = [table1_csv(t1), fig1_csv(f1), improvements_csv(imp),
                   fig4_csv(f4), tuning_csv(tuned)]
        for text in emitted:
            rows = list(csv.reader(io.StringIO(text)))
            assert len(rows) >= 2, "emitter produced no data rows"
            width = len(rows[0])
            assert width > 1
            assert all(len(r) == width for r in rows)


def test_render_tuning():
    from repro.bench.reporting import render_tuning
    from repro.tune.search import CandidateResult, TuningResult
    from repro.tune.space import Candidate, ScenarioSpec

    result = TuningResult(
        scenario=ScenarioSpec("ior", "crill", 2, scale=512),
        search="halving", reps=3, base_seed=2020, screen_reps=1,
        ranked=[CandidateResult(Candidate("write_comm2"), [0.005, 0.006], 2e9, 2, 8)],
        pruned=[CandidateResult(Candidate("no_overlap"), [0.010], 1e9, 2, 4,
                                stage="screened")],
        counters={"tune.cache_hit": 3, "tune.sim_run": 7},
    )
    text = render_tuning(result)
    assert "TUNE — ior@crill:beegfs-crill P=2" in text
    assert "recommendation: write_comm2" in text
    assert "pruned after screening: 1 of 2 candidates" in text
    assert "cache: 3 hits, 7 simulations run (30% cache hits)" in text
    assert "screened" in text and "full" in text


def test_render_lustre():
    r = LustreResult()
    r.entries["beegfs"] = (1.0, 0.8, 0.2)
    r.entries["lustre"] = (1.0, 1.01, -0.01)
    text = render_lustre(r)
    assert "+20.0%" in text and "-1.0%" in text
