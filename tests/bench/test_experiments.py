"""Unit tests for experiment derivation logic (synthetic matrices; no sims)."""

import pytest

from repro.analysis.stats import Series
from repro.bench.experiments import (
    Fig1Result,
    Fig4Result,
    Table1Result,
    _improvements,
    table1,
)
from repro.bench.runner import Case, CaseResult, MatrixResult


def case_result(benchmark, cluster, nprocs, times_by_algo, shuffle="two_sided"):
    cr = CaseResult(Case(benchmark, cluster, nprocs))
    for algo, t in times_by_algo.items():
        s = Series(key=(benchmark,), algorithm=algo)
        s.add(t)
        cr.series[(algo, shuffle)] = s
    return cr


def synthetic_matrix():
    m = MatrixResult()
    # crill: no_overlap wins; ibex: write_overlap wins.
    m.results.append(case_result("ior", "crill", 96, {
        "no_overlap": 1.0, "comm_overlap": 1.1, "write_overlap": 1.05,
        "write_comm": 1.2, "write_comm2": 1.06,
    }))
    m.results.append(case_result("ior", "ibex", 96, {
        "no_overlap": 1.0, "comm_overlap": 0.9, "write_overlap": 0.8,
        "write_comm": 0.85, "write_comm2": 0.82,
    }))
    m.results.append(case_result("flash", "ibex", 96, {
        "no_overlap": 1.0, "comm_overlap": 1.2, "write_overlap": 0.95,
        "write_comm": 0.99, "write_comm2": 0.97,
    }))
    return m


class TestTable1Derivation:
    def test_winner_counting(self):
        result = table1(matrix=synthetic_matrix())
        assert result.rows["ior"]["no_overlap"] == 1
        assert result.rows["ior"]["write_overlap"] == 1
        assert result.rows["flash"]["write_overlap"] == 1
        assert result.total_cases == 3

    def test_async_share(self):
        result = table1(matrix=synthetic_matrix())
        assert result.async_write_share() == pytest.approx(2 / 3)

    def test_totals_sum_rows(self):
        result = table1(matrix=synthetic_matrix())
        assert sum(result.totals.values()) == 3


class TestImprovementDerivation:
    def test_positive_only_average(self):
        res = _improvements(synthetic_matrix(), "ibex")
        # write_overlap on ior@ibex: +20%; on flash@ibex: +5%.
        assert res.values[("write_overlap", "ior")] == pytest.approx(0.2)
        assert res.values[("write_overlap", "flash")] == pytest.approx(0.05)
        # comm_overlap lost on flash -> excluded; ior gain 10%.
        assert res.values[("comm_overlap", "ior")] == pytest.approx(0.1)
        assert res.values[("comm_overlap", "flash")] is None

    def test_crill_losses_excluded_entirely(self):
        res = _improvements(synthetic_matrix(), "crill")
        assert res.values[("comm_overlap", "ior")] is None
        assert res.range_over_all() == (0.0, 0.0)


class TestResultHelpers:
    def test_fig1_improvement(self):
        r = Fig1Result(nprocs_list=[100])
        for algo, t in (("no_overlap", 2.0), ("comm_overlap", 1.9),
                        ("write_overlap", 1.5), ("write_comm", 1.8),
                        ("write_comm2", 1.6)):
            r.points[("crill", 100, algo)] = t
        assert r.improvement("crill", 100) == pytest.approx(0.25)

    def test_fig4_shares_and_trend(self):
        r = Fig4Result()
        r.rows["ior"] = {"two_sided": 3, "one_sided_fence": 1, "one_sided_lock": 0}
        r.rows["tile_256"] = {"two_sided": 1, "one_sided_fence": 3, "one_sided_lock": 0}
        r.winners = {
            ("tile_256", "crill", 100): "two_sided",
            ("tile_256", "crill", 400): "one_sided_fence",
            ("tile_256", "ibex", 100): "one_sided_fence",
        }
        assert r.two_sided_share() == pytest.approx(4 / 8)
        assert r.crill_onesided_wins(min_procs=256) == 1
        assert r.crill_onesided_wins(max_procs=255) == 0

    def test_table1_empty(self):
        r = Table1Result()
        assert r.total_cases == 0
        assert r.async_write_share() == 0.0
