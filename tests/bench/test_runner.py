"""Tests for the experiment runner and matrix plumbing (small cases)."""

import pytest

from repro.bench.experiments import fig4_cases, table1_cases
from repro.bench.runner import Case, run_case, run_matrix, specs_for
from repro.units import MiB


TINY = (("block_size", 1 * MiB),)


class TestCase:
    def test_label(self):
        c = Case("ior", "crill", 96, TINY)
        assert "ior@crill" in c.label and "96" in c.label

    def test_hashable_and_frozen(self):
        c = Case("ior", "crill", 96, TINY)
        assert hash(c) == hash(Case("ior", "crill", 96, TINY))
        with pytest.raises(Exception):
            c.nprocs = 12  # type: ignore[misc]


class TestSpecs:
    def test_specs_for_known_clusters(self):
        for name in ("crill", "ibex"):
            cluster, fs = specs_for(name, 64)
            assert cluster.name == name
            assert fs.num_targets == 16

    def test_unknown_cluster(self):
        with pytest.raises(KeyError):
            specs_for("summit", 64)


class TestRunCase:
    @pytest.fixture(scope="class")
    def result(self):
        return run_case(
            Case("ior", "crill", 96, TINY),
            ["no_overlap", "write_overlap"],
            reps=2,
        )

    def test_series_per_algorithm(self, result):
        assert set(result.series) == {
            ("no_overlap", "two_sided"),
            ("write_overlap", "two_sided"),
        }

    def test_reps_recorded(self, result):
        for s in result.series.values():
            assert len(s.times) == 2

    def test_metadata(self, result):
        assert result.num_aggregators == 2  # 96 ranks = 2 crill nodes
        assert result.total_bytes == 96 * MiB

    def test_by_algorithm_view(self, result):
        by_algo = result.by_algorithm()
        assert set(by_algo) == {"no_overlap", "write_overlap"}

    def test_deterministic_given_seed(self):
        a = run_case(Case("ior", "crill", 96, TINY), ["no_overlap"], reps=1, base_seed=5)
        b = run_case(Case("ior", "crill", 96, TINY), ["no_overlap"], reps=1, base_seed=5)
        assert a.series[("no_overlap", "two_sided")].times == b.series[
            ("no_overlap", "two_sided")
        ].times

    def test_different_seeds_differ(self):
        a = run_case(Case("ior", "ibex", 96, TINY), ["no_overlap"], reps=1, base_seed=5)
        b = run_case(Case("ior", "ibex", 96, TINY), ["no_overlap"], reps=1, base_seed=6)
        assert a.series[("no_overlap", "two_sided")].times != b.series[
            ("no_overlap", "two_sided")
        ].times


class TestMatrices:
    def test_table1_quick_case_set(self):
        cases = table1_cases("quick")
        benchmarks = {c.benchmark for c in cases}
        clusters = {c.cluster for c in cases}
        assert benchmarks == {"ior", "tile_256", "tile_1m", "flash"}
        assert clusters == {"crill", "ibex"}
        assert len(cases) == 16  # 4 benchmarks x 2 clusters x 2 counts

    def test_table1_full_has_size_variants(self):
        cases = table1_cases("full")
        ior_sizes = {c.size for c in cases if c.benchmark == "ior"}
        assert len(ior_sizes) == 3

    def test_fig4_case_set(self):
        cases = fig4_cases("quick")
        assert {c.benchmark for c in cases} == {"ior", "tile_256", "tile_1m"}

    def test_run_matrix_filters(self):
        cases = [Case("ior", "crill", 96, TINY), Case("ior", "ibex", 96, TINY)]
        matrix = run_matrix(cases, ["no_overlap"], reps=1)
        assert len(matrix.cases(cluster="crill")) == 1
        assert matrix.find("ior", "ibex", 96).case.cluster == "ibex"
        with pytest.raises(KeyError):
            matrix.find("ior", "ibex", 128)
