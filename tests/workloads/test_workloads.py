"""Tests for the IOR, Tile I/O and FLASH-IO workload generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WorkloadError
from repro.workloads import FlashIoWorkload, IorWorkload, TileIoWorkload, make_workload
from repro.workloads.tileio import near_square_grid


class TestIor:
    def test_paper_config_single_segment(self):
        w = IorWorkload(nprocs=4, scale=64)
        v = w.view(2)
        assert v.num_extents == 1
        assert v.offsets[0] == 2 * w.block_size
        assert w.block_size == (1 << 30) // 64

    def test_file_covers_exactly(self):
        w = IorWorkload(nprocs=4, block_size=1000)
        w.check_disjoint()
        assert w.total_bytes == 4000

    def test_segments(self):
        w = IorWorkload(nprocs=3, block_size=100, segment_count=2)
        v = w.view(1)
        assert v.offsets.tolist() == [100, 400]
        w.check_disjoint()

    def test_validation(self):
        with pytest.raises(WorkloadError):
            IorWorkload(nprocs=0)
        with pytest.raises(WorkloadError):
            IorWorkload(nprocs=2, segment_count=0)
        with pytest.raises(WorkloadError):
            IorWorkload(nprocs=2, block_size=0)
        w = IorWorkload(nprocs=2)
        with pytest.raises(WorkloadError):
            w.view(2)

    def test_describe(self):
        d = IorWorkload(nprocs=4, block_size=100).describe()
        assert d["file_size"] == 400

    def test_random_offsets_disjoint_and_block_aligned(self):
        w = IorWorkload(nprocs=4, block_size=100, segment_count=3,
                        random_offsets=True, random_seed=7)
        w.check_disjoint()
        for r in range(4):
            v = w.view(r)
            assert (v.offsets % 100 == 0).all()
            assert v.total_bytes == 300

    def test_random_offsets_deterministic(self):
        a = IorWorkload(4, block_size=100, segment_count=2, random_offsets=True, random_seed=1)
        b = IorWorkload(4, block_size=100, segment_count=2, random_offsets=True, random_seed=1)
        c = IorWorkload(4, block_size=100, segment_count=2, random_offsets=True, random_seed=2)
        assert np.array_equal(a.view(2).offsets, b.view(2).offsets)
        assert any(
            not np.array_equal(a.view(r).offsets, c.view(r).offsets) for r in range(4)
        )

    def test_random_permutes_full_slot_space(self):
        w = IorWorkload(nprocs=3, block_size=10, segment_count=4,
                        random_offsets=True, random_seed=3)
        slots = sorted(
            int(off) // 10 for r in range(3) for off in w.view(r).offsets
        )
        assert slots == list(range(12))


class TestNearSquareGrid:
    def test_perfect_squares(self):
        assert near_square_grid(16) == (4, 4)
        assert near_square_grid(729) == (27, 27)

    def test_paper_process_counts(self):
        assert near_square_grid(704) == (22, 32)
        assert near_square_grid(576) == (24, 24)
        assert near_square_grid(256) == (16, 16)

    def test_prime(self):
        assert near_square_grid(7) == (1, 7)

    def test_product_invariant(self):
        for n in (1, 2, 12, 36, 100, 704):
            py, px = near_square_grid(n)
            assert py * px == n and py <= px


class TestTileIo:
    def test_grid_and_tiles(self):
        w = TileIoWorkload(nprocs=4, element_size=4, elements_y=2, elements_x=3)
        assert (w.grid_y, w.grid_x) == (2, 2)
        assert w.tile_of(3) == (1, 1)
        assert w.global_elements == (4, 6)

    def test_view_extents_are_rows(self):
        w = TileIoWorkload(nprocs=4, element_size=4, elements_y=2, elements_x=3)
        v = w.view(0)
        # Tile (0,0): rows 0 and 1, each 3 elements of 4 bytes at stride 24.
        assert v.offsets.tolist() == [0, 24]
        assert v.lengths.tolist() == [12, 12]

    def test_tiles_cover_file_disjointly(self):
        w = TileIoWorkload(nprocs=6, element_size=8, elements_y=4, elements_x=2)
        w.check_disjoint()
        gy, gx = w.global_elements
        assert w.total_bytes == gy * gx * 8

    def test_config_256_keeps_small_elements(self):
        w = TileIoWorkload.config_256(16, scale=64)
        assert w.element_size == 256
        # Rows shrink by scale**(1/3) = 4, row length by 16.
        assert w.elements_y == 512 and w.elements_x == 64
        # many small runs per rank, each modeled run standing for 4 real ones
        assert w.view(0).num_extents == 512
        assert w.extent_cost_factor == 4.0

    def test_config_256_total_bytes_scale(self):
        w = TileIoWorkload.config_256(16, scale=64)
        full = TileIoWorkload.config_256(16, scale=1)
        assert full.view(0).total_bytes == 64 * w.view(0).total_bytes
        assert full.extent_cost_factor == 1.0

    def test_config_1m_keeps_element_count(self):
        w = TileIoWorkload.config_1m(16, scale=64)
        assert (w.elements_y, w.elements_x) == (32, 16)
        assert w.element_size == (1 << 20) // 64

    def test_256_has_many_more_extents_than_1m(self):
        a = TileIoWorkload.config_256(16)
        b = TileIoWorkload.config_1m(16)
        assert a.view(0).num_extents > 4 * b.view(0).num_extents

    def test_full_scale_matches_paper(self):
        a = TileIoWorkload.config_256(16, scale=1)
        assert (a.elements_y, a.elements_x) == (2048, 1024)
        assert a.view(0).total_bytes == 2048 * 1024 * 256  # 512 MB per process
        b = TileIoWorkload.config_1m(16, scale=1)
        assert b.view(0).total_bytes == 32 * 16 * (1 << 20)  # 512 MB per process

    def test_validation(self):
        with pytest.raises(WorkloadError):
            TileIoWorkload(nprocs=4, element_size=0, elements_y=1, elements_x=1)


class TestFlashIo:
    def test_extent_structure(self):
        w = FlashIoWorkload(nprocs=4, scale=64)
        v = w.view(1)
        assert v.num_extents == 24  # one run per variable
        assert (v.lengths == w.bytes_per_proc_per_var).all()
        # Variable-major: consecutive extents are one var-stride apart.
        assert (np.diff(v.offsets) == w.var_stride).all()

    def test_disjoint_full_coverage(self):
        w = FlashIoWorkload(nprocs=3, scale=64)
        w.check_disjoint()
        assert w.total_bytes == 3 * 24 * w.bytes_per_proc_per_var

    def test_custom_parameters(self):
        w = FlashIoWorkload(nprocs=2, nvar=5, blocks_per_proc=3, zones_per_block=10,
                            bytes_per_zone=4)
        assert w.bytes_per_proc_per_var == 120
        assert w.view(0).num_extents == 5

    def test_validation(self):
        with pytest.raises(WorkloadError):
            FlashIoWorkload(nprocs=2, nvar=0)
        with pytest.raises(WorkloadError):
            FlashIoWorkload(nprocs=2, blocks_per_proc=0)


class TestRegistry:
    @pytest.mark.parametrize("name", ["ior", "tile_256", "tile_1m", "flash"])
    def test_make_workload(self, name):
        w = make_workload(name, nprocs=4)
        assert w.nprocs == 4
        assert w.total_bytes > 0
        w.check_disjoint()

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_workload("hpcg", nprocs=4)

    def test_data_is_deterministic_and_sized(self):
        w = make_workload("ior", nprocs=2)
        d1, d2 = w.data(1), w.data(1)
        assert np.array_equal(d1, d2)
        assert d1.size == w.view(1).total_bytes
        assert not np.array_equal(w.data(0), w.data(1))


@settings(deadline=None, max_examples=25)
@given(
    nprocs=st.integers(1, 30),
    name=st.sampled_from(["ior", "tile_256", "tile_1m", "flash"]),
)
def test_all_workloads_disjoint_property(nprocs, name):
    """No workload ever assigns one file byte to two ranks."""
    w = make_workload(name, nprocs=nprocs, scale=256)
    w.check_disjoint()
    assert all(w.view(r).total_bytes > 0 for r in range(nprocs))
