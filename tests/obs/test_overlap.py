"""Overlap-efficiency derivation from spans — including the paper's
algorithm ordering on a multi-cycle case (the acceptance test)."""

import pytest

from repro.obs import CyclePair, Span, merge_intervals, overlap_report


class TestMergeIntervals:
    def test_merges_overlaps_and_sorts(self):
        assert merge_intervals([(3.0, 4.0), (0.0, 2.0), (1.0, 2.5)]) == [
            (0.0, 2.5),
            (3.0, 4.0),
        ]

    def test_touching_intervals_join(self):
        assert merge_intervals([(0.0, 1.0), (1.0, 2.0)]) == [(0.0, 2.0)]

    def test_empty(self):
        assert merge_intervals([]) == []


class TestOverlapReport:
    def test_synthetic_half_hidden(self):
        spans = [
            Span("write", "io", rank=0, cycle=0, t0=0.0, t1=2.0, flow="async"),
            Span("shuffle", "comm", rank=0, cycle=1, t0=1.0, t1=5.0, flow="async"),
        ]
        report = overlap_report(spans)
        assert report.io_time == pytest.approx(2.0)
        assert report.hidden_time == pytest.approx(1.0)
        assert report.efficiency == pytest.approx(0.5)
        assert report.pairs == (
            CyclePair(rank=0, write_cycle=0, comm_cycle=1, seconds=1.0),
        )

    def test_comm_union_does_not_double_count(self):
        # Two comm spans covering the same wall-clock window must hide
        # the io interval once, not twice.
        spans = [
            Span("write", "io", rank=0, cycle=0, t0=0.0, t1=2.0, flow="async"),
            Span("shuffle", "comm", rank=0, cycle=1, t0=0.0, t1=2.0, flow="async"),
            Span("shuffle", "comm", rank=0, cycle=2, t0=0.5, t1=1.5, flow="async"),
        ]
        report = overlap_report(spans)
        assert report.hidden_time == pytest.approx(2.0)
        assert report.efficiency == pytest.approx(1.0)

    def test_ranks_are_independent(self):
        spans = [
            Span("write", "io", rank=0, cycle=0, t0=0.0, t1=1.0, flow="async"),
            Span("shuffle", "comm", rank=1, cycle=0, t0=0.0, t1=1.0, flow="async"),
        ]
        report = overlap_report(spans)
        assert report.hidden_time == 0.0
        assert [r.rank for r in report.per_rank] == [0]

    def test_ignores_other_categories_and_storage(self):
        spans = [
            Span("write", "io", rank=0, cycle=0, t0=0.0, t1=1.0, flow="async"),
            Span("fence", "sync", rank=0, cycle=0, t0=0.0, t1=1.0),
            Span("pfs.write", "io.fs", rank=-1, cycle=0, t0=0.0, t1=1.0, flow="async"),
        ]
        report = overlap_report(spans)
        assert report.io_time == pytest.approx(1.0)
        assert report.hidden_time == 0.0

    def test_empty_spans_zero_efficiency(self):
        report = overlap_report([])
        assert report.io_time == 0.0
        assert report.efficiency == 0.0


class TestAlgorithmOrdering:
    """The acceptance case: multi-cycle runs, efficiency from real spans."""

    def test_no_overlap_hides_nothing(self, traced_runs):
        run = traced_runs["no_overlap"]
        assert run.num_cycles > 1  # must be a multi-cycle case
        assert run.overlap_efficiency() == pytest.approx(0.0, abs=1e-6)

    def test_write_comm2_hides_write_time(self, traced_runs):
        run = traced_runs["write_comm2"]
        assert run.num_cycles > 1
        assert run.overlap_efficiency() > 0.0

    def test_every_overlap_algorithm_beats_baseline(self, traced_runs):
        base = traced_runs["no_overlap"].overlap_efficiency()
        for name in ("comm_overlap", "write_overlap", "write_comm2"):
            assert traced_runs[name].overlap_efficiency() > base, name

    def test_report_pairs_attribute_cycles(self, traced_runs):
        report = traced_runs["write_comm2"].overlap_report()
        assert report.pairs  # some (write cycle, comm cycle) attribution
        for pair in report.pairs:
            assert pair.seconds > 0.0
            assert pair.rank >= 0

    def test_untraced_run_reports_zero(self):
        from repro.collio import run_collective_write

        from .conftest import traced_spec

        run = run_collective_write(traced_spec("write_comm2", trace=False))
        assert run.spans == []
        assert run.overlap_efficiency() == 0.0
