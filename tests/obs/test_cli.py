"""``python -m repro.obs validate``: exit codes and one-line diagnoses.

The CI smoke jobs pipe bench trace artifacts through this command, so
the contract is strict: exit 0 with an ``OK`` line for a valid trace
(including the staging track), exit 1 with a single ``INVALID:`` line
naming the violation for anything else — unreadable files and non-JSON
included.
"""

import json

import pytest

from repro.obs.__main__ import main


def _write(tmp_path, obj, name="trace.json"):
    path = tmp_path / name
    path.write_text(json.dumps(obj))
    return str(path)


def test_valid_trace_with_staging_track_ok(tmp_path, capsys):
    from repro.collio.api import RunSpec, run_collective_write
    from repro.collio.view import FileView
    from repro.obs.export import chrome_trace
    from repro.staging import StagingSpec

    from tests.collio.test_algorithms import small_cluster, small_fs

    result = run_collective_write(RunSpec(
        cluster=small_cluster(), fs=small_fs(), nprocs=4,
        views={r: FileView.contiguous(r * 4096, 4096) for r in range(4)},
        staging=StagingSpec(policy="immediate"), trace=True, carry_data=False,
    ))
    assert any(s.category == "staging" for s in result.spans)
    path = _write(tmp_path, chrome_trace(result.spans))
    assert main(["validate", path]) == 0
    assert capsys.readouterr().out.startswith("OK:")


def test_schema_violation_exits_nonzero_with_reason(tmp_path, capsys):
    path = _write(tmp_path, {"traceEvents": [
        {"ph": "M", "pid": 3, "tid": 0, "name": "process_name",
         "args": {"name": "imposter"}},
    ]})
    assert main(["validate", path]) == 1
    err = capsys.readouterr().err
    assert err.count("\n") == 1 and "unknown process track" in err


def test_missing_file_exits_nonzero(tmp_path, capsys):
    assert main(["validate", str(tmp_path / "nope.json")]) == 1
    err = capsys.readouterr().err
    assert err.startswith("INVALID: cannot read")


def test_non_json_file_exits_nonzero(tmp_path, capsys):
    path = tmp_path / "garbage.json"
    path.write_text("this is not json {")
    assert main(["validate", str(path)]) == 1
    err = capsys.readouterr().err
    assert err.startswith("INVALID:") and "not JSON" in err


def test_unknown_subcommand_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
