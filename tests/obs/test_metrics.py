"""MetricsRegistry: counters, gauges, fixed-bucket histograms, snapshots."""

import pytest

from repro.obs import (
    DURATION_BUCKETS,
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricsRegistry,
)


class TestCounter:
    def test_inc(self):
        c = CounterMetric("x")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_decrease(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            CounterMetric("x").inc(-1)


class TestGauge:
    def test_set_and_max(self):
        g = GaugeMetric("g")
        g.set(3.0)
        g.max(2.0)
        assert g.value == 3.0
        g.max(7.5)
        assert g.value == 7.5


class TestHistogram:
    def test_bucketing_and_overflow(self):
        h = HistogramMetric("h", boundaries=(1.0, 10.0))
        for v in (0.5, 1.0, 2.0, 50.0):
            h.observe(v)
        # <=1.0: {0.5, 1.0}; <=10.0: {2.0}; overflow: {50.0}
        assert h.counts == [2, 1, 1]
        assert h.count == 4
        assert h.sum == pytest.approx(53.5)
        assert h.mean == pytest.approx(53.5 / 4)

    def test_cumulative(self):
        h = HistogramMetric("h", boundaries=(1.0, 10.0))
        for v in (0.5, 2.0, 50.0):
            h.observe(v)
        assert h.cumulative() == [(1.0, 1), (10.0, 2)]

    def test_boundaries_must_increase(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            HistogramMetric("h", boundaries=(1.0, 1.0))
        with pytest.raises(ValueError, match="strictly increasing"):
            HistogramMetric("h", boundaries=(2.0, 1.0))
        with pytest.raises(ValueError, match="at least one"):
            HistogramMetric("h", boundaries=())

    def test_default_buckets_are_the_duration_ladder(self):
        assert HistogramMetric("h").boundaries == DURATION_BUCKETS


class TestRegistry:
    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_histogram_boundary_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", boundaries=(1.0, 2.0))
        with pytest.raises(ValueError, match="different boundaries"):
            reg.histogram("h", boundaries=(1.0, 3.0))

    def test_merge_counters_and_counter_values(self):
        reg = MetricsRegistry()
        reg.counter("z").inc(2)
        reg.merge_counters({"a": 3, "z": 1})
        assert reg.counter_values() == {"a": 3, "z": 3}
        assert list(reg.counter_values()) == ["a", "z"]  # sorted

    def test_snapshot_is_plain_data(self):
        import json

        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(1.5)
        reg.histogram("h", boundaries=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 1}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["counts"] == [1, 0]
        json.dumps(snap)  # JSON-safe end to end
