"""Shared fixtures: small traced collective-write runs."""

import pytest

from repro.collio import CollectiveConfig, FileView, RunSpec, run_collective_write
from repro.fs import FsSpec
from repro.hardware import ClusterSpec
from repro.units import MB


def small_cluster(**kw):
    base = dict(
        name="t",
        num_nodes=4,
        cores_per_node=4,
        network_bandwidth=1000 * MB,
        network_latency=1e-6,
        eager_threshold=1024,
    )
    base.update(kw)
    return ClusterSpec(**base)


def small_fs(**kw):
    base = dict(
        name="tfs",
        num_targets=4,
        target_bandwidth=300 * MB,
        target_latency=5e-5,
        stripe_size=4096,
    )
    base.update(kw)
    return FsSpec(**base)


def contiguous_views(nprocs, per_rank):
    return {r: FileView.contiguous(r * per_rank, per_rank) for r in range(nprocs)}


def traced_spec(algorithm="write_overlap", nprocs=8, per_rank=20_000, **overrides):
    """A multi-cycle traced run spec (~5 cycles at 32 KiB buffers)."""
    kwargs = dict(
        cluster=small_cluster(),
        fs=small_fs(),
        nprocs=nprocs,
        views=contiguous_views(nprocs, per_rank),
        algorithm=algorithm,
        config=CollectiveConfig(cb_buffer_size=32 * 1024),
        carry_data=False,
        trace=True,
    )
    kwargs.update(overrides)
    return RunSpec(**kwargs)


@pytest.fixture(scope="module")
def traced_runs():
    """One traced run per algorithm of interest, shared across the module."""
    return {
        name: run_collective_write(traced_spec(name))
        for name in ("no_overlap", "comm_overlap", "write_overlap", "write_comm2")
    }
