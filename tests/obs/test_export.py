"""Chrome trace_event exporter: schema, nesting, determinism, CSV."""

import json

import pytest

from repro.collio import run_collective_write
from repro.obs import (
    COMPUTE_PID,
    STORAGE_PID,
    Span,
    chrome_trace,
    chrome_trace_json,
    span_summary,
    spans_csv,
    validate_chrome_trace,
    write_chrome_trace,
)

from .conftest import traced_spec


def _sample_spans():
    return [
        Span("cycle", "algo.cycle", rank=0, cycle=0, t0=0.0, t1=4.0),
        Span("write", "io.call", rank=0, cycle=0, t0=1.0, t1=3.0, depth=1),
        Span("shuffle", "comm", rank=0, cycle=0, t0=0.5, t1=3.5, flow="async"),
        Span("pfs.write", "io.fs", rank=-1, cycle=0, t0=1.2, t1=2.8, flow="async"),
    ]


class TestChromeTrace:
    def test_event_shapes(self):
        trace = chrome_trace(_sample_spans())
        events = trace["traceEvents"]
        by_ph = {}
        for ev in events:
            by_ph.setdefault(ev["ph"], []).append(ev)
        # 2 sync spans -> X; 2 async spans -> b+e pairs; plus metadata.
        assert len(by_ph["X"]) == 2
        assert len(by_ph["b"]) == 2
        assert len(by_ph["e"]) == 2
        assert by_ph["M"]  # process/thread names present
        x = by_ph["X"][0]
        assert x["ts"] == pytest.approx(0.0)
        assert x["dur"] == pytest.approx(4.0 * 1e6)  # seconds -> microseconds
        assert x["args"]["cycle"] == 0

    def test_rank_and_storage_tracks(self):
        trace = chrome_trace(_sample_spans())
        events = trace["traceEvents"]
        rank_events = [e for e in events if e["ph"] != "M" and e["pid"] == COMPUTE_PID]
        fs_events = [e for e in events if e["ph"] != "M" and e["pid"] == STORAGE_PID]
        assert all(e["tid"] == 0 for e in rank_events)  # all on rank 0's track
        assert len(fs_events) == 2  # the pfs.write b/e pair
        names = {
            (e["pid"], e["args"]["name"])
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names == {(COMPUTE_PID, "ranks"), (STORAGE_PID, "storage")}

    def test_staging_spans_land_on_staging_track(self):
        from repro.obs.export import STAGING_PID
        from repro.staging.tier import staging_rank

        spans = _sample_spans() + [
            Span("absorb", "staging", rank=staging_rank(0),
                 t0=0.2, t1=0.4, flow="async"),
            Span("drain", "staging", rank=staging_rank(1),
                 t0=0.5, t1=0.9, flow="async"),
            # A rank-side staging span (the flush wait) stays on the
            # rank's own track.
            Span("flush", "staging", rank=2, t0=5.0, t1=6.0),
        ]
        trace = chrome_trace(spans)
        validate_chrome_trace(trace)
        events = trace["traceEvents"]
        staging = [e for e in events
                   if e["ph"] != "M" and e["pid"] == STAGING_PID]
        assert {e["tid"] for e in staging} == {0, 1}  # node ids as tids
        flush = [e for e in events if e.get("name") == "flush" and e["ph"] == "X"]
        assert flush and flush[0]["pid"] == COMPUTE_PID and flush[0]["tid"] == 2
        labels = {
            (e["pid"], e["args"]["name"]) for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert (STAGING_PID, "staging") in labels
        thread_labels = {
            e["args"]["name"] for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
            and e["pid"] == STAGING_PID
        }
        assert thread_labels == {"node 0 buffer", "node 1 buffer"}

    def test_open_spans_are_skipped(self):
        spans = _sample_spans() + [Span("open", "io", rank=0, t0=9.0)]
        trace = chrome_trace(spans)
        assert not any(
            ev.get("name") == "open" for ev in trace["traceEvents"]
        )

    def test_async_ids_are_sequential_and_balanced(self):
        trace = chrome_trace(_sample_spans())
        ids_b = [e["id"] for e in trace["traceEvents"] if e["ph"] == "b"]
        ids_e = [e["id"] for e in trace["traceEvents"] if e["ph"] == "e"]
        assert ids_b == [1, 2]
        assert sorted(ids_e) == [1, 2]

    def test_non_json_attrs_fall_back_to_repr(self):
        span = Span("s", "io", rank=0, t0=0.0, t1=1.0, attrs={"obj": object()})
        trace = chrome_trace([span])
        json.dumps(trace)  # must not raise
        args = [e for e in trace["traceEvents"] if e["ph"] == "X"][0]["args"]
        assert args["obj"].startswith("<object object")


class TestValidate:
    def test_sample_is_valid(self):
        assert validate_chrome_trace(chrome_trace(_sample_spans())) > 0

    def test_rejects_non_object(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace([])

    def test_rejects_missing_field(self):
        trace = {"traceEvents": [{"ph": "X", "name": "x", "cat": "c",
                                  "ts": 0, "pid": 0, "tid": 0}]}  # no dur
        with pytest.raises(ValueError, match="missing field 'dur'"):
            validate_chrome_trace(trace)

    def test_rejects_unknown_process_track(self):
        trace = {"traceEvents": [
            {"ph": "M", "pid": 9, "tid": 0, "name": "process_name",
             "args": {"name": "mystery"}},
        ]}
        with pytest.raises(ValueError, match="unknown process track 'mystery'"):
            validate_chrome_trace(trace)

    def test_accepts_staging_process_track(self):
        trace = {"traceEvents": [
            {"ph": "M", "pid": 2, "tid": 0, "name": "process_name",
             "args": {"name": "staging"}},
        ]}
        assert validate_chrome_trace(trace) == 1

    def test_rejects_unknown_ph(self):
        with pytest.raises(ValueError, match="unsupported ph"):
            validate_chrome_trace({"traceEvents": [{"ph": "Q"}]})

    def test_rejects_negative_duration(self):
        trace = {"traceEvents": [{"ph": "X", "name": "x", "cat": "c",
                                  "ts": 0, "dur": -1, "pid": 0, "tid": 0}]}
        with pytest.raises(ValueError, match="invalid dur"):
            validate_chrome_trace(trace)

    def test_rejects_unbalanced_async(self):
        b = {"ph": "b", "name": "x", "cat": "c", "ts": 0, "pid": 0, "tid": 0, "id": 1}
        with pytest.raises(ValueError, match="open ids: 1"):
            validate_chrome_trace({"traceEvents": [b]})
        e = {"ph": "e", "ts": 0, "pid": 0, "tid": 0, "id": 9}
        with pytest.raises(ValueError, match="end without begin"):
            validate_chrome_trace({"traceEvents": [e]})

    def test_rejects_partially_overlapping_sync_spans(self):
        def x(ts, dur):
            return {"ph": "X", "name": "x", "cat": "c", "ts": ts, "dur": dur,
                    "pid": 0, "tid": 0}

        with pytest.raises(ValueError, match="without nesting"):
            validate_chrome_trace({"traceEvents": [x(0, 10), x(5, 10)]})
        # Proper nesting and adjacency are fine.
        assert validate_chrome_trace({"traceEvents": [x(0, 10), x(2, 3), x(10, 4)]}) == 3


class TestRealRuns:
    def test_traced_run_exports_valid_schema(self, traced_runs):
        for name, run in traced_runs.items():
            trace = chrome_trace(run.spans)
            assert validate_chrome_trace(trace) > 0, name

    def test_sync_spans_nest_monotonically_per_rank(self, traced_runs):
        # The validator's X-overlap check is the nesting assertion; here
        # we also check the recorded depths are consistent per rank.
        for run in traced_runs.values():
            for rank in range(run.nprocs):
                open_stack = []
                sync = sorted(
                    (s for s in run.spans if s.flow == "sync" and s.rank == rank),
                    key=lambda s: (s.t0, -s.t1),
                )
                for s in sync:
                    while open_stack and s.t0 >= open_stack[-1].t1 - 1e-12:
                        open_stack.pop()
                    assert not open_stack or s.t1 <= open_stack[-1].t1 + 1e-12
                    open_stack.append(s)

    def test_same_seed_runs_are_byte_identical(self):
        r1 = run_collective_write(traced_spec("write_comm2"))
        r2 = run_collective_write(traced_spec("write_comm2"))
        assert chrome_trace_json(r1.spans) == chrome_trace_json(r2.spans)

    def test_write_chrome_trace_round_trips(self, tmp_path, traced_runs):
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), traced_runs["write_overlap"].spans)
        loaded = json.loads(path.read_text())
        assert validate_chrome_trace(loaded) > 0


class TestCsvAndSummary:
    def test_spans_csv_shape(self):
        text = spans_csv(_sample_spans())
        lines = text.strip().split("\n")
        assert lines[0] == "name,category,rank,cycle,flow,depth,t0,t1,dur"
        assert len(lines) == 1 + len(_sample_spans())
        assert lines[1].startswith("cycle,algo.cycle,0,0,sync,0,")

    def test_spans_csv_escapes(self):
        span = Span('a,"b"', "io", rank=0, t0=0.0, t1=1.0)
        line = spans_csv([span]).strip().split("\n")[1]
        assert line.startswith('"a,""b""",io')

    def test_span_summary(self):
        rows = span_summary(_sample_spans() + [Span("open", "io", t0=0.0)])
        by_key = {(r["category"], r["name"]): r for r in rows}
        assert by_key[("io.call", "write")]["count"] == 1
        assert by_key[("io.call", "write")]["total"] == pytest.approx(2.0)
        assert ("io", "open") not in by_key  # open spans excluded
