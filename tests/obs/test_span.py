"""Span model and SpanRecorder behaviour (nesting, bounds, tracer contract)."""

import pytest

from repro.obs import SPAN_CATEGORIES, Span, SpanRecorder, total_time
from repro.sim.trace import Tracer


class TestSpan:
    def test_open_then_closed(self):
        s = Span("write", "io", rank=2, cycle=1, t0=1.0)
        assert not s.closed
        assert s.dur == 0.0
        s.t1 = 3.5
        assert s.closed
        assert s.dur == 2.5

    def test_overlap_with(self):
        a = Span("a", "io", t0=0.0, t1=2.0)
        b = Span("b", "comm", t0=1.0, t1=5.0)
        c = Span("c", "comm", t0=3.0, t1=4.0)
        assert a.overlap_with(b) == pytest.approx(1.0)
        assert b.overlap_with(a) == pytest.approx(1.0)
        assert a.overlap_with(c) == 0.0

    def test_overlap_with_open_span_is_zero(self):
        a = Span("a", "io", t0=0.0, t1=2.0)
        b = Span("b", "comm", t0=1.0)
        assert a.overlap_with(b) == 0.0


class TestSpanRecorder:
    def test_begin_end_records_span(self):
        rec = SpanRecorder(enabled=True)
        span = rec.begin(1.0, "shuffle", "comm", rank=3, cycle=2, flow="async", bytes=64)
        assert span is not None
        rec.end(span, 4.0)
        assert rec.spans == [span]
        assert span.t1 == 4.0
        assert span.attrs == {"bytes": 64}

    def test_disabled_recorder_is_noop(self):
        rec = SpanRecorder(enabled=False)
        span = rec.begin(1.0, "shuffle", "comm", rank=3)
        assert span is None
        rec.end(span, 4.0)  # must not raise
        assert rec.spans == []

    def test_sync_depth_tracks_nesting_per_rank(self):
        rec = SpanRecorder(enabled=True)
        outer = rec.begin(0.0, "cycle", "algo.cycle", rank=0)
        inner = rec.begin(1.0, "write", "io.call", rank=0)
        other = rec.begin(1.0, "cycle", "algo.cycle", rank=1)
        assert outer.depth == 0
        assert inner.depth == 1
        assert other.depth == 0
        rec.end(inner, 2.0)
        sibling = rec.begin(2.0, "shuffle_wait", "comm.call", rank=0)
        assert sibling.depth == 1

    def test_async_flow_does_not_touch_depth(self):
        rec = SpanRecorder(enabled=True)
        a = rec.begin(0.0, "write", "io", rank=0, flow="async")
        sync = rec.begin(0.0, "cycle", "algo.cycle", rank=0)
        assert a.depth == 0
        assert sync.depth == 0

    def test_closed_spans_and_filters(self):
        rec = SpanRecorder(enabled=True)
        done = rec.begin(0.0, "write", "io", rank=0, flow="async")
        rec.end(done, 1.0)
        rec.begin(0.5, "shuffle", "comm", rank=1, flow="async")  # left open
        assert rec.closed_spans() == [done]
        assert rec.spans_of(category="io") == [done]
        assert rec.spans_of(category="comm") == []
        assert rec.spans_of(rank=0, name="write") == [done]

    def test_max_records_ring_buffer_keeps_newest(self):
        rec = SpanRecorder(enabled=True, max_records=3)
        spans = [rec.begin(float(i), f"s{i}", "io", rank=0) for i in range(6)]
        for s in spans:
            rec.end(s, s.t0 + 0.5)
        assert [s.name for s in rec.spans] == ["s3", "s4", "s5"]

    def test_counter_contract_inherited(self):
        rec = SpanRecorder(enabled=True)
        rec.emit(0.0, "fault.injected")
        rec.emit(0.0, "fault.injected")
        assert rec.count("fault.injected") == 2
        rec.clear()
        assert rec.count("fault.injected") == 0
        assert rec.spans == []

    def test_is_a_tracer(self):
        assert isinstance(SpanRecorder(), Tracer)


class TestBaseTracerHooks:
    def test_base_tracer_span_hooks_are_noops(self):
        t = Tracer(enabled=True)
        span = t.begin(0.0, "write", "io", rank=0)
        assert span is None
        assert t.end(span, 1.0) is None
        assert t.records == []


def test_total_time_sums_category():
    spans = [
        Span("w", "io", rank=0, t0=0.0, t1=2.0),
        Span("w", "io", rank=1, t0=0.0, t1=3.0),
        Span("s", "comm", rank=0, t0=0.0, t1=10.0),
        Span("open", "io", rank=0, t0=0.0),
    ]
    assert total_time(spans, "io") == pytest.approx(5.0)
    assert total_time(spans, "io", rank=1) == pytest.approx(3.0)
    assert total_time(spans, "sync") == 0.0


def test_span_categories_are_distinct():
    assert len(set(SPAN_CATEGORIES)) == len(SPAN_CATEGORIES)
