"""Tests for stripe layout arithmetic, including hypothesis properties."""

import pytest
from hypothesis import given, strategies as st

from repro.fs.striping import StripeLayout, StripePiece


class TestBasics:
    def test_target_of_round_robin(self):
        lay = StripeLayout(stripe_size=10, num_targets=3)
        assert [lay.target_of(o) for o in (0, 9, 10, 25, 30)] == [0, 0, 1, 2, 0]

    def test_split_within_one_stripe(self):
        lay = StripeLayout(stripe_size=100, num_targets=4)
        assert lay.split(10, 50) == [StripePiece(0, 10, 50)]

    def test_split_across_stripes(self):
        lay = StripeLayout(stripe_size=100, num_targets=4)
        pieces = lay.split(50, 200)
        assert pieces == [
            StripePiece(0, 50, 50),
            StripePiece(1, 100, 100),
            StripePiece(2, 200, 50),
        ]

    def test_single_target_coalesces(self):
        lay = StripeLayout(stripe_size=10, num_targets=1)
        assert lay.split(0, 100) == [StripePiece(0, 0, 100)]

    def test_zero_size(self):
        lay = StripeLayout(stripe_size=10, num_targets=2)
        assert lay.split(5, 0) == []

    def test_alignment(self):
        lay = StripeLayout(stripe_size=100, num_targets=2)
        assert lay.align_down(150) == 100
        assert lay.align_up(150) == 200
        assert lay.align_up(200) == 200

    def test_validation(self):
        with pytest.raises(ValueError):
            StripeLayout(stripe_size=0, num_targets=1)
        with pytest.raises(ValueError):
            StripeLayout(stripe_size=10, num_targets=0)
        lay = StripeLayout(stripe_size=10, num_targets=2)
        with pytest.raises(ValueError):
            lay.split(-1, 10)
        with pytest.raises(ValueError):
            lay.target_of(-1)

    def test_bytes_per_target(self):
        lay = StripeLayout(stripe_size=10, num_targets=2)
        assert lay.bytes_per_target(0, 40) == {0: 20, 1: 20}

    def test_bytes_per_target_split(self):
        lay = StripeLayout(stripe_size=10, num_targets=2)
        # 5..10 lands on target 0, 10..15 on target 1.
        assert lay.bytes_per_target(5, 10) == {0: 5, 1: 5}


@given(
    stripe=st.integers(1, 1000),
    ntargets=st.integers(1, 32),
    offset=st.integers(0, 10_000),
    size=st.integers(0, 10_000),
)
def test_split_partitions_request(stripe, ntargets, offset, size):
    """Pieces tile [offset, offset+size) exactly, in order, on correct targets."""
    lay = StripeLayout(stripe_size=stripe, num_targets=ntargets)
    pieces = lay.split(offset, size)
    assert sum(p.size for p in pieces) == size
    pos = offset
    for p in pieces:
        assert p.offset == pos
        assert p.size > 0
        # every byte of the piece is on the declared target
        assert lay.target_of(p.offset) == p.target
        assert lay.target_of(p.offset + p.size - 1) == p.target
        pos += p.size
    assert pos == offset + size


@given(
    stripe=st.integers(1, 100),
    ntargets=st.integers(2, 8),
    offset=st.integers(0, 1000),
    size=st.integers(1, 1000),
)
def test_piece_never_crosses_stripe_boundary(stripe, ntargets, offset, size):
    lay = StripeLayout(stripe_size=stripe, num_targets=ntargets)
    for p in lay.split(offset, size):
        first_stripe = p.offset // stripe
        last_stripe = (p.offset + p.size - 1) // stripe
        assert first_stripe == last_stripe
