"""Tests for the parallel file system and the aio engine."""

import numpy as np
import pytest

from repro.errors import FileSystemError
from repro.fs import AioEngine, FsSpec, ParallelFileSystem, beegfs_crill, beegfs_ibex, fs_preset, lustre_like
from repro.sim import Engine
from repro.units import MB


def small_spec(**kw):
    base = dict(
        name="tiny",
        num_targets=4,
        target_bandwidth=100 * MB,
        target_latency=1e-4,
        stripe_size=1024,
        client_overhead=0.0,
    )
    base.update(kw)
    return FsSpec(**base)


def run_write(pfs, offset, data):
    eng = pfs.engine
    f = pfs.open("f")

    def proc(eng):
        yield pfs.write(f, offset, data)
        return eng.now

    p = eng.process(proc(eng))
    eng.run()
    return p.value, f


class TestWrite:
    def test_contents_stored(self):
        pfs = ParallelFileSystem(Engine(), small_spec())
        data = np.arange(5000, dtype=np.uint32).view(np.uint8)
        _, f = run_write(pfs, 100, data)
        assert np.array_equal(f.read(100, data.size), data)

    def test_single_target_write_time(self):
        spec = small_spec(num_targets=1, target_latency=0.5)
        pfs = ParallelFileSystem(Engine(), spec)
        data = np.zeros(100 * MB, dtype=np.uint8)[: 10_000_000]
        t, _ = run_write(pfs, 0, data)
        expected = 0.5 + 10_000_000 / spec.target_bandwidth
        assert t == pytest.approx(expected, rel=1e-6)

    def test_striped_write_faster_than_single_target(self):
        data = np.zeros(4 * 1024 * 1024, dtype=np.uint8)
        t4, _ = run_write(ParallelFileSystem(Engine(), small_spec()), 0, data)
        t1, _ = run_write(
            ParallelFileSystem(Engine(), small_spec(num_targets=1)), 0, data
        )
        assert t4 < t1 / 2  # 4 targets give close to 4x

    def test_zero_size_write_completes(self):
        pfs = ParallelFileSystem(Engine(), small_spec())
        t, f = run_write(pfs, 0, np.zeros(0, dtype=np.uint8))
        assert t == 0.0 and f.size == 0

    def test_non_uint8_rejected(self):
        pfs = ParallelFileSystem(Engine(), small_spec())
        f = pfs.open("f")
        with pytest.raises(FileSystemError):
            pfs.write(f, 0, np.zeros(4, dtype=np.float64))

    def test_contention_between_writers(self):
        """Two writers to the same stripes take ~2x one writer."""
        spec = small_spec(num_targets=1, target_latency=0.0)
        eng = Engine()
        pfs = ParallelFileSystem(eng, spec)
        f = pfs.open("f")
        data = np.zeros(1_000_000, dtype=np.uint8)
        times = []

        def writer(eng, off):
            yield pfs.write(f, off, data)
            times.append(eng.now)

        eng.process(writer(eng, 0))
        eng.process(writer(eng, 1_000_000))
        eng.run()
        single = 1_000_000 / spec.target_bandwidth
        assert max(times) == pytest.approx(2 * single, rel=0.01)

    def test_buffer_sampled_at_completion(self):
        """Reusing a buffer before completion corrupts the file (by design)."""
        spec = small_spec(num_targets=1, target_latency=1.0)
        eng = Engine()
        pfs = ParallelFileSystem(eng, spec)
        f = pfs.open("f")
        buf = np.full(10, 1, dtype=np.uint8)

        def bad_program(eng):
            done = pfs.write(f, 0, buf)
            buf[:] = 2  # illegal: reuse before completion
            yield done

        eng.process(bad_program(eng))
        eng.run()
        assert bytes(f.read(0, 10)) == b"\x02" * 10


class TestNamespace:
    def test_open_is_idempotent(self):
        pfs = ParallelFileSystem(Engine(), small_spec())
        assert pfs.open("a") is pfs.open("a")

    def test_delete(self):
        pfs = ParallelFileSystem(Engine(), small_spec())
        pfs.open("a")
        assert pfs.exists("a")
        pfs.delete("a")
        assert not pfs.exists("a")
        with pytest.raises(FileSystemError):
            pfs.delete("a")

    def test_files_listing(self):
        pfs = ParallelFileSystem(Engine(), small_spec())
        pfs.open("b")
        pfs.open("a")
        assert pfs.files() == ["a", "b"]


class TestRead:
    def test_read_returns_written_data(self):
        eng = Engine()
        pfs = ParallelFileSystem(eng, small_spec())
        f = pfs.open("f")
        data = np.arange(100, dtype=np.uint8)

        def proc(eng):
            yield pfs.write(f, 0, data)
            done, out = pfs.read(f, 0, 100)
            yield done
            return out

        p = eng.process(proc(eng))
        eng.run()
        assert np.array_equal(p.value, data)


class TestAio:
    def test_aio_completes_in_background(self):
        """The issuing process computes while the aio write progresses."""
        spec = small_spec(num_targets=1, target_latency=0.0)
        eng = Engine()
        pfs = ParallelFileSystem(eng, spec)
        aio = AioEngine(eng, pfs)
        f = pfs.open("f")
        data = np.ones(1_000_000, dtype=np.uint8)
        write_time = 1_000_000 / spec.target_bandwidth

        def proc(eng):
            req = aio.submit(f, 0, data)
            yield eng.timeout(10 * write_time)  # compute, no I/O waiting
            assert req.done  # finished in the background
            yield req.event
            return eng.now

        p = eng.process(proc(eng))
        eng.run()
        assert p.value == pytest.approx(10 * write_time)
        assert np.array_equal(f.read(0, 10), data[:10])

    def test_aio_slot_limit_serializes(self):
        """aio_slots=1 (Lustre-like) forces one write in flight at a time."""
        spec = small_spec(num_targets=4, target_latency=0.0, aio_slots=1)
        eng = Engine()
        pfs = ParallelFileSystem(eng, spec)
        aio = AioEngine(eng, pfs)
        f = pfs.open("f")
        size = 1_000_000
        per_write = size / (4 * spec.target_bandwidth) * 4  # striped over 4 targets

        def proc(eng):
            reqs = [
                aio.submit(f, i * size, np.ones(size, dtype=np.uint8)) for i in range(3)
            ]
            for r in reqs:
                yield r.event
            return eng.now

        p = eng.process(proc(eng))
        eng.run()
        # With a single slot the three writes serialize: ~3x a single write.
        single = size / spec.aggregate_bandwidth
        assert p.value == pytest.approx(3 * single, rel=0.01)

    def test_aio_extra_overhead_charged(self):
        spec = small_spec(num_targets=1, target_latency=0.0, aio_extra_overhead=5.0)
        eng = Engine()
        pfs = ParallelFileSystem(eng, spec)
        aio = AioEngine(eng, pfs)
        f = pfs.open("f")

        def proc(eng):
            req = aio.submit(f, 0, np.ones(100, dtype=np.uint8))
            yield req.event
            return eng.now

        p = eng.process(proc(eng))
        eng.run()
        assert p.value >= 5.0


class TestPresets:
    def test_presets_exist_and_scale(self):
        assert beegfs_crill().num_targets == 16
        assert beegfs_ibex().target_bandwidth > beegfs_crill().target_bandwidth
        assert beegfs_crill(scale=1).stripe_size == 1024 * 1024
        assert beegfs_crill(scale=64).stripe_size == 16 * 1024

    def test_lustre_has_poor_aio(self):
        spec = lustre_like()
        assert spec.aio_slots == 1
        assert spec.aio_extra_overhead > 0

    def test_preset_lookup(self):
        assert fs_preset("beegfs-crill").name == "beegfs-crill"
        with pytest.raises(KeyError):
            fs_preset("gpfs")

    def test_aggregate_bandwidth(self):
        spec = small_spec()
        assert spec.aggregate_bandwidth == 4 * 100 * MB
