"""Tests for the byte-accurate file store."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import FileSystemError
from repro.fs.file import SimFile


def test_empty_file():
    f = SimFile("x")
    assert f.size == 0
    assert f.contents().size == 0


def test_write_and_read_back():
    f = SimFile("x")
    f.write(0, b"hello")
    assert bytes(f.read(0, 5)) == b"hello"
    assert f.size == 5


def test_write_at_offset_leaves_hole_of_zeros():
    f = SimFile("x")
    f.write(10, b"ab")
    assert f.size == 12
    assert bytes(f.read(0, 12)) == b"\0" * 10 + b"ab"


def test_overwrite():
    f = SimFile("x")
    f.write(0, b"aaaa")
    f.write(1, b"bb")
    assert bytes(f.read(0, 4)) == b"abba"


def test_read_past_eof_zero_filled():
    f = SimFile("x")
    f.write(0, b"xy")
    assert bytes(f.read(0, 5)) == b"xy\0\0\0"


def test_numpy_write():
    f = SimFile("x")
    data = np.arange(256, dtype=np.uint8)
    f.write(3, data)
    assert np.array_equal(f.read(3, 256), data)


def test_invalid_args():
    f = SimFile("x")
    with pytest.raises(FileSystemError):
        f.write(-1, b"a")
    with pytest.raises(FileSystemError):
        f.read(-1, 4)
    with pytest.raises(FileSystemError):
        f.read(0, -4)


@given(
    writes=st.lists(
        st.tuples(st.integers(0, 500), st.binary(min_size=0, max_size=100)),
        max_size=20,
    )
)
def test_matches_reference_model(writes):
    """SimFile behaves like a simple grow-able bytearray."""
    f = SimFile("x")
    ref = bytearray()
    for offset, data in writes:
        f.write(offset, data)
        if offset + len(data) > len(ref):
            ref.extend(b"\0" * (offset + len(data) - len(ref)))
        ref[offset : offset + len(data)] = data
    assert bytes(f.contents()) == bytes(ref)
    assert f.size == len(ref)
