"""Descriptor validation and candidate enumeration."""

import pytest

from repro.collio.config import CollectiveConfig
from repro.config import scaled
from repro.errors import ConfigurationError
from repro.tune import Candidate, ScenarioSpec, TuningSpace, default_space, full_space
from repro.units import MiB


class TestScenarioSpec:
    def test_rejects_unknown_names_and_bad_counts(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(benchmark="nope", cluster="crill", nprocs=4)
        with pytest.raises(ConfigurationError):
            ScenarioSpec(benchmark="ior", cluster="nope", nprocs=4)
        with pytest.raises(ConfigurationError):
            ScenarioSpec(benchmark="ior", cluster="crill", nprocs=0)
        with pytest.raises(ConfigurationError):
            ScenarioSpec(benchmark="ior", cluster="crill", nprocs=4, scale=0)

    def test_fs_defaults_to_cluster_beegfs(self):
        assert ScenarioSpec("ior", "crill", 4).fs_name == "beegfs-crill"
        assert ScenarioSpec("ior", "ibex", 4).fs_name == "beegfs-ibex"
        s = ScenarioSpec("ior", "crill", 4, fs="lustre-like")
        assert s.fs_name == "lustre-like"
        assert s.fs_spec().name == "lustre-like"

    def test_builders_and_key_are_consistent(self, scenario):
        assert scenario.cluster_spec().name == "crill"
        views = scenario.workload().views()
        assert set(views) == set(range(scenario.nprocs))
        key = scenario.key()
        assert key == ScenarioSpec(**{
            "benchmark": "ior", "cluster": "crill", "nprocs": 4, "scale": 512,
        }).key()

    def test_size_kwargs_reach_the_workload(self):
        plain = ScenarioSpec("ior", "crill", 2, scale=512)
        sized = ScenarioSpec("ior", "crill", 2, scale=512,
                             size=(("block_size", 1 << 20),))
        assert sized.key() != plain.key()
        assert sized.workload().views()[0].total_bytes != \
            plain.workload().views()[0].total_bytes


class TestCandidate:
    def test_rejects_unknown_algorithm_and_shuffle(self):
        with pytest.raises(ConfigurationError):
            Candidate(algorithm="nope")
        with pytest.raises(ConfigurationError):
            Candidate(algorithm="no_overlap", shuffle="nope")
        with pytest.raises(ConfigurationError):
            Candidate(algorithm="no_overlap", num_aggregators=0)

    def test_config_for_scales_buffer_and_sets_aggregators(self, scenario):
        cand = Candidate("write_overlap", cb_buffer_size=64 * MiB, num_aggregators=2)
        cfg = cand.config_for(scenario)
        assert isinstance(cfg, CollectiveConfig)
        assert cfg.cb_buffer_size == scaled(64 * MiB, scenario.scale)
        assert cfg.num_aggregators == 2
        default_cfg = Candidate("write_overlap").config_for(scenario)
        assert default_cfg.cb_buffer_size == \
            CollectiveConfig.for_scale(scenario.scale).cb_buffer_size

    def test_sort_key_total_order(self):
        cands = [Candidate("write_comm2"), Candidate("no_overlap"),
                 Candidate("no_overlap", cb_buffer_size=16 * MiB)]
        ordered = sorted(cands, key=lambda c: c.sort_key())
        assert ordered[0].algorithm == "no_overlap"
        assert len({c.sort_key() for c in cands}) == 3


class TestTuningSpace:
    def test_candidate_count_and_deterministic_order(self, small_space):
        assert len(small_space) == 6
        assert small_space.candidates() == small_space.candidates()
        assert len(set(small_space.candidates())) == 6

    def test_default_and_full_spaces(self):
        assert len(default_space()) == 15
        # x2 two_layer axis, x2 staging axis (off / immediate)
        assert len(full_space()) == 5 * 3 * 4 * 4 * 2 * 2
        # every grid point is constructible (validation runs in __post_init__)
        assert all(isinstance(c, Candidate) for c in default_space().candidates())
