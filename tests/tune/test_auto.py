"""``algorithm="auto"``: tuner-backed selection inside the write API."""

import pytest

from repro.bench.runner import specs_for
from repro.collio.api import run_collective_write
from repro.collio.config import CollectiveConfig
from repro.collio.overlap import ALGORITHMS
from repro.tune import select_algorithm, views_fingerprint
from repro.workloads import make_workload

SCALE = 512
NPROCS = 4


@pytest.fixture(scope="module")
def setup():
    cluster_spec, fs_spec = specs_for("crill", SCALE)
    workload = make_workload("ior", NPROCS, scale=SCALE)
    config = CollectiveConfig.for_scale(
        SCALE, extent_cost_factor=workload.extent_cost_factor
    )
    return cluster_spec, fs_spec, workload.views(), config


def _brute_force_best(cluster_spec, fs_spec, views, config, seed=2020):
    points = {
        name: run_collective_write(
            cluster_spec, fs_spec, NPROCS, views,
            algorithm=name, config=config, seed=seed, carry_data=False,
        ).elapsed
        for name in ALGORITHMS
    }
    return min(sorted(points), key=lambda n: (points[n], n))


def test_auto_matches_brute_force(setup):
    cluster_spec, fs_spec, views, config = setup
    result = run_collective_write(
        cluster_spec, fs_spec, NPROCS, views,
        algorithm="auto", config=config, carry_data=False,
    )
    assert result.algorithm in ALGORITHMS
    assert result.algorithm == _brute_force_best(cluster_spec, fs_spec, views, config)
    assert result.trace_counters["tune.auto_select"] == 1
    assert result.trace_counters["tune.auto_trials"] == len(ALGORITHMS)


def test_auto_decision_is_cached(setup, tmp_path):
    cluster_spec, fs_spec, views, config = setup
    cache_dir = str(tmp_path / "auto")
    first = run_collective_write(
        cluster_spec, fs_spec, NPROCS, views,
        algorithm="auto", config=config, carry_data=False, auto_cache_dir=cache_dir,
    )
    assert "tune.auto_cache_hit" not in first.trace_counters
    second = run_collective_write(
        cluster_spec, fs_spec, NPROCS, views,
        algorithm="auto", config=config, carry_data=False, auto_cache_dir=cache_dir,
    )
    assert second.trace_counters["tune.auto_cache_hit"] == 1
    assert "tune.auto_trials" not in second.trace_counters  # zero simulations
    assert second.algorithm == first.algorithm
    assert second.elapsed == first.elapsed  # same seed, same chosen algorithm


def test_auto_verifies_file_contents(setup):
    """The chosen algorithm still writes a byte-correct file."""
    cluster_spec, fs_spec, views, config = setup
    result = run_collective_write(
        cluster_spec, fs_spec, NPROCS, views,
        algorithm="auto", config=config, verify=True,
    )
    assert result.verified is True


def test_select_algorithm_candidate_subset(setup):
    cluster_spec, fs_spec, views, config = setup
    name, counters = select_algorithm(
        cluster_spec, fs_spec, NPROCS, views, config=config,
        candidates=("no_overlap", "write_overlap"),
    )
    assert name in ("no_overlap", "write_overlap")
    assert counters["tune.auto_trials"] == 2
    with pytest.raises(ValueError):
        select_algorithm(cluster_spec, fs_spec, NPROCS, views, config=config,
                         candidates=())


def test_views_fingerprint_sensitivity(setup):
    _, _, views, _ = setup
    other = make_workload("ior", NPROCS, scale=SCALE, block_size=1 << 14).views()
    assert views_fingerprint(views) == views_fingerprint(views)
    assert views_fingerprint(views) != views_fingerprint(other)
