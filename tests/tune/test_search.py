"""Search strategies: ranking, pruning, promotion, result invariants."""

import json

import pytest

from repro.tune import Evaluator, grid_search, successive_halving
from repro.tune.search import CandidateResult, TuningResult
from repro.tune.space import Candidate


def test_grid_search_ranks_all_candidates(scenario, small_space, shared_evaluator):
    result = grid_search(scenario, small_space, shared_evaluator, reps=3)
    assert result.search == "grid"
    assert len(result.ranked) == len(small_space)
    assert not result.pruned
    points = [r.point for r in result.ranked]
    assert points == sorted(points)
    assert all(r.reps == 3 for r in result.ranked)
    assert all(r.stage == "full" for r in result.ranked)
    # the baseline should not beat the paper's async-write algorithms here
    assert result.best.candidate.algorithm != "no_overlap"


def test_halving_winner_matches_brute_force(scenario, small_space, shared_evaluator):
    """Acceptance: the pruned search's top pick equals the grid winner."""
    grid = grid_search(scenario, small_space, shared_evaluator, reps=3)
    halved = successive_halving(scenario, small_space, shared_evaluator,
                                reps=3, screen_reps=1)
    assert halved.best.candidate == grid.best.candidate
    # identical per-trial seeds => identical winning series, not just winner
    assert halved.best.times == grid.best.times
    assert halved.best.point == grid.best.point


def test_halving_prunes_and_counts(scenario, small_space, shared_cache_dir):
    from repro.tune import ResultCache

    evaluator = Evaluator(cache=ResultCache(shared_cache_dir))
    result = successive_halving(scenario, small_space, evaluator, reps=3, screen_reps=1)
    assert result.search == "halving"
    assert result.total_candidates == len(small_space)
    assert len(result.pruned) > 0
    assert all(r.stage == "screened" for r in result.pruned)
    assert all(r.reps == 1 for r in result.pruned)
    counters = result.counters
    assert counters["tune.screened"] == len(small_space)
    assert counters["tune.promoted"] == len(result.ranked)
    assert counters["tune.pruned"] == len(result.pruned)
    # every pruned candidate screened no better than the worst survivor
    worst_survivor_screen = max(
        min(t for t in r.times[:1]) for r in result.ranked
    )
    assert all(p.point >= 0 for p in result.pruned)
    assert min(p.point for p in result.pruned) >= 0
    assert worst_survivor_screen <= max(p.point for p in result.pruned)


def test_promotion_rule_keeps_borderline_candidates_within_std(scenario):
    """With screen_reps >= 2 the std-slack rule can promote extra candidates."""
    from repro.analysis.stats import Series

    s = Series(key=("x",), algorithm="a", times=[1.0, 1.2])
    assert s.count == 2
    assert s.std == pytest.approx(0.1414213562, rel=1e-6)
    # the rule is (point - std) <= cutoff: a candidate whose best time is
    # within its own noise band of the cutoff survives screening.
    assert (min(s.times) - s.std) <= 1.05


def test_screen_reps_equal_reps_promotes_everything(scenario, small_space, shared_evaluator):
    result = successive_halving(scenario, small_space, shared_evaluator,
                                reps=1, screen_reps=1)
    assert len(result.ranked) == len(small_space)
    assert not result.pruned


def test_search_parameter_validation(scenario, small_space, shared_evaluator):
    with pytest.raises(ValueError):
        grid_search(scenario, small_space, shared_evaluator, reps=0)
    with pytest.raises(ValueError):
        successive_halving(scenario, small_space, shared_evaluator, reps=2, screen_reps=3)
    with pytest.raises(ValueError):
        successive_halving(scenario, small_space, shared_evaluator, reps=2, screen_reps=0)
    with pytest.raises(ValueError):
        successive_halving(scenario, small_space, shared_evaluator, reps=2, eta=1)


def test_tuning_result_json_and_config(scenario, small_space, shared_evaluator):
    result = grid_search(scenario, small_space, shared_evaluator, reps=2)
    payload = json.loads(result.to_json())
    assert payload["search"] == "grid"
    assert payload["scenario"]["benchmark"] == "ior"
    assert len(payload["ranked"]) == len(small_space)
    assert "counters" not in payload  # run-local state stays out of canonical JSON
    cfg = result.recommended_config()
    best = result.best.candidate
    assert cfg.num_aggregators == best.num_aggregators
    # recommended config matches what the winning candidate simulated with
    assert cfg == best.config_for(scenario)


def test_empty_result_raises():
    with pytest.raises(ValueError):
        TuningResult(scenario=None, search="grid", reps=1, base_seed=0).best


def test_candidate_result_point_is_min():
    r = CandidateResult(candidate=Candidate("no_overlap"), times=[3.0, 1.0, 2.0],
                        write_bandwidth=1.0, num_aggregators=1, num_cycles=1)
    assert r.point == 1.0
    assert r.reps == 3
    assert r.series().std > 0
