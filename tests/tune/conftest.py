"""Shared fixtures for the auto-tuner tests.

All search tests run the same small, fast scenario (IOR on crill, 4
processes, heavy scaling) and share one session-scoped persistent cache
directory, so a trial simulated by one test is a cache hit for the next
— which both speeds the suite up and exercises the cross-search cache
path continuously.
"""

import pytest

from repro.tune import Evaluator, ResultCache, ScenarioSpec, TuningSpace
from repro.units import MiB

#: The scenario every search test tunes (fast: ~0.1 s per trial).
SCENARIO_KW = dict(benchmark="ior", cluster="crill", nprocs=4, scale=512)


@pytest.fixture
def scenario() -> ScenarioSpec:
    return ScenarioSpec(**SCENARIO_KW)


@pytest.fixture
def small_space() -> TuningSpace:
    """Six candidates: three algorithms x two buffer sizes."""
    return TuningSpace(
        algorithms=("no_overlap", "write_overlap", "write_comm2"),
        cb_buffer_sizes=(None, 64 * MiB),
    )


@pytest.fixture(scope="session")
def shared_cache_dir(tmp_path_factory) -> str:
    return str(tmp_path_factory.mktemp("tune-cache"))


@pytest.fixture
def shared_evaluator(shared_cache_dir) -> Evaluator:
    """Serial evaluator over the session-shared persistent cache."""
    return Evaluator(n_workers=1, cache=ResultCache(shared_cache_dir))
