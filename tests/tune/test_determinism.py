"""Regression: parallel == serial bit-for-bit, and warm reruns are free.

The two properties the ISSUE pins down:

* a tuner run with ``n_workers=4`` produces **byte-identical**
  ``TuningResult`` JSON to ``n_workers=1`` with the same seed;
* a second run served entirely from the persistent cache performs zero
  simulations, asserted via the ``tune.*`` counters.
"""

from repro.sim.trace import Tracer
from repro.tune import autotune
from tests.tune.conftest import SCENARIO_KW

#: Keyword arguments shared by every autotune call in this module.
TUNE_KW = dict(search="halving", reps=3, screen_reps=1, base_seed=2020, **SCENARIO_KW)


def test_parallel_serial_byte_identical_json():
    serial = autotune(n_workers=1, **TUNE_KW)
    parallel = autotune(n_workers=4, **TUNE_KW)
    assert parallel.to_json() == serial.to_json()


def test_second_run_is_all_cache_hits_with_zero_simulations(tmp_path):
    cache_dir = str(tmp_path / "cache")
    cold = Tracer()
    first = autotune(n_workers=2, cache_dir=cache_dir, tracer=cold, **TUNE_KW)
    assert cold.count("tune.sim_run") > 0
    assert cold.count("tune.trial") == \
        cold.count("tune.sim_run") + cold.count("tune.cache_hit")

    warm = Tracer()
    second = autotune(n_workers=2, cache_dir=cache_dir, tracer=warm, **TUNE_KW)
    assert warm.count("tune.sim_run") == 0
    assert warm.count("tune.cache_hit") == warm.count("tune.trial") > 0
    assert second.to_json() == first.to_json()
    hits, sims = second.cache_stats()
    assert sims == 0 and hits == warm.count("tune.trial")


def test_grid_reuses_halvings_cached_trials(tmp_path):
    """Overlapping searches share points: grid after halving only simulates
    the candidates halving pruned before their full repetitions."""
    cache_dir = str(tmp_path / "cache")
    autotune(cache_dir=cache_dir, **TUNE_KW)
    tracer = Tracer()
    grid_kw = dict(TUNE_KW, search="grid")
    grid_kw.pop("screen_reps")
    result = autotune(cache_dir=cache_dir, tracer=tracer, **grid_kw)
    total = tracer.count("tune.trial")
    assert tracer.count("tune.sim_run") < total  # promoted candidates were free
    assert tracer.count("tune.cache_hit") > 0
    assert len(result.ranked) == result.total_candidates
