"""Persistent result cache: keys, round-trips, corruption tolerance."""

import json

import pytest

from repro.tune import Candidate, MemoryCache, ResultCache, stable_key
from repro.tune.evaluate import TrialSpec, trial_key, trial_seed


class TestStableKey:
    def test_stable_across_item_order(self):
        assert stable_key({"a": 1, "b": [1, 2]}) == stable_key({"b": [1, 2], "a": 1})

    def test_distinct_payloads_distinct_keys(self):
        assert stable_key({"seed": 1}) != stable_key({"seed": 2})

    def test_trial_seed_is_deterministic_and_descriptor_sensitive(self, scenario):
        a = Candidate("no_overlap")
        b = Candidate("write_overlap")
        assert trial_seed(scenario, a, 0) == trial_seed(scenario, a, 0)
        assert trial_seed(scenario, a, 0) != trial_seed(scenario, a, 1)
        assert trial_seed(scenario, a, 0) != trial_seed(scenario, b, 0)
        assert trial_seed(scenario, a, 0) != trial_seed(scenario, a, 0, base_seed=1)
        assert 0 <= trial_seed(scenario, a, 0) < 2**31

    def test_trial_key_covers_scenario_candidate_seed(self, scenario):
        t = TrialSpec.build(scenario, Candidate("no_overlap"), rep=0)
        same = TrialSpec.build(scenario, Candidate("no_overlap"), rep=0)
        other = TrialSpec.build(scenario, Candidate("no_overlap"), rep=1)
        assert trial_key(t) == trial_key(same)
        assert trial_key(t) != trial_key(other)


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        assert cache.get("deadbeef") is None
        cache.put("deadbeef", {"elapsed": 1.5})
        assert cache.get("deadbeef") == {"elapsed": 1.5}
        assert len(cache) == 1

    def test_persists_across_instances(self, tmp_path):
        ResultCache(tmp_path).put("k", {"x": 1})
        assert ResultCache(tmp_path).get("k") == {"x": 1}

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k", {"x": 1})
        (tmp_path / "k.json").write_text("{not json")
        assert cache.get("k") is None
        (tmp_path / "k2.json").write_text(json.dumps(["no", "value", "field"]))
        assert cache.get("k2") is None

    def test_version_participates_in_key(self, monkeypatch):
        before = stable_key({"x": 1})
        import repro.tune.cache as cache_mod

        monkeypatch.setattr(cache_mod, "__version__", "999.0.0")
        assert stable_key({"x": 1}) != before

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("a", {}), cache.put("b", {})
        cache.clear()
        assert len(cache) == 0


class TestMemoryCache:
    def test_same_interface(self):
        cache = MemoryCache()
        assert cache.get("k") is None
        cache.put("k", {"v": 2})
        assert cache.get("k") == {"v": 2}
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0


def test_evaluator_rejects_bad_worker_count():
    from repro.tune import Evaluator

    with pytest.raises(ValueError):
        Evaluator(n_workers=0)
