"""Hypothesis properties of the staging tier.

Three invariants no drain policy may bend, over randomized workload
shapes, algorithms and seeds:

* **Conservation** — at job end every absorbed byte has drained and the
  drained total equals the bytes the file was asked to hold;
* **Bounded occupancy** — the buffer never holds more than its capacity;
* **Transparency** — a staged run writes byte-identical file contents to
  the same-seed direct run (staging moves bytes in time, never in space).
"""

from hypothesis import given, settings, strategies as st

from repro.collio import CollectiveConfig, run_collective_write
from repro.collio.api import RunSpec
from repro.collio.view import FileView
from repro.staging import DRAIN_POLICIES, StagingSpec

from tests.collio.test_algorithms import ALL_ALGORITHMS, small_cluster, small_fs


def interleaved_views(nprocs: int, block: int, count: int) -> dict[int, FileView]:
    import numpy as np

    return {
        r: FileView(
            np.array([(i * nprocs + r) * block for i in range(count)], dtype=np.int64),
            np.full(count, block, dtype=np.int64),
        )
        for r in range(nprocs)
    }


def staged_run(nprocs, block, count, algorithm, policy, seed, capacity=1 << 20):
    return run_collective_write(RunSpec(
        cluster=small_cluster(), fs=small_fs(), nprocs=nprocs,
        views=interleaved_views(nprocs, block, count), algorithm=algorithm,
        config=CollectiveConfig(cb_buffer_size=8192), seed=seed,
        staging=StagingSpec(policy=policy, capacity=capacity),
        verify=True,
    ))


@settings(deadline=None, max_examples=25)
@given(
    nprocs=st.integers(2, 8),
    block=st.integers(64, 4096),
    count=st.integers(1, 5),
    algorithm=st.sampled_from(ALL_ALGORITHMS),
    policy=st.sampled_from(DRAIN_POLICIES),
    seed=st.integers(0, 2**16),
)
def test_drained_equals_absorbed_equals_file_bytes(
    nprocs, block, count, algorithm, policy, seed
):
    result = staged_run(nprocs, block, count, algorithm, policy, seed)
    assert result.verified is True
    counters = result.metrics["counters"]
    total = nprocs * block * count
    assert counters["staging.absorbed_bytes"] == total
    assert counters["staging.drained_bytes"] == total
    assert result.metrics["gauges"]["staging.undrained_bytes"] == 0


@settings(deadline=None, max_examples=25)
@given(
    nprocs=st.integers(2, 8),
    block=st.integers(64, 2048),
    count=st.integers(1, 4),
    policy=st.sampled_from(DRAIN_POLICIES),
    capacity=st.integers(12 * 1024, 1 << 20),
    seed=st.integers(0, 2**16),
)
def test_occupancy_never_exceeds_capacity(
    nprocs, block, count, policy, capacity, seed
):
    # Capacity down to 1.5 cycles: the small end exercises back-pressure.
    result = staged_run(
        nprocs, block, count, "write_overlap", policy, seed, capacity=capacity
    )
    gauges = result.metrics["gauges"]
    assert 0 < gauges["staging.occupancy_peak"] <= capacity


@settings(deadline=None, max_examples=12)
@given(
    nprocs=st.integers(2, 8),
    block=st.integers(64, 4096),
    count=st.integers(1, 5),
    algorithm=st.sampled_from(ALL_ALGORITHMS),
    policy=st.sampled_from(DRAIN_POLICIES),
    seed=st.integers(0, 2**16),
)
def test_staged_file_is_byte_identical_to_direct(
    nprocs, block, count, algorithm, policy, seed
):
    views = interleaved_views(nprocs, block, count)
    base = dict(
        cluster=small_cluster(), fs=small_fs(), nprocs=nprocs, views=views,
        algorithm=algorithm, config=CollectiveConfig(cb_buffer_size=8192),
        seed=seed, verify=True,
    )
    direct = run_collective_write(RunSpec(**base))
    staged = run_collective_write(RunSpec(
        **base, staging=StagingSpec(policy=policy, capacity=1 << 20)
    ))
    assert direct.verified is True and staged.verified is True
    assert direct.file_sha256 == staged.file_sha256
