"""Staging under crash faults: the buffer is volatile, the journal is not.

A journal entry for a staged cycle commits only once the drain has made
the bytes durable on the PFS — so a crash that destroys buffered (not
yet drained) data leaves those cycles uncommitted and the recovery
replay re-drives them.  These tests assert the end-to-end consequence:
crashy staged runs still complete with byte-perfect files, and the
metrics expose what the crash destroyed.
"""

import pytest

from repro.collio.api import RunSpec, run_collective_write
from repro.collio.view import FileView
from repro.faults import FaultSpec
from repro.staging import DRAIN_POLICIES, StagingSpec
from repro.units import MS

from tests.faults.conftest import small_cluster, small_fs

NPROCS = 4
PER_RANK = 64 * 1024


def crashy_spec(policy, **kw):
    views = {r: FileView.contiguous(r * PER_RANK, PER_RANK) for r in range(NPROCS)}
    defaults = dict(
        cluster=small_cluster(), fs=small_fs(), nprocs=NPROCS, views=views,
        algorithm="write_overlap", seed=7, verify=True,
        faults=FaultSpec(rank_crash_rate=0.9, ost_outage_rate=0.5,
                         crash_window=2 * MS),
        staging=StagingSpec.for_scale(policy=policy),
    )
    defaults.update(kw)
    return RunSpec(**defaults)


class TestCrashRecoveryWithStaging:
    @pytest.mark.parametrize("policy", DRAIN_POLICIES)
    def test_staged_run_survives_crashes_with_correct_bytes(self, policy):
        run = run_collective_write(crashy_spec(policy))
        assert run.verified is True
        assert run.recovery is not None and run.recovery.completed
        assert run.recovery.attempts >= 2

    def test_volatile_buffer_loss_is_accounted(self):
        run = run_collective_write(crashy_spec("end_of_job"))
        counters = run.metrics["counters"]
        # Counters accumulate over all attempts; the final attempt's
        # drain completes, so drains never exceed absorbs.
        assert counters["staging.absorbed_bytes"] >= \
            counters["staging.drained_bytes"] >= NPROCS * PER_RANK
        assert counters["staging.lost_bytes"] >= 0

    def test_staged_file_matches_direct_crashy_file(self):
        staged = run_collective_write(crashy_spec("immediate"))
        direct = run_collective_write(crashy_spec("immediate", staging=None))
        assert staged.verified is True and direct.verified is True
        assert staged.file_sha256 == direct.file_sha256

    def test_journal_commits_deferred_to_drain(self):
        # Fault-free staged run with a journal: every committed cycle
        # was committed by its drain completion, and all cycles commit.
        from repro.mpi.world import World
        from repro.recovery.journal import CycleJournal
        from repro.collio.api import collective_write, build_plan
        from repro.collio.config import CollectiveConfig
        from repro.collio.overlap import make_algorithm

        views = {r: FileView.contiguous(r * PER_RANK, PER_RANK)
                 for r in range(NPROCS)}
        journal = CycleJournal()
        world = World(small_cluster(), NPROCS, fs_spec=small_fs(),
                      journal=journal)
        config = CollectiveConfig(
            cb_buffer_size=8192,
            staging=StagingSpec(policy="immediate", capacity=1 << 20),
        )
        algo = make_algorithm("write_overlap")
        plan = build_plan(
            world.cluster, NPROCS, views, config,
            algo.cycle_bytes(config.cb_buffer_size),
            stripe_size=small_fs().stripe_size,
        )

        def program(mpi):
            fh = yield from mpi.file_open("/scratch/staged")
            return (yield from collective_write(
                mpi, fh, views[mpi.rank], None, plan,
                algorithm="write_overlap", config=config,
            ))

        world.run(program)
        tier = world.staging
        assert tier is not None
        assert journal.commits > 0
        assert tier.undrained_bytes() == 0
