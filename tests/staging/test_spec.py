"""Validation and scaling behavior of :class:`StagingSpec`."""

import pytest

from repro.config import DEFAULT_SCALE, scaled
from repro.errors import ConfigurationError
from repro.staging import DRAIN_POLICIES, StagingSpec, nvme_staging
from repro.staging.spec import CAPACITY_UNSCALED
from repro.units import US


class TestValidation:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            StagingSpec(capacity=0)

    def test_rejects_bad_bandwidths_and_latencies(self):
        with pytest.raises(ConfigurationError):
            StagingSpec(absorb_bandwidth=0)
        with pytest.raises(ConfigurationError):
            StagingSpec(drain_bandwidth=-1)
        with pytest.raises(ConfigurationError):
            StagingSpec(absorb_latency=-1e-9)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            StagingSpec(policy="sometimes")

    def test_rejects_inverted_watermarks(self):
        with pytest.raises(ConfigurationError):
            StagingSpec(high_watermark=0.2, low_watermark=0.5)
        with pytest.raises(ConfigurationError):
            StagingSpec(high_watermark=1.5)
        with pytest.raises(ConfigurationError):
            StagingSpec(low_watermark=0.0)

    def test_rejects_negative_retries(self):
        with pytest.raises(ConfigurationError):
            StagingSpec(max_drain_retries=-1)

    def test_all_policies_construct(self):
        for policy in DRAIN_POLICIES:
            assert StagingSpec(policy=policy).policy == policy


class TestScaling:
    def test_for_scale_compresses_capacity_and_latencies(self):
        spec = StagingSpec.for_scale(128)
        assert spec.capacity == scaled(CAPACITY_UNSCALED, 128)
        assert spec.absorb_latency == pytest.approx(20 * US / 128)
        assert spec.drain_latency == pytest.approx(100 * US / 128)
        # Bandwidths stay physical.
        assert spec.absorb_bandwidth == StagingSpec().absorb_bandwidth

    def test_for_scale_overrides_win(self):
        spec = StagingSpec.for_scale(64, capacity=12345, policy="end_of_job")
        assert spec.capacity == 12345
        assert spec.policy == "end_of_job"

    def test_default_spec_matches_default_scale(self):
        assert StagingSpec() == StagingSpec.for_scale(DEFAULT_SCALE)

    def test_nvme_preset_is_a_scaled_spec(self):
        assert nvme_staging(64) == StagingSpec.for_scale(64)

    def test_with_and_cache_key(self):
        spec = StagingSpec()
        assert spec.with_(policy="watermark").policy == "watermark"
        key = spec.cache_key()
        assert key["policy"] == "immediate"
        assert all(
            isinstance(v, (str, int, float, bool)) for v in key.values()
        )
        assert key != spec.with_(drain_bandwidth=1.0).cache_key()
