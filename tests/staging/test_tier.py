"""Behavioral tests of the burst-buffer tier inside collective writes.

Covers the three drain policies' scheduling shapes (overlap vs deferral),
back-pressure stalls, conservation of bytes, instrumentation, and the
acceptance regression: an overlapped drain strictly beats ``end_of_job``
on a drain-bound tier for every overlap algorithm.
"""

import pytest

from repro.collio import CollectiveConfig, run_collective_write
from repro.collio.api import RunSpec
from repro.collio.view import FileView
from repro.errors import ConfigurationError
from repro.staging import DRAIN_POLICIES, StagingSpec
from repro.units import GB, MB

from tests.collio.test_algorithms import ALL_ALGORITHMS, small_cluster, small_fs

PER_RANK = 64 * 1024
NPROCS = 8


def views_for(nprocs=NPROCS, per_rank=PER_RANK):
    return {r: FileView.contiguous(r * per_rank, per_rank) for r in range(nprocs)}


def staged_spec(policy="immediate", capacity=32 * 1024 * 1024, **kw):
    return StagingSpec(policy=policy, capacity=capacity, **kw)


def run(policy=None, algorithm="write_overlap", cb=8192, staging=None, **kw):
    if staging is None and policy is not None:
        staging = staged_spec(policy)
    defaults = dict(
        cluster=small_cluster(), fs=small_fs(), nprocs=NPROCS,
        views=views_for(), algorithm=algorithm,
        config=CollectiveConfig(cb_buffer_size=cb), staging=staging,
        verify=True, trace=True,
    )
    defaults.update(kw)
    return run_collective_write(RunSpec(**defaults))


class TestConservation:
    @pytest.mark.parametrize("policy", DRAIN_POLICIES)
    def test_absorbed_equals_drained_equals_file_bytes(self, policy):
        result = run(policy)
        assert result.verified is True
        counters = result.metrics["counters"]
        total = NPROCS * PER_RANK
        assert counters["staging.absorbed_bytes"] == total
        assert counters["staging.drained_bytes"] == total
        assert counters["staging.extents_absorbed"] == \
            counters["staging.extents_drained"]
        assert result.metrics["gauges"]["staging.undrained_bytes"] == 0

    @pytest.mark.parametrize("policy", DRAIN_POLICIES)
    def test_occupancy_never_exceeds_capacity(self, policy):
        result = run(policy)
        gauges = result.metrics["gauges"]
        assert 0 < gauges["staging.occupancy_peak"] <= gauges["staging.capacity"]

    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_every_algorithm_verifies_with_staging(self, algorithm):
        result = run("immediate", algorithm=algorithm)
        assert result.verified is True
        assert result.metrics["counters"]["staging.drained_bytes"] == \
            NPROCS * PER_RANK


class TestPolicyScheduling:
    def test_end_of_job_defers_drains_past_absorbs(self):
        # Ample capacity: every drain span starts after the last absorb
        # has finished (the flush is the only thing that drains).
        result = run("end_of_job")
        absorbs = [s for s in result.spans if s.name == "absorb"]
        drains = [s for s in result.spans if s.name == "drain"]
        assert absorbs and drains
        assert min(d.t0 for d in drains) >= max(a.t1 for a in absorbs) - 1e-12

    def test_immediate_overlaps_drains_with_absorbs(self):
        result = run("immediate")
        absorbs = [s for s in result.spans if s.name == "absorb"]
        drains = [s for s in result.spans if s.name == "drain"]
        assert min(d.t0 for d in drains) < max(a.t1 for a in absorbs)

    def test_watermark_starts_mid_job_with_small_buffer(self):
        # Capacity ~2.5 cycles: the high watermark is crossed while
        # absorbs are still arriving, so drains overlap absorbs ...
        result = run(staging=staged_spec("watermark", capacity=20 * 1024))
        assert result.verified is True
        absorbs = [s for s in result.spans if s.name == "absorb"]
        drains = [s for s in result.spans if s.name == "drain"]
        assert min(d.t0 for d in drains) < max(a.t1 for a in absorbs)

    def test_watermark_defers_with_ample_buffer(self):
        # ... but with everything below the watermark, nothing drains
        # until the flush, exactly like end_of_job.
        wm = run("watermark")
        eoj = run("end_of_job")
        assert wm.elapsed == pytest.approx(eoj.elapsed)

    def test_flush_span_on_rank_track(self):
        result = run("end_of_job")
        flushes = [s for s in result.spans
                   if s.category == "staging" and s.name == "flush"]
        assert flushes and all(s.rank >= 0 for s in flushes)


class TestBackPressure:
    def test_full_buffer_stalls_and_force_drains(self):
        # Capacity holds barely more than one cycle: end_of_job cannot
        # actually defer, back-pressure forces drains mid-job.
        result = run(staging=staged_spec("end_of_job", capacity=12 * 1024))
        assert result.verified is True
        counters = result.metrics["counters"]
        assert counters["staging.stalls"] > 0
        assert counters["staging.forced_drains"] > 0
        gauges = result.metrics["gauges"]
        assert gauges["staging.occupancy_peak"] <= gauges["staging.capacity"]

    def test_extent_larger_than_capacity_is_rejected(self):
        with pytest.raises(ConfigurationError):
            run(staging=staged_spec("immediate", capacity=4096), cb=64 * 1024)


class TestOverlapWins:
    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_immediate_beats_end_of_job_on_drain_bound_tier(self, algorithm):
        # The paper's thesis applied to the staging tier: overlapping the
        # (slow) drain with subsequent cycles strictly beats deferring it.
        times = {}
        for policy in ("immediate", "end_of_job"):
            staging = staged_spec(
                policy, absorb_bandwidth=8 * GB, drain_bandwidth=50 * MB)
            result = run(algorithm=algorithm, staging=staging,
                         verify=False, trace=False, carry_data=False)
            times[policy] = result.elapsed
        assert times["immediate"] < times["end_of_job"]


class TestWiring:
    def test_disabled_spec_behaves_like_no_staging(self):
        off = run(staging=None)
        disabled = run(staging=StagingSpec(enabled=False))
        assert disabled.elapsed == off.elapsed
        assert "staging.absorbed_bytes" not in disabled.metrics["counters"]

    def test_staging_off_and_on_produce_identical_file_bytes(self):
        shas = {
            label: run(staging=staging).file_sha256
            for label, staging in [
                ("off", None),
                ("immediate", staged_spec("immediate")),
                ("end_of_job", staged_spec("end_of_job")),
            ]
        }
        assert len(set(shas.values())) == 1

    def test_staging_spans_live_on_staging_track(self):
        from repro.obs.export import STAGING_PID, chrome_trace, validate_chrome_trace

        result = run("immediate")
        trace = chrome_trace(result.spans)
        validate_chrome_trace(trace)
        staging_events = [
            e for e in trace["traceEvents"]
            if e.get("pid") == STAGING_PID and e.get("ph") in ("b", "e")
        ]
        assert staging_events
        assert {e["name"] for e in staging_events} == {"absorb", "drain"}

    def test_runspec_rejects_wrong_staging_type(self):
        with pytest.raises(ConfigurationError):
            run(staging="immediate")

    def test_conflicting_tier_specs_rejected(self):
        from repro.mpi.world import World
        from repro.staging.tier import StagingTier

        world = World(small_cluster(), 4, fs_spec=small_fs())
        StagingTier.ensure(world, staged_spec("immediate"))
        with pytest.raises(ConfigurationError):
            StagingTier.ensure(world, staged_spec("end_of_job"))
