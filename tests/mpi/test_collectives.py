"""Tests for the analytic collectives."""

import pytest

from repro.errors import MPIError
from repro.mpi.collops import CollectiveModel

from tests.mpi.conftest import make_world


class TestBarrier:
    def test_no_rank_exits_before_last_enters(self):
        def program(mpi):
            yield from mpi.compute(0.1 * mpi.rank)  # staggered arrival
            yield from mpi.barrier()
            return mpi.now

        res = make_world(nprocs=4).run(program)
        assert min(res) >= 0.3  # slowest entered at 0.3
        assert max(res) - min(res) < 1e-12  # all leave together

    def test_barrier_cost_grows_with_ranks(self):
        def program(mpi):
            yield from mpi.barrier()
            return mpi.now

        t4 = make_world(nprocs=4).run(program)[0]
        t16 = make_world(nprocs=16).run(program)[0]
        assert t16 > t4

    def test_repeated_barriers(self):
        def program(mpi):
            for _ in range(5):
                yield from mpi.barrier()
            return mpi.now

        res = make_world(nprocs=3).run(program)
        assert len(set(res)) == 1


class TestDataCollectives:
    def test_bcast(self):
        def program(mpi):
            obj = {"x": 42} if mpi.rank == 2 else None
            got = yield from mpi.bcast(obj, root=2, nbytes=64)
            return got

        res = make_world(nprocs=4).run(program)
        assert all(r == {"x": 42} for r in res)

    def test_allgather_ordered_by_rank(self):
        def program(mpi):
            got = yield from mpi.allgather(f"r{mpi.rank}", nbytes=16)
            return got

        res = make_world(nprocs=4).run(program)
        assert all(r == ["r0", "r1", "r2", "r3"] for r in res)

    def test_allreduce_sum(self):
        def program(mpi):
            total = yield from mpi.allreduce_sum(mpi.rank + 1)
            return total

        assert make_world(nprocs=4).run(program) == [10, 10, 10, 10]

    def test_allreduce_max(self):
        def program(mpi):
            result = yield from mpi.allreduce_max(mpi.rank * 3)
            return result

        assert make_world(nprocs=4).run(program) == [9, 9, 9, 9]

    def test_larger_payload_costs_more(self):
        def program(mpi, nbytes):
            yield from mpi.bcast("x", root=0, nbytes=nbytes)
            return mpi.now

        small = make_world(nprocs=4).run(program, 10)[0]
        large = make_world(nprocs=4).run(program, 10_000_000)[0]
        assert large > small


class TestOrderingErrors:
    def test_kind_mismatch_detected(self):
        def program(mpi):
            if mpi.rank == 0:
                yield from mpi.barrier()
            else:
                yield from mpi.allreduce_sum(1)

        with pytest.raises(MPIError, match="mismatch"):
            make_world(nprocs=2).run(program)


class TestModel:
    def test_single_rank_collectives_free(self):
        m = CollectiveModel(latency=1e-6, bandwidth=1e9, call_overhead=1e-7)
        assert m.barrier(1) == 0.0
        assert m.bcast(1, 100) == 0.0

    def test_log_scaling(self):
        m = CollectiveModel(latency=1e-6, bandwidth=1e9, call_overhead=0)
        assert m.barrier(4) == pytest.approx(2 * m.barrier(2))
        assert m.barrier(17) == pytest.approx(m.barrier(32))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            CollectiveModel(latency=-1, bandwidth=1e9, call_overhead=0)
        with pytest.raises(ValueError):
            CollectiveModel(latency=1e-6, bandwidth=0, call_overhead=0)

    def test_allgatherv_excludes_own_bytes(self):
        m = CollectiveModel(latency=0, bandwidth=100.0, call_overhead=0)
        assert m.allgatherv(4, total_bytes=400, min_own_bytes=100) == pytest.approx(3.0)
