"""Tests for the high-level MPI-IO collectives: set_view / write_all / read_all."""

import numpy as np
import pytest

from repro.collio.view import FileView
from repro.mpi.datatypes import contiguous, resized, subarray

from tests.mpi.conftest import make_world


def run_world(program, nprocs=4):
    world = make_world(nprocs=nprocs, fs=True)
    return world, world.run(program)


class TestSetView:
    def test_requires_view_before_collective(self):
        def program(mpi):
            fh = yield from mpi.file_open("/f")
            yield from fh.write_all(np.zeros(4, np.uint8))

        with pytest.raises(ValueError, match="set_view"):
            run_world(program)

    def test_accepts_datatype_or_fileview(self):
        def program(mpi):
            fh = yield from mpi.file_open("/f")
            fh.set_view(contiguous(100), disp=mpi.rank * 100)
            fh.set_view(view=FileView.contiguous(mpi.rank * 100, 100))
            yield from mpi.barrier()

        run_world(program)

    def test_rejects_neither(self):
        def program(mpi):
            fh = yield from mpi.file_open("/f")
            fh.set_view()
            yield from mpi.barrier()

        with pytest.raises(ValueError):
            run_world(program)


class TestWriteAllReadAll:
    def test_contiguous_roundtrip(self):
        def program(mpi):
            fh = yield from mpi.file_open("/rt")
            fh.set_view(contiguous(1000), disp=mpi.rank * 1000)
            data = np.full(1000, mpi.rank + 1, dtype=np.uint8)
            yield from fh.write_all(data)
            out = np.zeros(1000, dtype=np.uint8)
            yield from fh.read_all(out)
            assert np.array_equal(out, data)

        world, _ = run_world(program)
        contents = world.pfs.open("/rt").contents()
        for r in range(4):
            assert (contents[1000 * r : 1000 * (r + 1)] == r + 1).all()

    def test_strided_view_with_count(self):
        """A resized datatype replicated `count` times interleaves ranks."""

        def program(mpi):
            fh = yield from mpi.file_open("/strided")
            elem = resized(contiguous(64), extent=4 * 64)
            fh.set_view(elem, disp=mpi.rank * 64, count=10)
            data = np.full(640, mpi.rank + 1, dtype=np.uint8)
            yield from fh.write_all(data, algorithm="write_comm2")
            out = np.zeros(640, dtype=np.uint8)
            yield from fh.read_all(out, algorithm="no_overlap")
            assert np.array_equal(out, data)

        world, _ = run_world(program)
        contents = world.pfs.open("/strided").contents()
        # Byte blocks of 64 cycle through ranks 1,2,3,4.
        for block in range(40):
            expected = (block % 4) + 1
            assert (contents[block * 64 : (block + 1) * 64] == expected).all()

    def test_2d_subarray_views(self):
        def program(mpi):
            fh = yield from mpi.file_open("/grid")
            ty, tx = divmod(mpi.rank, 2)
            dtype = subarray([8, 8], [4, 4], [ty * 4, tx * 4], elem_size=2)
            fh.set_view(dtype)
            data = np.full(32, mpi.rank + 10, dtype=np.uint8)
            yield from fh.write_all(data)
            out = np.zeros(32, dtype=np.uint8)
            yield from fh.read_all(out)
            assert np.array_equal(out, data)

        world, _ = run_world(program)
        grid = world.pfs.open("/grid").contents().reshape(8, 16)
        assert (grid[0, 0] == 10) and (grid[0, 8] == 11)
        assert (grid[4, 0] == 12) and (grid[7, 15] == 13)

    def test_plan_cache_shared_across_ranks(self):
        def program(mpi):
            fh = yield from mpi.file_open("/c")
            fh.set_view(contiguous(500), disp=mpi.rank * 500)
            yield from fh.write_all(np.zeros(500, np.uint8))
            return None

        world, _ = run_world(program)
        assert len(world.plan_cache) == 1  # one plan for all four ranks

    def test_repeated_collectives_get_fresh_plans(self):
        def program(mpi):
            fh = yield from mpi.file_open("/multi")
            fh.set_view(contiguous(500), disp=mpi.rank * 500)
            yield from fh.write_all(np.full(500, 1, np.uint8))
            fh.set_view(contiguous(500), disp=(3 - mpi.rank) * 500)
            yield from fh.write_all(np.full(500, mpi.rank + 1, np.uint8))

        world, _ = run_world(program)
        contents = world.pfs.open("/multi").contents()
        # Second write reversed the rank order.
        for r in range(4):
            assert (contents[(3 - r) * 500 : (4 - r) * 500] == r + 1).all()
        assert len(world.plan_cache) == 2

    def test_size_only_write_all(self):
        """write_all(None) runs the timing without payload bytes."""

        def program(mpi):
            fh = yield from mpi.file_open("/timing")
            fh.set_view(contiguous(10_000), disp=mpi.rank * 10_000)
            stats = yield from fh.write_all(None)
            return stats.time_in("total")

        _, res = run_world(program)
        assert all(t > 0 for t in res)
