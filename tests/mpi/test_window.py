"""Tests for one-sided communication (RMA windows)."""

import numpy as np
import pytest

from repro.errors import RMAError

from tests.mpi.conftest import make_world


class TestPutFence:
    def test_put_lands_after_fence(self):
        def program(mpi):
            win = yield from mpi.win_allocate(1024 if mpi.rank == 0 else 0)
            yield from win.fence()
            if mpi.rank != 0:
                data = np.full(16, mpi.rank, dtype=np.uint8)
                yield from win.put(0, data, 16 * mpi.rank)
            yield from win.fence()
            if mpi.rank == 0:
                return win.local_buffer[:64].copy()

        res = make_world(nprocs=4).run(program)
        buf = res[0]
        for r in (1, 2, 3):
            assert (buf[16 * r : 16 * (r + 1)] == r).all()
        assert (buf[:16] == 0).all()

    def test_put_needs_no_target_progress(self):
        """Data lands while the target computes (no MPI calls)."""

        def program(mpi):
            win = yield from mpi.win_allocate(1024 if mpi.rank == 0 else 0)
            yield from win.fence()
            if mpi.rank == 1:
                evt = yield from win.put(0, np.full(100, 9, np.uint8), 0)
                yield evt  # local completion of the transfer
                done = mpi.now
                yield from win.fence()
                return done
            if mpi.rank == 0:
                yield from mpi.compute(0.5)  # no progress at the target
            yield from win.fence()
            return None

        res = make_world(nprocs=2).run(program)
        assert res[1] < 0.01  # put completed during the target's compute

    def test_put_bounds_checked(self):
        def program(mpi):
            win = yield from mpi.win_allocate(64 if mpi.rank == 0 else 0)
            yield from win.fence()
            if mpi.rank == 1:
                yield from win.put(0, np.zeros(65, np.uint8), 0)
            yield from win.fence()

        with pytest.raises(RMAError):
            make_world(nprocs=2).run(program)

    def test_zero_window_buffer_access_raises(self):
        def program(mpi):
            win = yield from mpi.win_allocate(0)
            yield from win.fence()
            _ = win.local_buffer
            if False:
                yield

        with pytest.raises(RMAError):
            make_world(nprocs=1).run(program)

    def test_fence_synchronizes_like_barrier(self):
        def program(mpi):
            win = yield from mpi.win_allocate(16)
            yield from mpi.compute(0.1 * mpi.rank)
            yield from win.fence()
            return mpi.now

        res = make_world(nprocs=3).run(program)
        assert min(res) >= 0.2


class TestLockUnlock:
    def test_passive_put_visible_after_barrier(self):
        def program(mpi):
            win = yield from mpi.win_allocate(256 if mpi.rank == 0 else 0)
            yield from mpi.barrier()
            if mpi.rank != 0:
                yield from win.lock(0)
                yield from win.put(0, np.full(8, mpi.rank, np.uint8), 8 * mpi.rank)
                yield from win.unlock(0)
            yield from mpi.barrier()
            if mpi.rank == 0:
                return win.local_buffer[:32].copy()

        res = make_world(nprocs=4).run(program)
        buf = res[0]
        for r in (1, 2, 3):
            assert (buf[8 * r : 8 * (r + 1)] == r).all()

    def test_shared_locks_concurrent(self):
        """Shared locks don't serialize concurrent origins."""

        def program(mpi):
            win = yield from mpi.win_allocate(1024 if mpi.rank == 0 else 0)
            yield from mpi.barrier()
            if mpi.rank != 0:
                yield from win.lock(0, exclusive=False)
                yield from mpi.compute(0.1)  # hold the lock a while
                yield from win.unlock(0, exclusive=False)
            yield from mpi.barrier()
            return mpi.now

        res = make_world(nprocs=4).run(program)
        assert max(res) < 0.2  # concurrent holds: ~0.1 total, not 0.3

    def test_exclusive_locks_serialize(self):
        def program(mpi):
            win = yield from mpi.win_allocate(1024 if mpi.rank == 0 else 0)
            yield from mpi.barrier()
            if mpi.rank != 0:
                yield from win.lock(0, exclusive=True)
                yield from mpi.compute(0.1)
                yield from win.unlock(0, exclusive=True)
            yield from mpi.barrier()
            return mpi.now

        res = make_world(nprocs=4).run(program)
        assert max(res) > 0.3  # three holders serialized

    def test_unlock_flushes_puts(self):
        """After unlock, the data is in the target window (origin view)."""

        def program(mpi):
            win = yield from mpi.win_allocate(64 if mpi.rank == 0 else 0)
            yield from mpi.barrier()
            if mpi.rank == 1:
                yield from win.lock(0)
                yield from win.put(0, np.full(32, 5, np.uint8), 0)
                yield from win.unlock(0)
                # Origin-side completion guarantee: bytes are at the target.
                assert (win.window.buffer(0)[:32] == 5).all()
            yield from mpi.barrier()

        make_world(nprocs=2).run(program)

    def test_bad_release_raises(self):
        def program(mpi):
            win = yield from mpi.win_allocate(64)
            yield from win.unlock(0)

        with pytest.raises(RMAError):
            make_world(nprocs=1).run(program)


class TestAccounting:
    def test_puts_counted(self):
        def program(mpi):
            win = yield from mpi.win_allocate(64 if mpi.rank == 0 else 0)
            yield from win.fence()
            if mpi.rank == 1:
                yield from win.put(0, np.zeros(8, np.uint8), 0)
                yield from win.put(0, np.zeros(8, np.uint8), 8)
            yield from win.fence()
            return win.window.puts_issued

        res = make_world(nprocs=2).run(program)
        assert res[0] == 2
