"""Shared fixtures for the MPI-layer tests."""

import pytest

from repro.fs import FsSpec
from repro.hardware import ClusterSpec
from repro.mpi import World
from repro.units import MB


def make_cluster_spec(**kw):
    base = dict(
        name="test",
        num_nodes=4,
        cores_per_node=4,
        network_bandwidth=1000 * MB,
        network_latency=1e-6,
        eager_threshold=1024,
    )
    base.update(kw)
    return ClusterSpec(**base)


def make_fs_spec(**kw):
    base = dict(
        name="testfs",
        num_targets=4,
        target_bandwidth=200 * MB,
        target_latency=1e-4,
        stripe_size=4096,
    )
    base.update(kw)
    return FsSpec(**base)


def make_world(nprocs=4, fs=False, **kw):
    fs_kw = kw.pop("fs_kw", {})
    return World(
        make_cluster_spec(**kw),
        nprocs=nprocs,
        fs_spec=make_fs_spec(**fs_kw) if fs else None,
    )


@pytest.fixture
def world():
    return make_world()
