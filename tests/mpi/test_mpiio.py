"""Tests for MPI-IO handles: blocking vs asynchronous writes and progress."""

import numpy as np
import pytest

from tests.mpi.conftest import make_world


class TestBlockingWrite:
    def test_data_lands_in_file(self):
        def program(mpi):
            fh = yield from mpi.file_open("/data")
            data = np.full(1000, mpi.rank + 1, dtype=np.uint8)
            yield from fh.write_at(1000 * mpi.rank, data)
            yield from mpi.barrier()
            return None

        world = make_world(nprocs=4, fs=True)
        world.run(program)
        contents = world.pfs.open("/data").contents()
        for r in range(4):
            assert (contents[1000 * r : 1000 * (r + 1)] == r + 1).all()

    def test_blocking_write_blocks_mpi_progress(self):
        """A rendezvous message to a rank inside write_at stalls until it returns."""
        size = 500_000  # rendezvous

        def program(mpi):
            handle = yield from mpi.file_open("/x")
            if mpi.rank == 0:
                t0 = mpi.now
                yield from mpi.send(1, tag=1, size=size)
                return mpi.now - t0
            req = yield from mpi.irecv(0, tag=1, size=size)
            # long blocking write: no MPI progress for its duration
            yield from handle.write_at(0, np.zeros(50_000_000, dtype=np.uint8))
            yield from mpi.wait(req)
            return mpi.now

        world = make_world(nprocs=2, fs=True)
        res = world.run(program)
        write_time = 50_000_000 / world.pfs.spec.aggregate_bandwidth
        # Sender could not complete until the receiver's write finished.
        assert res[0] > 0.5 * write_time

    def test_file_open_is_collective(self):
        def program(mpi):
            yield from mpi.compute(0.1 * mpi.rank)
            fh = yield from mpi.file_open("/y")
            return mpi.now

        res = make_world(nprocs=3, fs=True).run(program)
        assert min(res) >= 0.2


class TestAsyncWrite:
    def test_iwrite_progresses_in_background(self):
        def program(mpi):
            fh = yield from mpi.file_open("/bg")
            req = yield from fh.iwrite_at(0, np.ones(10_000_000, dtype=np.uint8))
            posted = mpi.now
            yield from mpi.compute(10.0)  # plenty of time
            assert req.done
            yield from mpi.wait(req)
            return posted

        world = make_world(nprocs=1, fs=True)
        res = world.run(program)
        assert res[0] < 0.01  # posting is cheap
        assert world.pfs.open("/bg").size == 10_000_000

    def test_iwrite_then_wait_equals_data(self):
        def program(mpi):
            fh = yield from mpi.file_open("/d")
            data = np.arange(5000, dtype=np.uint16).view(np.uint8)
            req = yield from fh.iwrite_at(100, data)
            yield from mpi.wait(req)
            out = yield from fh.read_at(100, data.size)
            return out

        world = make_world(nprocs=1, fs=True)
        res = world.run(program)
        expected = np.arange(5000, dtype=np.uint16).view(np.uint8)
        assert np.array_equal(res[0], expected)

    def test_wait_on_iwrite_gives_mpi_progress(self):
        """Waiting on an iwrite request still serves rendezvous handshakes."""
        size = 500_000

        def program(mpi):
            fh = yield from mpi.file_open("/z")
            if mpi.rank == 0:
                yield from mpi.send(1, tag=1, size=size)
                return mpi.now
            req_recv = yield from mpi.irecv(0, tag=1, size=size)
            req_io = yield from fh.iwrite_at(0, np.zeros(50_000_000, dtype=np.uint8))
            yield from mpi.wait(req_io)  # progress active here
            yield from mpi.wait(req_recv)
            return mpi.now

        world = make_world(nprocs=2, fs=True)
        res = world.run(program)
        write_time = 50_000_000 / world.pfs.spec.aggregate_bandwidth
        # The handshake completed during the I/O wait: sender finished early.
        assert res[0] < 0.5 * write_time

    def test_accounting(self):
        def program(mpi):
            fh = yield from mpi.file_open("/acc")
            yield from fh.write_at(0, np.zeros(100, dtype=np.uint8))
            req = yield from fh.iwrite_at(100, np.zeros(200, dtype=np.uint8))
            yield from mpi.wait(req)
            return (fh.sync_writes, fh.async_writes, fh.bytes_written)

        res = make_world(nprocs=1, fs=True).run(program)
        assert res[0] == (1, 1, 300)


class TestWorld:
    def test_aio_engine_requires_fs(self):
        from repro.errors import ConfigurationError

        world = make_world(nprocs=1, fs=False)
        with pytest.raises(ConfigurationError):
            world.aio_engine(0)

    def test_nprocs_capacity_check(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            make_world(nprocs=100)  # 4 nodes x 4 cores = 16

    def test_run_returns_rank_ordered_results(self):
        def program(mpi):
            yield from mpi.compute(0.001 * (mpi.size - mpi.rank))
            return mpi.rank

        assert make_world(nprocs=4).run(program) == [0, 1, 2, 3]
