"""Tests for MPI derived datatypes and flattening."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import DatatypeError
from repro.mpi.datatypes import (
    Datatype,
    contiguous,
    hindexed,
    resized,
    struct_view,
    subarray,
    vector,
)


class TestContiguous:
    def test_basic(self):
        t = contiguous(100)
        assert t.size == 100 and t.extent == 100 and t.is_contiguous

    def test_zero(self):
        t = contiguous(0)
        assert t.size == 0 and t.num_segments == 0

    def test_negative_rejected(self):
        with pytest.raises(DatatypeError):
            contiguous(-1)

    def test_replicate(self):
        t = contiguous(10).replicate(3)
        assert t.num_segments == 1  # coalesced into one 30-byte run
        assert t.size == 30 and t.extent == 30


class TestVector:
    def test_basic(self):
        t = vector(count=3, blocklength=4, stride=10)
        assert t.segments.tolist() == [[0, 4], [10, 4], [20, 4]]
        assert t.size == 12 and t.extent == 24

    def test_dense_vector_coalesces(self):
        t = vector(count=5, blocklength=8, stride=8)
        assert t.num_segments == 1 and t.size == 40

    def test_validation(self):
        with pytest.raises(DatatypeError):
            vector(0, 4, 10)
        with pytest.raises(DatatypeError):
            vector(3, 0, 10)
        with pytest.raises(DatatypeError):
            vector(3, 10, 4)  # stride < blocklength

    def test_replicated_vector_tiles_by_extent(self):
        t = vector(count=2, blocklength=2, stride=4)  # extent 6
        r = t.replicate(2)
        # Copies at 0 and 6; the blocks at 4 and 6 touch and coalesce.
        assert r.segments.tolist() == [[0, 2], [4, 4], [10, 2]]


class TestHindexed:
    def test_unordered_input_sorted(self):
        t = hindexed([(20, 5), (0, 5)])
        assert t.segments.tolist() == [[0, 5], [20, 5]]

    def test_touching_blocks_coalesce(self):
        t = hindexed([(0, 5), (5, 5), (20, 2)])
        assert t.segments.tolist() == [[0, 10], [20, 2]]

    def test_overlapping_blocks_coalesce(self):
        t = hindexed([(0, 10), (5, 10)])
        assert t.segments.tolist() == [[0, 15]]

    def test_invalid(self):
        with pytest.raises(DatatypeError):
            hindexed([(0, 0)])
        with pytest.raises(DatatypeError):
            hindexed([(-1, 5)])


class TestSubarray:
    def test_2d_block(self):
        # 4x6 array, select 2x3 block at (1, 2), elements of 1 byte
        t = subarray(sizes=[4, 6], subsizes=[2, 3], starts=[1, 2])
        assert t.segments.tolist() == [[8, 3], [14, 3]]
        assert t.extent == 24

    def test_elem_size(self):
        t = subarray(sizes=[2, 4], subsizes=[2, 2], starts=[0, 0], elem_size=8)
        assert t.segments.tolist() == [[0, 16], [32, 16]]

    def test_full_selection_is_contiguous(self):
        t = subarray(sizes=[4, 4], subsizes=[4, 4], starts=[0, 0])
        assert t.num_segments == 1 and t.size == 16

    def test_1d(self):
        t = subarray(sizes=[10], subsizes=[3], starts=[4])
        assert t.segments.tolist() == [[4, 3]]

    def test_3d(self):
        t = subarray(sizes=[2, 2, 4], subsizes=[2, 1, 2], starts=[0, 1, 1])
        assert t.segments.tolist() == [[5, 2], [13, 2]]

    def test_matches_numpy_mask(self):
        """Subarray extents equal the bytes selected by numpy slicing."""
        sizes, subs, starts = [5, 7, 3], [2, 4, 2], [1, 2, 1]
        t = subarray(sizes, subs, starts)
        mask = np.zeros(sizes, dtype=bool)
        mask[1:3, 2:6, 1:3] = True
        flat = np.flatnonzero(mask.reshape(-1))
        covered = np.concatenate([np.arange(o, o + n) for o, n in t.segments])
        assert np.array_equal(np.sort(covered), flat)

    def test_validation(self):
        with pytest.raises(DatatypeError):
            subarray([4], [2, 2], [0])
        with pytest.raises(DatatypeError):
            subarray([4], [5], [0])
        with pytest.raises(DatatypeError):
            subarray([4], [2], [3])
        with pytest.raises(DatatypeError):
            subarray([], [], [])
        with pytest.raises(DatatypeError):
            subarray([4], [2], [0], elem_size=0)


class TestResizedAndStruct:
    def test_resized_changes_replication(self):
        t = resized(contiguous(4), extent=10)
        r = t.replicate(3)
        assert r.segments.tolist() == [[0, 4], [10, 4], [20, 4]]

    def test_struct(self):
        t = struct_view([(0, contiguous(4)), (16, vector(2, 2, 8))])
        assert t.segments.tolist() == [[0, 4], [16, 2], [24, 2]]

    def test_empty_struct(self):
        assert struct_view([]).size == 0

    def test_struct_negative_disp(self):
        with pytest.raises(DatatypeError):
            struct_view([(-4, contiguous(4))])


class TestFlatten:
    def test_offset_applied(self):
        t = vector(2, 3, 8)
        flat = t.flatten(offset=100)
        assert flat.tolist() == [[100, 3], [108, 3]]

    def test_count_replicates(self):
        t = resized(contiguous(2), extent=4)
        flat = t.flatten(offset=10, count=3)
        assert flat.tolist() == [[10, 2], [14, 2], [18, 2]]

    def test_equality_and_hash(self):
        assert vector(2, 3, 8) == vector(2, 3, 8)
        assert vector(2, 3, 8) != vector(2, 3, 9)
        assert hash(vector(2, 3, 8)) == hash(vector(2, 3, 8))


@given(
    blocks=st.lists(
        st.tuples(st.integers(0, 1000), st.integers(1, 50)), min_size=1, max_size=30
    )
)
def test_coalescing_preserves_byte_set(blocks):
    """The set of covered bytes survives sorting/merging exactly."""
    t = hindexed(blocks)
    expected = set()
    for off, ln in blocks:
        expected.update(range(off, off + ln))
    covered = set()
    for off, ln in t.segments:
        covered.update(range(off, off + ln))
    assert covered == expected
    # And segments are sorted, non-adjacent, non-overlapping.
    segs = t.segments
    for i in range(1, len(segs)):
        assert segs[i, 0] > segs[i - 1, 0] + segs[i - 1, 1]


@given(count=st.integers(1, 10), blocklength=st.integers(1, 20), gap=st.integers(1, 20))
def test_vector_replicate_size(count, blocklength, gap):
    t = vector(count, blocklength, blocklength + gap)
    r = t.replicate(4)
    assert r.size == 4 * t.size
    assert r.extent == 4 * t.extent
