"""Tests for one-sided Get (the read path's RMA primitive)."""

import numpy as np
import pytest

from repro.errors import RMAError

from tests.mpi.conftest import make_world


class TestGetFence:
    def test_get_reads_remote_window(self):
        def program(mpi):
            win = yield from mpi.win_allocate(256 if mpi.rank == 0 else 0)
            if mpi.rank == 0:
                win.local_buffer[:] = np.arange(256, dtype=np.uint8)
            yield from win.fence()
            out = np.zeros(16, dtype=np.uint8)
            if mpi.rank == 1:
                yield from win.get(0, out, 32)
            yield from win.fence()
            return out if mpi.rank == 1 else None

        res = make_world(nprocs=2).run(program)
        assert np.array_equal(res[1], np.arange(32, 48, dtype=np.uint8))

    def test_get_needs_no_target_progress(self):
        def program(mpi):
            win = yield from mpi.win_allocate(64 if mpi.rank == 0 else 0)
            if mpi.rank == 0:
                win.local_buffer[:] = 5
            yield from win.fence()
            if mpi.rank == 1:
                evt = yield from win.get(0, np.zeros(64, np.uint8), 0)
                yield evt
                done = mpi.now
                yield from win.fence()
                return done
            yield from mpi.compute(0.5)  # target computes: no MPI calls
            yield from win.fence()
            return None

        res = make_world(nprocs=2).run(program)
        assert res[1] < 0.01

    def test_get_bounds_checked(self):
        def program(mpi):
            win = yield from mpi.win_allocate(64 if mpi.rank == 0 else 0)
            yield from win.fence()
            if mpi.rank == 1:
                yield from win.get(0, np.zeros(65, np.uint8), 0)
            yield from win.fence()

        with pytest.raises(RMAError):
            make_world(nprocs=2).run(program)

    def test_size_only_get(self):
        def program(mpi):
            win = yield from mpi.win_allocate(64 if mpi.rank == 0 else 0)
            yield from win.fence()
            if mpi.rank == 1:
                yield from win.get(0, None, 0, size=32)
            yield from win.fence()
            return win.window.gets_issued

        res = make_world(nprocs=2).run(program)
        assert res[0] == 1

    def test_size_required_without_buffer(self):
        def program(mpi):
            win = yield from mpi.win_allocate(64)
            yield from win.get(0, None, 0)

        with pytest.raises(RMAError):
            make_world(nprocs=1).run(program)

    def test_fence_flushes_gets(self):
        """After the closing fence, all gets have landed."""

        def program(mpi):
            win = yield from mpi.win_allocate(1024 if mpi.rank == 0 else 0)
            if mpi.rank == 0:
                win.local_buffer[:] = 9
            yield from win.fence()
            out = np.zeros(1024, dtype=np.uint8)
            if mpi.rank != 0:
                yield from win.get(0, out, 0)
            yield from win.fence()
            if mpi.rank != 0:
                assert (out == 9).all()

        make_world(nprocs=4).run(program)

    def test_concurrent_gets_share_target_tx(self):
        """Many remote origins getting from one target contend on its NIC."""
        size = 1_000_000
        getters = (4, 8, 12)  # first rank of nodes 1, 2, 3

        def program(mpi):
            win = yield from mpi.win_allocate(size if mpi.rank == 0 else 0)
            yield from win.fence()
            if mpi.rank in getters:
                yield from win.get(0, None, 0, size=size)
            yield from win.fence()
            return mpi.now

        world = make_world(nprocs=16)
        res = world.run(program)
        bw = world.cluster.spec.network_bandwidth
        # 3 getters of 1 MB each drain through node 0's tx port serially.
        assert res[0] > 2.5 * size / bw
