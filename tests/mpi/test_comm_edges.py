"""Edge-path tests for the communicator and collective engine."""

import numpy as np
import pytest

from repro.errors import MPIError, RMAError

from tests.mpi.conftest import make_world


class TestCollectiveEdges:
    def test_bcast_inconsistent_root_detected(self):
        def program(mpi):
            yield from mpi.bcast("x", root=mpi.rank % 2)

        with pytest.raises(MPIError, match="root"):
            make_world(nprocs=2).run(program)

    def test_collective_engine_rejects_unknown_kind(self):
        world = make_world(nprocs=2)
        with pytest.raises(MPIError, match="unknown collective"):
            world.coll.enter(1, "alltoallw", 0)

    def test_double_entry_detected(self):
        world = make_world(nprocs=2)
        world.coll.enter(1, "barrier", 0)
        with pytest.raises(MPIError, match="twice"):
            world.coll.enter(1, "barrier", 0)

    def test_pending_counter(self):
        world = make_world(nprocs=2)
        assert world.coll.pending == 0
        world.coll.enter(1, "barrier", 0)
        assert world.coll.pending == 1

    def test_allgather_preserves_arbitrary_objects(self):
        def program(mpi):
            payload = {"rank": mpi.rank, "data": [mpi.rank] * 3}
            got = yield from mpi.allgather(payload, nbytes=32)
            return got

        res = make_world(nprocs=3).run(program)
        assert res[0][2] == {"rank": 2, "data": [2, 2, 2]}


class TestWindowEdges:
    def test_double_attach_rejected(self):
        world = make_world(nprocs=2)
        world.window_registry.attach(5, 0, 64)
        with pytest.raises(RMAError, match="twice"):
            world.window_registry.attach(5, 0, 64)

    def test_put_size_required_without_data(self):
        def program(mpi):
            win = yield from mpi.win_allocate(64)
            yield from win.put(0, None, 0)

        with pytest.raises(RMAError, match="size"):
            make_world(nprocs=1).run(program)

    def test_window_local_size(self):
        def program(mpi):
            win = yield from mpi.win_allocate(128 if mpi.rank == 0 else 0)
            yield from mpi.barrier()
            return win.local_size

        res = make_world(nprocs=2).run(program)
        assert res == [128, 0]

    def test_lock_queue_length_observable(self):
        def program(mpi):
            win = yield from mpi.win_allocate(64 if mpi.rank == 0 else 0)
            yield from mpi.barrier()
            queued = None
            if mpi.rank != 0:
                yield from win.lock(0, exclusive=True)
                if mpi.rank == 1:
                    # while rank 1 holds, others queue
                    yield from mpi.compute(0.05)
                    queued = win.window.lock_state(0).queue_length
                yield from win.unlock(0, exclusive=True)
            yield from mpi.barrier()
            return queued

        res = make_world(nprocs=4).run(program)
        assert res[1] == 2  # ranks 2 and 3 were waiting


class TestComputeAndMisc:
    def test_negative_compute_rejected(self):
        def program(mpi):
            yield from mpi.compute(-1.0)

        with pytest.raises(ValueError):
            make_world(nprocs=1).run(program)

    def test_zero_compute_is_free(self):
        def program(mpi):
            yield from mpi.compute(0.0)
            return mpi.now

        assert make_world(nprocs=1).run(program) == [0.0]

    def test_now_and_node_properties(self):
        def program(mpi):
            yield from mpi.compute(0.5)
            return (mpi.now, mpi.node)

        res = make_world(nprocs=8).run(program)
        assert res[0] == (0.5, 0)
        assert res[7] == (0.5, 1)  # 4 cores/node in the test cluster

    def test_blocking_send_recv_roundtrip_values(self):
        def program(mpi):
            buf = np.zeros(10, dtype=np.uint8)
            if mpi.rank == 0:
                yield from mpi.send(1, tag=4, data=np.arange(10, dtype=np.uint8))
                return None
            got = yield from mpi.recv(0, tag=4, buffer=buf)
            assert got is buf
            return got.tolist()

        res = make_world(nprocs=2).run(program)
        assert res[1] == list(range(10))


class TestFsEdges:
    def test_pfs_size_mismatch_rejected(self):
        from repro.errors import FileSystemError
        from repro.fs import FsSpec, ParallelFileSystem
        from repro.sim import Engine
        from repro.units import MB

        pfs = ParallelFileSystem(
            Engine(),
            FsSpec(name="x", num_targets=1, target_bandwidth=MB,
                   target_latency=0, stripe_size=64),
        )
        f = pfs.open("f")
        with pytest.raises(FileSystemError):
            pfs.write(f, 0, np.zeros(10, np.uint8), size=20)
        with pytest.raises(FileSystemError):
            pfs.write(f, 0, None)  # size required

    def test_aio_read_fills_buffer_in_background(self):
        from repro.fs import AioEngine, FsSpec, ParallelFileSystem
        from repro.sim import Engine
        from repro.units import MB

        eng = Engine()
        pfs = ParallelFileSystem(
            eng,
            FsSpec(name="x", num_targets=2, target_bandwidth=100 * MB,
                   target_latency=1e-4, stripe_size=1024),
        )
        f = pfs.open("f")
        f.write(0, np.arange(5000, dtype=np.int16).view(np.uint8))
        aio = AioEngine(eng, pfs)

        def proc(eng):
            req, out = aio.submit_read(f, 100, 400)
            assert not req.done
            yield req.event
            return out

        p = eng.process(proc(eng))
        eng.run()
        expected = np.arange(5000, dtype=np.int16).view(np.uint8)[100:500]
        assert np.array_equal(p.value, expected)
