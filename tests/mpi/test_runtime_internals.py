"""White-box tests of the MPI runtime: queues, counters, tracing."""

import numpy as np
import pytest

from repro.errors import MPIError

from tests.mpi.conftest import make_world


class TestQueues:
    def test_pending_counts_reflect_state(self):
        def program(mpi):
            if mpi.rank == 0:
                yield from mpi.send(1, tag=1, size=64)   # eager
                yield from mpi.barrier()
                return None
            rt = mpi.world.runtime(1)
            req = yield from mpi.irecv(0, tag=2, size=64)  # never matched... yet
            yield from mpi.compute(0.01)
            counts = dict(rt.pending_counts())
            # one posted (tag 2), one unexpected (tag 1)
            yield from mpi.recv(0, tag=1, size=64)
            after = dict(rt.pending_counts())
            yield from mpi.barrier()
            # satisfy the dangling tag-2 receive to finish cleanly
            return counts, after, req

        # Send the tag-2 message at the end so the world terminates.
        def program2(mpi):
            out = yield from program(mpi)
            if mpi.rank == 0:
                yield from mpi.send(1, tag=2, size=64)
                return None
            counts, after, req = out
            yield from mpi.wait(req)
            return counts, after

        world = make_world(nprocs=2)
        res = world.run(program2)
        counts, after = res[1]
        assert counts == {"posted": 1, "unexpected": 1, "deferred_progress_work": 0}
        assert after["unexpected"] == 0

    def test_exit_progress_unbalanced_raises(self):
        world = make_world(nprocs=1)
        with pytest.raises(MPIError):
            world.runtime(0).exit_progress()


class TestCounters:
    def test_protocol_counters(self):
        def program(mpi):
            if mpi.rank == 0:
                for _ in range(3):
                    yield from mpi.send(1, tag=1, size=100)       # eager
                yield from mpi.send(1, tag=2, size=100_000)       # rendezvous
            else:
                for _ in range(3):
                    yield from mpi.recv(0, tag=1, size=100)
                yield from mpi.recv(0, tag=2, size=100_000)

        world = make_world(nprocs=2)
        world.run(program)
        rt = world.runtime(0)
        assert rt.eager_sent == 3
        assert rt.rendezvous_sent == 1

    def test_progress_deferral_counted(self):
        def program(mpi):
            if mpi.rank == 0:
                yield from mpi.send(1, tag=1, size=100_000)
                return None
            req = yield from mpi.irecv(0, tag=1, size=100_000)
            yield from mpi.compute(0.05)  # RTS arrives while not progressing
            yield from mpi.wait(req)

        world = make_world(nprocs=2)
        world.run(program)
        assert world.runtime(1).progress_deferrals >= 1


class TestTracing:
    def test_counters_always_collected(self):
        def program(mpi):
            if mpi.rank == 0:
                yield from mpi.send(1, tag=1, size=100)
                yield from mpi.send(1, tag=2, size=100_000)
            else:
                yield from mpi.compute(0.01)
                yield from mpi.recv(0, tag=1, size=100)
                yield from mpi.recv(0, tag=2, size=100_000)

        world = make_world(nprocs=2)
        world.run(program)
        tracer = world.cluster.tracer
        assert tracer.count("send.eager") == 1
        assert tracer.count("send.rendezvous") == 1
        assert tracer.count("recv.unexpected") == 1  # the eager landed early
        assert tracer.records == []  # full records need enabled=True

    def test_full_records_when_enabled(self):
        def program(mpi):
            if mpi.rank == 0:
                yield from mpi.send(1, tag=1, size=100)
            else:
                yield from mpi.recv(0, tag=1, size=100)

        world = make_world(nprocs=2)
        world.cluster.tracer.enabled = True
        world.run(program)
        records = world.cluster.tracer.of_category("send.eager")
        assert len(records) == 1
        assert records[0].detail["dst"] == 1 and records[0].detail["size"] == 100

    def test_tracer_clear(self):
        from repro.sim import Tracer

        t = Tracer(enabled=True)
        t.emit(1.0, "x", a=1)
        assert t.count("x") == 1
        t.clear()
        assert t.count("x") == 0 and t.records == []
