"""Point-to-point tests: eager/rendezvous protocols, matching, progress."""

import numpy as np
import pytest

from repro.errors import MPIError

from tests.mpi.conftest import make_world

EAGER = 1024  # conftest eager threshold


def run2(program, *args, **kw):
    world = make_world(nprocs=2, **kw)
    return world, world.run(program, *args)


class TestBasicTransfer:
    def test_eager_payload_delivered(self):
        data = np.arange(100, dtype=np.uint8)

        def program(mpi):
            if mpi.rank == 0:
                req = yield from mpi.isend(1, tag=3, data=data)
                yield from mpi.wait(req)
                return None
            buf = np.zeros(100, dtype=np.uint8)
            req = yield from mpi.irecv(0, tag=3, buffer=buf)
            yield from mpi.wait(req)
            return buf

        _, res = run2(program)
        assert np.array_equal(res[1], data)

    def test_rendezvous_payload_delivered(self):
        data = np.random.default_rng(0).integers(0, 256, 100_000).astype(np.uint8)

        def program(mpi):
            if mpi.rank == 0:
                yield from mpi.send(1, tag=3, data=data)
                return None
            buf = np.zeros(data.size, dtype=np.uint8)
            yield from mpi.recv(0, tag=3, buffer=buf)
            return buf

        _, res = run2(program)
        assert np.array_equal(res[1], data)

    def test_protocol_selection_by_threshold(self):
        def program(mpi):
            if mpi.rank == 0:
                yield from mpi.send(1, tag=1, size=EAGER - 1)
                yield from mpi.send(1, tag=2, size=EAGER)
            else:
                yield from mpi.recv(0, tag=1, size=EAGER - 1)
                yield from mpi.recv(0, tag=2, size=EAGER)

        world, _ = run2(program)
        rt = world.runtime(0)
        assert rt.eager_sent == 1
        assert rt.rendezvous_sent == 1

    def test_size_only_messages(self):
        """Messages can be size-only (no payload) for pure timing studies."""

        def program(mpi):
            if mpi.rank == 0:
                yield from mpi.send(1, tag=1, size=10_000)
            else:
                yield from mpi.recv(0, tag=1, size=10_000)
            return mpi.now

        _, res = run2(program)
        assert res[0] > 0

    def test_bytes_payload(self):
        def program(mpi):
            if mpi.rank == 0:
                yield from mpi.send(1, tag=1, data=b"hello")
                return None
            buf = np.zeros(5, dtype=np.uint8)
            yield from mpi.recv(0, tag=1, buffer=buf)
            return bytes(buf)

        _, res = run2(program)
        assert res[1] == b"hello"


class TestMatching:
    def test_matching_by_tag(self):
        def program(mpi):
            if mpi.rank == 0:
                yield from mpi.send(1, tag=7, data=np.full(10, 7, np.uint8))
                yield from mpi.send(1, tag=8, data=np.full(10, 8, np.uint8))
                return None
            b8 = np.zeros(10, dtype=np.uint8)
            b7 = np.zeros(10, dtype=np.uint8)
            # Receive in the opposite order: matching is by tag, not arrival.
            r8 = yield from mpi.irecv(0, tag=8, buffer=b8)
            r7 = yield from mpi.irecv(0, tag=7, buffer=b7)
            yield from mpi.waitall([r7, r8])
            return (b7[0], b8[0])

        _, res = run2(program)
        assert res[1] == (7, 8)

    def test_fifo_order_same_key(self):
        """Two same-tag messages arrive in posting order."""

        def program(mpi):
            if mpi.rank == 0:
                yield from mpi.send(1, tag=1, data=np.full(10, 1, np.uint8))
                yield from mpi.send(1, tag=1, data=np.full(10, 2, np.uint8))
                return None
            a = np.zeros(10, dtype=np.uint8)
            b = np.zeros(10, dtype=np.uint8)
            yield from mpi.recv(0, tag=1, buffer=a)
            yield from mpi.recv(0, tag=1, buffer=b)
            return (a[0], b[0])

        _, res = run2(program)
        assert res[1] == (1, 2)

    def test_contexts_do_not_crosstalk(self):
        def program(mpi):
            if mpi.rank == 0:
                yield from mpi.send(1, tag=1, data=np.full(4, 5, np.uint8), context="a")
                yield from mpi.send(1, tag=1, data=np.full(4, 6, np.uint8), context="b")
                return None
            b_ctx = np.zeros(4, dtype=np.uint8)
            a_ctx = np.zeros(4, dtype=np.uint8)
            rb = yield from mpi.irecv(0, tag=1, buffer=b_ctx, context="b")
            ra = yield from mpi.irecv(0, tag=1, buffer=a_ctx, context="a")
            yield from mpi.waitall([ra, rb])
            return (a_ctx[0], b_ctx[0])

        _, res = run2(program)
        assert res[1] == (5, 6)

    def test_unmatched_recv_deadlocks(self):
        from repro.errors import DeadlockError

        def program(mpi):
            if mpi.rank == 1:
                yield from mpi.recv(0, tag=99, size=10)
            else:
                yield from mpi.compute(0.001)

        with pytest.raises(DeadlockError):
            run2(program)

    def test_peer_range_checked(self):
        def program(mpi):
            yield from mpi.send(5, tag=0, size=10)

        with pytest.raises(MPIError):
            run2(program)


class TestUnexpectedQueue:
    def test_eager_buffered_when_no_recv_posted(self):
        def program(mpi):
            if mpi.rank == 0:
                yield from mpi.send(1, tag=1, data=np.full(10, 3, np.uint8))
                return None
            yield from mpi.compute(0.01)  # let the message arrive first
            assert mpi.world.runtime(1).unexpected_total == 1
            buf = np.zeros(10, dtype=np.uint8)
            yield from mpi.recv(0, tag=1, buffer=buf)
            assert mpi.world.runtime(1).unexpected_total == 0
            return buf[0]

        _, res = run2(program)
        assert res[1] == 3

    def test_match_cost_scales_with_queue_length(self):
        """Posting a receive gets costlier as the unexpected queue grows."""

        def program(mpi, nmsgs):
            if mpi.rank == 0:
                for i in range(nmsgs):
                    yield from mpi.send(1, tag=i, size=16)
                return None
            yield from mpi.compute(0.01)  # everything lands unexpected
            t0 = mpi.now
            yield from mpi.recv(0, tag=nmsgs - 1, size=16)
            return mpi.now - t0

        _, few = run2(program, 2)
        _, many = run2(program, 50)
        assert many[1] > few[1]

    def test_eager_sender_not_blocked_by_missing_recv(self):
        """Eager sends complete locally even if the receiver never... posts yet."""

        def program(mpi):
            if mpi.rank == 0:
                req = yield from mpi.isend(1, tag=1, size=64)
                yield from mpi.wait(req)
                done_at = mpi.now
                yield from mpi.barrier()
                return done_at
            yield from mpi.compute(0.5)
            yield from mpi.recv(0, tag=1, size=64)
            yield from mpi.barrier()
            return None

        _, res = run2(program)
        assert res[0] < 0.01  # sender done long before receiver posted


class TestRendezvousProgress:
    SIZE = 500_000  # >> eager threshold

    def test_sender_coupled_to_busy_receiver(self):
        """Rendezvous cannot complete while the receiver computes (no progress)."""

        def program(mpi):
            if mpi.rank == 0:
                yield from mpi.send(1, tag=1, size=self.SIZE)
                return mpi.now
            req = yield from mpi.irecv(0, tag=1, size=self.SIZE)
            yield from mpi.compute(0.25)
            yield from mpi.wait(req)
            return mpi.now

        _, res = run2(program)
        assert res[0] > 0.25

    def test_progress_thread_decouples(self):
        def program(mpi):
            if mpi.rank == 0:
                yield from mpi.send(1, tag=1, size=self.SIZE)
                return mpi.now
            req = yield from mpi.irecv(0, tag=1, size=self.SIZE)
            yield from mpi.compute(0.25)
            yield from mpi.wait(req)
            return mpi.now

        world = make_world(nprocs=2, progress_thread=True)
        res = world.run(program)
        assert res[0] < 0.01

    def test_receiver_in_wait_is_progressing(self):
        """A receiver blocked in wait() serves the handshake immediately."""

        def program(mpi):
            if mpi.rank == 0:
                yield from mpi.compute(0.1)  # stagger the send
                yield from mpi.send(1, tag=1, size=self.SIZE)
                return mpi.now
            yield from mpi.recv(0, tag=1, size=self.SIZE)
            return mpi.now

        _, res = run2(program)
        assert res[0] < 0.15  # only the stagger + transfer, no extra stall

    def test_rendezvous_payload_sampled_at_completion(self):
        """Reusing the send buffer before completion corrupts the data."""

        def program(mpi):
            if mpi.rank == 0:
                buf = np.full(self.SIZE, 1, dtype=np.uint8)
                req = yield from mpi.isend(1, tag=1, data=buf)
                buf[:] = 2  # illegal early reuse
                yield from mpi.wait(req)
                return None
            out = np.zeros(self.SIZE, dtype=np.uint8)
            yield from mpi.recv(0, tag=1, buffer=out)
            return out[0]

        _, res = run2(program)
        assert res[1] == 2

    def test_eager_payload_snapshotted_at_send(self):
        """Eager sends are buffered: immediate reuse is safe."""

        def program(mpi):
            if mpi.rank == 0:
                buf = np.full(100, 1, dtype=np.uint8)
                req = yield from mpi.isend(1, tag=1, data=buf)
                buf[:] = 2  # fine for eager
                yield from mpi.wait(req)
                return None
            out = np.zeros(100, dtype=np.uint8)
            yield from mpi.recv(0, tag=1, buffer=out)
            return out[0]

        _, res = run2(program)
        assert res[1] == 1


class TestValidation:
    def test_missing_size_and_data(self):
        def program(mpi):
            yield from mpi.isend(0, tag=1)

        with pytest.raises(MPIError):
            make_world(nprocs=1).run(program)

    def test_size_mismatch(self):
        def program(mpi):
            yield from mpi.isend(0, tag=1, data=np.zeros(8, np.uint8), size=4)

        with pytest.raises(MPIError):
            make_world(nprocs=1).run(program)

    def test_recv_needs_buffer_or_size(self):
        def program(mpi):
            yield from mpi.irecv(0, tag=1)

        with pytest.raises(MPIError):
            make_world(nprocs=1).run(program)

    def test_recv_buffer_must_be_uint8(self):
        def program(mpi):
            yield from mpi.irecv(0, tag=1, buffer=np.zeros(4, np.float32))

        with pytest.raises(MPIError):
            make_world(nprocs=1).run(program)
