"""BufferPool: pow2 size classes, exact-length views, recycle-on-release.

The pool's contract (DESIGN Appendix F): ``take`` lends an exact-length
view of a power-of-two block, ``release`` maps any view back to its
block via ``view.base``, and releasing a buffer the pool never lent —
including ``None`` — is a harmless no-op so call sites need not track
buffer provenance.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi.bufpool import BufferPool


class TestSizeClass:
    @pytest.mark.parametrize(
        ("nbytes", "expected"),
        [(0, 1), (1, 1), (2, 2), (3, 4), (4, 4), (5, 8), (1023, 1024),
         (1024, 1024), (1025, 2048)],
    )
    def test_rounds_to_next_power_of_two(self, nbytes, expected):
        assert BufferPool._size_class(nbytes) == expected

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=1 << 24))
    def test_class_is_pow2_and_tight(self, nbytes):
        size = BufferPool._size_class(nbytes)
        assert size & (size - 1) == 0  # power of two
        assert size >= max(nbytes, 1)
        assert size < 2 * max(nbytes, 1) or size == 1


class TestTakeRelease:
    def test_take_returns_exact_length_uint8_view(self):
        pool = BufferPool(node=0)
        view = pool.take(100)
        assert view.dtype == np.uint8
        assert view.size == 100
        assert view.base is not None and view.base.size == 128

    def test_release_then_take_reuses_block(self):
        pool = BufferPool(node=0)
        first = pool.take(100)
        block_id = id(first.base)
        pool.release(first)
        second = pool.take(70)  # same 128-byte class
        assert id(second.base) == block_id
        assert pool.counters() == {
            "bufpool.takes": 2,
            "bufpool.hits": 1,
            "bufpool.releases": 1,
            "bufpool.bytes_allocated": 128,
        }

    def test_different_size_class_allocates_fresh(self):
        pool = BufferPool(node=0)
        pool.release(pool.take(100))  # stocks the 128 class
        pool.take(200)  # 256 class: miss
        assert pool.hits == 0
        assert pool.bytes_allocated == 128 + 256

    def test_outstanding_tracks_lent_blocks(self):
        pool = BufferPool(node=0)
        views = [pool.take(n) for n in (10, 20, 30)]
        assert pool.outstanding == 3
        for view in views:
            pool.release(view)
        assert pool.outstanding == 0

    def test_recycled_block_keeps_stale_contents(self):
        """Documented: no zeroing pass — borrowers must overwrite fully."""
        pool = BufferPool(node=0)
        view = pool.take(8)
        view[:] = 0xAB
        pool.release(view)
        again = pool.take(8)
        assert bytes(again) == b"\xab" * 8


class TestForeignRelease:
    def test_release_none_is_noop(self):
        pool = BufferPool(node=0)
        pool.release(None)
        assert pool.releases == 0

    def test_release_foreign_array_is_noop(self):
        pool = BufferPool(node=0)
        foreign = np.zeros(64, dtype=np.uint8)
        pool.release(foreign)
        pool.release(foreign[:32])  # foreign view too
        assert pool.releases == 0
        assert pool.outstanding == 0

    def test_double_release_counts_once(self):
        pool = BufferPool(node=0)
        view = pool.take(16)
        pool.release(view)
        pool.release(view)  # block no longer lent: no-op
        assert pool.releases == 1
        assert len(pool._free[16]) == 1  # not stocked twice
