"""The ``repro.api`` facade: one stable import surface for user code.

Examples and README snippets import from ``repro.api`` only; these tests
pin the contract — every advertised name resolves, nothing leaks outside
``__all__``, and the re-exports are the same objects as the originals
(no copies that would break isinstance checks across module boundaries).
"""

import importlib

import repro.api as api


class TestFacade:
    def test_every_all_entry_resolves(self):
        for name in api.__all__:
            assert getattr(api, name) is not None, name

    def test_all_is_explicit_sorted_within_reason_and_deduped(self):
        assert len(api.__all__) == len(set(api.__all__))
        assert len(api.__all__) >= 20

    def test_star_import_exports_exactly_all(self):
        ns = {}
        exec("from repro.api import *", ns)
        exported = {k for k in ns if not k.startswith("__")}
        assert exported == set(api.__all__)

    def test_reexports_are_identical_objects(self):
        # The facade must alias, not wrap: isinstance/issubclass checks
        # done against repro.api types have to hold for objects built by
        # the underlying packages and vice versa.
        originals = {
            "RunSpec": "repro.collio",
            "run_collective_write": "repro.collio",
            "FaultSpec": "repro.faults",
            "RecoverySpec": "repro.recovery",
            "StagingSpec": "repro.staging",
            "ScenarioSpec": "repro.tune",
            "autotune": "repro.tune",
            "run_with_recovery": "repro.recovery",
            "make_workload": "repro.workloads",
        }
        for name, module in originals.items():
            assert getattr(api, name) is getattr(importlib.import_module(module), name)

    def test_spec_family_is_complete(self):
        for name in ("SpecBase", "RunSpec", "FaultSpec", "RecoverySpec",
                     "StagingSpec", "ScenarioSpec"):
            assert name in api.__all__

    def test_facade_smoke_run(self):
        from repro.api import (
            CollectiveConfig, FileView, FsSpec, ClusterSpec, RunSpec,
            run_collective_write,
        )
        from repro.units import MB

        cluster = ClusterSpec(
            name="t", num_nodes=2, cores_per_node=2,
            network_bandwidth=1000 * MB, network_latency=1e-6,
            eager_threshold=1024,
        )
        fs = FsSpec(name="tfs", num_targets=2, target_bandwidth=300 * MB,
                    target_latency=5e-5, stripe_size=4096)
        views = {r: FileView.contiguous(r * 4096, 4096) for r in range(4)}
        result = run_collective_write(RunSpec(
            cluster=cluster, fs=fs, nprocs=4, views=views,
            config=CollectiveConfig(cb_buffer_size=8 * 1024),
            carry_data=False,
        ))
        assert result.elapsed > 0
