"""The unified spec family: JSON round-trips, canonical hashing, strictness.

Every ``*Spec`` type shares :class:`repro.specbase.SpecBase`, so a single
contract applies across the family: ``from_dict(to_dict(s)) == s``, the
JSON form round-trips byte-exactly through ``canonical()``, unknown keys
are rejected loudly, and ``replace()`` returns a distinct frozen value.
"""

import dataclasses
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import (
    CollectiveConfig,
    FaultSpec,
    FileView,
    RecoverySpec,
    RunSpec,
    ScenarioSpec,
    StagingSpec,
)
from repro.faults import RetryPolicy
from repro.fs import FsSpec
from repro.hardware import ClusterSpec
from repro.specbase import SpecBase, SpecCodecError
from repro.api import default_data
from repro.units import MB

rates = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
delays = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)

fault_specs = st.builds(
    FaultSpec,
    write_fail_rate=rates,
    straggler_rate=rates,
    straggler_factor=st.floats(min_value=1.0, max_value=16.0),
    aio_submit_fail_rate=rates,
    message_delay_rate=rates,
    message_delay=delays,
    rank_crash_rate=rates,
    ost_outage_rate=rates,
    crash_window=st.floats(min_value=1e-6, max_value=1.0, allow_nan=False),
)

recovery_specs = st.builds(
    RecoverySpec,
    max_attempts=st.one_of(st.none(), st.integers(min_value=1, max_value=8)),
    detection_timeout=st.floats(min_value=1e-6, max_value=1.0),
    failover_overhead=st.floats(min_value=0.0, max_value=1.0),
)

staging_specs = st.builds(
    StagingSpec,
    enabled=st.booleans(),
    capacity=st.integers(min_value=1 << 10, max_value=1 << 30),
    absorb_bandwidth=st.floats(min_value=1e6, max_value=1e11),
    drain_bandwidth=st.floats(min_value=1e6, max_value=1e11),
    policy=st.sampled_from(["immediate", "watermark", "end_of_job"]),
    high_watermark=st.floats(min_value=0.5, max_value=1.0),
    low_watermark=st.floats(min_value=0.01, max_value=0.45),
    max_drain_retries=st.integers(min_value=0, max_value=64),
)

scenario_specs = st.builds(
    ScenarioSpec,
    benchmark=st.sampled_from(["ior", "flash", "tile_1m", "tile_256"]),
    cluster=st.sampled_from(["crill", "ibex"]),
    nprocs=st.integers(min_value=1, max_value=512),
    scale=st.sampled_from([1, 64, 256]),
    fs=st.one_of(st.none(), st.sampled_from(["beegfs_crill", "beegfs_ibex"])),
)

ALL_SPEC_STRATEGIES = [fault_specs, recovery_specs, staging_specs, scenario_specs]


def full_runspec(**overrides):
    cluster = ClusterSpec(
        name="t", num_nodes=4, cores_per_node=4,
        network_bandwidth=1000 * MB, network_latency=1e-6,
        eager_threshold=1024,
    )
    fs = FsSpec(
        name="tfs", num_targets=4, target_bandwidth=300 * MB,
        target_latency=5e-5, stripe_size=4096,
    )
    views = {r: FileView.contiguous(r * 10_000, 10_000) for r in range(4)}
    kwargs = dict(
        cluster=cluster, fs=fs, nprocs=4, views=views,
        config=CollectiveConfig(cb_buffer_size=32 * 1024),
        carry_data=False,
        faults=FaultSpec(write_fail_rate=0.05),
        retry=RetryPolicy(max_retries=3),
        recovery=RecoverySpec(max_attempts=2),
        staging=StagingSpec.for_scale(64),
    )
    kwargs.update(overrides)
    return RunSpec(**kwargs)


class TestRoundTrip:
    @pytest.mark.parametrize("strategy", ALL_SPEC_STRATEGIES,
                             ids=["fault", "recovery", "staging", "scenario"])
    @settings(max_examples=50, deadline=None)
    @given(data=st.data())
    def test_from_dict_to_dict_identity(self, strategy, data):
        s = data.draw(strategy)
        assert type(s).from_dict(s.to_dict()) == s

    @pytest.mark.parametrize("strategy", ALL_SPEC_STRATEGIES,
                             ids=["fault", "recovery", "staging", "scenario"])
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_json_round_trip_and_stable_hash(self, strategy, data):
        s = data.draw(strategy)
        cls = type(s)
        assert cls.from_json(s.to_json()) == s
        # canonical form is deterministic: same value, same digest
        twin = cls.from_dict(s.to_dict())
        assert s.canonical() == twin.canonical()
        assert s.spec_sha256() == twin.spec_sha256()
        # ... and actually canonical: sorted keys, parseable JSON
        doc = json.loads(s.canonical())
        assert doc["spec"] == cls.__name__

    def test_runspec_round_trip_with_all_nested_specs(self):
        s = full_runspec()
        restored = RunSpec.from_dict(s.to_dict())
        assert restored == s
        assert restored.views[2] == s.views[2]
        assert restored.retry == s.retry
        assert restored.data_factory is default_data
        assert RunSpec.from_json(s.to_json()).spec_sha256() == s.spec_sha256()

    def test_runspec_transient_plan_not_serialized(self):
        d = full_runspec().to_dict()
        assert "plan" not in d

    def test_distinct_specs_hash_distinct(self):
        a = FaultSpec(write_fail_rate=0.1)
        b = FaultSpec(write_fail_rate=0.2)
        assert a.spec_sha256() != b.spec_sha256()


class TestStrictness:
    def test_unknown_key_rejected(self):
        with pytest.raises(SpecCodecError, match="unknown"):
            FaultSpec.from_dict({"write_fail_rate": 0.1, "nope": 1})

    def test_lambda_data_factory_is_not_serializable(self):
        s = full_runspec(data_factory=lambda rank, n: b"\0" * n)
        with pytest.raises(SpecCodecError):
            s.to_dict()

    def test_every_named_spec_subclasses_the_base(self):
        for cls in (RunSpec, FaultSpec, RecoverySpec, StagingSpec, ScenarioSpec):
            assert issubclass(cls, SpecBase)
            assert dataclasses.is_dataclass(cls)
            # frozen: assignment must fail
            inst = cls.__new__(cls)
            with pytest.raises(dataclasses.FrozenInstanceError):
                inst.benchmark = "x"


class TestReplaceAndValidate:
    def test_replace_returns_new_equal_family_member(self):
        s = StagingSpec.for_scale(64)
        t = s.replace(policy="watermark")
        assert t is not s and t.policy == "watermark"
        assert s.policy == "immediate"  # original untouched (frozen)
        assert type(t) is StagingSpec

    def test_validate_returns_self_across_family(self):
        for s in (FaultSpec(), RecoverySpec(), StagingSpec.for_scale(64),
                  ScenarioSpec(benchmark="ior", cluster="crill", nprocs=4)):
            assert s.validate() is s

    def test_staging_cache_key_matches_asdict(self):
        # tune's ResultCache keyed off asdict() before the SpecBase
        # migration; cache_key() must keep producing the same mapping or
        # every on-disk tuning cache silently invalidates.
        s = StagingSpec.for_scale(64)
        assert s.cache_key() == dataclasses.asdict(s)
