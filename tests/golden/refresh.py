"""Regenerate the golden fingerprints after an *intentional* change.

Usage::

    PYTHONPATH=src python tests/golden/refresh.py

Overwrites ``tests/golden/fingerprints.json``.  Review the diff before
committing: every changed hash is a behavioural change of the simulator
that same-seed reproducibility no longer covers.
"""

from __future__ import annotations

import json
import os
import sys

_REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)
sys.path.insert(0, _REPO_ROOT)

from tests.golden.scenario import case_key, fingerprint, golden_cases  # noqa: E402

OUT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fingerprints.json")


def main() -> int:
    fingerprints = {}
    for case in golden_cases():
        key = case_key(*case)
        fingerprints[key] = fingerprint(*case)
        print(f"  {key}: {fingerprints[key]['file_sha256'][:12]}", file=sys.stderr)
    with open(OUT, "w") as fh:
        json.dump(fingerprints, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"[wrote {OUT}: {len(fingerprints)} fingerprints]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
