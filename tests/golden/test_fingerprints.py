"""Same-seed golden regression: 5 algorithms x 3 shuffles x 2 layerings.

Each case re-runs the pinned scenario (tests/golden/scenario.py) and
compares its fingerprint — written-file hash, cycle count, span-count
summary — against tests/golden/fingerprints.json.  A mismatch means the
simulator's deterministic behaviour drifted; if the change is
intentional, regenerate with ``PYTHONPATH=src python
tests/golden/refresh.py`` and commit the diff.
"""

import json
import os

import pytest

from tests.golden.scenario import case_key, fingerprint, golden_cases

_FINGERPRINTS = os.path.join(os.path.dirname(__file__), "fingerprints.json")


def _load() -> dict:
    with open(_FINGERPRINTS) as fh:
        return json.load(fh)


def test_fingerprint_file_covers_all_cases():
    recorded = _load()
    expected = {case_key(*case) for case in golden_cases()}
    assert set(recorded) == expected


@pytest.mark.parametrize(
    "algorithm,shuffle,two_layer",
    golden_cases(),
    ids=[case_key(*case) for case in golden_cases()],
)
def test_same_seed_fingerprint(algorithm, shuffle, two_layer):
    recorded = _load()[case_key(algorithm, shuffle, two_layer)]
    actual = fingerprint(algorithm, shuffle, two_layer)
    assert actual == recorded, (
        f"golden fingerprint drifted for {case_key(algorithm, shuffle, two_layer)}; "
        "if intentional: PYTHONPATH=src python tests/golden/refresh.py"
    )


def test_two_layer_file_hash_matches_single_layer():
    """Two-layer aggregation must not change the written bytes."""
    recorded = _load()
    for algorithm, shuffle, two_layer in golden_cases():
        if not two_layer:
            continue
        single = recorded[case_key(algorithm, shuffle, False)]
        double = recorded[case_key(algorithm, shuffle, True)]
        assert single["file_sha256"] == double["file_sha256"]
        assert single["num_cycles"] == double["num_cycles"]
