"""Same-seed golden regression: algorithms x shuffles x layerings x staging.

Each case re-runs the pinned scenario (tests/golden/scenario.py) and
compares its fingerprint — written-file hash, cycle count, span-count
summary — against tests/golden/fingerprints.json.  A mismatch means the
simulator's deterministic behaviour drifted; if the change is
intentional, regenerate with ``PYTHONPATH=src python
tests/golden/refresh.py`` and commit the diff.
"""

import json
import os

import pytest

from tests.golden.scenario import case_key, fingerprint, golden_cases

_FINGERPRINTS = os.path.join(os.path.dirname(__file__), "fingerprints.json")


def _load() -> dict:
    with open(_FINGERPRINTS) as fh:
        return json.load(fh)


def test_fingerprint_file_covers_all_cases():
    recorded = _load()
    expected = {case_key(*case) for case in golden_cases()}
    assert set(recorded) == expected


@pytest.mark.parametrize(
    "algorithm,shuffle,two_layer,staging",
    golden_cases(),
    ids=[case_key(*case) for case in golden_cases()],
)
def test_same_seed_fingerprint(algorithm, shuffle, two_layer, staging):
    key = case_key(algorithm, shuffle, two_layer, staging)
    recorded = _load()[key]
    actual = fingerprint(algorithm, shuffle, two_layer, staging)
    assert actual == recorded, (
        f"golden fingerprint drifted for {key}; "
        "if intentional: PYTHONPATH=src python tests/golden/refresh.py"
    )


def test_two_layer_file_hash_matches_single_layer():
    """Two-layer aggregation must not change the written bytes."""
    recorded = _load()
    for algorithm, shuffle, two_layer, staging in golden_cases():
        if not two_layer:
            continue
        single = recorded[case_key(algorithm, shuffle, False, staging)]
        double = recorded[case_key(algorithm, shuffle, True, staging)]
        assert single["file_sha256"] == double["file_sha256"]
        assert single["num_cycles"] == double["num_cycles"]


def test_staging_file_hash_matches_direct():
    """Routing writes through the burst buffer must not change the
    written bytes or the plan's cycle count — only the span timeline
    (which gains absorb/drain/flush staging spans)."""
    recorded = _load()
    staged_cases = [c for c in golden_cases() if c[3] is not None]
    assert staged_cases
    for algorithm, shuffle, two_layer, staging in staged_cases:
        direct = recorded[case_key(algorithm, shuffle, two_layer)]
        staged = recorded[case_key(algorithm, shuffle, two_layer, staging)]
        assert staged["file_sha256"] == direct["file_sha256"]
        assert staged["num_cycles"] == direct["num_cycles"]
        assert staged["spans"].get("staging", 0) > 0
