"""The pinned scenario and fingerprint function of the golden suite.

A fingerprint captures what a same-seed simulated collective write must
reproduce exactly:

* ``file_sha256`` — hash of the verified written file's bytes (the
  simulation runs with ``verify=True``, so the hashed bytes are the
  actual file contents, independently checked against the views);
* ``num_cycles`` — the plan's cycle count;
* ``spans`` — closed-span count per category (algo/io/comm/intranode
  ...), a cheap structural summary of the run's event timeline.

Timing values are deliberately NOT part of the fingerprint: cost-model
tuning may move them, while data placement, plan shape and span
structure must not drift silently.  Regenerate with::

    PYTHONPATH=src python tests/golden/refresh.py
"""

from __future__ import annotations

import hashlib
from dataclasses import replace

import numpy as np

from repro.collio.api import RunSpec, default_data, run_collective_write
from repro.collio.overlap import ALGORITHMS
from repro.collio.shuffle import SHUFFLE_PRIMITIVES
from repro.fs.presets import beegfs_crill
from repro.hardware.presets import crill
from repro.workloads import make_workload

#: 8 ranks on 2 nodes; segmented IOR interleaves every rank's blocks
#: across both aggregators' file domains (cross-node shuffle traffic).
NPROCS = 8
CORES_PER_NODE = 4
WORKLOAD_KWARGS = {"block_size": 4096, "segment_count": 8}


def golden_cases() -> list[tuple[str, str, bool]]:
    """Every (algorithm, shuffle, two_layer) combination, sorted."""
    return [
        (algorithm, shuffle, two_layer)
        for algorithm in sorted(ALGORITHMS)
        for shuffle in sorted(SHUFFLE_PRIMITIVES)
        for two_layer in (False, True)
    ]


def case_key(algorithm: str, shuffle: str, two_layer: bool) -> str:
    return f"{algorithm}/{shuffle}" + ("/two_layer" if two_layer else "")


def golden_spec(algorithm: str, shuffle: str, two_layer: bool) -> RunSpec:
    workload = make_workload("ior", NPROCS, **WORKLOAD_KWARGS)
    return RunSpec(
        cluster=replace(crill(), cores_per_node=CORES_PER_NODE),
        fs=beegfs_crill(),
        nprocs=NPROCS,
        views=workload.views(),
        algorithm=algorithm,
        shuffle=shuffle,
        two_layer=two_layer,
        verify=True,
        trace=True,
    )


def fingerprint(algorithm: str, shuffle: str, two_layer: bool) -> dict:
    """Run the pinned scenario once and fingerprint the outcome."""
    spec = golden_spec(algorithm, shuffle, two_layer)
    result = run_collective_write(spec)
    assert result.verified is True
    # The run verified the file against the views, so hashing the
    # expectation hashes the actual file bytes.
    ends = [v.file_range[1] for v in spec.views.values() if v.num_extents]
    size = max(ends) if ends else 0
    contents = np.zeros(size, dtype=np.uint8)
    for rank, view in spec.views.items():
        data = default_data(rank, view.total_bytes)
        for off, ln, loc in zip(view.offsets, view.lengths, view.local_offsets):
            contents[off : off + ln] = data[loc : loc + ln]
    spans: dict[str, int] = {}
    for span in result.spans:
        spans[span.category] = spans.get(span.category, 0) + 1
    return {
        "file_sha256": hashlib.sha256(contents.tobytes()).hexdigest(),
        "num_cycles": result.num_cycles,
        "spans": dict(sorted(spans.items())),
    }
