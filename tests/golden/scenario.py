"""The pinned scenario and fingerprint function of the golden suite.

A fingerprint captures what a same-seed simulated collective write must
reproduce exactly:

* ``file_sha256`` — hash of the written file's bytes read back from the
  simulated PFS (the run verifies against the views first, so the hash
  is also the hash of the independently-checked expectation);
* ``num_cycles`` — the plan's cycle count;
* ``spans`` — closed-span count per category (algo/io/comm/staging
  ...), a cheap structural summary of the run's event timeline.

Timing values are deliberately NOT part of the fingerprint: cost-model
tuning may move them, while data placement, plan shape and span
structure must not drift silently.  Regenerate with::

    PYTHONPATH=src python tests/golden/refresh.py

Cases are ``(algorithm, shuffle, two_layer, staging_policy)`` tuples;
``staging_policy`` is ``None`` (direct writes — the original 30 cases,
whose keys and fingerprints are unchanged) or a drain-policy name that
routes the aggregators' writes through the burst-buffer tier.
"""

from __future__ import annotations

from dataclasses import replace

from repro.collio.api import RunSpec, run_collective_write
from repro.collio.overlap import ALGORITHMS
from repro.collio.shuffle import SHUFFLE_PRIMITIVES
from repro.fs.presets import beegfs_crill
from repro.hardware.presets import crill
from repro.staging import DRAIN_POLICIES, StagingSpec
from repro.workloads import make_workload

#: 8 ranks on 2 nodes; segmented IOR interleaves every rank's blocks
#: across both aggregators' file domains (cross-node shuffle traffic).
NPROCS = 8
CORES_PER_NODE = 4
WORKLOAD_KWARGS = {"block_size": 4096, "segment_count": 8}


def golden_cases() -> list[tuple[str, str, bool, str | None]]:
    """Every (algorithm, shuffle, two_layer) combination without staging,
    plus every (algorithm, drain policy) combination with it."""
    direct = [
        (algorithm, shuffle, two_layer, None)
        for algorithm in sorted(ALGORITHMS)
        for shuffle in sorted(SHUFFLE_PRIMITIVES)
        for two_layer in (False, True)
    ]
    staged = [
        (algorithm, "two_sided", False, policy)
        for algorithm in sorted(ALGORITHMS)
        for policy in DRAIN_POLICIES
    ]
    return direct + staged


def case_key(
    algorithm: str, shuffle: str, two_layer: bool, staging: str | None = None
) -> str:
    key = f"{algorithm}/{shuffle}" + ("/two_layer" if two_layer else "")
    return key + (f"/staging-{staging}" if staging else "")


def golden_spec(
    algorithm: str, shuffle: str, two_layer: bool, staging: str | None = None
) -> RunSpec:
    workload = make_workload("ior", NPROCS, **WORKLOAD_KWARGS)
    return RunSpec(
        cluster=replace(crill(), cores_per_node=CORES_PER_NODE),
        fs=beegfs_crill(),
        nprocs=NPROCS,
        views=workload.views(),
        algorithm=algorithm,
        shuffle=shuffle,
        two_layer=two_layer,
        staging=None if staging is None else StagingSpec.for_scale(policy=staging),
        verify=True,
        trace=True,
    )


def fingerprint(
    algorithm: str, shuffle: str, two_layer: bool, staging: str | None = None
) -> dict:
    """Run the pinned scenario once and fingerprint the outcome.

    ``spec_sha256`` is the hash of the run spec's canonical serialized
    form (:meth:`~repro.specbase.SpecBase.spec_sha256`): any drift in
    the pinned scenario's description — a changed default, a new spec
    field, a renamed preset — shows up as a fingerprint diff even when
    the simulated output happens to survive it.
    """
    spec = golden_spec(algorithm, shuffle, two_layer, staging)
    result = run_collective_write(spec)
    assert result.verified is True
    spans: dict[str, int] = {}
    for span in result.spans:
        spans[span.category] = spans.get(span.category, 0) + 1
    return {
        "file_sha256": result.file_sha256,
        "num_cycles": result.num_cycles,
        "spans": dict(sorted(spans.items())),
        "spec_sha256": spec.spec_sha256(),
    }
