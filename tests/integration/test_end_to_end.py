"""Cross-module integration tests: whole simulated applications."""

import numpy as np
import pytest

from repro.collio import CollectiveConfig
from repro.fs import FsSpec, lustre_like
from repro.hardware import ClusterSpec, crill, ibex
from repro.fs import beegfs_crill, beegfs_ibex
from repro.mpi import World, contiguous
from repro.mpi.datatypes import subarray
from repro.units import MB


def small_world(nprocs=8, **kw):
    spec = ClusterSpec(
        name="t", num_nodes=4, cores_per_node=4,
        network_bandwidth=1000 * MB, eager_threshold=2048, **kw,
    )
    fs = FsSpec(name="f", num_targets=4, target_bandwidth=200 * MB,
                target_latency=1e-4, stripe_size=4096)
    return World(spec, nprocs=nprocs, fs_spec=fs)


class TestCheckpointRestartCycle:
    """A classic HPC pattern: iterate, checkpoint collectively, restart."""

    def test_write_then_read_roundtrip_across_worlds(self):
        nprocs = 8
        per_rank = 5000

        def writer(mpi):
            fh = yield from mpi.file_open("/ckpt")
            fh.set_view(contiguous(per_rank), disp=mpi.rank * per_rank)
            data = ((np.arange(per_rank) * (mpi.rank + 3)) % 251).astype(np.uint8)
            yield from fh.write_all(data, algorithm="write_comm2")
            return data

        world = small_world(nprocs)
        written = world.run(writer)
        # "Restart": read back in the same world through a new handle.

        def reader(mpi):
            fh = yield from mpi.file_open("/ckpt")
            fh.set_view(contiguous(per_rank), disp=mpi.rank * per_rank)
            out = np.zeros(per_rank, dtype=np.uint8)
            yield from fh.read_all(out, algorithm="read_ahead")
            return out

        read_back = world.run(reader)
        for w, r in zip(written, read_back):
            assert np.array_equal(w, r)

    def test_multiple_checkpoints_interleaved_with_compute(self):
        nprocs = 4

        def program(mpi):
            fh = yield from mpi.file_open("/multi_ckpt")
            for step in range(3):
                yield from mpi.compute(0.001)
                fh.set_view(
                    contiguous(1000), disp=(step * nprocs + mpi.rank) * 1000
                )
                data = np.full(1000, 10 * step + mpi.rank, dtype=np.uint8)
                yield from fh.write_all(data)
            return mpi.now

        world = small_world(nprocs)
        world.run(program)
        contents = world.pfs.open("/multi_ckpt").contents()
        assert contents.size == 12_000
        for step in range(3):
            for r in range(nprocs):
                chunk = contents[(step * nprocs + r) * 1000 : (step * nprocs + r + 1) * 1000]
                assert (chunk == 10 * step + r).all()


class TestMixedTraffic:
    def test_collective_write_with_concurrent_p2p(self):
        """Application p2p traffic shares the fabric with a collective write."""
        nprocs = 4

        def program(mpi):
            fh = yield from mpi.file_open("/out")
            fh.set_view(contiguous(4000), disp=mpi.rank * 4000)
            # A halo exchange before the checkpoint.
            nxt, prv = (mpi.rank + 1) % mpi.size, (mpi.rank - 1) % mpi.size
            halo = np.full(512, mpi.rank, dtype=np.uint8)
            recv = np.zeros(512, dtype=np.uint8)
            s = yield from mpi.isend(nxt, tag=99, data=halo)
            r = yield from mpi.irecv(prv, tag=99, buffer=recv)
            yield from mpi.waitall([s, r])
            assert recv[0] == prv
            data = np.full(4000, mpi.rank + 1, dtype=np.uint8)
            yield from fh.write_all(data)
            return True

        world = small_world(nprocs)
        assert all(world.run(program))

    def test_two_files_two_collectives(self):
        def program(mpi):
            fa = yield from mpi.file_open("/a")
            fb = yield from mpi.file_open("/b")
            fa.set_view(contiguous(2000), disp=mpi.rank * 2000)
            fb.set_view(contiguous(1000), disp=mpi.rank * 1000)
            yield from fa.write_all(np.full(2000, 1, np.uint8))
            yield from fb.write_all(np.full(1000, 2, np.uint8))

        world = small_world(4)
        world.run(program)
        assert world.pfs.open("/a").size == 8000
        assert world.pfs.open("/b").size == 4000
        assert (world.pfs.open("/a").contents() == 1).all()
        assert (world.pfs.open("/b").contents() == 2).all()


class TestPresetsEndToEnd:
    @pytest.mark.parametrize(
        "cluster_fs",
        [(crill, beegfs_crill), (ibex, beegfs_ibex), (crill, lustre_like)],
        ids=["crill", "ibex", "crill+lustre"],
    )
    def test_2d_grid_on_paper_platforms(self, cluster_fs):
        cluster_factory, fs_factory = cluster_fs
        world = World(cluster_factory(), nprocs=16, fs_spec=fs_factory())

        def program(mpi):
            fh = yield from mpi.file_open("/grid")
            ty, tx = divmod(mpi.rank, 4)
            dtype = subarray([16, 16], [4, 4], [ty * 4, tx * 4], elem_size=8)
            fh.set_view(dtype)
            data = np.full(128, mpi.rank, dtype=np.uint8)
            yield from fh.write_all(data)
            out = np.zeros(128, dtype=np.uint8)
            yield from fh.read_all(out)
            assert np.array_equal(out, data)
            return mpi.now

        times = world.run(program)
        assert len(set(times)) == 1  # final barrier aligns everyone


class TestDeterminism:
    def test_same_seed_identical_timing(self):
        from repro.collio import run_collective_write
        from repro.collio.view import FileView

        views = {r: FileView.contiguous(r * 10_000, 10_000) for r in range(8)}
        times = [
            run_collective_write(
                crill(), beegfs_crill(), 8, views,
                algorithm="write_comm2", seed=123, carry_data=False,
                config=CollectiveConfig(cb_buffer_size=32 * 1024),
            ).elapsed
            for _ in range(2)
        ]
        assert times[0] == times[1]
