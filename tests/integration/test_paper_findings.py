"""Acceptance tests for the paper's two headline findings.

Unlike the golden-fingerprint suite (which pins *placement* and ignores
timing), these tests pin the *qualitative timing conclusions* the paper
draws, on a small fixed matrix of real simulated runs:

1. Sec. IV-A / Table I: the asynchronous-write variants (Write Overlap,
   Write-Comm, Write-Comm-2) beat plain Comm Overlap in a majority of
   cases — deferring the file write off the critical path is the bigger
   lever than overlapping the shuffle alone.
2. Sec. IV-B / Fig. 4: the two-sided shuffle beats both one-sided
   (RMA) variants in roughly three quarters of cases.

Thresholds are calibrated against the current cost model (measured:
async-write wins 4/6, two-sided wins 6/8) and asserted with slack so
that deliberate cost-model tuning does not trip them, while a regression
that inverts either conclusion does.  Runs use ``reps=1`` with the
default seed, so each matrix is fully deterministic.
"""

from __future__ import annotations

import pytest

from repro.bench.runner import Case, run_matrix

_IOR = (("block_size", 1 << 16),)
_TILE = (("rows", 256), ("row_elements", 16))

#: Benchmark x platform spread for the algorithm comparison (Table I).
ALGO_CASES = [
    Case("ior", "crill", 96, _IOR),
    Case("ior", "ibex", 96, _IOR),
    Case("tile_256", "crill", 64, _TILE),
    Case("tile_256", "ibex", 64, _TILE),
    Case("flash", "crill", 96, ()),
    Case("flash", "ibex", 96, ()),
]

ASYNC_WRITE_ALGOS = ("write_overlap", "write_comm", "write_comm2")

#: Fig. 4's spread (write_comm2 only): both platforms, several scales.
SHUFFLE_CASES = [
    Case("ior", "crill", 96, _IOR),
    Case("ior", "crill", 144, _IOR),
    Case("ior", "ibex", 96, _IOR),
    Case("ior", "ibex", 144, _IOR),
    Case("tile_256", "crill", 64, _TILE),
    Case("tile_256", "crill", 100, _TILE),
    Case("tile_256", "ibex", 64, _TILE),
    Case("tile_1m", "ibex", 144, ()),
]

SHUFFLES = ("two_sided", "one_sided_fence", "one_sided_lock")


@pytest.fixture(scope="module")
def algo_matrix():
    return run_matrix(
        ALGO_CASES,
        ["comm_overlap", *ASYNC_WRITE_ALGOS],
        shuffles=("two_sided",),
        reps=1,
    )


@pytest.fixture(scope="module")
def shuffle_matrix():
    return run_matrix(SHUFFLE_CASES, ["write_comm2"], shuffles=SHUFFLES, reps=1)


def test_async_write_variants_beat_comm_overlap_in_majority(algo_matrix):
    """Table I: asynchronous file writes win more cases than they lose."""
    wins = 0
    for case_result in algo_matrix.results:
        by_algo = case_result.by_algorithm("two_sided")
        best_async = min(by_algo[a].point for a in ASYNC_WRITE_ALGOS)
        wins += best_async < by_algo["comm_overlap"].point
    share = wins / len(algo_matrix.results)
    assert share > 0.5, (
        f"async-write variants won only {wins}/{len(algo_matrix.results)} cases; "
        "the paper's Table I conclusion no longer holds"
    )


def test_write_overlap_never_loses_to_comm_overlap_on_crill(algo_matrix):
    """On the slow-fabric platform the write is always worth deferring."""
    for case_result in algo_matrix.cases(cluster="crill"):
        by_algo = case_result.by_algorithm("two_sided")
        best_async = min(by_algo[a].point for a in ASYNC_WRITE_ALGOS)
        assert best_async < by_algo["comm_overlap"].point, case_result.case.label


def test_two_sided_beats_one_sided_in_most_cases(shuffle_matrix):
    """Fig. 4: two-sided wins ~75% of cases (calibrated 6/8; floor 60%)."""
    wins = 0
    for case_result in shuffle_matrix.results:
        by_shuffle = case_result.by_shuffle("write_comm2")
        winner = min(by_shuffle.items(), key=lambda kv: (kv[1].point, kv[0]))[0]
        wins += winner == "two_sided"
    share = wins / len(shuffle_matrix.results)
    assert share >= 0.6, (
        f"two-sided won only {wins}/{len(shuffle_matrix.results)} cases; "
        "the paper's Fig. 4 conclusion no longer holds"
    )


def test_one_sided_never_wins_on_crill(shuffle_matrix):
    """Sec. IV-B: RMA shuffles only pay off on the faster Ibex fabric."""
    for case_result in shuffle_matrix.cases(cluster="crill"):
        by_shuffle = case_result.by_shuffle("write_comm2")
        winner = min(by_shuffle.items(), key=lambda kv: (kv[1].point, kv[0]))[0]
        assert winner == "two_sided", case_result.case.label
