"""End-to-end failover: crash/outage recovery, determinism, acceptance.

The acceptance criterion of the recovery subsystem: with crash-class
fault rates > 0, ``run_collective_write`` still completes for all five
overlap algorithms and the file bytes are identical to the fault-free
run of the same seed — and repeated same-seed runs produce identical
recovery traces.
"""

import json

import numpy as np
import pytest

from repro.collio.api import RunSpec, run_collective_write
from repro.collio.view import FileView
from repro.errors import RankCrashError, TargetDownError
from repro.faults import FaultSpec, RetryPolicy, fault_preset
from repro.units import MS

from tests.faults.conftest import small_cluster, small_fs

ALL_ALGORITHMS = ["no_overlap", "comm_overlap", "write_overlap", "write_comm", "write_comm2"]


def contiguous_views(nprocs, per_rank):
    return {r: FileView.contiguous(r * per_rank, per_rank) for r in range(nprocs)}


def base_spec(algorithm="write_overlap", nprocs=4, per_rank=64 * 1024, **kw):
    return RunSpec(
        cluster=small_cluster(), fs=small_fs(), nprocs=nprocs,
        views=contiguous_views(nprocs, per_rank), algorithm=algorithm,
        verify=True, **kw,
    )


def chaos_faults(**kw):
    defaults = dict(rank_crash_rate=0.9, ost_outage_rate=0.5, crash_window=2 * MS)
    defaults.update(kw)
    return FaultSpec(**defaults)


class TestCrashRecovery:
    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_acceptance_all_algorithms_survive_crash_and_outage(self, algorithm):
        # Crash AND outage rates > 0; verify=True asserts the file is
        # byte-identical to the fault-free expectation.
        run = run_collective_write(
            base_spec(algorithm, seed=7, faults=chaos_faults())
        )
        assert run.verified
        assert run.recovery is not None
        assert run.recovery.completed
        assert run.recovery.attempts >= 2
        assert run.recovery.crashed_ranks or run.recovery.down_targets

    @pytest.mark.parametrize("seed", [1, 7, 23, 99])
    def test_journal_replay_matches_fault_free_bytes(self, seed):
        # Property: after an injected aggregator crash, the journal-driven
        # replay yields file bytes identical to the fault-free run of the
        # same seed.  _verify_file reconstructs the expected bytes from
        # the original views/payloads — exactly the fault-free outcome.
        spec = base_spec("write_comm2", seed=seed,
                         faults=chaos_faults(ost_outage_rate=0.0))
        run = run_collective_write(spec)
        assert run.verified
        if run.recovery.crashed_ranks:
            assert run.recovery.attempts > 1
            assert run.recovery.journal_commits >= 0

    def test_crashed_rank_excluded_from_aggregators(self):
        run = run_collective_write(
            base_spec("write_overlap", seed=7,
                      faults=chaos_faults(ost_outage_rate=0.0))
        )
        assert run.recovery.crashed_ranks
        # The reported plan is the attempt-1 plan; the crash demotes the
        # rank in later attempts, visible through the re-election test
        # below and the successful completion here.
        assert run.recovery.completed

    def test_failover_charges_detection_and_overhead(self):
        from repro.recovery import RecoverySpec

        slow = RecoverySpec(detection_timeout=1e-3, failover_overhead=5e-4)
        fast = RecoverySpec(detection_timeout=1e-5, failover_overhead=1e-5)
        faults = chaos_faults(ost_outage_rate=0.0)
        run_slow = run_collective_write(
            base_spec("no_overlap", seed=7, faults=faults, recovery=slow))
        run_fast = run_collective_write(
            base_spec("no_overlap", seed=7, faults=faults, recovery=fast))
        assert run_slow.recovery.attempts == run_fast.recovery.attempts > 1
        failovers = run_slow.recovery.attempts - 1
        assert run_slow.elapsed - run_fast.elapsed == pytest.approx(
            failovers * (1e-3 + 5e-4 - 2e-5), rel=1e-6)

    def test_recovery_metrics_exposed(self):
        run = run_collective_write(base_spec("write_comm", seed=7,
                                             faults=chaos_faults()))
        counters = run.metrics["counters"]
        assert counters["recovery.attempts"] == run.recovery.attempts
        assert counters["recovery.rank_crashes"] == len(run.recovery.crashed_ranks)
        assert counters["recovery.ost_outages"] == len(run.recovery.down_targets)
        assert "fs.writes_rejected" in counters
        assert "fs.writes_failed" in counters
        assert run.metrics["gauges"]["fs.targets_down"] == len(run.recovery.down_targets)

    def test_fault_free_run_reports_no_recovery(self):
        run = run_collective_write(base_spec("write_overlap", seed=7))
        assert run.recovery is None


class TestOutageRecovery:
    def test_outage_recovers_and_remaps(self):
        # Window ~80% of the fault-free duration so an outage fires mid-run.
        baseline = run_collective_write(base_spec("write_overlap", seed=7))
        run = run_collective_write(base_spec(
            "write_overlap", seed=7,
            faults=FaultSpec(ost_outage_rate=0.9,
                             crash_window=0.8 * baseline.elapsed),
        ))
        assert run.verified
        assert run.recovery.down_targets
        assert run.elapsed > baseline.elapsed

    def test_outage_with_retry_recovers_inline(self):
        # With a retry policy the rejected write is reissued after the
        # remap and succeeds without a restart attempt (attempts == 1).
        baseline = run_collective_write(base_spec("no_overlap", seed=7))
        run = run_collective_write(base_spec(
            "no_overlap", seed=7, retry=RetryPolicy(max_retries=3),
            faults=FaultSpec(ost_outage_rate=0.4,
                             crash_window=0.8 * baseline.elapsed),
        ))
        assert run.verified
        assert run.recovery.completed
        assert run.recovery.attempts == 1
        assert run.recovery.down_targets


class TestDeterminism:
    @staticmethod
    def fingerprint(run):
        spans = [
            (s.name, s.category, s.rank, s.cycle, round(s.t0, 15), round(s.t1, 15))
            for s in run.spans
        ]
        return json.dumps(
            {"events": run.recovery.events, "spans": spans,
             "elapsed": run.elapsed,
             "crashed": run.recovery.crashed_ranks,
             "down": run.recovery.down_targets},
            sort_keys=True,
        )

    def test_same_seed_same_recovery_trace(self):
        spec = base_spec("write_comm2", seed=11, trace=True, faults=chaos_faults())
        a = run_collective_write(spec)
        b = run_collective_write(spec)
        assert a.recovery.attempts > 1
        assert self.fingerprint(a) == self.fingerprint(b)

    def test_same_seed_same_successor(self):
        # Deterministic re-election: repeated runs pick the same
        # replacement aggregators after the same crash.
        spec = base_spec("write_overlap", seed=7,
                         faults=chaos_faults(ost_outage_rate=0.0))
        a = run_collective_write(spec)
        b = run_collective_write(spec)
        assert a.recovery.crashed_ranks == b.recovery.crashed_ranks
        assert a.recovery.events == b.recovery.events

    def test_different_seed_different_schedule(self):
        faults = chaos_faults(rank_crash_rate=0.5, ost_outage_rate=0.5)
        outcomes = {
            (tuple(run.recovery.crashed_ranks), tuple(run.recovery.down_targets))
            for run in (
                run_collective_write(base_spec("no_overlap", seed=s, faults=faults))
                for s in range(6)
            )
        }
        assert len(outcomes) > 1


class TestTargetDownError:
    def test_undetected_down_target_rejects_and_is_learned(self):
        from repro.fs.pfs import ParallelFileSystem
        from repro.sim.engine import Engine

        engine = Engine()
        pfs = ParallelFileSystem(engine, small_fs())
        f = pfs.open("/f")
        pfs.targets[0].go_down()
        ev = pfs.write(f, 0, np.zeros(4096, dtype=np.uint8))
        ev.defused = True
        engine.run()
        assert isinstance(ev.value, TargetDownError)
        assert pfs.targets[0].writes_rejected == 1
        assert 0 in pfs.known_down

    def test_zero_retries_surfaces_target_down(self):
        # Regression: TargetDownError must pass through a zero-retry
        # policy unchanged (it is a FileSystemError subclass).
        from repro.faults.retry import ReliableWriter
        from repro.mpi.world import World

        world = World(small_cluster(), 1, fs_spec=small_fs())
        world.pfs.targets[0].go_down()

        def program(mpi):
            fh = yield from mpi.file_open("/f")
            writer = ReliableWriter(mpi, fh, RetryPolicy(max_retries=0))
            yield from writer.write_at(0, np.zeros(4096, dtype=np.uint8))

        with pytest.raises(TargetDownError):
            world.run(program)

    def test_retry_remaps_onto_survivors(self):
        # With retries the rejection teaches the client the target is
        # down; the reissued write lands on the remap survivor inline.
        from repro.faults.retry import ReliableWriter
        from repro.mpi.world import World

        world = World(small_cluster(), 1, fs_spec=small_fs())
        world.pfs.targets[0].go_down()

        def program(mpi):
            fh = yield from mpi.file_open("/f")
            writer = ReliableWriter(mpi, fh, RetryPolicy(max_retries=3))
            yield from writer.write_at(0, np.arange(4096, dtype=np.int64)
                                       .astype(np.uint8))

        world.run(program)
        assert 0 in world.pfs.known_down
        assert world.pfs.open("/f").size == 4096

    def test_rank_crash_error_carries_rank_and_time(self):
        err = RankCrashError(3, 1.5)
        assert err.rank == 3
        assert err.time == 1.5
        assert "rank 3" in str(err)


class TestReElection:
    @staticmethod
    def cluster():
        from repro.hardware.cluster import Cluster
        from repro.sim.engine import Engine

        return Cluster(Engine(), small_cluster())

    def test_exclude_removes_rank_from_duty(self):
        from repro.collio.aggregation import select_aggregators

        cluster = self.cluster()
        before = select_aggregators(cluster, 8, 1 << 20, 1 << 16)
        victim = before[0]
        after = select_aggregators(cluster, 8, 1 << 20, 1 << 16,
                                   exclude=frozenset({victim}))
        assert victim not in after
        assert after  # someone took over

    def test_exclude_is_deterministic(self):
        from repro.collio.aggregation import select_aggregators

        cluster = self.cluster()
        a = select_aggregators(cluster, 8, 1 << 20, 1 << 16,
                               exclude=frozenset({0, 5}))
        b = select_aggregators(cluster, 8, 1 << 20, 1 << 16,
                               exclude=frozenset({0, 5}))
        assert a == b

    def test_all_excluded_falls_back_to_all_ranks(self):
        from repro.collio.aggregation import select_aggregators

        cluster = self.cluster()
        out = select_aggregators(cluster, 4, 1 << 20, 1 << 16,
                                 exclude=frozenset(range(4)))
        assert out  # degenerate case: no survivors -> use everyone


class TestPresets:
    @pytest.mark.parametrize(
        "name", ["flaky_aggregator", "ost_outage", "degraded_cluster"]
    )
    def test_crash_presets_have_permanent_faults(self, name):
        spec = fault_preset(name)
        assert spec.enabled
        assert spec.has_permanent

    def test_flaky_aggregator_preset_run_completes(self):
        baseline = run_collective_write(base_spec("write_overlap", seed=7))
        faults = fault_preset("flaky_aggregator").with_(
            crash_window=0.8 * baseline.elapsed)
        run = run_collective_write(base_spec("write_overlap", seed=7, faults=faults))
        assert run.verified
        assert run.recovery.completed
