"""The cycle journal: commit semantics, torn detection, interval algebra."""

import numpy as np
import pytest

from repro.fs.file import SimFile
from repro.recovery import CycleJournal, merge_intervals
from repro.recovery.manager import subtract_intervals
from repro.collio.view import FileView


def _commit(journal, offset, nbytes, payload=None, cycle=0):
    checksum = None if payload is None else CycleJournal.checksum(payload)
    journal.commit(agg_rank=0, agg_index=0, cycle=cycle, offset=offset,
                   nbytes=nbytes, checksum=checksum)


class TestMergeIntervals:
    def test_empty(self):
        assert merge_intervals([]) == []

    def test_disjoint_sorted(self):
        assert merge_intervals([(10, 20), (0, 5)]) == [(0, 5), (10, 20)]

    def test_overlapping_and_adjacent_merge(self):
        assert merge_intervals([(0, 10), (5, 15), (15, 20)]) == [(0, 20)]

    def test_empty_intervals_dropped(self):
        assert merge_intervals([(5, 5), (3, 1)]) == []


class TestCommit:
    def test_recommit_same_extent_replaces(self):
        journal = CycleJournal()
        _commit(journal, 0, 64, np.zeros(64, dtype=np.uint8))
        _commit(journal, 0, 64, np.ones(64, dtype=np.uint8))
        assert len(journal) == 1
        assert journal.commits == 2

    def test_records_in_file_order(self):
        journal = CycleJournal()
        _commit(journal, 128, 64)
        _commit(journal, 0, 64)
        assert [r.offset for r in journal.records()] == [0, 128]


class TestCommittedIntervals:
    def test_matching_checksum_is_committed(self):
        journal = CycleJournal()
        file = SimFile("/f")
        payload = np.arange(64, dtype=np.uint8)
        file.write(0, payload)
        _commit(journal, 0, 64, payload)
        intervals, torn = journal.committed_intervals(file)
        assert intervals == [(0, 64)]
        assert torn == 0

    def test_mismatching_checksum_is_torn(self):
        journal = CycleJournal()
        file = SimFile("/f")
        file.write(0, np.zeros(64, dtype=np.uint8))
        # Journal claims different bytes than the file holds: a commit
        # that raced the crash.  The extent must be replayed.
        _commit(journal, 0, 64, np.ones(64, dtype=np.uint8))
        intervals, torn = journal.committed_intervals(file)
        assert intervals == []
        assert torn == 1

    def test_checksummed_record_without_file_is_torn(self):
        journal = CycleJournal()
        _commit(journal, 0, 64, np.ones(64, dtype=np.uint8))
        intervals, torn = journal.committed_intervals(None)
        assert intervals == []
        assert torn == 1

    def test_checksum_free_record_is_trusted(self):
        # Size-only mode journals no payload; commits are taken on trust.
        journal = CycleJournal()
        _commit(journal, 0, 64)
        _commit(journal, 64, 64)
        intervals, torn = journal.committed_intervals(None)
        assert intervals == [(0, 128)]
        assert torn == 0


class TestSubtractIntervals:
    def test_no_intervals_returns_view(self):
        view = FileView.contiguous(0, 100)
        assert subtract_intervals(view, []) is view

    def test_committed_prefix_removed(self):
        view = FileView.contiguous(0, 100)
        out = subtract_intervals(view, [(0, 40)])
        assert list(out.offsets) == [40]
        assert list(out.lengths) == [60]
        assert list(out.local_offsets) == [40]

    def test_hole_splits_extent_keeping_local_offsets(self):
        view = FileView.contiguous(0, 100)
        out = subtract_intervals(view, [(30, 50)])
        assert list(out.offsets) == [0, 50]
        assert list(out.lengths) == [30, 50]
        assert list(out.local_offsets) == [0, 50]

    def test_fully_committed_view_is_empty(self):
        view = FileView.contiguous(10, 90)
        out = subtract_intervals(view, [(0, 200)])
        assert out.num_extents == 0
        assert out.total_bytes == 0

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_subtracted_plus_committed_covers_view(self, seed):
        rng = np.random.default_rng(seed)
        # Distinct multiples of 256 with lengths < 256: sorted,
        # non-overlapping extents as FileView requires.
        offsets = np.sort(rng.choice(1000, size=20, replace=False)) * 256
        lengths = rng.integers(1, 200, size=20)
        view = FileView(offsets.astype(np.int64), lengths.astype(np.int64))
        intervals = merge_intervals(
            [(int(lo), int(lo + ln)) for lo, ln in
             zip(rng.integers(0, 250_000, 10), rng.integers(1, 5_000, 10))]
        )
        out = subtract_intervals(view, intervals)
        # Every original byte is either committed or still in the view.
        covered = np.zeros(300_000, dtype=bool)
        for lo, hi in intervals:
            covered[lo:hi] = True
        for off, ln in zip(out.offsets, out.lengths):
            covered[off:off + ln] = True
        for off, ln in zip(view.offsets, view.lengths):
            assert covered[off:off + ln].all()
        # And nothing in the replay view is committed.
        for off, ln in zip(out.offsets, out.lengths):
            for lo, hi in intervals:
                assert off + ln <= lo or off >= hi
