"""Tests for the units helpers, error hierarchy and global config."""

import pytest

from repro import errors
from repro.config import DEFAULT_SCALE, scaled
from repro.units import (
    GiB,
    KiB,
    MB,
    MiB,
    fmt_bandwidth,
    fmt_bytes,
    fmt_time,
)


class TestUnits:
    def test_binary_sizes(self):
        assert KiB == 1024 and MiB == 1024**2 and GiB == 1024**3

    def test_fmt_bytes(self):
        assert fmt_bytes(512) == "512 B"
        assert fmt_bytes(2048) == "2.0 KiB"
        assert fmt_bytes(3 * MiB) == "3.0 MiB"
        assert fmt_bytes(5 * GiB) == "5.0 GiB"

    def test_fmt_time(self):
        assert fmt_time(2.5) == "2.500 s"
        assert fmt_time(3e-3) == "3.000 ms"
        assert fmt_time(4e-6) == "4.000 us"
        assert fmt_time(5e-9) == "5.0 ns"

    def test_fmt_bandwidth(self):
        assert fmt_bandwidth(2600 * MB) == "2.60 GB/s"
        assert fmt_bandwidth(110 * MB) == "110.0 MB/s"


class TestScaled:
    def test_divides(self):
        assert scaled(64 * MiB, 64) == MiB

    def test_floors_at_one(self):
        assert scaled(10, 100) == 1

    def test_scale_one_identity(self):
        assert scaled(12345, 1) == 12345

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            scaled(100, 0)

    def test_default_scale(self):
        assert DEFAULT_SCALE == 64


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in (
            "SimulationError",
            "DeadlockError",
            "MPIError",
            "RMAError",
            "DatatypeError",
            "FileSystemError",
            "ConfigurationError",
            "WorkloadError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_specializations(self):
        assert issubclass(errors.DeadlockError, errors.SimulationError)
        assert issubclass(errors.RMAError, errors.MPIError)
        assert issubclass(errors.DatatypeError, errors.MPIError)

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.DeadlockError("stuck")


class TestVersion:
    def test_version_exposed(self):
        import repro

        assert repro.__version__.count(".") == 2
