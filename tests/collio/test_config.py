"""Tests for CollectiveConfig validation and scaling."""

import pytest

from repro.collio.config import CB_BUFFER_SIZE_UNSCALED, CollectiveConfig
from repro.errors import ConfigurationError


class TestValidation:
    def test_defaults_valid(self):
        cfg = CollectiveConfig()
        assert cfg.cb_buffer_size == CB_BUFFER_SIZE_UNSCALED // 64

    def test_buffer_too_small(self):
        with pytest.raises(ConfigurationError):
            CollectiveConfig(cb_buffer_size=1)

    def test_aggregator_count_validated(self):
        with pytest.raises(ConfigurationError):
            CollectiveConfig(num_aggregators=0)
        assert CollectiveConfig(num_aggregators=None).num_aggregators is None

    def test_negative_overheads_rejected(self):
        for field in ("pack_overhead_per_extent", "unpack_overhead_per_extent",
                      "cycle_planning_overhead"):
            with pytest.raises(ConfigurationError):
                CollectiveConfig(**{field: -1e-9})


class TestForScale:
    def test_buffer_scales(self):
        assert CollectiveConfig.for_scale(1).cb_buffer_size == 32 * 1024 * 1024
        assert CollectiveConfig.for_scale(64).cb_buffer_size == 512 * 1024

    def test_cpu_costs_scale(self):
        full = CollectiveConfig.for_scale(1)
        scaled = CollectiveConfig.for_scale(64)
        assert scaled.pack_overhead_per_extent == pytest.approx(
            full.pack_overhead_per_extent / 64
        )
        assert scaled.cycle_planning_overhead == pytest.approx(
            full.cycle_planning_overhead / 64
        )

    def test_overrides_win(self):
        cfg = CollectiveConfig.for_scale(64, cb_buffer_size=4096, extent_cost_factor=8.0)
        assert cfg.cb_buffer_size == 4096
        assert cfg.extent_cost_factor == 8.0

    def test_with_copies(self):
        a = CollectiveConfig()
        b = a.with_(num_aggregators=3)
        assert b.num_aggregators == 3 and a.num_aggregators is None
        assert a.cb_buffer_size == b.cb_buffer_size


class TestExtentCostFactor:
    def test_factor_multiplies_pack_cost(self):
        from repro.collio.context import AlgoContext  # noqa: F401 (import check)
        # Behavioural check lives in the context: factor > 1 raises the
        # per-piece cost; verify the arithmetic through a real context.
        from repro.collio.plan import TwoPhasePlan
        from repro.collio.view import FileView
        from repro.fs import FsSpec
        from repro.hardware import ClusterSpec
        from repro.mpi import World
        from repro.units import MB
        import numpy as np

        world = World(
            ClusterSpec(name="t", num_nodes=2, cores_per_node=2,
                        network_bandwidth=1000 * MB),
            nprocs=2,
            fs_spec=FsSpec(name="f", num_targets=1, target_bandwidth=100 * MB,
                           target_latency=0, stripe_size=1024),
        )
        view = FileView.contiguous(0, 1000)
        plan = TwoPhasePlan.build({0: view, 1: FileView.contiguous(1000, 1000)},
                                  [0], [(0, 2000)], 500)

        def ctx_for(factor):
            from repro.mpi.mpiio import MPIFile
            cfg = CollectiveConfig(cb_buffer_size=500, extent_cost_factor=factor)
            fh = MPIFile(world.comm(0), "/x")
            return AlgoContext(world.comm(0), fh, plan, view,
                               np.zeros(1000, np.uint8), cfg, nsub=1)

        base = ctx_for(1.0).pack_cost(100, 5)
        boosted = ctx_for(4.0).pack_cost(100, 5)
        assert boosted > base
        # Single-piece contributions stay free regardless of the factor.
        assert ctx_for(4.0).pack_cost(100, 1) == 0.0
