"""End-to-end correctness of the two-phase collective read."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.collio import CollectiveConfig
from repro.collio.read import (
    READ_ALGORITHMS,
    SCATTER_PRIMITIVES,
    run_collective_read,
)
from repro.collio.view import FileView

from tests.collio.test_algorithms import interleaved_views, small_cluster, small_fs

ALL_READ_ALGOS = sorted(READ_ALGORITHMS)
ALL_SCATTERS = sorted(SCATTER_PRIMITIVES)
CFG = CollectiveConfig(cb_buffer_size=32 * 1024)


def contiguous_views(nprocs, per_rank):
    return {r: FileView.contiguous(r * per_rank, per_rank) for r in range(nprocs)}


@pytest.mark.parametrize("algorithm", ALL_READ_ALGOS)
@pytest.mark.parametrize("scatter", ALL_SCATTERS)
def test_contiguous_read_byte_exact(algorithm, scatter):
    res = run_collective_read(
        small_cluster(), small_fs(), nprocs=8,
        views=contiguous_views(8, 20_000),
        algorithm=algorithm, scatter=scatter, config=CFG, verify=True,
    )
    assert res.verified
    assert res.total_bytes == 8 * 20_000


@pytest.mark.parametrize("algorithm", ALL_READ_ALGOS)
@pytest.mark.parametrize("scatter", ALL_SCATTERS)
def test_interleaved_read_byte_exact(algorithm, scatter):
    res = run_collective_read(
        small_cluster(), small_fs(), nprocs=4,
        views=interleaved_views(4, 512, 32),
        algorithm=algorithm, scatter=scatter, config=CFG, verify=True,
    )
    assert res.verified


class TestStructure:
    def test_read_ahead_uses_async_reads(self):
        res = run_collective_read(
            small_cluster(), small_fs(), nprocs=4,
            views=contiguous_views(4, 50_000),
            algorithm="read_ahead", config=CFG,
        )
        posts = sum(s.times.get("read_post", 0) > 0 for s in res.per_rank_stats)
        assert posts > 0

    def test_no_overlap_uses_blocking_reads(self):
        res = run_collective_read(
            small_cluster(), small_fs(), nprocs=4,
            views=contiguous_views(4, 50_000),
            algorithm="no_overlap", config=CFG,
        )
        assert all(s.times.get("read_post", 0) == 0 for s in res.per_rank_stats)

    def test_gets_counted_for_one_sided(self):
        res = run_collective_read(
            small_cluster(), small_fs(), nprocs=4,
            views=contiguous_views(4, 50_000),
            algorithm="no_overlap", scatter="one_sided_get", config=CFG,
        )
        gets = sum(s.counters.get("gets_issued", 0) for s in res.per_rank_stats)
        assert gets > 0

    def test_unknown_names_rejected(self):
        with pytest.raises(KeyError):
            run_collective_read(
                small_cluster(), small_fs(), nprocs=2,
                views=contiguous_views(2, 1000), algorithm="bogus",
            )
        with pytest.raises(KeyError):
            run_collective_read(
                small_cluster(), small_fs(), nprocs=2,
                views=contiguous_views(2, 1000), scatter="bogus",
            )

    def test_verify_requires_data(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            run_collective_read(
                small_cluster(), small_fs(), nprocs=2,
                views=contiguous_views(2, 1000), verify=True, carry_data=False,
            )

    def test_size_only_mode_matches_data_mode_timing(self):
        views = contiguous_views(4, 30_000)
        a = run_collective_read(
            small_cluster(), small_fs(), 4, views,
            algorithm="read_ahead", config=CFG, carry_data=True,
        )
        b = run_collective_read(
            small_cluster(), small_fs(), 4, views,
            algorithm="read_ahead", config=CFG, carry_data=False,
        )
        assert a.elapsed == b.elapsed

    def test_single_cycle_drain(self):
        for algorithm in ALL_READ_ALGOS:
            res = run_collective_read(
                small_cluster(), small_fs(), nprocs=2,
                views=contiguous_views(2, 1000),
                algorithm=algorithm, config=CFG, verify=True,
            )
            assert res.verified, algorithm

    def test_bandwidth_reported(self):
        res = run_collective_read(
            small_cluster(), small_fs(), nprocs=4,
            views=contiguous_views(4, 50_000), config=CFG,
        )
        assert res.read_bandwidth == pytest.approx(res.total_bytes / res.elapsed)


@settings(deadline=None, max_examples=8)
@given(
    nprocs=st.integers(1, 6),
    per_rank=st.integers(1, 30_000),
    algorithm=st.sampled_from(ALL_READ_ALGOS),
    scatter=st.sampled_from(ALL_SCATTERS),
)
def test_any_shape_read_byte_exact(nprocs, per_rank, algorithm, scatter):
    res = run_collective_read(
        small_cluster(), small_fs(), nprocs=nprocs,
        views=contiguous_views(nprocs, per_rank),
        algorithm=algorithm, scatter=scatter,
        config=CollectiveConfig(cb_buffer_size=16 * 1024), verify=True,
    )
    assert res.verified
