"""The cross-run plan cache: content keying, counters, eviction."""

import numpy as np
import pytest

from repro.api import build_plan
from repro.collio import CollectiveConfig, FileView
from repro.collio.plan import (
    cached_plan,
    plan_cache_stats,
    plan_content_key,
    reset_plan_cache,
    store_plan,
)
from repro.hardware import Cluster, ClusterSpec
from repro.sim import Engine
from repro.units import MB


@pytest.fixture(autouse=True)
def fresh_cache():
    reset_plan_cache()
    yield
    reset_plan_cache()


def make_cluster(nodes=4, cores=4):
    spec = ClusterSpec(name="t", num_nodes=nodes, cores_per_node=cores,
                       network_bandwidth=1000 * MB)
    return Cluster(Engine(), spec)


def views_for(nprocs, per_rank=64 * 1024):
    return {r: FileView.contiguous(r * per_rank, per_rank) for r in range(nprocs)}


CFG = CollectiveConfig(cb_buffer_size=32 * 1024)


class TestContentKey:
    def test_equal_views_hash_equal_regardless_of_identity(self):
        a = plan_content_key(views_for(4), nprocs=4, cycle_bytes=32 * 1024)
        b = plan_content_key(views_for(4), nprocs=4, cycle_bytes=32 * 1024)
        assert a == b

    def test_view_content_changes_the_key(self):
        base = views_for(4)
        shifted = dict(base)
        shifted[3] = FileView.contiguous(10 * MB, 64 * 1024)
        assert (plan_content_key(base, nprocs=4)
                != plan_content_key(shifted, nprocs=4))

    def test_ingredients_change_the_key(self):
        v = views_for(4)
        assert (plan_content_key(v, nprocs=4, cycle_bytes=1)
                != plan_content_key(v, nprocs=4, cycle_bytes=2))

    def test_noncontiguous_views_participate_by_extent_bytes(self):
        offs = np.array([0, 8192, 65536], dtype=np.int64)
        lens = np.array([4096, 4096, 4096], dtype=np.int64)
        a = plan_content_key({0: FileView(offs, lens)}, nprocs=1)
        b = plan_content_key({0: FileView(offs.copy(), lens.copy())}, nprocs=1)
        assert a == b


class TestCounters:
    def test_miss_then_hit(self):
        cluster = make_cluster()
        plan1 = build_plan(cluster, 16, views_for(16), CFG, cycle_bytes=32 * 1024)
        stats = plan_cache_stats()
        assert stats == {"hits": 0, "misses": 1, "size": 1}
        plan2 = build_plan(cluster, 16, views_for(16), CFG, cycle_bytes=32 * 1024)
        stats = plan_cache_stats()
        assert stats == {"hits": 1, "misses": 1, "size": 1}
        assert plan2 is plan1  # the cached object itself, not a rebuild

    def test_different_placement_misses(self):
        # Same views, same config — but the ranks sit on different nodes,
        # so aggregator selection could differ and the plan must rebuild.
        views = views_for(8)
        build_plan(make_cluster(nodes=2, cores=4), 8, views, CFG, cycle_bytes=32 * 1024)
        build_plan(make_cluster(nodes=4, cores=2), 8, views, CFG, cycle_bytes=32 * 1024)
        assert plan_cache_stats()["misses"] == 2
        assert plan_cache_stats()["hits"] == 0

    def test_exclude_ranks_misses(self):
        cluster = make_cluster()
        views = views_for(16)
        build_plan(cluster, 16, views, CFG, cycle_bytes=32 * 1024)
        build_plan(cluster, 16, views, CFG, cycle_bytes=32 * 1024,
                   exclude_ranks=frozenset({0}))
        assert plan_cache_stats()["misses"] == 2

    def test_reset_zeroes_everything(self):
        cluster = make_cluster()
        build_plan(cluster, 16, views_for(16), CFG, cycle_bytes=32 * 1024)
        reset_plan_cache()
        assert plan_cache_stats() == {"hits": 0, "misses": 0, "size": 0}


class TestEviction:
    def test_cap_is_enforced_fifo(self):
        from repro.collio import plan as plan_mod

        cap = plan_mod._PLAN_CACHE_CAP
        for i in range(cap + 5):
            store_plan(f"key-{i}", object())
        assert plan_cache_stats()["size"] == cap
        # Oldest entries fell out; newest survive.
        assert cached_plan("key-0") is None
        assert cached_plan(f"key-{cap + 4}") is not None

    def test_store_is_idempotent(self):
        sentinel = object()
        store_plan("k", sentinel)
        store_plan("k", object())
        assert cached_plan("k") is sentinel
        assert plan_cache_stats()["size"] == 1
