"""End-to-end correctness of all algorithm x primitive combinations.

The golden invariant: every combination produces a byte-identical file
equal to the union of the ranks' views scattered with their payloads.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.collio import ALGORITHMS, CollectiveConfig, SHUFFLE_PRIMITIVES, run_collective_write
from repro.collio.view import FileView
from repro.fs import FsSpec
from repro.hardware import ClusterSpec
from repro.units import MB

ALL_ALGORITHMS = sorted(ALGORITHMS)
ALL_SHUFFLES = sorted(SHUFFLE_PRIMITIVES)


def small_cluster(**kw):
    base = dict(
        name="t",
        num_nodes=4,
        cores_per_node=4,
        network_bandwidth=1000 * MB,
        network_latency=1e-6,
        eager_threshold=1024,
    )
    base.update(kw)
    return ClusterSpec(**base)


def small_fs(**kw):
    base = dict(
        name="tfs",
        num_targets=4,
        target_bandwidth=300 * MB,
        target_latency=5e-5,
        stripe_size=4096,
    )
    base.update(kw)
    return FsSpec(**base)


def contiguous_views(nprocs, per_rank):
    return {r: FileView.contiguous(r * per_rank, per_rank) for r in range(nprocs)}


def interleaved_views(nprocs, tile, ntiles):
    views = {}
    for r in range(nprocs):
        offs = np.arange(ntiles, dtype=np.int64) * (tile * nprocs) + r * tile
        views[r] = FileView(offs, np.full(ntiles, tile, dtype=np.int64))
    return views


CFG = CollectiveConfig(cb_buffer_size=32 * 1024)


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
@pytest.mark.parametrize("shuffle", ALL_SHUFFLES)
def test_contiguous_views_byte_exact(algorithm, shuffle):
    res = run_collective_write(
        small_cluster(), small_fs(), nprocs=8,
        views=contiguous_views(8, 20_000),
        algorithm=algorithm, shuffle=shuffle, config=CFG, verify=True,
    )
    assert res.verified
    assert res.total_bytes == 8 * 20_000


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
@pytest.mark.parametrize("shuffle", ALL_SHUFFLES)
def test_interleaved_views_byte_exact(algorithm, shuffle):
    res = run_collective_write(
        small_cluster(), small_fs(), nprocs=4,
        views=interleaved_views(4, 512, 32),
        algorithm=algorithm, shuffle=shuffle, config=CFG, verify=True,
    )
    assert res.verified


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
def test_rendezvous_sized_messages(algorithm):
    """Per-cycle contributions above the eager threshold (rendezvous path)."""
    res = run_collective_write(
        small_cluster(eager_threshold=512), small_fs(), nprocs=4,
        views=contiguous_views(4, 64 * 1024),
        algorithm=algorithm, shuffle="two_sided",
        config=CollectiveConfig(cb_buffer_size=64 * 1024), verify=True,
    )
    assert res.verified


class TestStructure:
    def test_overlap_algorithms_have_double_cycles(self):
        base = run_collective_write(
            small_cluster(), small_fs(), nprocs=4,
            views=contiguous_views(4, 50_000),
            algorithm="no_overlap", config=CFG, verify=True,
        )
        over = run_collective_write(
            small_cluster(), small_fs(), nprocs=4,
            views=contiguous_views(4, 50_000),
            algorithm="write_overlap", config=CFG, verify=True,
        )
        assert over.cycle_bytes == CFG.cb_buffer_size // 2
        assert base.cycle_bytes == CFG.cb_buffer_size
        assert over.num_cycles >= 2 * base.num_cycles - 1

    def test_async_algorithms_use_aio(self):
        for name, expect_async in [("write_overlap", True), ("comm_overlap", False)]:
            res = run_collective_write(
                small_cluster(), small_fs(), nprocs=4,
                views=contiguous_views(4, 50_000),
                algorithm=name, config=CFG,
            )
            # stats: write posts happen only for async algorithms
            posts = sum(s.times.get("write_post", 0) > 0 for s in res.per_rank_stats)
            assert (posts > 0) == expect_async

    def test_single_rank_world(self):
        res = run_collective_write(
            small_cluster(), small_fs(), nprocs=1,
            views=contiguous_views(1, 10_000),
            algorithm="write_comm2", config=CFG, verify=True,
        )
        assert res.verified and res.num_aggregators == 1

    def test_single_cycle_case(self):
        """Total data fits one cycle: the pipelines' drain paths still work."""
        for algorithm in ALL_ALGORITHMS:
            res = run_collective_write(
                small_cluster(), small_fs(), nprocs=2,
                views=contiguous_views(2, 1000),
                algorithm=algorithm, config=CFG, verify=True,
            )
            assert res.verified, algorithm

    def test_stats_phases_recorded(self):
        res = run_collective_write(
            small_cluster(), small_fs(), nprocs=4,
            views=contiguous_views(4, 50_000),
            algorithm="no_overlap", config=CFG,
        )
        agg_stats = res.per_rank_stats[0]  # rank 0 is an aggregator
        assert agg_stats.time_in("shuffle") > 0
        assert agg_stats.time_in("write") > 0
        assert agg_stats.time_in("total") > 0

    def test_views_must_cover_all_ranks(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            run_collective_write(
                small_cluster(), small_fs(), nprocs=4,
                views=contiguous_views(3, 1000),
            )

    def test_result_bandwidth_consistent(self):
        res = run_collective_write(
            small_cluster(), small_fs(), nprocs=4,
            views=contiguous_views(4, 50_000), config=CFG,
        )
        assert res.write_bandwidth == pytest.approx(res.total_bytes / res.elapsed)


@settings(deadline=None, max_examples=12)
@given(
    nprocs=st.integers(1, 8),
    per_rank=st.integers(1, 40_000),
    algorithm=st.sampled_from(ALL_ALGORITHMS),
    shuffle=st.sampled_from(ALL_SHUFFLES),
    cb=st.sampled_from([4 * 1024, 32 * 1024, 512 * 1024]),
)
def test_any_shape_byte_exact(nprocs, per_rank, algorithm, shuffle, cb):
    """Property: arbitrary sizes/buffers never corrupt the file."""
    res = run_collective_write(
        small_cluster(), small_fs(), nprocs=nprocs,
        views=contiguous_views(nprocs, per_rank),
        algorithm=algorithm, shuffle=shuffle,
        config=CollectiveConfig(cb_buffer_size=cb), verify=True,
    )
    assert res.verified
