"""RunSpec consolidation: validation, replace, and the legacy-kwargs shim."""

import warnings

import pytest

from repro.collio import CollectiveConfig, FileView, RunSpec, run_collective_write
from repro.errors import ConfigurationError
from repro.fs import FsSpec
from repro.hardware import ClusterSpec
from repro.units import MB


def small_cluster():
    return ClusterSpec(
        name="t", num_nodes=4, cores_per_node=4,
        network_bandwidth=1000 * MB, network_latency=1e-6,
        eager_threshold=1024,
    )


def small_fs():
    return FsSpec(
        name="tfs", num_targets=4, target_bandwidth=300 * MB,
        target_latency=5e-5, stripe_size=4096,
    )


def views_for(nprocs, per_rank=10_000):
    return {r: FileView.contiguous(r * per_rank, per_rank) for r in range(nprocs)}


CFG = CollectiveConfig(cb_buffer_size=32 * 1024)


def spec(**overrides):
    kwargs = dict(
        cluster=small_cluster(), fs=small_fs(), nprocs=4,
        views=views_for(4), config=CFG, carry_data=False,
    )
    kwargs.update(overrides)
    return RunSpec(**kwargs)


class TestValidate:
    def test_valid_spec_returns_self(self):
        s = spec()
        assert s.validate() is s

    def test_rejects_bad_nprocs(self):
        with pytest.raises(ConfigurationError, match="nprocs"):
            spec(nprocs=0, views={}).validate()

    def test_rejects_view_gap(self):
        with pytest.raises(ConfigurationError, match="views must cover"):
            spec(views=views_for(3)).validate()

    def test_rejects_unknown_algorithm_and_shuffle(self):
        with pytest.raises(ConfigurationError, match="unknown algorithm"):
            spec(algorithm="bogus").validate()
        with pytest.raises(ConfigurationError, match="unknown shuffle"):
            spec(shuffle="bogus").validate()

    def test_auto_is_a_valid_algorithm(self):
        spec(algorithm="auto").validate()

    def test_rejects_verify_without_payloads(self):
        with pytest.raises(ConfigurationError, match="carry_data"):
            spec(verify=True, carry_data=False).validate()

    def test_rejects_bad_trace_bound(self):
        with pytest.raises(ConfigurationError, match="max_trace_records"):
            spec(max_trace_records=0).validate()


class TestReplace:
    def test_replace_creates_varied_copy(self):
        base = spec()
        varied = base.replace(algorithm="write_comm2", seed=99)
        assert varied is not base
        assert varied.algorithm == "write_comm2"
        assert varied.seed == 99
        assert base.algorithm == "write_overlap"  # original untouched

    def test_spec_is_frozen(self):
        with pytest.raises(AttributeError):
            spec().algorithm = "no_overlap"

    def test_resolved_config_folds_retry_in(self):
        from repro.faults import RetryPolicy

        s = spec(retry=RetryPolicy(max_retries=7))
        assert s.resolved_config().retry.max_retries == 7
        assert s.config.retry is None  # the shared config is untouched


class TestRunWithSpec:
    def test_runspec_call_works_without_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            result = run_collective_write(spec())
        assert result.elapsed > 0

    def test_spec_plus_extra_args_is_a_type_error(self):
        with pytest.raises(TypeError, match="no further arguments"):
            run_collective_write(spec(), algorithm="no_overlap")

    def test_trace_and_metrics_surfaces(self):
        result = run_collective_write(spec(trace=True))
        assert result.spans
        assert result.metrics["counters"]["sim.events_processed"] > 0
        assert result.metrics["gauges"]["run.elapsed"] == result.elapsed
        untraced = run_collective_write(spec())
        assert untraced.spans == []
        assert "span.io.dur" not in untraced.metrics["histograms"]


class TestLegacyShim:
    def test_legacy_kwargs_warn_and_match_runspec(self):
        s = spec()
        with pytest.warns(DeprecationWarning, match="RunSpec"):
            legacy = run_collective_write(
                small_cluster(), small_fs(), 4, views_for(4),
                algorithm="write_overlap", config=CFG, carry_data=False,
            )
        modern = run_collective_write(s)
        assert legacy.elapsed == modern.elapsed
        assert legacy.num_cycles == modern.num_cycles

    def test_legacy_shim_warns_exactly_once_and_is_byte_identical(self):
        # The shim must warn once per call — not zero, not per-argument —
        # and produce output indistinguishable from the RunSpec path:
        # identical file bytes (sha of the PFS read-back) and an
        # identical span timeline.
        from repro.obs.export import chrome_trace_json

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = run_collective_write(
                small_cluster(), small_fs(), 4, views_for(4),
                algorithm="write_overlap", config=CFG,
                verify=True, trace=True,
            )
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        modern = run_collective_write(spec(
            algorithm="write_overlap", carry_data=True,
            verify=True, trace=True,
        ))
        assert legacy.verified is True and modern.verified is True
        assert legacy.file_sha256 == modern.file_sha256
        assert legacy.elapsed == modern.elapsed
        assert chrome_trace_json(legacy.spans) == chrome_trace_json(modern.spans)

    def test_legacy_renamed_keywords_still_work(self):
        with pytest.warns(DeprecationWarning):
            result = run_collective_write(
                cluster_spec=small_cluster(), fs_spec=small_fs(),
                nprocs=4, views=views_for(4), config=CFG, carry_data=False,
            )
        assert result.elapsed > 0

    def test_legacy_duplicate_argument_rejected(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError, match="duplicate argument"):
                run_collective_write(
                    small_cluster(), small_fs(), 4, views_for(4),
                    cluster_spec=small_cluster(),
                )

    def test_legacy_unknown_argument_rejected(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError, match="unknown argument"):
                run_collective_write(
                    small_cluster(), small_fs(), 4, views_for(4),
                    config=CFG, carry_data=False, bogus_flag=True,
                )

    def test_legacy_warns_once_per_call_site_not_per_call(self):
        # The same source line calling the shim repeatedly (a sweep loop,
        # say) must not flood the log: one warning for the site, silence
        # after.  A different call site still gets its own warning.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(3):
                run_collective_write(
                    small_cluster(), small_fs(), 4, views_for(4),
                    config=CFG, carry_data=False,
                )
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "RunSpec" in str(deprecations[0].message)

    def test_strict_api_env_raises_instead_of_warning(self, monkeypatch):
        monkeypatch.setenv("REPRO_STRICT_API", "1")
        with pytest.raises(TypeError, match="REPRO_STRICT_API"):
            run_collective_write(
                small_cluster(), small_fs(), 4, views_for(4),
                config=CFG, carry_data=False,
            )

    def test_strict_api_zero_means_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_STRICT_API", "0")
        with pytest.warns(DeprecationWarning):
            result = run_collective_write(
                small_cluster(), small_fs(), 4, views_for(4),
                config=CFG, carry_data=False,
            )
        assert result.elapsed > 0

    def test_strict_api_leaves_runspec_path_alone(self, monkeypatch):
        monkeypatch.setenv("REPRO_STRICT_API", "1")
        assert run_collective_write(spec()).elapsed > 0
