"""Tests for FileView (extent lists and clipping)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.collio.view import FileView
from repro.errors import WorkloadError
from repro.mpi.datatypes import vector


class TestConstruction:
    def test_contiguous(self):
        v = FileView.contiguous(100, 50)
        assert v.num_extents == 1
        assert v.total_bytes == 50
        assert v.file_range == (100, 150)

    def test_empty(self):
        v = FileView.contiguous(0, 0)
        assert v.num_extents == 0 and v.total_bytes == 0
        assert v.file_range == (0, 0)

    def test_from_datatype(self):
        v = FileView.from_datatype(vector(3, 4, 10), disp=100)
        assert v.offsets.tolist() == [100, 110, 120]
        assert v.local_offsets.tolist() == [0, 4, 8]

    def test_local_offsets_are_cumulative(self):
        v = FileView(np.array([0, 100, 200]), np.array([10, 20, 30]))
        assert v.local_offsets.tolist() == [0, 10, 30]

    def test_rejects_overlap(self):
        with pytest.raises(WorkloadError):
            FileView(np.array([0, 5]), np.array([10, 10]))

    def test_rejects_unsorted(self):
        with pytest.raises(WorkloadError):
            FileView(np.array([100, 0]), np.array([10, 10]))

    def test_rejects_nonpositive_length(self):
        with pytest.raises(WorkloadError):
            FileView(np.array([0]), np.array([0]))

    def test_rejects_negative_offset(self):
        with pytest.raises(WorkloadError):
            FileView(np.array([-4]), np.array([4]))


class TestClip:
    def setup_method(self):
        self.v = FileView(np.array([0, 100, 200]), np.array([50, 50, 50]))

    def test_whole_view(self):
        offs, lens, locs = self.v.clip(0, 1000)
        assert offs.tolist() == [0, 100, 200]
        assert locs.tolist() == [0, 50, 100]

    def test_middle_extent_only(self):
        offs, lens, locs = self.v.clip(100, 150)
        assert offs.tolist() == [100] and lens.tolist() == [50]

    def test_head_trim(self):
        offs, lens, locs = self.v.clip(120, 300)
        assert offs.tolist() == [120, 200]
        assert lens.tolist() == [30, 50]
        assert locs.tolist() == [70, 100]  # local offset shifts with the trim

    def test_tail_trim(self):
        offs, lens, locs = self.v.clip(0, 30)
        assert offs.tolist() == [0] and lens.tolist() == [30] and locs.tolist() == [0]

    def test_both_trims_single_extent(self):
        offs, lens, locs = self.v.clip(110, 130)
        assert offs.tolist() == [110] and lens.tolist() == [20] and locs.tolist() == [60]

    def test_gap_returns_empty(self):
        offs, lens, locs = self.v.clip(60, 90)
        assert len(offs) == 0

    def test_empty_range(self):
        offs, _, _ = self.v.clip(100, 100)
        assert len(offs) == 0

    def test_bytes_in(self):
        assert self.v.bytes_in(0, 1000) == 150
        assert self.v.bytes_in(25, 125) == 50  # 25 tail + 25 head


@given(
    extents=st.lists(st.tuples(st.integers(0, 50), st.integers(1, 30)), min_size=1, max_size=20),
    lo=st.integers(0, 2000),
    width=st.integers(0, 2000),
)
def test_clip_matches_brute_force(extents, lo, width):
    """clip() returns exactly the per-byte intersection, preserving the
    local-buffer mapping."""
    # Build non-overlapping sorted extents from gap/length pairs.
    offs, lens, pos = [], [], 0
    for gap, ln in extents:
        pos += gap
        offs.append(pos)
        lens.append(ln)
        pos += ln
    v = FileView(np.array(offs), np.array(lens))
    hi = lo + width
    c_offs, c_lens, c_locs = v.clip(lo, hi)
    # Brute force: map every file byte -> local byte, intersect.
    expected = {}
    local = 0
    for o, ln in zip(offs, lens):
        for b in range(o, o + ln):
            if lo <= b < hi:
                expected[b] = local
            local += 1
    got = {}
    for o, ln, lc in zip(c_offs, c_lens, c_locs):
        for i in range(ln):
            got[o + i] = lc + i
    assert got == expected
