"""Tests for aggregator selection, domain partitioning and cycle planning."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.collio.aggregation import select_aggregators
from repro.collio.domains import partition_domains
from repro.collio.plan import TwoPhasePlan
from repro.collio.view import FileView
from repro.hardware import Cluster, ClusterSpec
from repro.sim import Engine
from repro.units import MB


def make_cluster(nodes=4, cores=4):
    spec = ClusterSpec(name="t", num_nodes=nodes, cores_per_node=cores,
                       network_bandwidth=1000 * MB)
    return Cluster(Engine(), spec)


class TestAggregatorSelection:
    def test_one_per_node_with_enough_data(self):
        cl = make_cluster(nodes=4, cores=4)
        aggs = select_aggregators(cl, nprocs=16, total_bytes=100 * MB, cb_buffer_size=MB)
        assert aggs == [0, 4, 8, 12]  # first rank of each node

    def test_small_data_fewer_aggregators(self):
        cl = make_cluster()
        aggs = select_aggregators(cl, nprocs=16, total_bytes=1000, cb_buffer_size=MB)
        assert aggs == [0]

    def test_explicit_count(self):
        cl = make_cluster()
        aggs = select_aggregators(cl, 16, 100 * MB, MB, num_aggregators=2)
        assert aggs == [0, 4]

    def test_count_capped_at_nprocs(self):
        cl = make_cluster()
        aggs = select_aggregators(cl, 3, 100 * MB, MB, num_aggregators=10)
        assert aggs == [0, 1, 2]

    def test_partial_node_usage(self):
        cl = make_cluster(nodes=4, cores=4)
        aggs = select_aggregators(cl, nprocs=6, total_bytes=100 * MB, cb_buffer_size=MB)
        # Ranks 0-3 on node 0, ranks 4-5 on node 1: one agg per used node.
        assert aggs == [0, 4]


class TestDomains:
    def test_even_split(self):
        assert partition_domains(0, 100, 4) == [(0, 25), (25, 50), (50, 75), (75, 100)]

    def test_remainder_spread(self):
        doms = partition_domains(0, 10, 3)
        assert doms == [(0, 4), (4, 7), (7, 10)]
        assert sum(hi - lo for lo, hi in doms) == 10

    def test_stripe_alignment(self):
        doms = partition_domains(0, 100, 3, stripe_size=16)
        # Interior boundaries land on multiples of 16.
        assert doms[0][1] % 16 == 0 and doms[1][1] % 16 == 0
        assert doms[0][0] == 0 and doms[-1][1] == 100

    def test_domains_tile_range(self):
        doms = partition_domains(37, 1234, 5, stripe_size=64)
        assert doms[0][0] == 37 and doms[-1][1] == 1234
        for (a, b), (c, d) in zip(doms, doms[1:]):
            assert b == c and a <= b

    def test_more_aggs_than_stripes(self):
        doms = partition_domains(0, 32, 8, stripe_size=16)
        assert doms[0][0] == 0 and doms[-1][1] == 32
        for lo, hi in doms:
            assert lo <= hi

    def test_empty_range(self):
        assert partition_domains(5, 5, 2) == [(5, 5), (5, 5)]

    def test_validation(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            partition_domains(10, 5, 2)
        with pytest.raises(ConfigurationError):
            partition_domains(0, 10, 0)


class TestPlan:
    def build_simple(self, nprocs=4, per_rank=1000, cycle_bytes=500, naggs=2):
        views = {r: FileView.contiguous(r * per_rank, per_rank) for r in range(nprocs)}
        total = nprocs * per_rank
        domains = partition_domains(0, total, naggs)
        aggs = list(range(naggs))
        return views, TwoPhasePlan.build(views, aggs, domains, cycle_bytes)

    def test_cycle_count(self):
        _, plan = self.build_simple()
        # Each domain is 2000 bytes, cycles of 500 -> 4 cycles.
        assert plan.num_cycles == 4
        assert plan.cycles_per_agg == [4, 4]

    def test_every_byte_planned_once(self):
        views, plan = self.build_simple()
        plan.check_consistency(views)

    def test_send_assignments_point_into_cycle_ranges(self):
        views, plan = self.build_simple(nprocs=4, per_rank=1000, cycle_bytes=300, naggs=3)
        plan.check_consistency(views)

    def test_write_range_covers_cycle_data(self):
        _, plan = self.build_simple()
        for a in range(2):
            for c in range(plan.cycles_per_agg[a]):
                rng = plan.write_range(a, c)
                crange = plan.cycle_range(a, c)
                assert rng is not None and crange is not None
                assert crange[0] <= rng[0] < rng[1] <= crange[1]

    def test_cycle_range_none_past_domain(self):
        views = {0: FileView.contiguous(0, 1000), 1: FileView.contiguous(1000, 100)}
        domains = [(0, 1000), (1000, 1100)]
        plan = TwoPhasePlan.build(views, [0, 1], domains, 400)
        assert plan.cycles_per_agg == [3, 1]
        assert plan.cycle_range(1, 1) is None
        assert plan.cycle_range(1, 0) == (1000, 1100)

    def test_extent_split_across_cycles(self):
        views = {0: FileView.contiguous(0, 1000)}
        plan = TwoPhasePlan.build(views, [0], [(0, 1000)], 256)
        sends = [plan.sends_for(0, c) for c in range(plan.num_cycles)]
        sizes = [sum(sa.nbytes for sa in s) for s in sends]
        assert sizes == [256, 256, 256, 232]

    def test_recv_expectations_match_sends(self):
        views, plan = self.build_simple(nprocs=4, per_rank=997, cycle_bytes=301, naggs=3)
        for a in range(3):
            for c in range(plan.num_cycles):
                expected = {e.src_rank: e.nbytes for e in plan.recvs_for(a, c)}
                actual = {}
                for r in range(4):
                    n = sum(sa.nbytes for sa in plan.sends_for(r, c) if sa.agg_index == a)
                    if n:
                        actual[r] = n
                assert expected == actual

    def test_interleaved_views(self):
        """Strided (tile-like) views split correctly across cycles."""
        nprocs, tile, ntiles = 4, 64, 16
        views = {}
        for r in range(nprocs):
            offs = np.arange(ntiles, dtype=np.int64) * (tile * nprocs) + r * tile
            views[r] = FileView(offs, np.full(ntiles, tile, dtype=np.int64))
        total = nprocs * tile * ntiles
        plan = TwoPhasePlan.build(views, [0, 1], partition_domains(0, total, 2), 512)
        plan.check_consistency(views)

    def test_empty_views_allowed(self):
        views = {0: FileView.contiguous(0, 100), 1: FileView.contiguous(0, 0)}
        plan = TwoPhasePlan.build(views, [0], [(0, 100)], 50)
        plan.check_consistency(views)
        assert plan.total_bytes == 100


@settings(deadline=None, max_examples=50)
@given(
    nprocs=st.integers(1, 8),
    per_rank=st.integers(1, 3000),
    cycle_bytes=st.integers(1, 2048),
    naggs=st.integers(1, 4),
)
def test_plan_conservation_property(nprocs, per_rank, cycle_bytes, naggs):
    """Every byte of every view is assigned to exactly one (agg, cycle)."""
    views = {r: FileView.contiguous(r * per_rank, per_rank) for r in range(nprocs)}
    domains = partition_domains(0, nprocs * per_rank, naggs)
    plan = TwoPhasePlan.build(views, list(range(naggs)), domains, cycle_bytes)
    plan.check_consistency(views)
    planned = sum(
        sa.nbytes for (_r, _c), sas in plan._send.items() for sa in sas
    )
    assert planned == nprocs * per_rank
