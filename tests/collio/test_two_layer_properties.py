"""Hypothesis properties of domain partitioning and two-layer plans.

Two invariants the two-layer refactor must never bend:

* ``partition_domains`` tiles the file range exactly once — every byte
  belongs to precisely one aggregator domain, whatever the stripe
  alignment does to the interior boundaries;
* a two-layer run is byte-identical to a single-layer run of the same
  seed: node-local gathering is pure routing, never a data transform.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.collio.aggregation import elect_leaders
from repro.collio.api import RunSpec, run_collective_write
from repro.collio.domains import partition_domains
from repro.collio.plan import TwoLayerPlan
from repro.collio.view import FileView
from repro.hardware import Cluster
from repro.sim import Engine
from tests.collio.test_algorithms import ALL_ALGORITHMS, ALL_SHUFFLES, small_cluster, small_fs


@settings(deadline=None, max_examples=200)
@given(
    start=st.integers(0, 10_000),
    length=st.integers(0, 1_000_000),
    naggs=st.integers(1, 16),
    stripe_size=st.sampled_from([None, 1, 7, 512, 4096, 65536]),
)
def test_partition_tiles_range_exactly_once(start, length, naggs, stripe_size):
    """Domains are contiguous, ordered, and tile [start, end) exactly."""
    end = start + length
    domains = partition_domains(start, end, naggs, stripe_size=stripe_size)
    assert len(domains) == naggs
    assert domains[0][0] == start
    assert domains[-1][1] == end
    for lo, hi in domains:
        assert lo <= hi
    # Adjacent domains share a boundary: no gap, no overlap.
    for (_, hi), (lo, _) in zip(domains, domains[1:]):
        assert hi == lo
    assert sum(hi - lo for lo, hi in domains) == length


def interleaved_views(nprocs: int, block: int, count: int) -> dict[int, FileView]:
    """IOR-style interleave: rank r owns blocks r, r+nprocs, r+2*nprocs..."""
    return {
        r: FileView(
            np.array([(i * nprocs + r) * block for i in range(count)], dtype=np.int64),
            np.full(count, block, dtype=np.int64),
        )
        for r in range(nprocs)
    }


@settings(deadline=None, max_examples=50)
@given(
    nprocs=st.integers(1, 16),
    block=st.integers(1, 5000),
    count=st.integers(1, 6),
    cycle_bytes=st.integers(1, 4096),
    naggs=st.integers(1, 4),
)
def test_two_layer_plan_conserves_bytes(nprocs, block, count, cycle_bytes, naggs):
    """The layered schedule still assigns every byte exactly once."""
    naggs = min(naggs, nprocs)
    views = interleaved_views(nprocs, block, count)
    domains = partition_domains(0, nprocs * count * block, naggs, stripe_size=4096)
    cluster = Cluster(Engine(), small_cluster(num_nodes=4, cores_per_node=4))
    leaders = elect_leaders(cluster, nprocs)
    plan = TwoLayerPlan.build_two_layer(
        views, list(range(naggs)), domains, cycle_bytes, leaders,
    )
    plan.check_consistency(views)
    # Leader-level sends carry exactly the planned byte total.
    planned = sum(
        sa.nbytes for (_r, _c), sas in plan._send.items() for sa in sas
    )
    assert planned == nprocs * count * block


@settings(deadline=None, max_examples=12)
@given(
    nprocs=st.integers(2, 8),
    block=st.integers(64, 4096),
    count=st.integers(1, 5),
    algorithm=st.sampled_from(ALL_ALGORITHMS),
    shuffle=st.sampled_from(ALL_SHUFFLES),
    seed=st.integers(0, 2**16),
)
def test_two_layer_byte_identical_to_single_layer(
    nprocs, block, count, algorithm, shuffle, seed
):
    """Same seed, same views: both layerings verify against the views."""
    views = interleaved_views(nprocs, block, count)
    results = {}
    for two_layer in (False, True):
        spec = RunSpec(
            cluster=small_cluster(), fs=small_fs(), nprocs=nprocs,
            views=views, algorithm=algorithm, shuffle=shuffle,
            two_layer=two_layer, seed=seed, verify=True,
        )
        results[two_layer] = run_collective_write(spec)
    # verify=True checked both files against the same expected bytes, so
    # verified twice == byte-identical files.
    assert results[False].verified is True
    assert results[True].verified is True
    assert results[False].num_cycles == results[True].num_cycles
    assert results[False].total_bytes == results[True].total_bytes
