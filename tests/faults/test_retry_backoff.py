"""Satellite 2: capped exponential backoff with deterministic jitter."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import RetryPolicy


class TestDefaultsBitIdentical:
    """A policy without cap/jitter reproduces the pre-existing delays."""

    def test_uncapped_exponential(self):
        p = RetryPolicy(backoff_base=1e-4, backoff_factor=2.0)
        for attempt in range(1, 8):
            assert p.backoff_for(attempt) == 1e-4 * 2.0 ** (attempt - 1)

    def test_key_is_ignored_without_jitter(self):
        p = RetryPolicy(backoff_base=1e-4)
        assert p.backoff_for(3, key=(0, 0)) == p.backoff_for(3, key=(7, 12345))


class TestCap:
    def test_cap_clamps(self):
        p = RetryPolicy(backoff_base=1e-4, backoff_factor=2.0, backoff_cap=4e-4)
        assert p.backoff_for(1) == 1e-4
        assert p.backoff_for(2) == 2e-4
        assert p.backoff_for(3) == 4e-4
        assert p.backoff_for(10) == 4e-4  # clamped forever after

    def test_cap_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_cap=0.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_cap=-1e-3)


class TestJitter:
    def test_jitter_range(self):
        p = RetryPolicy(backoff_base=1e-3, backoff_factor=1.0, jitter=0.5)
        for attempt in range(1, 30):
            d = p.backoff_for(attempt, key=(attempt % 4, attempt * 100))
            assert 0.5e-3 <= d <= 1e-3

    def test_jitter_is_deterministic(self):
        p = RetryPolicy(backoff_base=1e-3, jitter=0.5, jitter_seed=42)
        q = RetryPolicy(backoff_base=1e-3, jitter=0.5, jitter_seed=42)
        for attempt in (1, 2, 5):
            key = (3, 8192)
            assert p.backoff_for(attempt, key=key) == q.backoff_for(attempt, key=key)

    def test_jitter_decorrelates_ranks(self):
        p = RetryPolicy(backoff_base=1e-3, backoff_factor=1.0, jitter=0.9)
        delays = {p.backoff_for(1, key=(rank, 0)) for rank in range(16)}
        assert len(delays) > 8  # different ranks back off differently

    def test_jitter_seed_changes_draws(self):
        a = RetryPolicy(backoff_base=1e-3, jitter=0.9, jitter_seed=1)
        b = RetryPolicy(backoff_base=1e-3, jitter=0.9, jitter_seed=2)
        diffs = sum(
            a.backoff_for(1, key=(r, 0)) != b.backoff_for(1, key=(r, 0))
            for r in range(16)
        )
        assert diffs > 8

    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_jitter_fraction_validated(self, bad):
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=bad)

    def test_zero_jitter_draws_nothing(self):
        """jitter=0 must not even perturb float equality with defaults."""
        plain = RetryPolicy(backoff_base=2e-4)
        explicit = RetryPolicy(backoff_base=2e-4, jitter=0.0, jitter_seed=99)
        for attempt in range(1, 6):
            assert plain.backoff_for(attempt) == explicit.backoff_for(attempt, key=(1, 2))


def test_cap_and_jitter_compose():
    p = RetryPolicy(backoff_base=1e-4, backoff_factor=4.0,
                    backoff_cap=8e-4, jitter=0.25)
    d = p.backoff_for(10, key=(0, 0))
    assert 0.75 * 8e-4 <= d <= 8e-4
