"""RetryPolicy / ReliableWriter semantics, including the regression pair
from the issue: a fault that kills a write a peer waits on must surface as
DeadlockError (not a hang or a silent pass), and ``max_retries=0`` must
surface the *underlying* FileSystemError unchanged."""

import numpy as np
import pytest

from repro.collio import CollectiveConfig, run_collective_write
from repro.collio.view import FileView
from repro.errors import (
    AioSubmitError,
    ConfigurationError,
    DeadlockError,
    TransientWriteError,
    WriteRetryExhaustedError,
    WriteTimeoutError,
)
from repro.faults import FaultSpec, RetryPolicy
from repro.mpi import World

from tests.faults.conftest import small_cluster, small_fs


def contiguous_views(nprocs, per_rank):
    return {r: FileView.contiguous(r * per_rank, per_rank) for r in range(nprocs)}


CFG = CollectiveConfig(cb_buffer_size=16 * 1024)


class TestRetryPolicy:
    def test_defaults(self):
        p = RetryPolicy()
        assert p.max_retries >= 1
        assert p.backoff_base > 0

    def test_backoff_is_geometric(self):
        p = RetryPolicy(backoff_base=1e-4, backoff_factor=2.0)
        assert p.backoff_for(1) == 1e-4
        assert p.backoff_for(2) == 2e-4
        assert p.backoff_for(4) == 8e-4

    @pytest.mark.parametrize(
        "kw",
        [
            dict(max_retries=-1),
            dict(backoff_base=-1.0),
            dict(backoff_factor=0.5),
            dict(write_timeout=0.0),
            dict(degrade_after=0),
        ],
    )
    def test_validation(self, kw):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kw)

    def test_with_override(self):
        assert RetryPolicy().with_(max_retries=0).max_retries == 0


class TestErrorSurfacing:
    def run(self, algorithm, faults, retry):
        return run_collective_write(
            small_cluster(), small_fs(), nprocs=4,
            views=contiguous_views(4, 30_000),
            algorithm=algorithm,
            config=CFG, faults=faults, retry=retry,
        )

    def test_no_policy_fails_directly(self):
        with pytest.raises(TransientWriteError):
            self.run("no_overlap", FaultSpec(write_fail_rate=1.0), None)

    @pytest.mark.parametrize("algorithm", ["no_overlap", "write_overlap"])
    def test_zero_retries_surfaces_underlying_error(self, algorithm):
        """Regression: max_retries=0 must re-raise the original
        FileSystemError, not wrap it in WriteRetryExhaustedError."""
        with pytest.raises(TransientWriteError):
            self.run(
                algorithm, FaultSpec(write_fail_rate=1.0), RetryPolicy(max_retries=0)
            )

    @pytest.mark.parametrize("algorithm", ["no_overlap", "write_overlap"])
    def test_exhaustion_wraps_with_cause(self, algorithm):
        with pytest.raises(WriteRetryExhaustedError) as excinfo:
            self.run(
                algorithm, FaultSpec(write_fail_rate=1.0), RetryPolicy(max_retries=2)
            )
        assert isinstance(excinfo.value.__cause__, TransientWriteError)

    def test_zero_retries_surfaces_aio_submit_error(self):
        with pytest.raises(AioSubmitError):
            self.run(
                "write_overlap",
                FaultSpec(aio_submit_fail_rate=1.0),
                RetryPolicy(max_retries=0),
            )

    def test_recovery_is_counted(self):
        res = run_collective_write(
            small_cluster(), small_fs(), nprocs=4,
            views=contiguous_views(4, 30_000), algorithm="no_overlap",
            config=CFG, verify=True,
            faults=FaultSpec(write_fail_rate=0.5),
            retry=RetryPolicy(max_retries=12),
        )
        assert res.verified
        assert res.trace_counters["retry.recovered"] >= 1


def test_dead_peer_write_failure_raises_deadlock():
    """Regression: when a fault kills rank 0's write and it bails out,
    rank 1 — blocked on a receive from rank 0 — must see DeadlockError,
    not hang and not pass silently."""
    world = World(
        small_cluster(), 2, fs_spec=small_fs(),
        faults=FaultSpec(write_fail_rate=1.0),
    )

    def program(mpi):
        fh = yield from mpi.file_open("/dead")
        if mpi.rank == 0:
            try:
                yield from fh.write_at(0, np.ones(8192, dtype=np.uint8))
            except TransientWriteError:
                return "bailed"  # dies without sending
            yield from mpi.send(1, tag=9, size=64)
            return "sent"
        buf = np.zeros(64, dtype=np.uint8)
        yield from mpi.recv(0, tag=9, buffer=buf)
        return "received"

    with pytest.raises(DeadlockError):
        world.run(program)


class TestDegradation:
    def test_refused_submissions_degrade_to_blocking(self):
        """With aio permanently refusing, the writer falls back per-write,
        then turns sticky-degraded; the run still completes byte-exactly."""
        res = run_collective_write(
            small_cluster(), small_fs(), nprocs=4,
            views=contiguous_views(4, 60_000), algorithm="write_overlap",
            config=CollectiveConfig(cb_buffer_size=8 * 1024),
            verify=True,
            faults=FaultSpec(aio_submit_fail_rate=1.0),
            retry=RetryPolicy(max_retries=4, degrade_after=2),
        )
        assert res.verified
        assert res.trace_counters["fault.aio_submit"] >= 2
        assert res.trace_counters["retry.sync_fallback"] >= 2
        assert res.trace_counters["retry.degraded"] >= 1

    def test_degradation_is_sticky(self):
        """After degrade_after refusals no further submissions are tried,
        so the refusal count stops growing."""
        res = run_collective_write(
            small_cluster(), small_fs(), nprocs=2,
            views=contiguous_views(2, 60_000), algorithm="write_overlap",
            config=CollectiveConfig(cb_buffer_size=8 * 1024),
            faults=FaultSpec(aio_submit_fail_rate=1.0),
            retry=RetryPolicy(degrade_after=1),
        )
        # One aggregator, degrade_after=1: exactly one refusal ever fires.
        assert res.trace_counters["fault.aio_submit"] == res.trace_counters["retry.degraded"]


class TestWriteTimeout:
    def test_blocking_write_timeout_raises(self):
        world = World(small_cluster(), 1, fs_spec=small_fs())

        def program(mpi):
            fh = yield from mpi.file_open("/t")
            try:
                yield from fh.write_at(0, np.ones(100_000, dtype=np.uint8), timeout=1e-9)
            except WriteTimeoutError:
                return "timeout"
            return "completed"

        assert world.run(program) == ["timeout"]

    def test_abandoned_write_still_lands_harmlessly(self):
        """A timed-out write is abandoned (defused); when it completes
        later anyway, the run must not abort and the bytes land
        (idempotence makes the late landing safe)."""
        world = World(small_cluster(), 1, fs_spec=small_fs())

        def program(mpi):
            fh = yield from mpi.file_open("/late")
            data = np.full(4096, 9, dtype=np.uint8)
            try:
                yield from fh.write_at(0, data, timeout=1e-9)
            except WriteTimeoutError:
                pass
            # Outlive the abandoned write's completion.
            yield mpi.engine.timeout(1.0)
            return "ok"

        assert world.run(program) == ["ok"]
        assert (world.pfs.open("/late").contents()[:4096] == 9).all()

    def test_retry_exhaustion_from_timeouts(self):
        """Timeouts shorter than any possible service time exhaust the
        policy; the cause chain points at WriteTimeoutError."""
        with pytest.raises(WriteRetryExhaustedError) as excinfo:
            run_collective_write(
                small_cluster(), small_fs(), nprocs=2,
                views=contiguous_views(2, 30_000), algorithm="no_overlap",
                config=CFG,
                faults=FaultSpec(straggler_rate=1.0, straggler_factor=100.0),
                retry=RetryPolicy(max_retries=1, write_timeout=1e-9),
            )
        assert isinstance(excinfo.value.__cause__, WriteTimeoutError)

    def test_generous_timeout_never_fires(self):
        res = run_collective_write(
            small_cluster(), small_fs(), nprocs=4,
            views=contiguous_views(4, 30_000), algorithm="write_overlap",
            config=CFG, verify=True,
            faults=FaultSpec(write_fail_rate=0.2),
            retry=RetryPolicy(max_retries=10, write_timeout=10.0),
        )
        assert res.verified
        assert "retry.timeout" not in res.trace_counters
