"""Satellite 1: FaultSpec.validate() rejects every malformed spec.

A property test drives random invalid field combinations through the
constructor; no out-of-range rate or negative delay may ever survive
into a live injector (the single-draw position derivation silently
breaks on rates outside [0, 1]).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.faults.spec import FaultSpec

RATE_FIELDS = list(FaultSpec._RATE_FIELDS)
DELAY_FIELDS = list(FaultSpec._DELAY_FIELDS)

bad_rate = st.one_of(
    st.floats(min_value=1.0, max_value=1e6, exclude_min=True,
              allow_nan=False, allow_infinity=False),
    st.floats(min_value=-1e6, max_value=0.0, exclude_max=True,
              allow_nan=False, allow_infinity=False),
    st.just(float("nan")),
    st.just(float("inf")),
)
good_rate = st.floats(min_value=0.0, max_value=1.0,
                      allow_nan=False, allow_infinity=False)


@settings(max_examples=100, deadline=None)
@given(field=st.sampled_from(RATE_FIELDS), value=bad_rate)
def test_any_out_of_range_rate_rejected(field, value):
    with pytest.raises(ConfigurationError):
        FaultSpec(**{field: value})


@settings(max_examples=50, deadline=None)
@given(field=st.sampled_from(DELAY_FIELDS),
       value=st.floats(max_value=0.0, exclude_max=True,
                       allow_nan=False, allow_infinity=False))
def test_any_negative_delay_rejected(field, value):
    with pytest.raises(ConfigurationError):
        FaultSpec(**{field: value})


@settings(max_examples=100, deadline=None)
@given(values=st.lists(good_rate, min_size=len(RATE_FIELDS),
                       max_size=len(RATE_FIELDS)))
def test_all_in_range_rates_accepted(values):
    kw = dict(zip(RATE_FIELDS, values))
    if kw["rank_crash_rate"] > 0 or kw["ost_outage_rate"] > 0:
        kw["crash_window"] = 1.0
    spec = FaultSpec(**kw)
    assert spec.validate() is spec


@settings(max_examples=60, deadline=None)
@given(rate_field=st.sampled_from(RATE_FIELDS), rate=bad_rate,
       delay_field=st.sampled_from(DELAY_FIELDS),
       delay=st.floats(max_value=0.0, exclude_max=True,
                       allow_nan=False, allow_infinity=False))
def test_mixed_invalid_spec_rejected(rate_field, rate, delay_field, delay):
    """Multiple simultaneous violations still fail (first one wins)."""
    with pytest.raises(ConfigurationError):
        FaultSpec(**{rate_field: rate, delay_field: delay})


def test_straggler_factor_below_one_rejected():
    with pytest.raises(ConfigurationError):
        FaultSpec(straggler_factor=0.99)


def test_permanent_rate_without_window_rejected():
    with pytest.raises(ConfigurationError, match="crash_window"):
        FaultSpec(rank_crash_rate=0.5)
    with pytest.raises(ConfigurationError, match="crash_window"):
        FaultSpec(ost_outage_rate=0.5)


def test_validate_returns_self_for_chaining():
    spec = FaultSpec(write_fail_rate=0.5)
    assert spec.validate() is spec
