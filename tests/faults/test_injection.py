"""The fault injector: spec validation, determinism, and the acceptance
criterion — every overlap algorithm survives a 10% transient-failure rate
byte-exactly, with the recovery visible in trace counters."""

import numpy as np
import pytest

from repro.collio import CollectiveConfig, run_collective_write
from repro.collio.view import FileView
from repro.errors import ConfigurationError
from repro.faults import FAULT_PRESETS, FaultSpec, RetryPolicy, fault_preset
from repro.mpi import World

from tests.faults.conftest import small_cluster, small_fs

ALL_ALGORITHMS = ["no_overlap", "comm_overlap", "write_overlap", "write_comm", "write_comm2"]


def contiguous_views(nprocs, per_rank):
    return {r: FileView.contiguous(r * per_rank, per_rank) for r in range(nprocs)}


class TestFaultSpec:
    def test_disabled_by_default(self):
        assert not FaultSpec().enabled

    def test_enabled_when_any_rate_set(self):
        assert FaultSpec(write_fail_rate=0.1).enabled
        assert FaultSpec(straggler_rate=0.1).enabled
        assert FaultSpec(aio_submit_fail_rate=0.1).enabled

    def test_delay_without_rate_is_disabled(self):
        # A rate with zero mean delay (or vice versa) can never fire.
        assert not FaultSpec(message_delay_rate=0.5).enabled
        assert not FaultSpec(message_delay=1e-5).enabled
        assert FaultSpec(message_delay_rate=0.5, message_delay=1e-5).enabled

    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_rates_validated(self, bad):
        with pytest.raises(ConfigurationError):
            FaultSpec(write_fail_rate=bad)

    def test_straggler_factor_validated(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(straggler_factor=0.5)

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(message_delay=-1e-6)

    def test_with_override(self):
        spec = FaultSpec().with_(write_fail_rate=0.2)
        assert spec.write_fail_rate == 0.2
        assert not FaultSpec().enabled


class TestPresets:
    def test_registry_names(self):
        assert {"flaky-targets", "degraded-aio", "jittery-network", "stormy"} <= set(
            FAULT_PRESETS
        )

    def test_lookup(self):
        for name in FAULT_PRESETS:
            assert fault_preset(name).enabled

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="nope"):
            fault_preset("nope")

    def test_reexported_from_fs_presets(self):
        from repro.fs.presets import fault_preset as via_fs

        assert via_fs("stormy") == fault_preset("stormy")


class TestDisabledWorld:
    def test_disabled_spec_builds_no_injector(self):
        w = World(small_cluster(), 2, fs_spec=small_fs(), faults=FaultSpec())
        assert w.faults is None
        assert World(small_cluster(), 2, fs_spec=small_fs()).faults is None

    def test_enabled_spec_builds_injector(self):
        w = World(
            small_cluster(), 2, fs_spec=small_fs(),
            faults=FaultSpec(write_fail_rate=0.1),
        )
        assert w.faults is not None
        assert w.pfs.injector is w.faults

    def test_disabled_spec_is_bit_identical_to_no_spec(self):
        """Acceptance: with FaultSpec disabled, numbers are unchanged."""
        kwargs = dict(
            nprocs=6, views=contiguous_views(6, 30_000),
            algorithm="write_overlap",
            config=CollectiveConfig(cb_buffer_size=16 * 1024), verify=True,
        )
        clean = run_collective_write(small_cluster(), small_fs(), **kwargs)
        disabled = run_collective_write(
            small_cluster(), small_fs(), faults=FaultSpec(), **kwargs
        )
        assert disabled.elapsed == clean.elapsed
        assert disabled.trace_counters == clean.trace_counters


class TestInjectorDraws:
    def _injector(self, spec):
        world = World(small_cluster(), 2, fs_spec=small_fs(), faults=spec)
        return world

    def test_write_victim_respects_rate(self):
        world = self._injector(FaultSpec(write_fail_rate=1.0))
        victim = world.faults.storage_write_victim([1, 3])
        assert victim in (1, 3)
        assert world.cluster.tracer.count("fault.write_fail") == 1
        world2 = self._injector(FaultSpec(straggler_rate=1.0))
        assert world2.faults.storage_write_victim([0]) is None

    def test_straggler_factor(self):
        world = self._injector(FaultSpec(straggler_rate=1.0, straggler_factor=7.0))
        assert world.faults.storage_service_factor(0) == 7.0
        assert world.cluster.tracer.count("fault.straggler") == 1
        world2 = self._injector(FaultSpec(write_fail_rate=1.0))
        assert world2.faults.storage_service_factor(0) == 1.0

    def test_aio_refusal(self):
        world = self._injector(FaultSpec(aio_submit_fail_rate=1.0))
        assert world.faults.aio_submit_fails(0)

    def test_delivery_delay_bounds(self):
        spec = FaultSpec(message_delay_rate=1.0, message_delay=1e-4)
        world = self._injector(spec)
        for _ in range(50):
            d = world.faults.message_delay(0)
            assert 0.5e-4 <= d <= 1.5e-4

    def test_rendezvous_delay_independent_stream(self):
        spec = FaultSpec(rendezvous_delay_rate=1.0, rendezvous_delay=1e-4)
        world = self._injector(spec)
        assert world.faults.rendezvous_delay(1) > 0
        assert world.faults.message_delay(1) == 0.0  # rate not set


FAULTY = FaultSpec(write_fail_rate=0.10, straggler_rate=0.05, straggler_factor=4.0)


@pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
def test_ten_percent_failure_rate_byte_exact(algorithm):
    """Acceptance: at a 10% transient-failure rate, every algorithm
    completes byte-exactly, with retries visible in the counters."""
    res = run_collective_write(
        small_cluster(), small_fs(), nprocs=8,
        views=contiguous_views(8, 40_000),
        algorithm=algorithm,
        config=CollectiveConfig(cb_buffer_size=16 * 1024),
        verify=True,
        faults=FAULTY,
        retry=RetryPolicy(max_retries=10),
    )
    assert res.verified
    assert res.trace_counters["fault.write_fail"] > 0
    assert res.trace_counters["retry.attempt"] > 0
    # Every injected failure was retried, none exhausted the policy.
    assert "retry.exhausted" not in res.trace_counters


def test_faults_slow_the_run_down():
    kwargs = dict(
        nprocs=8, views=contiguous_views(8, 40_000), algorithm="no_overlap",
        config=CollectiveConfig(cb_buffer_size=16 * 1024),
    )
    clean = run_collective_write(small_cluster(), small_fs(), **kwargs)
    faulty = run_collective_write(
        small_cluster(), small_fs(),
        faults=FAULTY, retry=RetryPolicy(max_retries=10), **kwargs
    )
    assert faulty.elapsed > clean.elapsed


class TestSeedDeterminism:
    SPEC = FaultSpec(
        write_fail_rate=0.3, straggler_rate=0.2,
        aio_submit_fail_rate=0.3,
        message_delay_rate=0.3, message_delay=2e-5,
        rendezvous_delay_rate=0.3, rendezvous_delay=2e-5,
    )

    def _run(self, seed):
        world = World(small_cluster(), 4, fs_spec=small_fs(), seed=seed, faults=self.SPEC)
        world.cluster.tracer.enabled = True
        cfg = CollectiveConfig(
            cb_buffer_size=16 * 1024, retry=RetryPolicy(max_retries=12)
        )

        def program(mpi):
            fh = yield from mpi.file_open("/det")
            fh.set_view(view=FileView.contiguous(mpi.rank * 30_000, 30_000))
            data = np.full(30_000, mpi.rank + 1, dtype=np.uint8)
            yield from fh.write_all(data, algorithm="write_overlap", config=cfg)

        world.run(program)
        tracer = world.cluster.tracer
        schedule = [
            r for r in tracer.records
            if r.category.startswith(("fault.", "retry."))
        ]
        counters = {
            k: v for k, v in tracer.counters.items() if k.startswith("fault.")
        }
        contents = world.pfs.open("/det").contents().copy()
        return schedule, counters, contents

    def test_same_seed_same_schedule(self):
        """Same FaultSpec + seed -> identical trace records and counters."""
        s1, c1, f1 = self._run(seed=7)
        s2, c2, f2 = self._run(seed=7)
        assert len(s1) > 0  # the spec is hot enough to actually fire
        assert s1 == s2
        assert c1 == c2
        assert np.array_equal(f1, f2)

    def test_different_seed_different_schedule(self):
        s1, c1, f1 = self._run(seed=7)
        s2, c2, f2 = self._run(seed=8)
        assert s1 != s2
        # Both runs still converge to the same bytes.
        assert np.array_equal(f1, f2)
