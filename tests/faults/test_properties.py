"""Property-based correctness under faults.

The golden invariant, now under fire: for *any* rank count, file view
shape, cycle size and fault schedule, a collective write followed by a
collective read round-trips every byte, for all five overlap algorithms.
``derandomize=True`` keeps CI deterministic: failures reproduce from the
printed example alone."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.collio import CollectiveConfig
from repro.collio.view import FileView
from repro.faults import FaultSpec, RetryPolicy
from repro.mpi import World

from tests.faults.conftest import small_cluster, small_fs

ALL_ALGORITHMS = ["no_overlap", "comm_overlap", "write_overlap", "write_comm", "write_comm2"]

#: Generous budget: at the property's max 15% per-write failure rate the
#: chance of exhausting 14 retries is ~1e-12 per write.
RETRY = RetryPolicy(max_retries=14)


fault_specs = st.builds(
    FaultSpec,
    write_fail_rate=st.sampled_from([0.0, 0.05, 0.15]),
    straggler_rate=st.sampled_from([0.0, 0.1]),
    straggler_factor=st.sampled_from([2.0, 6.0]),
    aio_submit_fail_rate=st.sampled_from([0.0, 0.3]),
    message_delay_rate=st.sampled_from([0.0, 0.2]),
    message_delay=st.just(2e-5),
    rendezvous_delay_rate=st.sampled_from([0.0, 0.2]),
    rendezvous_delay=st.just(2e-5),
)


def rank_payload(rank, nbytes):
    return ((np.arange(nbytes, dtype=np.int64) * 13 + rank * 251) % 241).astype(np.uint8)


def roundtrip(nprocs, views_of_rank, algorithm, cb, faults, seed):
    """write_all + read_all in one faulty world; returns per-rank match."""
    world = World(
        small_cluster(), nprocs, fs_spec=small_fs(), seed=seed,
        faults=faults if faults.enabled else None,
    )
    config = CollectiveConfig(cb_buffer_size=cb, retry=RETRY)

    def program(mpi):
        view = views_of_rank[mpi.rank]
        data = rank_payload(mpi.rank, view.total_bytes)
        fh = yield from mpi.file_open("/prop")
        fh.set_view(view=view)
        yield from fh.write_all(data, algorithm=algorithm, config=config)
        out = np.zeros(view.total_bytes, dtype=np.uint8)
        yield from fh.read_all(out, config=config)
        return bool(np.array_equal(out, data))

    return world.run(program)


@settings(deadline=None, max_examples=25, derandomize=True)
@given(
    nprocs=st.integers(2, 8),
    per_rank=st.integers(1, 30_000),
    algorithm=st.sampled_from(ALL_ALGORITHMS),
    cb=st.sampled_from([4 * 1024, 16 * 1024, 64 * 1024]),
    faults=fault_specs,
    seed=st.integers(0, 2**16),
)
def test_contiguous_roundtrip_under_faults(nprocs, per_rank, algorithm, cb, faults, seed):
    views = {r: FileView.contiguous(r * per_rank, per_rank) for r in range(nprocs)}
    assert all(roundtrip(nprocs, views, algorithm, cb, faults, seed))


@settings(deadline=None, max_examples=15, derandomize=True)
@given(
    nprocs=st.integers(2, 6),
    tile=st.integers(16, 2048),
    ntiles=st.integers(1, 24),
    algorithm=st.sampled_from(ALL_ALGORITHMS),
    cb=st.sampled_from([8 * 1024, 32 * 1024]),
    faults=fault_specs,
    seed=st.integers(0, 2**16),
)
def test_interleaved_roundtrip_under_faults(nprocs, tile, ntiles, algorithm, cb, faults, seed):
    """Tiled (IOR-style interleaved) views: scattered extents + faults."""
    views = {}
    for r in range(nprocs):
        offs = np.arange(ntiles, dtype=np.int64) * (tile * nprocs) + r * tile
        views[r] = FileView(offs, np.full(ntiles, tile, dtype=np.int64))
    assert all(roundtrip(nprocs, views, algorithm, cb, faults, seed))
