"""Tests for seeded RNG streams."""

import numpy as np
import pytest

from repro.sim import RngStreams


def test_same_seed_same_stream():
    a = RngStreams(7).stream("x").random(5)
    b = RngStreams(7).stream("x").random(5)
    assert np.array_equal(a, b)


def test_different_names_independent():
    s = RngStreams(7)
    a = s.stream("x").random(5)
    b = s.stream("y").random(5)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = RngStreams(1).stream("x").random(5)
    b = RngStreams(2).stream("x").random(5)
    assert not np.array_equal(a, b)


def test_stream_identity_is_cached():
    s = RngStreams(7)
    assert s.stream("x") is s.stream("x")


def test_lognormal_noise_zero_sigma_is_unity():
    draw = RngStreams(7).lognormal_noise("n", sigma=0.0)
    assert all(draw() == 1.0 for _ in range(10))


def test_lognormal_noise_has_spread_and_floor():
    draw = RngStreams(7).lognormal_noise("n", sigma=0.5, floor=0.25)
    samples = [draw() for _ in range(1000)]
    assert min(samples) >= 0.25
    assert max(samples) > 1.0  # some slowdowns observed
    # Median of a unit-median lognormal should be near 1.
    assert 0.8 < float(np.median(samples)) < 1.2


def test_lognormal_negative_sigma_rejected():
    with pytest.raises(ValueError):
        RngStreams(7).lognormal_noise("n", sigma=-0.1)
