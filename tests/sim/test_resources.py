"""Tests for FifoResource, Store and ServerQueue."""

import pytest

from repro.sim import Engine, FifoResource, ServerQueue, Store


class TestFifoResource:
    def test_grants_up_to_capacity(self):
        eng = Engine()
        res = FifoResource(eng, capacity=2)
        g1, g2, g3 = res.request(), res.request(), res.request()
        assert g1.triggered and g2.triggered and not g3.triggered
        assert res.in_use == 2 and res.queue_length == 1

    def test_release_grants_fifo(self):
        eng = Engine()
        res = FifoResource(eng, capacity=1)
        res.request()
        waiters = [res.request() for _ in range(3)]
        res.release()
        assert waiters[0].triggered and not waiters[1].triggered
        res.release()
        assert waiters[1].triggered and not waiters[2].triggered

    def test_release_without_request_raises(self):
        eng = Engine()
        res = FifoResource(eng, capacity=1)
        with pytest.raises(RuntimeError):
            res.release()

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            FifoResource(Engine(), capacity=0)

    def test_end_to_end_mutual_exclusion(self):
        eng = Engine()
        res = FifoResource(eng, capacity=1)
        inside = []

        def proc(eng, tag):
            yield res.request()
            inside.append(tag)
            assert len(inside) == 1  # exclusive section
            yield eng.timeout(1.0)
            inside.remove(tag)
            res.release()

        for i in range(4):
            eng.process(proc(eng, i))
        eng.run()
        assert eng.now == 4.0  # fully serialized


class TestStore:
    def test_put_then_get(self):
        eng = Engine()
        store = Store(eng)
        store.put("a")
        store.put("b")
        got = []

        def getter(eng):
            got.append((yield store.get()))
            got.append((yield store.get()))

        eng.process(getter(eng))
        eng.run()
        assert got == ["a", "b"]

    def test_get_blocks_until_put(self):
        eng = Engine()
        store = Store(eng)
        got = []

        def getter(eng):
            got.append(((yield store.get()), eng.now))

        def putter(eng):
            yield eng.timeout(2.0)
            store.put("late")

        eng.process(getter(eng))
        eng.process(putter(eng))
        eng.run()
        assert got == [("late", 2.0)]

    def test_try_get(self):
        eng = Engine()
        store = Store(eng)
        assert store.try_get() == (False, None)
        store.put(7)
        assert store.try_get() == (True, 7)
        assert len(store) == 0


class TestServerQueue:
    def test_single_request_latency_plus_bandwidth(self):
        eng = Engine()
        q = ServerQueue(eng, bandwidth=1000.0, latency=0.5)

        def proc(eng):
            yield q.submit(1000)
            return eng.now

        p = eng.process(proc(eng))
        eng.run()
        assert p.value == pytest.approx(1.5)

    def test_fifo_serialization(self):
        eng = Engine()
        q = ServerQueue(eng, bandwidth=100.0)
        times = []

        def proc(eng, size):
            yield q.submit(size)
            times.append(eng.now)

        eng.process(proc(eng, 100))
        eng.process(proc(eng, 200))
        eng.process(proc(eng, 100))
        eng.run()
        assert times == [pytest.approx(1.0), pytest.approx(3.0), pytest.approx(4.0)]

    def test_idle_gap_resets_queue(self):
        eng = Engine()
        q = ServerQueue(eng, bandwidth=100.0)

        def proc(eng):
            yield q.submit(100)  # done at t=1
            yield eng.timeout(10.0)  # idle gap
            yield q.submit(100)  # served immediately from t=11
            return eng.now

        p = eng.process(proc(eng))
        eng.run()
        assert p.value == pytest.approx(12.0)

    def test_noise_multiplies_service_time(self):
        eng = Engine()
        q = ServerQueue(eng, bandwidth=100.0, noise=lambda: 2.0)

        def proc(eng):
            yield q.submit(100)
            return eng.now

        p = eng.process(proc(eng))
        eng.run()
        assert p.value == pytest.approx(2.0)

    def test_accounting(self):
        eng = Engine()
        q = ServerQueue(eng, bandwidth=100.0)

        def proc(eng):
            yield q.submit(100)
            yield q.submit(300)

        eng.process(proc(eng))
        eng.run()
        assert q.bytes_served == 400 and q.requests_served == 2

    def test_invalid_parameters(self):
        eng = Engine()
        with pytest.raises(ValueError):
            ServerQueue(eng, bandwidth=0)
        with pytest.raises(ValueError):
            ServerQueue(eng, bandwidth=10, latency=-1)
        q = ServerQueue(eng, bandwidth=10)
        with pytest.raises(ValueError):
            q.submit(-5)
