"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim import Engine


def test_clock_starts_at_zero():
    assert Engine().now == 0.0


def test_timeout_advances_clock():
    eng = Engine()

    def proc(eng):
        yield eng.timeout(2.0)

    eng.process(proc(eng))
    eng.run()
    assert eng.now == 2.0


def test_timeout_value_passthrough():
    eng = Engine()
    got = []

    def proc(eng):
        got.append((yield eng.timeout(1.0, value="payload")))

    eng.process(proc(eng))
    eng.run()
    assert got == ["payload"]


def test_negative_timeout_rejected():
    eng = Engine()
    with pytest.raises(ValueError):
        eng.timeout(-1.0)


def test_process_return_value():
    eng = Engine()

    def proc(eng):
        yield eng.timeout(1.0)
        return 42

    p = eng.process(proc(eng))
    eng.run()
    assert p.ok and p.value == 42


def test_process_waits_on_process():
    eng = Engine()

    def child(eng):
        yield eng.timeout(3.0)
        return "child-result"

    def parent(eng, c):
        val = yield c
        return (eng.now, val)

    c = eng.process(child(eng))
    p = eng.process(parent(eng, c))
    eng.run()
    assert p.value == (3.0, "child-result")


def test_wait_on_already_completed_process():
    eng = Engine()

    def quick(eng):
        yield eng.timeout(0.5)
        return "q"

    q = eng.process(quick(eng))

    def late(eng):
        yield eng.timeout(5.0)
        val = yield q  # q finished long ago
        return (eng.now, val)

    p = eng.process(late(eng))
    eng.run()
    assert p.value == (5.0, "q")


def test_simultaneous_events_fifo_order():
    eng = Engine()
    order = []

    def proc(eng, tag):
        yield eng.timeout(1.0)
        order.append(tag)

    for i in range(5):
        eng.process(proc(eng, i))
    eng.run()
    assert order == [0, 1, 2, 3, 4]


def test_event_succeed_wakes_waiter():
    eng = Engine()
    evt = eng.event()
    seen = []

    def waiter(eng):
        seen.append((yield evt))

    def firer(eng):
        yield eng.timeout(1.0)
        evt.succeed("fired")

    eng.process(waiter(eng))
    eng.process(firer(eng))
    eng.run()
    assert seen == ["fired"] and eng.now == 1.0


def test_event_double_trigger_rejected():
    eng = Engine()
    evt = eng.event()
    evt.succeed(1)
    with pytest.raises(SimulationError):
        evt.succeed(2)


def test_event_fail_throws_into_waiter():
    eng = Engine()
    evt = eng.event()
    caught = []

    def waiter(eng):
        try:
            yield evt
        except RuntimeError as e:
            caught.append(str(e))

    eng.process(waiter(eng))

    def firer(eng):
        yield eng.timeout(1.0)
        evt.fail(RuntimeError("boom"))

    eng.process(firer(eng))
    eng.run()
    assert caught == ["boom"]


def test_uncaught_process_exception_propagates_from_run():
    eng = Engine()

    def bad(eng):
        yield eng.timeout(1.0)
        raise ValueError("kaput")

    eng.process(bad(eng))
    with pytest.raises(ValueError, match="kaput"):
        eng.run()


def test_waiting_process_receives_child_failure():
    eng = Engine()

    def bad(eng):
        yield eng.timeout(1.0)
        raise ValueError("inner")

    b = eng.process(bad(eng))
    caught = []

    def parent(eng):
        try:
            yield b
        except ValueError as e:
            caught.append(str(e))

    eng.process(parent(eng))
    eng.run()
    assert caught == ["inner"]


def test_deadlock_detection():
    eng = Engine()

    def stuck(eng):
        yield eng.event()  # never triggered

    eng.process(stuck(eng))
    with pytest.raises(DeadlockError):
        eng.run()


def test_run_until_bound_stops_clock():
    eng = Engine()

    def proc(eng):
        yield eng.timeout(100.0)

    eng.process(proc(eng))
    eng.run(until=10.0)
    assert eng.now == 10.0
    eng.run()  # finish the rest
    assert eng.now == 100.0


def test_yield_non_event_fails_process():
    eng = Engine()

    def bad(eng):
        yield 42  # type: ignore[misc]

    p = eng.process(bad(eng))
    with pytest.raises(SimulationError, match="must yield Events"):
        eng.run()
    assert not p.ok


def test_process_requires_generator():
    eng = Engine()
    with pytest.raises(TypeError):
        eng.process(lambda: None)  # type: ignore[arg-type]


def test_run_until_complete_returns_values_in_order():
    eng = Engine()

    def proc(eng, d):
        yield eng.timeout(d)
        return d

    procs = [eng.process(proc(eng, d)) for d in (3.0, 1.0, 2.0)]
    assert eng.run_until_complete(procs) == [3.0, 1.0, 2.0]


def test_nested_process_spawning():
    eng = Engine()
    results = []

    def leaf(eng, d):
        yield eng.timeout(d)
        return d

    def spawner(eng):
        children = [eng.process(leaf(eng, d)) for d in (1.0, 2.0)]
        for c in children:
            results.append((yield c))

    eng.process(spawner(eng))
    eng.run()
    assert results == [1.0, 2.0]
