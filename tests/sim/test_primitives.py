"""Tests for AllOf / AnyOf composite conditions."""

import pytest

from repro.sim import Engine, all_of, any_of


def _sleeper(eng, d, value=None):
    def proc(eng):
        yield eng.timeout(d)
        return value if value is not None else d

    return eng.process(proc(eng))


def test_all_of_waits_for_slowest():
    eng = Engine()
    ps = [_sleeper(eng, d) for d in (1.0, 4.0, 2.0)]
    done = []

    def waiter(eng):
        vals = yield all_of(eng, ps)
        done.append((eng.now, vals))

    eng.process(waiter(eng))
    eng.run()
    assert done == [(4.0, [1.0, 4.0, 2.0])]


def test_all_of_empty_succeeds_immediately():
    eng = Engine()
    seen = []

    def waiter(eng):
        seen.append((yield all_of(eng, [])))

    eng.process(waiter(eng))
    eng.run()
    assert seen == [[]] and eng.now == 0.0


def test_all_of_with_already_completed_children():
    eng = Engine()
    ps = [_sleeper(eng, 1.0), _sleeper(eng, 2.0)]

    def late(eng):
        yield eng.timeout(10.0)
        vals = yield all_of(eng, ps)
        return (eng.now, vals)

    p = eng.process(late(eng))
    eng.run()
    assert p.value == (10.0, [1.0, 2.0])


def test_any_of_returns_first():
    eng = Engine()
    ps = [_sleeper(eng, 3.0, "slow"), _sleeper(eng, 1.0, "fast")]

    def waiter(eng):
        idx, val = yield any_of(eng, ps)
        return (eng.now, idx, val)

    w = eng.process(waiter(eng))
    eng.run()
    assert w.value == (1.0, 1, "fast")


def test_all_of_propagates_child_failure():
    eng = Engine()

    def bad(eng):
        yield eng.timeout(1.0)
        raise RuntimeError("child failed")

    ps = [_sleeper(eng, 5.0), eng.process(bad(eng))]
    caught = []

    def waiter(eng):
        try:
            yield all_of(eng, ps)
        except RuntimeError as e:
            caught.append((eng.now, str(e)))

    eng.process(waiter(eng))
    eng.run()
    assert caught == [(1.0, "child failed")]


def test_condition_rejects_mixed_engines():
    eng1, eng2 = Engine(), Engine()
    e1, e2 = eng1.event(), eng2.event()
    with pytest.raises(ValueError):
        all_of(eng1, [e1, e2])


def test_any_of_late_failure_of_loser_is_defused():
    eng = Engine()

    def bad(eng):
        yield eng.timeout(5.0)
        raise RuntimeError("loser fails late")

    winner = _sleeper(eng, 1.0, "win")
    loser = eng.process(bad(eng))
    got = []

    def waiter(eng):
        got.append((yield any_of(eng, [winner, loser])))
        # keep living past the loser's failure
        yield eng.timeout(10.0)

    eng.process(waiter(eng))
    # The loser's failure is absorbed by the condition (defused) and must
    # not crash the run.
    eng.run()
    assert got == [(0, "win")]
