"""Tracer contract: always-on counters, hashable-safe records."""

import numpy as np

from repro.sim.trace import TraceRecord, Tracer


class TestCountersAlwaysOn:
    def test_counters_bump_when_disabled(self):
        t = Tracer(enabled=False)
        t.emit(0.0, "x", a=1)
        t.emit(1.0, "x")
        assert t.count("x") == 2
        assert t.records == []

    def test_records_only_when_enabled(self):
        t = Tracer(enabled=True)
        t.emit(0.0, "x", a=1)
        assert t.count("x") == 1
        assert len(t.records) == 1

    def test_of_category_and_clear(self):
        t = Tracer(enabled=True)
        t.emit(0.0, "a", k=1)
        t.emit(0.5, "b")
        assert [r.category for r in t.of_category("a")] == ["a"]
        t.clear()
        assert t.count("a") == 0 and t.records == []


class TestHashableRecords:
    def test_numpy_scalar_detail_is_hashable(self):
        t = Tracer(enabled=True)
        t.emit(0.0, "x", n=np.int64(3), f=np.float64(1.5))
        rec = t.records[0]
        assert isinstance(rec.detail["n"], int)
        assert isinstance(rec.detail["f"], float)
        assert rec in {rec}

    def test_ndarray_and_nested_details_are_hashable(self):
        t = Tracer(enabled=True)
        t.emit(
            0.0, "x",
            arr=np.array([1, 2, 3]),
            lst=[1, [2, 3]],
            s={3, 1, 2},
            m={"b": np.int32(2), "a": 1},
        )
        rec = t.records[0]
        hash(rec)  # must not raise
        assert rec.detail["arr"] == (1, 2, 3)
        assert rec.detail["lst"] == (1, (2, 3))
        assert rec.detail["s"] == (1, 2, 3)
        assert dict(rec.detail["m"]) == {"a": 1, "b": 2}

    def test_equality_is_order_insensitive(self):
        a = TraceRecord(1.0, "c", {"x": 1, "y": 2})
        b = TraceRecord(1.0, "c", {"y": 2, "x": 1})
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_inequality(self):
        a = TraceRecord(1.0, "c", {"x": 1})
        assert a != TraceRecord(1.0, "c", {"x": 2})
        assert a != TraceRecord(2.0, "c", {"x": 1})
        assert a != TraceRecord(1.0, "d", {"x": 1})
        assert a.__eq__(object()) is NotImplemented

    def test_detail_stays_a_dict(self):
        """Existing callers index record.detail like a dict — keep that."""
        t = Tracer(enabled=True)
        t.emit(0.0, "send", dst=3)
        assert t.records[0].detail["dst"] == 3

    def test_records_comparable_across_runs(self):
        def make():
            t = Tracer(enabled=True)
            t.emit(0.25, "fault.write_fail", target=np.int64(2))
            return t.records

        assert make() == make()
