"""Tests for the time-compression scaling of specs (DESIGN.md 6.0.1)."""

import pytest

from repro.fs import FsSpec, beegfs_crill, lustre_like
from repro.hardware import ClusterSpec, crill
from repro.sim import Engine
from repro.hardware import Cluster
from repro.units import MB, US


class TestClusterTimeScale:
    def test_all_time_fields_divided(self):
        spec = ClusterSpec(
            name="t", num_nodes=2, cores_per_node=2,
            network_bandwidth=1000 * MB, network_latency=64 * US,
            mpi_call_overhead=6.4e-6, rma_lock_overhead=6.4e-5,
        )
        scaled = spec.with_time_scale(64)
        assert scaled.network_latency == pytest.approx(1 * US)
        assert scaled.mpi_call_overhead == pytest.approx(1e-7)
        assert scaled.rma_lock_overhead == pytest.approx(1e-6)
        # Non-time fields untouched.
        assert scaled.network_bandwidth == spec.network_bandwidth
        assert scaled.num_nodes == spec.num_nodes

    def test_scale_one_identity(self):
        spec = crill(scale=1)
        assert spec.with_time_scale(1) == spec

    def test_invalid_scale(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            crill().with_time_scale(0)

    def test_presets_apply_scaling(self):
        full = crill(scale=1)
        scaled = crill(scale=64)
        assert scaled.network_latency == pytest.approx(full.network_latency / 64)
        assert scaled.mpi_call_overhead == pytest.approx(full.mpi_call_overhead / 64)
        # Bandwidths are physical, not scaled.
        assert scaled.network_bandwidth == full.network_bandwidth


class TestFsTimeScale:
    def test_fields_divided(self):
        full = beegfs_crill(scale=1)
        scaled = beegfs_crill(scale=64)
        assert scaled.target_latency == pytest.approx(full.target_latency / 64)
        assert scaled.client_overhead == pytest.approx(full.client_overhead / 64)
        assert scaled.target_bandwidth == full.target_bandwidth

    def test_lustre_aio_overhead_scales(self):
        full = lustre_like(scale=1)
        scaled = lustre_like(scale=64)
        assert scaled.aio_extra_overhead == pytest.approx(full.aio_extra_overhead / 64)
        assert scaled.aio_throughput_factor == full.aio_throughput_factor

    def test_aio_throughput_factor_validated(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            FsSpec(name="x", num_targets=1, target_bandwidth=MB,
                   target_latency=0, stripe_size=64, aio_throughput_factor=0.0)
        with pytest.raises(ConfigurationError):
            FsSpec(name="x", num_targets=1, target_bandwidth=MB,
                   target_latency=0, stripe_size=64, aio_throughput_factor=1.5)


class TestNetworkNoise:
    def test_noise_stretches_transfers(self):
        """With noise, repeated identical transfers vary; without, they don't."""

        def one_run(sigma, seed):
            spec = ClusterSpec(
                name="t", num_nodes=2, cores_per_node=1,
                network_bandwidth=1000 * MB, network_latency=0,
                network_noise_sigma=sigma,
            )
            eng = Engine()
            cl = Cluster(eng, spec, seed=seed)

            def proc(eng):
                yield cl.fabric.transfer(0, 1, 1_000_000)
                return eng.now

            p = eng.process(proc(eng))
            eng.run()
            return p.value

        quiet = {one_run(0.0, s) for s in range(5)}
        noisy = {one_run(0.5, s) for s in range(5)}
        assert len(quiet) == 1
        assert len(noisy) > 1

    def test_ratio_preservation_under_scale(self):
        """A scaled run is the full run with a compressed time unit: the
        elapsed-time *ratio* between two algorithms is scale-invariant."""
        from repro.collio import CollectiveConfig, run_collective_write
        from repro.collio.view import FileView
        from repro.fs import beegfs_crill
        from repro.hardware import crill

        def ratio(scale):
            per_rank = (4 << 20) // scale
            views = {r: FileView.contiguous(r * per_rank, per_rank) for r in range(8)}
            cfg = CollectiveConfig.for_scale(scale)
            times = {}
            for algo in ("no_overlap", "write_overlap"):
                times[algo] = run_collective_write(
                    crill(scale=scale), beegfs_crill(scale=scale), 8, views,
                    algorithm=algo, config=cfg, carry_data=False, seed=3,
                ).elapsed
            return times["write_overlap"] / times["no_overlap"]

        # Not bit-identical (noise draws differ per stream consumption),
        # but the ratios must agree closely across scales.
        assert ratio(64) == pytest.approx(ratio(128), rel=0.08)
