"""Tests for ClusterSpec, Cluster and presets."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware import Cluster, ClusterSpec, crill, ibex, preset
from repro.sim import Engine
from repro.units import MB


def make_spec(**kw):
    base = dict(
        name="test",
        num_nodes=4,
        cores_per_node=2,
        network_bandwidth=1000 * MB,
    )
    base.update(kw)
    return ClusterSpec(**base)


class TestClusterSpec:
    def test_total_cores(self):
        assert make_spec().total_cores == 8

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_spec(num_nodes=0)
        with pytest.raises(ConfigurationError):
            make_spec(cores_per_node=0)
        with pytest.raises(ConfigurationError):
            make_spec(network_bandwidth=0)
        with pytest.raises(ConfigurationError):
            make_spec(eager_threshold=-1)

    def test_with_override(self):
        spec = make_spec().with_(progress_thread=True)
        assert spec.progress_thread and spec.name == "test"


class TestCluster:
    def test_block_rank_placement(self):
        cl = Cluster(Engine(), make_spec())
        assert [cl.node_of_rank(r) for r in range(8)] == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_rank_out_of_range(self):
        cl = Cluster(Engine(), make_spec())
        with pytest.raises(ConfigurationError):
            cl.node_of_rank(8)
        with pytest.raises(ValueError):
            cl.node_of_rank(-1)

    def test_builds_one_nic_per_node(self):
        cl = Cluster(Engine(), make_spec())
        assert len(cl.nics) == 4 and len(cl.nodes) == 4


class TestPresets:
    def test_crill_matches_paper(self):
        spec = crill()
        assert spec.num_nodes == 16
        assert spec.cores_per_node == 48
        assert spec.total_cores == 768
        assert spec.network_bandwidth == 2600 * MB

    def test_ibex_matches_paper(self):
        spec = ibex()
        assert spec.num_nodes == 108
        assert spec.cores_per_node == 40
        assert spec.network_bandwidth == 3400 * MB

    def test_ibex_noisier_than_crill(self):
        assert ibex().network_noise_sigma > crill().network_noise_sigma
        assert ibex().storage_noise_sigma > crill().storage_noise_sigma

    def test_eager_threshold_scales(self):
        assert crill(scale=1).eager_threshold == 512 * 1024
        assert crill(scale=64).eager_threshold == 8 * 1024

    def test_preset_lookup(self):
        assert preset("crill").name == "crill"
        assert preset("ibex").name == "ibex"
        with pytest.raises(KeyError):
            preset("frontier")


class TestFabric:
    def test_inter_node_transfer_time(self):
        eng = Engine()
        cl = Cluster(eng, make_spec(network_latency=1e-6))
        bw = cl.spec.network_bandwidth

        def proc(eng):
            yield cl.fabric.transfer(0, 1, 10_000_000)
            return eng.now

        p = eng.process(proc(eng))
        eng.run()
        expected = 10_000_000 / bw + 1e-6
        assert p.value == pytest.approx(expected, rel=1e-6)

    def test_intra_node_uses_memory_engine(self):
        eng = Engine()
        cl = Cluster(eng, make_spec())

        def proc(eng):
            yield cl.fabric.transfer(2, 2, 1_000_000)
            return eng.now

        p = eng.process(proc(eng))
        eng.run()
        expected = cl.nodes[2].memory.service_time(1_000_000)
        assert p.value == pytest.approx(expected, rel=1e-6)
        assert cl.fabric.intra_node_bytes == 1_000_000

    def test_shared_rx_port_serializes(self):
        """Two senders into one receiver take twice as long as one."""
        eng = Engine()
        cl = Cluster(eng, make_spec(network_latency=0.0))
        size = 10_000_000
        times = []

        def sender(eng, src):
            yield cl.fabric.transfer(src, 3, size)
            times.append(eng.now)

        eng.process(sender(eng, 0))
        eng.process(sender(eng, 1))
        eng.run()
        single = size / cl.spec.network_bandwidth
        assert max(times) == pytest.approx(2 * single, rel=1e-6)

    def test_disjoint_pairs_run_concurrently(self):
        eng = Engine()
        cl = Cluster(eng, make_spec(network_latency=0.0))
        size = 10_000_000
        times = []

        def sender(eng, src, dst):
            yield cl.fabric.transfer(src, dst, size)
            times.append(eng.now)

        eng.process(sender(eng, 0, 1))
        eng.process(sender(eng, 2, 3))
        eng.run()
        single = size / cl.spec.network_bandwidth
        assert max(times) == pytest.approx(single, rel=1e-6)

    def test_negative_size_rejected(self):
        eng = Engine()
        cl = Cluster(eng, make_spec())
        with pytest.raises(ValueError):
            cl.fabric.transfer(0, 1, -1)

    def test_estimate_matches_uncontended_transfer(self):
        eng = Engine()
        cl = Cluster(eng, make_spec())
        est = cl.fabric.transfer_time_estimate(0, 1, 123_456)

        def proc(eng):
            yield cl.fabric.transfer(0, 1, 123_456)
            return eng.now

        p = eng.process(proc(eng))
        eng.run()
        assert p.value == pytest.approx(est, rel=0.05)
