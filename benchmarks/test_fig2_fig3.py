"""Regenerates Figs. 2-3 — average positive improvement per algorithm and
benchmark, on crill (Fig. 2) and Ibex (Fig. 3).

Paper shape: crill improvements 3.7-9.2% with the asynchronous-write
algorithms ahead of Comm Overlap in every benchmark; Ibex improvements
larger, 8.6-22.3%.
"""

import pytest

from repro.bench import experiments, reporting
from repro.bench.runner import run_matrix

from benchmarks.conftest import micro_case

ALGOS = experiments.ALGORITHM_ORDER


@pytest.fixture(scope="module")
def matrix():
    cases = [
        micro_case(benchmark, cluster, nprocs)
        for benchmark in ("ior", "tile_256", "tile_1m", "flash")
        for cluster in ("crill", "ibex")
        for nprocs in ((96, 144) if benchmark in ("ior", "flash") else (64, 100))
    ]
    return run_matrix(cases, ALGOS, reps=2)


@pytest.fixture(scope="module")
def fig2_result(matrix):
    return experiments.fig2(matrix=matrix)


@pytest.fixture(scope="module")
def fig3_result(matrix):
    return experiments.fig3(matrix=matrix)


def test_fig2_fig3_regenerate(fig2_result, fig3_result, print_artifact):
    print_artifact(reporting.render_improvements(fig2_result, "FIG. 2"))
    print_artifact(reporting.render_improvements(fig3_result, "FIG. 3"))
    assert fig2_result.cluster == "crill"
    assert fig3_result.cluster == "ibex"


def test_ibex_improvements_exceed_crill(fig2_result, fig3_result):
    """Paper: crill 3.7-9.2%, Ibex 8.6-22.3%."""
    _, crill_hi = fig2_result.range_over_all()
    _, ibex_hi = fig3_result.range_over_all()
    assert ibex_hi > crill_hi


def test_ibex_has_double_digit_gains(fig3_result):
    _, ibex_hi = fig3_result.range_over_all()
    assert ibex_hi >= 0.08


def test_write_async_beats_comm_overlap_on_average(fig2_result, fig3_result):
    """Paper: overlap with asynchronous I/O outperforms communication-only
    overlap in most scenarios."""
    wins = 0
    comparisons = 0
    for result in (fig2_result, fig3_result):
        for benchmark in experiments.BENCHMARK_ORDER:
            comm = result.values.get(("comm_overlap", benchmark))
            best_async = max(
                (result.values.get((a, benchmark)) or 0.0)
                for a in ("write_overlap", "write_comm", "write_comm2")
            )
            comparisons += 1
            if comm is None or best_async >= comm - 0.01:
                wins += 1
    assert wins >= comparisons * 0.6
