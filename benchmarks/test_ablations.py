"""Ablation benches: the model's causal mechanisms, each flipped once.

These turn the paper's *explanations* into testable predictions (see
repro.bench.ablations).  Smaller settings than the CLI versions so the
file runs in a couple of minutes.
"""

import pytest

from repro.bench.ablations import (
    aggregator_ablation,
    buffer_size_ablation,
    eager_threshold_ablation,
    progress_thread_ablation,
    storage_noise_ablation,
)


class TestProgressThread:
    @pytest.fixture(scope="class")
    def result(self):
        return progress_thread_ablation(nprocs=96, reps=2)

    def test_renders(self, result, print_artifact):
        print_artifact(result.render())

    def test_progress_thread_rescues_comm_overlap(self, result):
        """Paper III-A1: background progress is Comm-Overlap's lifeline."""
        without = result.gain("off", "comm_overlap")
        with_thread = result.gain("on", "comm_overlap")
        assert with_thread > without + 0.02

    def test_write_overlap_indifferent_to_progress_thread(self, result):
        """aio progress comes from the OS, not the MPI library."""
        assert result.rows["off"]["write_overlap"] == pytest.approx(
            result.rows["on"]["write_overlap"], rel=0.02
        )


class TestEagerThreshold:
    @pytest.fixture(scope="class")
    def result(self):
        return eager_threshold_ablation(nprocs=96, reps=2)

    def test_renders(self, result, print_artifact):
        print_artifact(result.render())

    def test_full_eager_decouples_the_baseline(self, result):
        """With everything eager, senders never couple to busy
        aggregators and the baseline self-overlaps through the
        unexpected queue."""
        rendezvous_base = result.rows["512 B"]["no_overlap"]
        eager_base = result.rows["1048576 B"]["no_overlap"]
        assert eager_base < rendezvous_base


class TestBufferSize:
    @pytest.fixture(scope="class")
    def result(self):
        return buffer_size_ablation(nprocs=96, reps=2)

    def test_renders(self, result, print_artifact):
        print_artifact(result.render())

    def test_tiny_buffers_pay_cycle_overhead(self, result):
        assert result.rows["64 KiB"]["write_overlap"] > result.rows["512 KiB"][
            "write_overlap"
        ]


class TestAggregatorCount:
    @pytest.fixture(scope="class")
    def result(self):
        return aggregator_ablation(nprocs=96, reps=2)

    def test_renders(self, result, print_artifact):
        print_artifact(result.render())

    def test_single_aggregator_bottlenecks(self, result):
        assert result.rows["1"]["write_overlap"] > result.rows["auto"]["write_overlap"]

    def test_auto_selection_near_best(self, result):
        best = min(row["write_overlap"] for row in result.rows.values())
        assert result.rows["auto"]["write_overlap"] <= best * 1.2


class TestStorageNoise:
    @pytest.fixture(scope="class")
    def result(self):
        return storage_noise_ablation(nprocs=96, reps=2)

    def test_renders(self, result, print_artifact):
        print_artifact(result.render())

    def test_noiseless_storage_kills_the_crill_gain(self, result):
        """Without per-request variance there is (almost) nothing for
        pipelined writes to hide on an I/O-dominated system."""
        assert abs(result.gain("0.00", "write_overlap")) < 0.05

    def test_gain_grows_with_variance(self, result):
        assert result.gain("0.60", "write_overlap") > result.gain(
            "0.15", "write_overlap"
        )


def test_bench_one_ablation(benchmark):
    result = benchmark.pedantic(
        lambda: progress_thread_ablation(nprocs=96, reps=1), rounds=1, iterations=1
    )
    assert "on" in result.rows
