"""Extension bench: two-phase collective READ (paper Sec. V future work).

Expected shape (mirroring the write results): overlap driven by
asynchronous file access (read-ahead) beats both the baseline and
scatter-only overlap; and — unlike the write case — one-sided *Get*
scatter can help, because it offloads the aggregator, which in a read is
the single data *source* of every cycle.
"""

import pytest

from repro.bench import experiments


@pytest.fixture(scope="module")
def read_result():
    return experiments.read_study(mode="quick", reps=2)


def test_read_study_regenerates(read_result, print_artifact):
    print_artifact(read_result.render())
    assert len(read_result.points) == 12  # 2 clusters x 3 algorithms x 2 scatters


def test_read_ahead_beats_baseline(read_result):
    for cluster in ("crill", "ibex"):
        assert read_result.gain(cluster, "read_ahead") > 0.0


def test_read_ahead_beats_scatter_overlap(read_result):
    """Async file access > communication-only overlap, for reads too."""
    for cluster in ("crill", "ibex"):
        assert read_result.gain(cluster, "read_ahead") >= read_result.gain(
            cluster, "scatter_overlap"
        )


def test_one_sided_get_helps_read_ahead(read_result):
    """Gets pull from the aggregator without consuming its CPU."""
    t_get = read_result.points[("ibex", "read_ahead", "one_sided_get")]
    t_two = read_result.points[("ibex", "read_ahead", "two_sided")]
    assert t_get <= t_two * 1.05


def test_bench_read_case(benchmark):
    def run():
        return experiments.read_study(mode="quick", reps=1)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.points
