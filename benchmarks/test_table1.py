"""Regenerates Table I — winner counts per overlap algorithm.

Paper shape: algorithms using asynchronous writes win the large majority
of cases (251/352 = 71%); even the no-overlap baseline keeps a nontrivial
share (59/352 = 17%); Comm Overlap alone wins least (42/352 = 12%).
"""

import pytest

from repro.bench import experiments, reporting
from repro.bench.runner import run_matrix
from repro.collio.overlap import ASYNC_WRITE_ALGORITHMS

from benchmarks.conftest import micro_case

ALGOS = experiments.ALGORITHM_ORDER


@pytest.fixture(scope="module")
def table1_micro():
    cases = [
        micro_case(benchmark, cluster)
        for benchmark in ("ior", "tile_256", "tile_1m", "flash")
        for cluster in ("crill", "ibex")
    ]
    matrix = run_matrix(cases, ALGOS, reps=2)
    return experiments.table1(matrix=matrix)


def test_table1_regenerates(table1_micro, print_artifact):
    print_artifact(reporting.render_table1(table1_micro))
    assert table1_micro.total_cases == 8
    assert set(table1_micro.rows) == {"ior", "tile_256", "tile_1m", "flash"}


def test_async_write_algorithms_dominate(table1_micro):
    """Paper: 71% of series won by an algorithm with asynchronous writes."""
    assert table1_micro.async_write_share() >= 0.5


def test_comm_overlap_is_not_the_winner_overall(table1_micro):
    """Paper: Comm Overlap wins the fewest cases (42/352)."""
    totals = table1_micro.totals
    async_total = sum(totals[a] for a in ASYNC_WRITE_ALGORITHMS)
    assert totals["comm_overlap"] <= async_total


def test_bench_one_table1_case(benchmark):
    """Host-time benchmark of a single Table-I case (all five algorithms)."""
    from repro.bench.runner import run_case

    case = micro_case("flash", "ibex")

    def run():
        return run_case(case, ALGOS, reps=1)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(result.series) == 5
