"""Regenerates the Sec. V Lustre note.

Paper shape: on a file system with poor ``aio_write`` support
(Lustre-like), the advantage of asynchronous-write overlap disappears.
"""

import pytest

from repro.bench import experiments, reporting


@pytest.fixture(scope="module")
def lustre_result():
    return experiments.lustre_note(mode="quick", reps=2)


def test_lustre_regenerates(lustre_result, print_artifact):
    print_artifact(reporting.render_lustre(lustre_result))
    assert set(lustre_result.entries) == {"beegfs", "lustre"}


def test_write_overlap_gains_on_beegfs(lustre_result):
    assert lustre_result.gain("beegfs") > 0.05


def test_gain_disappears_on_lustre(lustre_result):
    """The paper's closing observation."""
    assert lustre_result.gain("lustre") < lustre_result.gain("beegfs") - 0.05
    assert lustre_result.gain("lustre") < 0.05


def test_bench_lustre_case(benchmark):
    def run():
        return experiments.lustre_note(mode="quick", reps=1)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert "lustre" in result.entries
