"""Regenerates the Sec. IV-A phase breakdown (no-overlap, Tile-1M).

Paper shape: at 576 processes the aggregator spends ~93% of the
collective write in file access on crill vs ~77% on Ibex — which is why
overlap buys little on crill and a lot on Ibex.
"""

import pytest

from repro.bench import experiments, reporting


@pytest.fixture(scope="module")
def breakdown_result():
    return experiments.breakdown(mode="quick")


def test_breakdown_regenerates(breakdown_result, print_artifact):
    print_artifact(reporting.render_breakdown(breakdown_result))
    assert len(breakdown_result.shares) == 4


def test_crill_is_io_dominated(breakdown_result):
    """Paper: 93% file access on crill at 576 procs."""
    for (cluster, _nprocs), (comm, io) in breakdown_result.shares.items():
        if cluster == "crill":
            assert io >= 0.75


def test_ibex_has_larger_communication_share(breakdown_result):
    """Paper: ~23% communication on Ibex vs ~7% on crill."""
    crill_comm = max(
        comm for (cl, _n), (comm, _io) in breakdown_result.shares.items() if cl == "crill"
    )
    ibex_comm = max(
        comm for (cl, _n), (comm, _io) in breakdown_result.shares.items() if cl == "ibex"
    )
    assert ibex_comm > crill_comm


def test_shares_sum_to_one(breakdown_result):
    for (comm, io) in breakdown_result.shares.values():
        assert comm + io == pytest.approx(1.0)


def test_bench_breakdown_point(benchmark):
    from repro.bench.runner import specs_for
    from repro.collio import CollectiveConfig, RunSpec, run_collective_write
    from repro.workloads import make_workload

    cluster, fs = specs_for("ibex", 64)
    workload = make_workload("tile_1m", 100, element_size=4096)
    views = workload.views()
    config = CollectiveConfig.for_scale(64)
    spec = RunSpec(
        cluster=cluster, fs=fs, nprocs=100, views=views,
        algorithm="no_overlap", config=config, carry_data=False,
    )

    def run():
        return run_collective_write(spec)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.elapsed > 0
