"""Regenerates Fig. 4 — shuffle-primitive winner counts on Write-Comm-2.

Paper shape: two-sided communication wins ~75% of cases overall; the
exception is Tile I/O with 256-byte tiles (many small discontiguous
extents), where fence-based one-sided wins ~37% of cases with 27-30%
average gains; on crill, one-sided only starts helping at >= 256
processes.
"""

import pytest

from repro.bench import experiments, reporting
from repro.bench.runner import run_matrix

from benchmarks.conftest import micro_case

SHUFFLES = tuple(experiments.SHUFFLE_ORDER)


@pytest.fixture(scope="module")
def fig4_micro():
    cases = [
        micro_case(benchmark, cluster)
        for benchmark in ("ior", "tile_256", "tile_1m")
        for cluster in ("crill", "ibex")
    ]
    matrix = run_matrix(cases, ["write_comm2"], shuffles=SHUFFLES, reps=2)
    result = experiments.Fig4Result(matrix=matrix)
    for benchmark in ("ior", "tile_256", "tile_1m"):
        row = {s: 0 for s in SHUFFLES}
        for case_result in matrix.cases(benchmark=benchmark):
            series = case_result.by_shuffle("write_comm2")
            winner = min(series.items(), key=lambda kv: (kv[1].point, kv[0]))[0]
            row[winner] += 1
            c = case_result.case
            result.winners[(benchmark, c.cluster, c.nprocs)] = winner
        result.rows[benchmark] = row
    return result


def test_fig4_regenerates(fig4_micro, print_artifact):
    print_artifact(reporting.render_fig4(fig4_micro))
    assert sum(fig4_micro.totals.values()) == 6


def test_two_sided_wins_contiguous_benchmarks(fig4_micro):
    """Paper: two-sided is best for IOR and Tile-1M on both clusters."""
    for benchmark in ("ior", "tile_1m"):
        row = fig4_micro.rows[benchmark]
        assert row["two_sided"] >= row["one_sided_fence"]
        assert row["two_sided"] >= row["one_sided_lock"]


def test_one_sided_wins_tile_256_somewhere(fig4_micro):
    """Paper: the Tile-256 exception — one-sided fence wins there."""
    row = fig4_micro.rows["tile_256"]
    assert row["one_sided_fence"] + row["one_sided_lock"] >= 1


def test_crill_small_scale_prefers_two_sided(fig4_micro):
    """Paper Sec. IV-B: below 256 processes, crill almost never benefits
    from one-sided communication."""
    for (benchmark, cluster, nprocs), winner in fig4_micro.winners.items():
        if cluster == "crill" and nprocs < 256 and benchmark != "tile_256":
            assert winner == "two_sided", (benchmark, cluster, nprocs, winner)


def test_bench_fig4_case(benchmark):
    from repro.bench.runner import run_case

    case = micro_case("tile_256", "ibex")

    def run():
        return run_case(case, ["write_comm2"], shuffles=SHUFFLES, reps=1)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(result.series) == 3
