"""Regenerates Fig. 1 — Tile-1M execution times on both clusters.

Paper shape: Ibex is faster in absolute terms and gains much more from
overlap (34%/17% at 256/576 procs) than crill (~0%/6%), because crill's
collective write is ~93% file access.
"""

import pytest

from repro.bench import experiments, reporting


@pytest.fixture(scope="module")
def fig1_result():
    return experiments.fig1(mode="quick", reps=2)


def test_fig1_regenerates(fig1_result, print_artifact):
    print_artifact(reporting.render_fig1(fig1_result))
    assert len(fig1_result.points) == 2 * 2 * 5  # clusters x counts x algorithms


def test_ibex_faster_than_crill(fig1_result):
    for nprocs in fig1_result.nprocs_list:
        crill_t = fig1_result.points[("crill", nprocs, "no_overlap")]
        ibex_t = fig1_result.points[("ibex", nprocs, "no_overlap")]
        assert ibex_t < crill_t


def test_ibex_gains_more_from_overlap(fig1_result):
    """The paper's central Fig. 1 observation."""
    for nprocs in fig1_result.nprocs_list:
        assert fig1_result.improvement("ibex", nprocs) > fig1_result.improvement(
            "crill", nprocs
        ) - 0.02  # allow noise slack


def test_ibex_improvement_positive(fig1_result):
    assert max(
        fig1_result.improvement("ibex", n) for n in fig1_result.nprocs_list
    ) > 0.03


def test_bench_fig1_single_point(benchmark):
    from repro.bench.runner import Case, run_case

    case = Case("tile_1m", "ibex", 100, (("element_size", 4096),))

    def run():
        return run_case(case, ["no_overlap", "write_overlap"], reps=1)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.num_cycles > 0
