"""Shared helpers for the benchmark suite.

Each ``benchmarks/test_*.py`` regenerates one of the paper's artifacts on
a *micro matrix* — the smallest case set that still exercises the regime
behind the artifact — prints the rendered table (run with ``-s`` to see
it), asserts the paper's qualitative shape, and times one representative
simulation with pytest-benchmark.

The full (larger) matrices are produced by ``python -m repro.bench
<experiment> [--mode full]``; see EXPERIMENTS.md for recorded outputs.
"""

import pytest

from repro.bench.runner import Case
from repro.units import MiB

#: Problem-size overrides for micro cases (seconds per run, not minutes).
MICRO_SIZE = {
    "ior": (("block_size", 2 * MiB),),
    "tile_1m": (("element_size", 4096),),
    "tile_256": (("rows", 256), ("row_elements", 8)),
    "flash": (("blocks_per_proc", 5),),
}

#: One multi-node process count per benchmark (>= 2 nodes on both clusters).
MICRO_NPROCS = {
    "ior": 96,
    "tile_1m": 100,
    "tile_256": 64,
    "flash": 96,
}


def micro_case(benchmark: str, cluster: str, nprocs: int | None = None) -> Case:
    return Case(
        benchmark,
        cluster,
        nprocs if nprocs is not None else MICRO_NPROCS[benchmark],
        MICRO_SIZE[benchmark],
    )


@pytest.fixture
def print_artifact(capsys):
    """Print a rendered artifact so it survives pytest's capture with -s."""

    def _print(text: str) -> None:
        with capsys.disabled():
            print("\n" + text + "\n")

    return _print
