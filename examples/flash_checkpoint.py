#!/usr/bin/env python
"""FLASH-IO checkpoint write on both clusters, with phase instrumentation.

Writes the FLASH checkpoint pattern (24 unknowns on AMR blocks,
variable-major file layout) collectively and prints, per algorithm, the
aggregator's phase breakdown — showing *what* the overlap algorithms
actually hide.

Run:  python examples/flash_checkpoint.py [--nprocs 96]
"""

import argparse

from repro.api import CollectiveConfig, RunSpec, make_workload, run_collective_write
from repro.bench.runner import specs_for
from repro.units import fmt_time

ALGORITHMS = ["no_overlap", "comm_overlap", "write_overlap", "write_comm2"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nprocs", type=int, default=96)
    args = parser.parse_args()

    for cluster_name in ("crill", "ibex"):
        cluster, fs = specs_for(cluster_name, scale=64)
        workload = make_workload("flash", args.nprocs)
        desc = workload.describe()
        views = workload.views()
        config = CollectiveConfig.for_scale(64)
        print(f"\n=== {cluster_name}: FLASH checkpoint, {args.nprocs} ranks, "
              f"{desc['nvar']} vars x {desc['blocks_per_proc']} blocks/proc, "
              f"file {desc['file_size'] >> 20} MiB ===")
        print(f"{'algorithm':15s} {'elapsed':>12s} {'agg shuffle':>12s} "
              f"{'agg write':>12s} {'agg wr-post':>12s}")
        spec = RunSpec(
            cluster=cluster, fs=fs, nprocs=args.nprocs, views=views,
            config=config, carry_data=False,
        )
        for algorithm in ALGORITHMS:
            run = run_collective_write(spec.replace(algorithm=algorithm))
            agg = run.per_rank_stats[0]
            print(f"{algorithm:15s} {fmt_time(run.elapsed):>12s} "
                  f"{fmt_time(agg.time_in('shuffle') + agg.time_in('shuffle_init')):>12s} "
                  f"{fmt_time(agg.time_in('write')):>12s} "
                  f"{fmt_time(agg.time_in('write_post')):>12s}")


if __name__ == "__main__":
    main()
