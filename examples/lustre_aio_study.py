#!/usr/bin/env python
"""The Lustre aio note (paper Sec. V), as a runnable study.

The paper closes by observing that preliminary Lustre runs looked "very
different" from BeeGFS "due to significant performance problems of the
aio_write operations on Lustre".  This example sweeps the quality of the
asynchronous-I/O path — from healthy (BeeGFS-like) to serialized and slow
(Lustre-like) — and shows Write Overlap's advantage over the baseline
evaporating, while the communication-only overlap is unaffected.

Run:  python examples/lustre_aio_study.py
"""

from repro.api import CollectiveConfig, RunSpec, make_workload, run_collective_write
from repro.bench.runner import specs_for
from repro.units import MiB, fmt_time

NPROCS = 96


def main() -> None:
    cluster, beegfs = specs_for("ibex", scale=64)
    workload = make_workload("ior", NPROCS, block_size=4 * MiB)
    views = workload.views()
    config = CollectiveConfig.for_scale(64)

    variants = [
        ("healthy aio (BeeGFS-like)", beegfs),
        ("limited aio (1 slot)", beegfs.with_(aio_slots=1)),
        ("slow aio (60% throughput)", beegfs.with_(aio_throughput_factor=0.6)),
        ("Lustre-like (1 slot + 45%)", beegfs.with_(aio_slots=1, aio_throughput_factor=0.45)),
    ]

    print(f"IOR, {NPROCS} ranks on ibex — Write Overlap vs No Overlap as aio degrades\n")
    print(f"{'aio path':30s} {'no_overlap':>12s} {'write_overlap':>14s} "
          f"{'comm_overlap':>13s} {'write gain':>11s}")
    for label, fs in variants:
        spec = RunSpec(
            cluster=cluster, fs=fs, nprocs=NPROCS, views=views,
            config=config, carry_data=False,
        )
        times = {}
        for algorithm in ("no_overlap", "write_overlap", "comm_overlap"):
            run = run_collective_write(spec.replace(algorithm=algorithm))
            times[algorithm] = run.elapsed
        gain = (times["no_overlap"] - times["write_overlap"]) / times["no_overlap"]
        print(f"{label:30s} {fmt_time(times['no_overlap']):>12s} "
              f"{fmt_time(times['write_overlap']):>14s} "
              f"{fmt_time(times['comm_overlap']):>13s} {gain:>+10.1%}")

    print("\nAs the aio path degrades, the asynchronous-write algorithms lose "
          "their edge —\nthe paper's closing observation about Lustre.")


if __name__ == "__main__":
    main()
