#!/usr/bin/env python
"""IOR process-count sweep: where does overlapping pay off?

Sweeps an IOR-style collective write over process counts on both of the
paper's clusters and reports each algorithm's improvement over the
no-overlap baseline — the experiment behind the paper's Table I rows and
Figs. 2-3.  Note how crill (slow node-local HDD storage, ~90% of time in
file access) caps the achievable gain, while Ibex (fast dedicated
storage, larger communication share) rewards overlap much more.

Run:  python examples/ior_sweep.py [--counts 96 144 192] [--reps 3]
"""

import argparse

from repro.analysis.stats import Series, relative_improvement
from repro.api import CollectiveConfig, RunSpec, make_workload, run_collective_write
from repro.bench.runner import specs_for
from repro.units import fmt_time

ALGORITHMS = ["no_overlap", "comm_overlap", "write_overlap", "write_comm", "write_comm2"]


def sweep(cluster_name: str, counts: list[int], reps: int, block_size: int) -> None:
    cluster, fs = specs_for(cluster_name, scale=64)
    print(f"\n=== {cluster_name} ===")
    header = f"{'procs':>6s} {'baseline':>12s}" + "".join(f"{a:>15s}" for a in ALGORITHMS[1:])
    print(header)
    for nprocs in counts:
        workload = make_workload("ior", nprocs, block_size=block_size)
        views = workload.views()
        config = CollectiveConfig.for_scale(64)
        spec = RunSpec(
            cluster=cluster, fs=fs, nprocs=nprocs, views=views,
            config=config, carry_data=False,
        )
        points = {}
        for algorithm in ALGORITHMS:
            series = Series(key=(cluster_name, nprocs), algorithm=algorithm)
            for rep in range(reps):
                run = run_collective_write(
                    spec.replace(algorithm=algorithm, seed=7 + 1000 * rep)
                )
                series.add(run.elapsed)
            points[algorithm] = series.point
        base = points["no_overlap"]
        cells = "".join(
            f"{relative_improvement(base, points[a]):>+14.1%} " for a in ALGORITHMS[1:]
        )
        print(f"{nprocs:>6d} {fmt_time(base):>12s} {cells}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--counts", type=int, nargs="+", default=[96, 144])
    parser.add_argument("--reps", type=int, default=2)
    parser.add_argument("--block-mib", type=int, default=4,
                        help="per-process block size in MiB (paper: 16 at scale 64)")
    args = parser.parse_args()
    for cluster_name in ("crill", "ibex"):
        sweep(cluster_name, args.counts, args.reps, args.block_mib << 20)


if __name__ == "__main__":
    main()
