#!/usr/bin/env python
"""Collective read with read-ahead — the write paper's question, mirrored.

Writes a checkpoint once (out of band), then reads it back collectively
under the three read algorithms and both scatter primitives, with
byte-exact verification.  The interesting inversion vs. the write case:
in a read, the aggregator is the single data *source* of each cycle, so
one-sided ``Get`` (destinations pull, no aggregator CPU) pairs well with
read-ahead.

Run:  python examples/collective_read.py
"""

from repro.api import CollectiveConfig, beegfs_ibex, ibex, make_workload
from repro.collio import run_collective_read
from repro.units import fmt_bandwidth, fmt_time

NPROCS = 64


def main() -> None:
    workload = make_workload("ior", NPROCS, block_size=1 << 20)
    views = workload.views()
    config = CollectiveConfig.for_scale(64)

    print(f"Collective read of a {workload.total_bytes >> 20} MiB file, "
          f"{NPROCS} ranks on ibex\n")
    print(f"{'algorithm':17s} {'scatter':15s} {'time':>12s} {'bandwidth':>12s}")
    for algorithm in ("no_overlap", "read_ahead", "scatter_overlap"):
        for scatter in ("two_sided", "one_sided_get"):
            result = run_collective_read(
                ibex(), beegfs_ibex(), NPROCS, views,
                algorithm=algorithm, scatter=scatter, config=config,
                verify=True,
            )
            assert result.verified
            print(f"{algorithm:17s} {scatter:15s} {fmt_time(result.elapsed):>12s} "
                  f"{fmt_bandwidth(result.read_bandwidth):>12s}")

    print("\nEvery rank read back exactly the bytes it owned (verified).")


if __name__ == "__main__":
    main()
