#!/usr/bin/env python
"""Quickstart: run one collective write under every overlap algorithm.

This is the smallest end-to-end use of the library: an IOR-style 1-D
workload on the simulated *crill* cluster, written with each of the five
algorithms the paper evaluates, with byte-exact verification of the
resulting file.

Run:  python examples/quickstart.py
"""

from repro.api import (
    CollectiveConfig,
    RunSpec,
    beegfs_crill,
    crill,
    make_workload,
    run_collective_write,
)
from repro.units import fmt_bandwidth, fmt_time

NPROCS = 64
#: Per-rank block size.  Small enough that byte-exact verification is
#: instant; crank it up (the paper's scaled size is 16 MiB) for timing
#: studies — and pass carry_data=False instead of verify=True.
BLOCK_SIZE = 1 << 20
ALGORITHMS = ["no_overlap", "comm_overlap", "write_overlap", "write_comm", "write_comm2"]


def main() -> None:
    # The paper's platform: crill's 16 nodes + its HDD-backed BeeGFS,
    # with all data sizes scaled down 64x (see repro.config).
    cluster = crill()
    fs = beegfs_crill()

    # An IOR-like workload: every rank writes one contiguous block.
    workload = make_workload("ior", NPROCS, block_size=BLOCK_SIZE)
    views = workload.views()
    config = CollectiveConfig.for_scale(64)

    print(f"IOR workload: {NPROCS} ranks x {workload.block_size >> 20} MiB "
          f"= {workload.total_bytes >> 20} MiB total\n")
    print(f"{'algorithm':15s} {'time':>12s} {'bandwidth':>12s} {'vs baseline':>12s}")

    # One immutable spec; each run only swaps the algorithm.
    spec = RunSpec(
        cluster=cluster, fs=fs, nprocs=NPROCS, views=views, config=config,
        verify=True,  # byte-exact check of the written file
    )

    baseline = None
    for algorithm in ALGORITHMS:
        result = run_collective_write(spec.replace(algorithm=algorithm))
        assert result.verified
        if baseline is None:
            baseline = result.elapsed
        gain = (baseline - result.elapsed) / baseline
        print(f"{algorithm:15s} {fmt_time(result.elapsed):>12s} "
              f"{fmt_bandwidth(result.write_bandwidth):>12s} {gain:>+11.1%}")

    print("\nAll five algorithms produced byte-identical files.")


if __name__ == "__main__":
    main()
