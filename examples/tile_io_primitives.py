#!/usr/bin/env python
"""Shuffle-primitive study on the Tile I/O workloads (the paper's Fig. 4).

Compares the three data-transfer primitives for the shuffle phase —
non-blocking two-sided, one-sided Put + ``Win_fence``, one-sided Put +
``Win_lock``/``unlock`` + barrier — on the Write-Comm-2 algorithm for the
two Tile I/O configurations.

The contrast to look for (paper Sec. IV-B): with 1 MB tiles (few, large,
contiguous runs) the two-sided path is effectively zero-copy on both
sides and the RMA variants just add synchronization; with 256-byte tiles
(many small discontiguous runs) the two-sided path pays pack/unpack CPU
at the busy aggregator while Puts land in place — so one-sided wins.

Run:  python examples/tile_io_primitives.py [--nprocs 100] [--reps 3]
"""

import argparse

from repro.analysis.stats import Series, relative_improvement
from repro.api import CollectiveConfig, RunSpec, make_workload, run_collective_write
from repro.bench.runner import specs_for
from repro.units import fmt_time

SHUFFLES = ["two_sided", "one_sided_fence", "one_sided_lock"]


def study(cluster_name: str, variant: str, nprocs: int, reps: int, quick: bool) -> None:
    cluster, fs = specs_for(cluster_name, scale=64)
    kwargs = {}
    if quick:
        kwargs = {"rows": 256, "row_elements": 16} if variant == "tile_256" else {"element_size": 4096}
    workload = make_workload(variant, nprocs, **kwargs)
    views = workload.views()
    config = CollectiveConfig.for_scale(64, extent_cost_factor=workload.extent_cost_factor)
    spec = RunSpec(
        cluster=cluster, fs=fs, nprocs=nprocs, views=views,
        algorithm="write_comm2", config=config, carry_data=False,
    )
    points = {}
    for shuffle in SHUFFLES:
        series = Series(key=(cluster_name, variant), algorithm=shuffle)
        for rep in range(reps):
            run = run_collective_write(
                spec.replace(shuffle=shuffle, seed=11 + 1000 * rep)
            )
            series.add(run.elapsed)
        points[shuffle] = series.point
    base = points["two_sided"]
    extents = workload.view(0).num_extents
    print(f"{cluster_name:6s} {variant:9s} ({extents:4d} extents/rank) "
          f"two_sided={fmt_time(base):>11s}  "
          + "  ".join(
              f"{s}={relative_improvement(base, points[s]):+.1%}" for s in SHUFFLES[1:]
          ))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nprocs", type=int, default=100)
    parser.add_argument("--reps", type=int, default=3)
    parser.add_argument("--paper-sizes", action="store_true",
                        help="use the paper's full (scaled) problem sizes — slower")
    args = parser.parse_args()
    for cluster_name in ("ibex", "crill"):
        for variant in ("tile_1m", "tile_256"):
            study(cluster_name, variant, args.nprocs, args.reps, quick=not args.paper_sizes)


if __name__ == "__main__":
    main()
