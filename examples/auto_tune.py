#!/usr/bin/env python
"""Auto-tuning: let the search pick the collective-write configuration.

Three stages, mirroring how the subsystem is meant to be used:

1. `autotune()` searches (algorithm, shuffle, cb_buffer_size,
   num_aggregators) for a scenario with successive halving and prints
   the ranked recommendation.
2. The same search re-runs against the persistent cache — zero
   simulations the second time (`tune.sim_run == 0`).
3. `run_collective_write(algorithm="auto")` applies the idea in-line:
   the write races the candidate algorithms on its *exact* views and
   runs the winner.

Run:  python examples/auto_tune.py
"""

import tempfile

from repro.api import (
    CollectiveConfig,
    RunSpec,
    autotune,
    beegfs_crill,
    crill,
    make_workload,
    run_collective_write,
)
from repro.bench.reporting import render_tuning
from repro.sim import Tracer
from repro.units import fmt_time

#: Small scenario so the whole example runs in seconds.
NPROCS = 8
SCALE = 256


def main() -> None:
    with tempfile.TemporaryDirectory() as cache_dir:
        # -- 1: search ------------------------------------------------
        tracer = Tracer()
        result = autotune(
            benchmark="ior", cluster="crill", nprocs=NPROCS, scale=SCALE,
            search="halving", reps=3, n_workers=4, cache_dir=cache_dir,
            tracer=tracer,
        )
        print(render_tuning(result))
        print(f"\nwinner: {result.best.candidate.label} "
              f"({fmt_time(result.best.point)})")

        # -- 2: the cache makes reruns free ---------------------------
        rerun_tracer = Tracer()
        rerun = autotune(
            benchmark="ior", cluster="crill", nprocs=NPROCS, scale=SCALE,
            search="halving", reps=3, n_workers=4, cache_dir=cache_dir,
            tracer=rerun_tracer,
        )
        assert rerun.to_json() == result.to_json()
        print(f"\nrerun: {rerun_tracer.count('tune.cache_hit')} cache hits, "
              f"{rerun_tracer.count('tune.sim_run')} simulations")

        # -- 3: algorithm="auto" inside the write API -----------------
        workload = make_workload("ior", NPROCS, scale=SCALE)
        config = CollectiveConfig.for_scale(
            SCALE, extent_cost_factor=workload.extent_cost_factor
        )
        run = run_collective_write(
            RunSpec(
                cluster=crill(scale=SCALE), fs=beegfs_crill(scale=SCALE),
                nprocs=NPROCS, views=workload.views(), algorithm="auto",
                config=config, carry_data=False, auto_cache_dir=cache_dir,
            )
        )
        print(f"\nalgorithm='auto' chose {run.algorithm}: "
              f"{fmt_time(run.elapsed)} "
              f"({run.trace_counters.get('tune.auto_trials', 0)} trials raced)")


if __name__ == "__main__":
    main()
