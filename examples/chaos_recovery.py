#!/usr/bin/env python
"""Crash recovery: a collective write surviving an aggregator crash
plus a storage-target outage.

The fault spec arms *permanent* faults — a rank that dies mid-collective
and an OST that goes down and stays down.  The recovery subsystem
(`repro.recovery`) carries the run to completion anyway:

1. every aggregator journals each cycle's extent + checksum at its
   commit point;
2. when the crash aborts the collective, the survivors re-elect
   aggregators without the dead rank and rebuild the file-domain plan;
3. stripes of the dead target are remapped onto the survivors;
4. only the cycles the journal has *not* committed are replayed.

The result verifies byte-exactly against the fault-free expectation, and
the recovery timeline below is reconstructed from the run's spans and
the `RecoveryReport`.

Run:  python examples/chaos_recovery.py
"""

from repro.api import (
    ClusterSpec,
    CollectiveConfig,
    FaultSpec,
    FileView,
    FsSpec,
    RunSpec,
    run_collective_write,
)
from repro.units import MB, fmt_bytes, fmt_time

#: Small platform: 4 nodes, 4 storage targets — an outage takes out a
#: quarter of the stripes, a crash takes out one of four aggregators.
NPROCS = 8
PER_RANK = 64 * 1024
#: Seed chosen so exactly one *aggregator* crashes and one target goes
#: down — the interesting case: the survivors must re-elect.
SEED = 37


def platform() -> tuple[ClusterSpec, FsSpec]:
    cluster = ClusterSpec(
        name="ex", num_nodes=4, cores_per_node=4,
        network_bandwidth=1000 * MB, network_latency=1e-6,
        eager_threshold=1024,
    )
    fs = FsSpec(
        name="exfs", num_targets=4, target_bandwidth=300 * MB,
        target_latency=5e-5, stripe_size=4096,
    )
    return cluster, fs


def main() -> None:
    cluster, fs = platform()
    views = {r: FileView.contiguous(r * PER_RANK, PER_RANK) for r in range(NPROCS)}
    spec = RunSpec(
        cluster=cluster, fs=fs, nprocs=NPROCS, views=views,
        algorithm="write_overlap", verify=True, trace=True, seed=SEED,
        config=CollectiveConfig(num_aggregators=2),
    )

    # -- fault-free baseline ------------------------------------------
    baseline = run_collective_write(spec)
    print(f"fault-free: {fmt_time(baseline.elapsed)} for "
          f"{fmt_bytes(baseline.total_bytes)} "
          f"({baseline.num_aggregators} aggregators)")

    # -- the same write under crash-class faults ----------------------
    faults = FaultSpec(
        rank_crash_rate=0.25,          # each rank: 25% chance to die
        ost_outage_rate=0.30,          # each OST: 30% chance to go down
        crash_window=0.8 * baseline.elapsed,  # faults land mid-write
    )
    run = run_collective_write(spec.replace(faults=faults))
    report = run.recovery

    print(f"\nchaos run:  {fmt_time(run.elapsed)} "
          f"({run.elapsed / baseline.elapsed:.2f}x slowdown), "
          f"verified byte-exact: {run.verified}")
    print(f"crashed ranks: {report.crashed_ranks}, "
          f"down targets: {report.down_targets}")
    print(f"recovery: {report.attempts} attempts, "
          f"{fmt_time(report.failover_time)} in failover, "
          f"{fmt_bytes(report.replayed_bytes)} replayed, "
          f"{report.journal_commits} journal commits")

    # -- the recovery timeline ----------------------------------------
    print("\ntimeline (from the recovery report):")
    print(report.timeline())

    print("\nrecovery spans (from the trace):")
    attempt_aggs = []
    for span in run.spans:
        if span.category != "recovery":
            continue
        if span.name.startswith("attempt"):
            attempt_aggs.append(span.attrs["aggregators"])
        extras = ", ".join(f"{k}={v}" for k, v in sorted(span.attrs.items()))
        print(f"  {span.t0 * 1e3:9.4f}ms .. {span.t1 * 1e3:9.4f}ms  "
              f"{span.name:10s} {extras}")

    print(f"\nre-election: aggregators {attempt_aggs[0]} -> {attempt_aggs[-1]} "
          f"(rank {report.crashed_ranks[0]} demoted, successor elected)")
    assert run.verified and report.attempts > 1
    assert attempt_aggs[0] != attempt_aggs[-1]


if __name__ == "__main__":
    main()
