"""Analytic collective operations with full synchronization semantics.

At the paper's scale (up to 704 ranks and >1000 internal cycles, each of
which may involve a barrier in the RMA variants), simulating every
dissemination-round message of every collective would multiply the event
count by orders of magnitude without affecting any effect the paper
studies — the paper's subject is the *point-to-point* shuffle traffic and
the file I/O.  Collectives therefore use LogP-style analytic cost models:

* every participating rank blocks until the last rank has entered,
* all ranks leave at ``max(entry times) + model_cost``, and
* data (for bcast/allgather) is exchanged as Python values.

The slight simplification that all ranks leave simultaneously (true for
barrier and allreduce; pessimistic by at most one tree depth for bcast)
is conservative and identical across all compared algorithms.

Cost formulas (``alpha`` = wire latency + per-call software overhead,
``beta`` = 1/bandwidth, ``P`` ranks, ``m`` message bytes):

=============  =====================================================
barrier        ``ceil(log2 P) * 2 * alpha``            (dissemination)
bcast          ``ceil(log2 P) * (alpha + m * beta)``   (binomial)
allreduce      ``ceil(log2 P) * 2 * (alpha + m*beta)`` (recursive dbl)
allgatherv     ``ceil(log2 P) * alpha + (M - m_min) * beta``
win_allocate   barrier + registration overhead
=============  =====================================================
"""

from __future__ import annotations

import math
from typing import Any

from repro.errors import MPIError
from repro.sim.engine import Engine, Event

__all__ = ["CollectiveModel", "CollectiveEngine"]

#: Fixed cost of registering an RMA window (memory pinning etc.), seconds.
WIN_ALLOCATE_OVERHEAD = 25e-6


class CollectiveModel:
    """LogP-style cost formulas for the analytic collectives."""

    def __init__(self, latency: float, bandwidth: float, call_overhead: float) -> None:
        if latency < 0 or bandwidth <= 0 or call_overhead < 0:
            raise ValueError("invalid collective model parameters")
        self.alpha = latency + call_overhead
        self.beta = 1.0 / bandwidth

    @staticmethod
    def _rounds(nprocs: int) -> int:
        """Tree/dissemination rounds for ``nprocs`` ranks."""
        return math.ceil(math.log2(nprocs)) if nprocs > 1 else 0

    def barrier(self, nprocs: int) -> float:
        return self._rounds(nprocs) * 2 * self.alpha

    def bcast(self, nprocs: int, nbytes: int) -> float:
        return self._rounds(nprocs) * (self.alpha + nbytes * self.beta)

    def allreduce(self, nprocs: int, nbytes: int) -> float:
        return self._rounds(nprocs) * 2 * (self.alpha + nbytes * self.beta)

    def allgatherv(self, nprocs: int, total_bytes: int, min_own_bytes: int) -> float:
        moved = max(0, total_bytes - min_own_bytes)
        return self._rounds(nprocs) * self.alpha + moved * self.beta


class _PendingCollective:
    """State of one in-flight collective instance."""

    __slots__ = ("kind", "entered", "events", "payloads", "sizes", "root")

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self.entered: dict[int, float] = {}
        self.events: dict[int, Event] = {}
        self.payloads: dict[int, Any] = {}
        self.sizes: dict[int, int] = {}
        self.root: int | None = None


class CollectiveEngine:
    """Coordinates collective instances across all ranks of a world.

    Ranks must invoke collectives in the same order (an MPI requirement);
    each collective instance is matched by its sequence number.  A kind
    mismatch raises :class:`MPIError` — catching real programming errors
    in the algorithms under test.
    """

    KINDS = ("barrier", "bcast", "allgather", "allreduce_sum", "allreduce_max", "win_allocate")

    def __init__(self, engine: Engine, nprocs: int, model: CollectiveModel) -> None:
        self.engine = engine
        self.nprocs = nprocs
        self.model = model
        self._pending: dict[int, _PendingCollective] = {}
        self.completed = 0

    def enter(
        self,
        seq: int,
        kind: str,
        rank: int,
        payload: Any = None,
        nbytes: int = 0,
        root: int | None = None,
    ) -> Event:
        """Record ``rank`` entering collective ``seq``; returns its exit event.

        The event's value is the collective's result: ``None`` for barrier,
        the root's payload for bcast, the list of payloads for allgather,
        the reduced value for allreduce.
        """
        if kind not in self.KINDS:
            raise MPIError(f"unknown collective kind {kind!r}")
        op = self._pending.get(seq)
        if op is None:
            op = _PendingCollective(kind)
            self._pending[seq] = op
        if op.kind != kind:
            raise MPIError(
                f"collective mismatch at seq {seq}: rank {rank} called {kind!r}, "
                f"others called {op.kind!r}"
            )
        if rank in op.entered:
            raise MPIError(f"rank {rank} entered collective seq {seq} twice")
        if root is not None:
            if op.root is not None and op.root != root:
                raise MPIError(f"inconsistent root for collective seq {seq}")
            op.root = root
        op.entered[rank] = self.engine.now
        op.payloads[rank] = payload
        op.sizes[rank] = int(nbytes)
        evt = self.engine.event()
        op.events[rank] = evt
        if len(op.entered) == self.nprocs:
            self._complete(seq, op)
        return evt

    def _complete(self, seq: int, op: _PendingCollective) -> None:
        del self._pending[seq]
        self.completed += 1
        cost = self._cost_of(op)
        finish = max(op.entered.values()) + cost
        result = self._result_of(op)
        delay = max(0.0, finish - self.engine.now)
        for evt in op.events.values():
            trigger = self.engine.timeout(delay)
            trigger.callbacks.append(lambda _e, evt=evt: evt.succeed(result))

    def _cost_of(self, op: _PendingCollective) -> float:
        model, nprocs = self.model, self.nprocs
        if op.kind == "barrier":
            return model.barrier(nprocs)
        if op.kind == "bcast":
            if op.root is None:
                raise MPIError("bcast without a root")
            return model.bcast(nprocs, op.sizes[op.root])
        if op.kind == "allgather":
            total = sum(op.sizes.values())
            return model.allgatherv(nprocs, total, min(op.sizes.values()))
        if op.kind in ("allreduce_sum", "allreduce_max"):
            return model.allreduce(nprocs, max(op.sizes.values()))
        if op.kind == "win_allocate":
            return model.barrier(nprocs) + WIN_ALLOCATE_OVERHEAD
        raise AssertionError(op.kind)

    def _result_of(self, op: _PendingCollective) -> Any:
        if op.kind in ("barrier", "win_allocate"):
            return None
        if op.kind == "bcast":
            return op.payloads[op.root]
        if op.kind == "allgather":
            return [op.payloads[r] for r in range(self.nprocs)]
        if op.kind == "allreduce_sum":
            total = None
            for r in range(self.nprocs):
                value = op.payloads[r]
                total = value if total is None else total + value
            return total
        if op.kind == "allreduce_max":
            return max(op.payloads[r] for r in range(self.nprocs))
        raise AssertionError(op.kind)

    @property
    def pending(self) -> int:
        return len(self._pending)
