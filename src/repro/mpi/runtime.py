"""Per-rank MPI library state: matching queues, progress, wire protocols.

This module is the mechanistic heart of the simulated MPI.  For every rank
it keeps the posted-receive and unexpected-message queues and drives the
eager and rendezvous protocols:

Eager (size < ``eager_threshold``)
    The payload is copied out of the user buffer and injected immediately
    (send completes locally).  On arrival it either completes a matching
    posted receive or is parked in the unexpected queue.  Posting a
    receive pays a scan cost proportional to the unexpected queue length —
    the effect the paper calls out for aggregators receiving from many
    processes.

Rendezvous (size >= threshold)
    The sender injects a small RTS.  Handling the RTS at the receiver
    (matching + CTS) and handling the CTS at the sender both require the
    respective rank to be *making progress* — i.e. inside an MPI call, or
    owning a progress thread.  Once the CTS is handled, the payload moves
    as an RDMA-style transfer needing no further CPU.  This is how a
    sender gets coupled to a busy aggregator ("slow down to the speed of
    the aggregator"), and why communication initiated before a blocking
    write does not complete *during* that write.

Matching is exact on ``(context, source, tag)``; wildcard receives are not
needed by the two-phase algorithm and are not provided.  Non-overtaking
order is guaranteed per key by FIFO queues (callers use distinct tags per
cycle, so eager/rendezvous interleaving on one key does not arise).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.errors import CorruptDataError, MPIError, RankCrashError
from repro.integrity.checksum import extent_checksum
from repro.mpi.message import (
    CONTROL_MESSAGE_SIZE,
    MESSAGE_HEADER_SIZE,
    MatchKey,
    Message,
    Protocol,
)
from repro.sim.engine import Event
from repro.sim.primitives import defuse

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.world import World

__all__ = ["RankRuntime", "RecvOp", "SendOp"]


class SendOp:
    """Sender-side state of one message."""

    __slots__ = ("message", "event", "posted_at")

    def __init__(self, message: Message, event: Event, posted_at: float) -> None:
        self.message = message
        self.event = event
        self.posted_at = posted_at


class RecvOp:
    """Receiver-side state of one posted receive."""

    __slots__ = ("key", "size", "buffer", "event", "posted_at", "checksum", "piece_checksums")

    def __init__(
        self,
        key: MatchKey,
        size: int,
        buffer: np.ndarray | None,
        event: Event,
        posted_at: float,
    ) -> None:
        self.key = key
        self.size = size
        self.buffer = buffer
        self.event = event
        self.posted_at = posted_at
        #: Carried message CRC / per-piece CRCs, stamped once the delivery
        #: verified them — the receiver-side end of checksum carrying.
        self.checksum: int | None = None
        self.piece_checksums: tuple | None = None

    def deliver_payload(self, payload: np.ndarray | None) -> None:
        """Copy an arrived payload into the user buffer (byte-accurate)."""
        if payload is None or self.buffer is None:
            return
        n = min(len(payload), len(self.buffer))
        self.buffer[:n] = payload[:n]


class RankRuntime:
    """The MPI library instance of one rank."""

    def __init__(self, world: "World", rank: int) -> None:
        self.world = world
        self.rank = rank
        self.node = world.cluster.node_of_rank(rank)
        spec = world.cluster.spec
        self.eager_threshold = spec.eager_threshold
        self._progress_thread = spec.progress_thread
        self._progress_depth = 0
        self._on_progress: list[Callable[[], None]] = []
        self.posted: dict[MatchKey, deque[RecvOp]] = {}
        self.unexpected: dict[MatchKey, deque[Message]] = {}
        self.unexpected_total = 0
        self.tracer = world.cluster.tracer
        # Counters for tests/analysis.
        self.eager_sent = 0
        self.rendezvous_sent = 0
        self.progress_deferrals = 0
        #: Set when an injected permanent fault killed this rank.
        self.crashed = False

    # ------------------------------------------------------------------
    # Crash delivery (permanent-fault hook)
    # ------------------------------------------------------------------
    def deliver_crash(self, process, when: float) -> bool:
        """Kill this rank's ``process`` at ``when`` (injected rank crash).

        The library marks itself crashed, emits the ``fault.rank_crash``
        trace event and interrupts the rank generator with
        :class:`~repro.errors.RankCrashError`; the uncaught failure
        aborts the engine run, which the recovery layer treats as the
        survivors' timeout-based crash detection.  Returns False if the
        rank already finished.
        """
        if self.crashed or process.triggered:
            return False
        self.crashed = True
        injector = self.world.faults
        if injector is not None:
            injector.injected += 1
        self.tracer.emit(when, "fault.rank_crash", rank=self.rank)
        return process.interrupt(RankCrashError(self.rank, when))

    # ------------------------------------------------------------------
    # Progress engine
    # ------------------------------------------------------------------
    @property
    def progress_active(self) -> bool:
        """True while this rank can advance pending MPI protocol work."""
        return self._progress_thread or self._progress_depth > 0

    def enter_progress(self) -> None:
        """Mark the rank as inside an MPI call; drains deferred work."""
        self._progress_depth += 1
        self._drain_progress_work()

    def exit_progress(self) -> None:
        if self._progress_depth <= 0:
            raise MPIError("exit_progress without matching enter_progress")
        self._progress_depth -= 1

    def _drain_progress_work(self) -> None:
        while self._on_progress:
            work, self._on_progress = self._on_progress, []
            for fn in work:
                fn()

    def when_progress(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` now if progressing, else at the next MPI call."""
        if self.progress_active:
            fn()
        else:
            self.progress_deferrals += 1
            self.tracer.emit(self.world.engine.now, "progress.deferred", rank=self.rank)
            self._on_progress.append(fn)

    # ------------------------------------------------------------------
    # Delivery (fault-injection hook)
    # ------------------------------------------------------------------
    def _deliver(self, transfer: Event, fn: Callable[[], None], control: bool = False) -> None:
        """Run ``fn`` when ``transfer`` completes, plus any injected delay.

        All wire arrivals handled by this rank's library route through
        here so the fault injector can jitter payload deliveries
        (``control=False``) and delay rendezvous handshakes
        (``control=True``).  Without an injector this is exactly
        ``transfer.callbacks.append(lambda _evt: fn())``.
        """
        injector = self.world.faults
        if injector is None:
            transfer.callbacks.append(lambda _evt: fn())
            return

        def arrive(_evt: Event) -> None:
            delay = (
                injector.rendezvous_delay(self.rank)
                if control
                else injector.message_delay(self.rank)
            )
            if delay > 0:
                late = self.world.engine.timeout(delay)
                late.callbacks.append(lambda _e: fn())
            else:
                fn()

        transfer.callbacks.append(arrive)

    # ------------------------------------------------------------------
    # Send path
    # ------------------------------------------------------------------
    def start_send(
        self,
        dst: int,
        tag: int,
        size: int,
        payload: np.ndarray | None,
        context: str,
        readonly: bool = False,
        checksum: int | None = None,
        piece_checksums: tuple | None = None,
    ) -> SendOp:
        """Initiate a message; returns the sender-side op (non-blocking).

        Called from inside an MPI call (the communicator charges call
        overhead and holds a progress window around this).

        ``checksum`` is the payload's CRC-32 when the caller already
        knows it (computed at the true producer, or combined from piece
        CRCs) — the byte pass here is skipped then.  ``piece_checksums``
        rides along as metadata for the receiver to file.
        """
        eng = self.world.engine
        event = eng.event()
        protocol = Protocol.EAGER if size < self.eager_threshold else Protocol.RENDEZVOUS
        msg = Message(
            src=self.rank, dst=dst, tag=tag, context=context, size=size,
            payload=None, protocol=protocol,
        )
        # Producer-side checksum: stamped at post time, while the buffer
        # is contractually stable (eager snapshots or readonly; rendezvous
        # zero-copy requires stability until the data transfer anyway).
        # The receiver verifies it after delivery — the checksummed
        # datapath's first hop.
        integrity = self.world.integrity
        if payload is not None and integrity is not None:
            if checksum is not None:
                msg.checksum = checksum
                integrity.checksum_reused += 1
            else:
                msg.checksum = extent_checksum(payload)
                integrity.checksum_computed += 1
            msg.piece_checksums = piece_checksums
        op = SendOp(msg, event, eng.now)
        msg.send_op = op
        dst_rt = self.world.runtime(dst)
        fabric = self.world.cluster.fabric
        self.tracer.emit(
            eng.now, f"send.{protocol}", src=self.rank, dst=dst, tag=tag, size=size
        )
        if protocol == Protocol.EAGER:
            self.eager_sent += 1
            # Buffered semantics: payload snapshot now, send completes
            # locally.  A ``readonly`` sender vouches the buffer stays
            # untouched until arrival, so the snapshot is skipped — the
            # receive side copies into the user buffer either way.  The
            # snapshot block comes from this node's buffer pool (released
            # at terminal delivery), so the hot path stops allocating.
            if payload is None or readonly:
                msg.payload = payload
            else:
                snap = self.world.buffer_pool(self.node).take(payload.size)
                snap[:] = payload
                msg.payload = snap
                msg.pooled = True
            transfer = fabric.transfer(self.node, dst_rt.node, size + MESSAGE_HEADER_SIZE)
            dst_rt._deliver(transfer, lambda: dst_rt._eager_arrived(msg))
            event.succeed(eng.now)
        else:
            self.rendezvous_sent += 1
            # Keep a *reference*: the payload is sampled when the data
            # transfer completes, so reusing the buffer early corrupts data
            # (as it would in a real zero-copy rendezvous).
            msg.payload = payload
            rts = fabric.transfer(self.node, dst_rt.node, CONTROL_MESSAGE_SIZE)
            dst_rt._deliver(rts, lambda: dst_rt._rts_arrived(msg), control=True)
        return op

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def match_cost(self) -> float:
        """CPU cost of scanning the unexpected queue for one posted receive."""
        return self.unexpected_total * self.world.cluster.spec.match_cost_per_entry

    def post_recv(
        self,
        src: int,
        tag: int,
        size: int,
        buffer: np.ndarray | None,
        context: str,
    ) -> RecvOp:
        """Post a receive; match against the unexpected queue first."""
        eng = self.world.engine
        key = MatchKey(context, src, tag)
        op = RecvOp(key, size, buffer, eng.event(), eng.now)
        queue = self.unexpected.get(key)
        if queue:
            msg = queue.popleft()
            if not queue:
                del self.unexpected[key]
            self.unexpected_total -= 1
            if msg.protocol == Protocol.EAGER:
                self._finish_recv(op, msg)
            else:
                # RTS was parked here; we are inside an MPI call, so the
                # CTS can go out immediately.
                self._send_cts(msg, op)
            return op
        self.posted.setdefault(key, deque()).append(op)
        return op

    # ------------------------------------------------------------------
    # Protocol internals (run in "library land", via event callbacks)
    # ------------------------------------------------------------------
    def _eager_arrived(self, msg: Message) -> None:
        """Eager payload fully at this rank: match or park.

        Eager delivery is modelled as not needing receiver progress
        (hardware tag-matching / firmware copies into the bounce buffer).
        """
        queue = self.posted.get(msg.key)
        if queue:
            op = queue.popleft()
            if not queue:
                del self.posted[msg.key]
            self._finish_recv(op, msg)
        else:
            msg.arrived = True
            self.unexpected.setdefault(msg.key, deque()).append(msg)
            self.unexpected_total += 1
            self.tracer.emit(
                self.world.engine.now, "recv.unexpected",
                rank=self.rank, src=msg.src, queue_length=self.unexpected_total,
            )

    def _rts_arrived(self, msg: Message) -> None:
        """Rendezvous RTS at the receiver: needs receiver progress."""
        self.when_progress(lambda: self._handle_rts(msg))

    def _handle_rts(self, msg: Message) -> None:
        queue = self.posted.get(msg.key)
        if queue:
            op = queue.popleft()
            if not queue:
                del self.posted[msg.key]
            self._send_cts(msg, op)
        else:
            self.unexpected.setdefault(msg.key, deque()).append(msg)
            self.unexpected_total += 1

    def _send_cts(self, msg: Message, op: RecvOp) -> None:
        """Receiver grants the transfer; sender handles CTS under progress."""
        fabric = self.world.cluster.fabric
        src_rt = self.world.runtime(msg.src)
        cts = fabric.transfer(self.node, src_rt.node, CONTROL_MESSAGE_SIZE)
        src_rt._deliver(
            cts,
            lambda: src_rt.when_progress(lambda: src_rt._start_rndv_data(msg, op)),
            control=True,
        )

    def _start_rndv_data(self, msg: Message, op: RecvOp) -> None:
        """Sender-side CTS handling: start the RDMA-style payload transfer."""
        fabric = self.world.cluster.fabric
        dst_rt = self.world.runtime(msg.dst)
        data = fabric.transfer(self.node, dst_rt.node, msg.size + MESSAGE_HEADER_SIZE)

        # Payload sampled at completion (zero-copy semantics); the recv
        # completes via the common delivery tail, which succeeds the
        # sender's event between payload delivery and the recv event —
        # the same ordering the pre-integrity code hard-coded here.
        dst_rt._deliver(
            data,
            lambda: dst_rt._finish_recv(op, msg, sender_event=msg.send_op.event),
        )

    # ------------------------------------------------------------------
    # Common delivery tail: payload copy, corruption, verify, repair
    # ------------------------------------------------------------------
    def _release_payload(self, msg: Message) -> None:
        """Return an eager snapshot's pooled block at terminal delivery.

        Not before: the snapshot is the retransmission source, so repair
        attempts must still find it intact.
        """
        if msg.pooled:
            src_node = self.world.runtime(msg.src).node
            self.world.buffer_pool(src_node).release(msg.payload)
            msg.payload = None
            msg.pooled = False

    def _finish_recv(
        self,
        op: RecvOp,
        msg: Message,
        attempt: int = 0,
        sender_event: Event | None = None,
    ) -> None:
        """Complete one receive: deliver, (maybe) corrupt, verify, finish.

        The single tail shared by all three delivery sites — matched
        eager arrival, unexpected-queue match at post time, and
        rendezvous data completion (which passes ``sender_event`` so the
        sender's op succeeds between payload delivery and the recv
        event, preserving the historical ordering).  Without an injector
        or integrity layer this is exactly ``deliver_payload`` +
        ``succeed`` — no extra draws, no extra events.
        """
        op.deliver_payload(msg.payload)
        injector = self.world.faults
        if injector is not None:
            # The flip hits the receiver-side copy only (the sender's
            # buffer stays pristine — retransmission repairs); the draw
            # itself fires in size-only mode too, so fault schedules are
            # identical whether or not payload bytes move.
            pos = injector.message_corruption(self.rank, msg.size)
            if pos is not None and op.buffer is not None and pos < op.buffer.size:
                op.buffer[pos] ^= 1 << (pos & 7)
        integrity = self.world.integrity
        if (
            integrity is not None
            and msg.checksum is not None
            and op.buffer is not None
            and op.buffer.size >= msg.size
        ):
            # The one unavoidable byte pass per network hop: the receiver
            # must prove the *landed* copy matches the carried CRC.
            integrity.checksum_computed += 1
            actual = extent_checksum(op.buffer[: msg.size])
            if actual != msg.checksum:
                integrity.note(
                    "detected", stage="message", rank=self.rank, src=msg.src,
                    attempt=attempt,
                )
                if (
                    integrity.repairs
                    and attempt < integrity.spec.max_repair_attempts
                    and not self.world.runtime(msg.src).crashed
                ):
                    self._request_retransmit(op, msg, attempt, sender_event)
                    return
                now = self.world.engine.now
                if sender_event is not None:
                    sender_event.succeed(now)
                self._release_payload(msg)
                # Defused: the failure is for the rank that waits on this
                # recv, not for the engine — the waiter may not have
                # yielded on the event yet (nonblocking irecv).
                defuse(
                    op.event.fail(
                        CorruptDataError(
                            f"message {msg.src}->{msg.dst} (tag {msg.tag}) failed "
                            f"checksum verification after {attempt + 1} delivery(s)"
                        )
                    )
                )
                return
            if attempt:
                integrity.note(
                    "repaired", stage="message", rank=self.rank, src=msg.src,
                    attempts=attempt,
                )
            # Verified: the carried CRCs now describe the receiver's copy.
            op.checksum = msg.checksum
            op.piece_checksums = msg.piece_checksums
        now = self.world.engine.now
        if sender_event is not None:
            sender_event.succeed(now)
        self._release_payload(msg)
        op.event.succeed(now)

    def _request_retransmit(
        self,
        op: RecvOp,
        msg: Message,
        attempt: int,
        sender_event: Event | None,
    ) -> None:
        """Repair a corrupted delivery by re-requesting it from the source.

        Models NIC-level NACK + retransmission (like a link-layer retry,
        so neither rank's CPU is involved): a control message travels
        back to the source, then the payload crosses the fabric again —
        re-read from the sender's still-pristine buffer — and re-enters
        the delivery tail with a fresh corruption draw.  Bounded by the
        integrity spec's ``max_repair_attempts``.
        """
        integrity = self.world.integrity
        integrity.note(
            "retransmit", stage="message", rank=self.rank, src=msg.src,
            attempt=attempt + 1,
        )
        fabric = self.world.cluster.fabric
        src_rt = self.world.runtime(msg.src)

        def resend() -> None:
            if src_rt.crashed:
                # The source died while our NACK was in flight: the
                # pristine bytes are gone with it.  Fail the receive —
                # the recovery layer's re-election replays the extent
                # from the respawned rank's data.
                now = self.world.engine.now
                if sender_event is not None and not sender_event.triggered:
                    sender_event.succeed(now)
                self._release_payload(msg)
                defuse(
                    op.event.fail(
                        CorruptDataError(
                            f"message {msg.src}->{msg.dst} (tag {msg.tag}) corrupt "
                            f"and source rank {msg.src} is dead"
                        )
                    )
                )
                return
            data = fabric.transfer(
                src_rt.node, self.node, msg.size + MESSAGE_HEADER_SIZE
            )
            self._deliver(
                data,
                lambda: self._finish_recv(
                    op, msg, attempt=attempt + 1, sender_event=sender_event
                ),
            )

        nack = fabric.transfer(self.node, src_rt.node, CONTROL_MESSAGE_SIZE)
        src_rt._deliver(nack, resend, control=True)

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def pending_counts(self) -> dict[str, int]:
        """Posted/unexpected queue sizes (for tests and debugging)."""
        return {
            "posted": sum(len(q) for q in self.posted.values()),
            "unexpected": self.unexpected_total,
            "deferred_progress_work": len(self._on_progress),
        }
