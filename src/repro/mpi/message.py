"""Message envelope and wire constants for the two-sided protocol."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

__all__ = ["Message", "MatchKey", "MESSAGE_HEADER_SIZE", "CONTROL_MESSAGE_SIZE", "Protocol"]

#: Bytes of envelope shipped with every message (tag, source, length, ...).
MESSAGE_HEADER_SIZE: int = 64
#: Size of RTS/CTS control messages of the rendezvous protocol.
CONTROL_MESSAGE_SIZE: int = 64


class Protocol:
    """Wire protocol chosen for a message (by size against the threshold)."""

    EAGER = "eager"
    RENDEZVOUS = "rendezvous"


@dataclass(frozen=True)
class MatchKey:
    """The (context, source, tag) triple receives are matched on.

    ``context`` separates communication planes (point-to-point traffic vs.
    internal traffic) like MPI communicator context ids do.
    """

    context: str
    source: int
    tag: int


@dataclass
class Message:
    """One in-flight point-to-point message."""

    src: int
    dst: int
    tag: int
    context: str
    size: int
    payload: np.ndarray | None = None
    protocol: str = Protocol.EAGER
    #: CRC-32 of the payload, stamped at post time when the world runs
    #: with an integrity layer (None otherwise / in size-only mode).
    #: Valid for both protocols: eager either snapshots the payload or
    #: holds a ``readonly``-contracted reference, and rendezvous senders
    #: must keep the buffer stable until the data transfer completes.
    checksum: int | None = None
    #: Per-pack-piece ``(nbytes, crc)`` tuples in stream order, shipped as
    #: metadata so the receiver can file verified piece CRCs without
    #: re-reading payload bytes (the whole-message verify transitively
    #: validates them: the carried checksum equals their crc-combine).
    piece_checksums: tuple | None = None
    #: True when ``payload`` is a borrowed buffer-pool block (the eager
    #: snapshot); the runtime releases it at terminal delivery.
    pooled: bool = False
    #: Set for eager messages once the payload is fully at the receiver.
    arrived: bool = False
    #: Sender-side bookkeeping (the SendOp driving this message).
    send_op: Any = None

    @property
    def key(self) -> MatchKey:
        return MatchKey(self.context, self.src, self.tag)
