"""One-sided communication: RMA windows, Put, fence and lock synchronization.

Model summary (and how it carries the paper's physics):

* ``put`` costs the origin a small fixed overhead and moves the data over
  the fabric with **no target-side CPU or progress** — the RDMA advantage
  over two-sided messaging (no matching, no unexpected queue).
* ``fence`` (active target) is collective: each rank first completes its
  own outstanding puts, then joins a barrier.  Its cost is what usually
  erases the Put advantage (paper, Fig. 4).
* ``lock``/``unlock`` (passive target) pay a round-trip per origin-target
  pair plus FIFO queueing on the target's lock state;
  ``MPI_LOCK_SHARED`` allows concurrent holders (the paper's choice for
  the shuffle, since writers touch disjoint bytes), exclusive serializes.
  Target-side completion knowledge still requires an ``MPI_Barrier`` in
  the calling algorithm, exactly as the paper describes.

Window memory is byte-accurate: puts land in real numpy buffers.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import CorruptDataError, RMAError
from repro.integrity.checksum import ChecksumLedger, extent_checksum
from repro.mpi.message import MESSAGE_HEADER_SIZE
from repro.sim.engine import Event
from repro.sim.primitives import all_of, defuse

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.comm import Communicator
    from repro.mpi.world import World

__all__ = ["Window", "WindowHandle", "WindowRegistry"]


class _TargetLock:
    """FIFO readers-writer lock guarding one rank's window exposure."""

    def __init__(self, world: "World") -> None:
        self._world = world
        self._active_shared = 0
        self._active_exclusive = False
        self._queue: deque[tuple[bool, Event]] = deque()

    def acquire(self, exclusive: bool) -> Event:
        grant = self._world.engine.event()
        if not self._queue and self._compatible(exclusive):
            self._admit(exclusive, grant)
        else:
            self._queue.append((exclusive, grant))
        return grant

    def _compatible(self, exclusive: bool) -> bool:
        if self._active_exclusive:
            return False
        return not (exclusive and self._active_shared > 0)

    def _admit(self, exclusive: bool, grant: Event) -> None:
        if exclusive:
            self._active_exclusive = True
        else:
            self._active_shared += 1
        grant.succeed(None)

    def release(self, exclusive: bool) -> None:
        if exclusive:
            if not self._active_exclusive:
                raise RMAError("exclusive unlock without a held exclusive lock")
            self._active_exclusive = False
        else:
            if self._active_shared <= 0:
                raise RMAError("shared unlock without a held shared lock")
            self._active_shared -= 1
        while self._queue and self._compatible(self._queue[0][0]):
            exclusive_next, grant = self._queue.popleft()
            self._admit(exclusive_next, grant)

    @property
    def queue_length(self) -> int:
        return len(self._queue)


class Window:
    """Shared state of one RMA window across all ranks."""

    def __init__(self, world: "World", win_id: int, sizes: dict[int, int]) -> None:
        self.world = world
        self.win_id = win_id
        self.sizes = sizes
        self.buffers: dict[int, np.ndarray] = {
            rank: np.zeros(size, dtype=np.uint8) for rank, size in sizes.items() if size > 0
        }
        #: outstanding put completion events: (origin, target) -> [Event]
        self._outstanding: dict[tuple[int, int], list[Event]] = {}
        self.locks: dict[int, _TargetLock] = {}
        self.puts_issued = 0
        self.gets_issued = 0
        #: Per-target ledgers of landed-and-verified put CRCs, keyed by
        #: absolute file offset (carried via ``put``'s ``file_offset``).
        #: The target's aggregator combines them at extent-record time so
        #: the cycle buffer never needs a fresh checksum pass.
        self.ledgers: dict[int, ChecksumLedger] = {}

    def ledger(self, target: int) -> ChecksumLedger:
        led = self.ledgers.get(target)
        if led is None:
            led = ChecksumLedger()
            self.ledgers[target] = led
        return led

    def buffer(self, rank: int) -> np.ndarray:
        buf = self.buffers.get(rank)
        if buf is None:
            raise RMAError(f"rank {rank} exposes a zero-size window")
        return buf

    def lock_state(self, target: int) -> _TargetLock:
        lock = self.locks.get(target)
        if lock is None:
            lock = _TargetLock(self.world)
            self.locks[target] = lock
        return lock

    def track(self, origin: int, target: int, event: Event) -> None:
        self._outstanding.setdefault((origin, target), []).append(event)

    def drain_events(self, origin: int, target: int | None = None) -> list[Event]:
        """Pop outstanding put events of ``origin`` (optionally one target)."""
        if target is not None:
            return self._outstanding.pop((origin, target), [])
        events: list[Event] = []
        for key in [k for k in self._outstanding if k[0] == origin]:
            events.extend(self._outstanding.pop(key))
        return events

    def outstanding_count(self, origin: int) -> int:
        return sum(len(v) for k, v in self._outstanding.items() if k[0] == origin)


class WindowHandle:
    """One rank's view of a window (the object ``win_allocate`` returns)."""

    def __init__(self, window: Window, comm: "Communicator") -> None:
        self.window = window
        self.comm = comm
        self.rank = comm.rank

    # -- local memory ------------------------------------------------------
    @property
    def local_buffer(self) -> np.ndarray:
        """This rank's exposed memory (raises if size 0)."""
        return self.window.buffer(self.rank)

    @property
    def local_size(self) -> int:
        return self.window.sizes.get(self.rank, 0)

    # -- communication -----------------------------------------------------
    def put(
        self,
        target: int,
        data: np.ndarray | None,
        target_offset: int,
        size: int | None = None,
        checksum: int | None = None,
        file_offset: int | None = None,
    ):
        """Non-blocking Put into ``target``'s window.  ``yield from``.

        Returns the completion :class:`~repro.sim.engine.Event` (also
        tracked in the window's epoch state for fence/unlock).  No
        target-side progress is needed; the bytes are sampled when the
        transfer completes (zero-copy semantics — keep the source buffer
        stable until the closing synchronization).  ``data=None`` +
        ``size`` selects size-only mode (same timing, no bytes land).

        ``checksum`` is the piece's producer CRC-32 when the origin
        already holds it (skips the post-time byte pass); ``file_offset``
        is the piece's absolute file offset — when given, a verified
        landing files its CRC in the target's window ledger for the
        aggregator's extent record to combine.
        """
        world = self.comm.world
        spec = world.cluster.spec
        if data is None:
            if size is None:
                raise RMAError("size is required when data is None")
            view = None
            nbytes = int(size)
        else:
            view = data.reshape(-1).view(np.uint8)
            nbytes = view.size
        target_buf = self.window.buffer(target)
        if target_offset < 0 or target_offset + nbytes > target_buf.size:
            raise RMAError(
                f"put of {nbytes} bytes at offset {target_offset} exceeds "
                f"window of {target_buf.size} bytes on rank {target}"
            )
        rt = world.runtime(self.rank)
        rt.enter_progress()
        try:
            yield world.engine.timeout(spec.mpi_call_overhead + spec.rma_put_overhead)
            fabric = world.cluster.fabric
            target_node = world.runtime(target).node
            transfer = fabric.transfer(rt.node, target_node, nbytes + MESSAGE_HEADER_SIZE)
            self.window.puts_issued += 1
            injector = world.faults
            integrity = world.integrity
            off = int(target_offset)

            def land(_evt, view=view) -> None:
                if view is not None:
                    target_buf[off : off + view.size] = view
                # Silent-corruption draw at landing.  The draw fires in
                # size-only mode too (schedule parity across modes); the
                # flip needs real bytes.  Corruption hits the *target*
                # window copy only — the origin buffer stays pristine, so
                # retransmission is a valid repair.
                if injector is not None:
                    pos = injector.message_corruption(target, nbytes)
                    if pos is not None and view is not None:
                        target_buf[off + pos] ^= 1 << (pos & 7)

            if integrity is None or view is None:
                if view is not None or injector is not None:
                    transfer.callbacks.append(land)
                self.window.track(self.rank, target, transfer)
                completion = transfer
            else:
                # Verify-on-land: the put completes (for fence/unlock and
                # the caller) only once the landed bytes match the CRC
                # stamped at post time.  A mismatch in repair mode costs a
                # full retransmission over the fabric — RDMA-level retry,
                # no target-side CPU — with a fresh corruption draw per
                # attempt; in detect mode (or once attempts are spent) the
                # completion fails with CorruptDataError, which fence /
                # unlock / wait propagate to the calling rank.
                completion = world.engine.event()
                if checksum is not None:
                    crc = checksum
                    integrity.checksum_reused += 1
                else:
                    crc = extent_checksum(view)
                    integrity.checksum_computed += 1

                def verify_land(_evt, attempt: int = 0) -> None:
                    land(_evt)
                    # The per-hop verify byte pass over the landed copy.
                    integrity.checksum_computed += 1
                    actual = extent_checksum(target_buf[off : off + nbytes])
                    if actual == crc:
                        if attempt:
                            integrity.note(
                                "repaired", stage="rma", rank=target,
                                src=self.rank, attempts=attempt,
                            )
                        if file_offset is not None:
                            self.window.ledger(target).file(file_offset, nbytes, crc)
                        completion.succeed(world.engine.now)
                        return
                    integrity.note(
                        "detected", stage="rma", rank=target,
                        src=self.rank, attempt=attempt,
                    )
                    if integrity.repairs and attempt < integrity.spec.max_repair_attempts:
                        integrity.note(
                            "retransmit", stage="rma", rank=target, src=self.rank
                        )
                        redo = fabric.transfer(
                            rt.node, target_node, nbytes + MESSAGE_HEADER_SIZE
                        )
                        redo.callbacks.append(
                            lambda evt, a=attempt + 1: verify_land(evt, a)
                        )
                        return
                    # Defused: the failure belongs to whoever waits on the
                    # put (fence/unlock all_of, or the caller), and that
                    # wait may not be attached yet.
                    defuse(
                        completion.fail(
                            CorruptDataError(
                                f"put {self.rank}->{target} at window offset {off} "
                                f"({nbytes} bytes) failed checksum verification "
                                f"after {attempt + 1} delivery(s)"
                            )
                        )
                    )

                transfer.callbacks.append(verify_land)
                self.window.track(self.rank, target, completion)
        finally:
            rt.exit_progress()
        return completion

    def get(
        self,
        target: int,
        local_buffer: np.ndarray | None,
        target_offset: int,
        size: int | None = None,
    ):
        """Non-blocking Get from ``target``'s window.  ``yield from``.

        The mirror of :meth:`put`: bytes flow target -> origin with no
        target-side CPU; the local buffer is filled when the transfer
        completes.  Returns the completion event (tracked in the epoch
        state like puts, so fence/unlock flush it).
        """
        world = self.comm.world
        spec = world.cluster.spec
        if local_buffer is None:
            if size is None:
                raise RMAError("size is required when local_buffer is None")
            nbytes = int(size)
        else:
            nbytes = int(local_buffer.size) if size is None else int(size)
        target_buf = self.window.buffer(target)
        if target_offset < 0 or target_offset + nbytes > target_buf.size:
            raise RMAError(
                f"get of {nbytes} bytes at offset {target_offset} exceeds "
                f"window of {target_buf.size} bytes on rank {target}"
            )
        rt = world.runtime(self.rank)
        rt.enter_progress()
        try:
            yield world.engine.timeout(spec.mpi_call_overhead + spec.rma_put_overhead)
            transfer = world.cluster.fabric.transfer(
                world.runtime(target).node,
                rt.node,
                nbytes + MESSAGE_HEADER_SIZE,
            )
            self.window.gets_issued += 1
            if local_buffer is not None:

                def land(_evt, buf=local_buffer, off=int(target_offset), n=nbytes) -> None:
                    buf[:n] = target_buf[off : off + n]

                transfer.callbacks.append(land)
            self.window.track(self.rank, target, transfer)
        finally:
            rt.exit_progress()
        return transfer

    # -- active-target synchronization --------------------------------------
    def fence(self):
        """``MPI_Win_fence``: complete own puts, then a collective barrier."""
        world = self.comm.world
        rt = world.runtime(self.rank)
        rt.enter_progress()
        try:
            yield world.engine.timeout(world.cluster.spec.mpi_call_overhead)
            own = self.window.drain_events(self.rank)
            if own:
                yield all_of(world.engine, own)
        finally:
            rt.exit_progress()
        yield from self.comm.barrier()

    # -- passive-target synchronization --------------------------------------
    def lock(self, target: int, exclusive: bool = False):
        """``MPI_Win_lock``: a round-trip to the target plus queueing.

        Lock arbitration is hardware-offloaded (RDMA atomics): it does
        **not** require target-side progress.
        """
        world = self.comm.world
        spec = world.cluster.spec
        rt = world.runtime(self.rank)
        rt.enter_progress()
        try:
            yield world.engine.timeout(spec.mpi_call_overhead + spec.rma_lock_overhead)
            if world.runtime(target).node != rt.node:
                yield world.engine.timeout(2 * spec.network_latency)
            yield self.window.lock_state(target).acquire(exclusive)
        finally:
            rt.exit_progress()

    def unlock(self, target: int, exclusive: bool = False):
        """``MPI_Win_unlock``: flush puts to ``target``, release, round-trip."""
        world = self.comm.world
        spec = world.cluster.spec
        rt = world.runtime(self.rank)
        rt.enter_progress()
        try:
            yield world.engine.timeout(spec.mpi_call_overhead)
            pending = self.window.drain_events(self.rank, target)
            if pending:
                yield all_of(world.engine, pending)
            self.window.lock_state(target).release(exclusive)
            if world.runtime(target).node != rt.node:
                yield world.engine.timeout(2 * spec.network_latency)
        finally:
            rt.exit_progress()


class WindowRegistry:
    """Creates/joins shared :class:`Window` objects during ``win_allocate``."""

    def __init__(self, world: "World") -> None:
        self.world = world
        self._windows: dict[int, Window] = {}
        self._declared: dict[int, dict[int, int]] = {}

    def attach(self, win_id: int, rank: int, size: int) -> WindowHandle:
        sizes = self._declared.setdefault(win_id, {})
        if rank in sizes:
            raise RMAError(f"rank {rank} attached window {win_id} twice")
        sizes[rank] = size
        window = self._windows.get(win_id)
        if window is None:
            window = Window(self.world, win_id, sizes)
            self._windows[win_id] = window
        else:
            # Late-arriving ranks with nonzero windows get buffers too.
            if size > 0 and rank not in window.buffers:
                window.buffers[rank] = np.zeros(size, dtype=np.uint8)
        return WindowHandle(window, self.world.comm(rank))
