"""Simulated MPI.

The layer gives simulated ranks (generator processes) an MPI-flavoured
API: non-blocking two-sided communication with tag matching and
eager/rendezvous protocols, blocking wrappers, collectives, one-sided
communication (RMA windows with active- and passive-target
synchronization) and MPI-IO file handles backed by the simulated parallel
file system.

Modelling notes
---------------
* **Progress.**  Pending two-sided protocol actions of a rank (rendezvous
  handshakes in particular) advance only while that rank is *inside an MPI
  call* — or at any time if the cluster spec sets ``progress_thread=True``.
  A rank blocked in a POSIX-style file write makes **no** MPI progress.
  This reproduces the asymmetry at the core of the paper: background
  writes (``aio``) progress via the OS, background communication needs the
  MPI library to be driven.
* **Eager vs rendezvous.**  Messages below the cluster's
  ``eager_threshold`` are shipped immediately and buffered in the
  receiver's unexpected-message queue; posting a receive pays a scan cost
  proportional to that queue's length.  Larger messages perform an
  RTS/CTS handshake that requires progress on both sides before the data
  moves.
* **Collectives** use analytic LogP-style cost models with full
  synchronization semantics (no rank exits before the last enters): at the
  scale of the paper's experiments (704 ranks x >1000 cycles) simulating
  every dissemination-round message would dominate runtime without
  affecting any studied effect.  Point-to-point traffic — the subject of
  the paper — is simulated message by message.
* **RMA.**  ``Put`` transfers need no target-side CPU or progress (RDMA),
  but ``Win_fence`` costs a barrier plus completion of outstanding
  operations, and passive-target locks pay per-origin round-trips.  Data
  lands in real byte buffers.
"""

from repro.mpi.comm import Communicator
from repro.mpi.datatypes import (
    Datatype,
    contiguous,
    hindexed,
    resized,
    struct_view,
    subarray,
    vector,
)
from repro.mpi.message import CONTROL_MESSAGE_SIZE, MESSAGE_HEADER_SIZE
from repro.mpi.request import Request
from repro.mpi.window import Window
from repro.mpi.world import World

__all__ = [
    "Communicator",
    "Datatype",
    "contiguous",
    "vector",
    "hindexed",
    "subarray",
    "resized",
    "struct_view",
    "Request",
    "Window",
    "World",
    "MESSAGE_HEADER_SIZE",
    "CONTROL_MESSAGE_SIZE",
]
