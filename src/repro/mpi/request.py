"""Request handles for non-blocking operations."""

from __future__ import annotations

from typing import Any

from repro.sim.engine import Event

__all__ = ["Request"]


class Request:
    """Handle for a non-blocking operation (send, receive, RMA sync, I/O).

    Completion is signalled through :attr:`event`; the MPI layer's ``wait``
    family is the intended way to consume it (waiting constitutes an MPI
    call and therefore drives progress).
    """

    __slots__ = ("event", "kind", "detail")

    def __init__(self, event: Event, kind: str, detail: Any = None) -> None:
        self.event = event
        self.kind = kind
        self.detail = detail

    @property
    def done(self) -> bool:
        """True once the operation has completed (event processed)."""
        return self.event.processed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else "pending"
        return f"<Request {self.kind} {state}>"
