"""MPI-style derived datatypes, flattened to byte-extent lists.

The two-phase algorithm consumes a rank's *file view* as a flat, sorted
list of ``(file_offset, length)`` byte extents.  This module provides the
classic MPI type constructors — contiguous, vector, hindexed, subarray,
resized — and the flattening machinery, implemented on numpy arrays so
that views with hundreds of thousands of extents stay cheap to build.

A :class:`Datatype` is an immutable typemap: an array of ``(offset, len)``
segments relative to the type's origin, plus an *extent* (the stride used
when the type is replicated).  Adjacent/touching segments are coalesced.

>>> t = vector(count=3, blocklength=4, stride=10)
>>> t.segments.tolist()
[[0, 4], [10, 4], [20, 4]]
>>> t.extent
24
"""

from __future__ import annotations


from typing import Iterable, Sequence

import numpy as np

from repro.errors import DatatypeError

__all__ = [
    "Datatype",
    "contiguous",
    "vector",
    "hindexed",
    "subarray",
    "resized",
    "struct_view",
]


def _coalesce(segments: np.ndarray) -> np.ndarray:
    """Sort segments by offset and merge touching/adjacent ones."""
    if len(segments) == 0:
        return segments.reshape(0, 2)
    order = np.argsort(segments[:, 0], kind="stable")
    segs = segments[order]
    offs, lens = segs[:, 0], segs[:, 1]
    ends = offs + lens
    # A segment starts a new run if it does not touch the previous run's end.
    run_end = np.maximum.accumulate(ends)
    new_run = np.ones(len(segs), dtype=bool)
    new_run[1:] = offs[1:] > run_end[:-1]
    run_ids = np.cumsum(new_run) - 1
    n_runs = run_ids[-1] + 1
    out = np.empty((n_runs, 2), dtype=np.int64)
    starts_idx = np.flatnonzero(new_run)
    out[:, 0] = offs[starts_idx]
    last_idx = np.empty(n_runs, dtype=np.int64)
    last_idx[run_ids] = np.arange(len(segs))
    out[:, 1] = run_end[last_idx] - out[:, 0]
    return out


class Datatype:
    """An immutable byte-level typemap.

    ``segments`` is an ``(n, 2)`` int64 array of (relative offset, length)
    pairs, sorted and coalesced; ``extent`` is the replication stride.
    """

    __slots__ = ("segments", "extent")

    def __init__(self, segments: np.ndarray | Sequence[tuple[int, int]], extent: int | None = None):
        segs = np.asarray(segments, dtype=np.int64).reshape(-1, 2)
        if len(segs) and (segs[:, 1] <= 0).any():
            raise DatatypeError("all segment lengths must be positive")
        if len(segs) and (segs[:, 0] < 0).any():
            raise DatatypeError("all segment offsets must be >= 0")
        self.segments = _coalesce(segs)
        if extent is None:
            extent = int(self.segments[-1, 0] + self.segments[-1, 1]) if len(self.segments) else 0
        if extent < 0:
            raise DatatypeError(f"extent must be >= 0, got {extent}")
        self.extent = int(extent)
        self.segments.setflags(write=False)

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Total payload bytes (sum of segment lengths)."""
        return int(self.segments[:, 1].sum()) if len(self.segments) else 0

    @property
    def num_segments(self) -> int:
        return len(self.segments)

    @property
    def is_contiguous(self) -> bool:
        return self.num_segments <= 1 and self.extent == self.size

    # ------------------------------------------------------------------
    def replicate(self, count: int) -> "Datatype":
        """``count`` copies laid out every ``extent`` bytes (MPI count)."""
        if count < 0:
            raise DatatypeError(f"count must be >= 0, got {count}")
        if count == 0 or self.num_segments == 0:
            return Datatype(np.empty((0, 2), dtype=np.int64), extent=self.extent * count)
        if count == 1:
            return self
        reps = np.arange(count, dtype=np.int64) * self.extent
        segs = np.tile(self.segments, (count, 1))
        segs[:, 0] += np.repeat(reps, self.num_segments)
        return Datatype(segs, extent=self.extent * count)

    def flatten(self, offset: int = 0, count: int = 1) -> np.ndarray:
        """Absolute ``(offset, length)`` extents of ``count`` replicas at ``offset``."""
        t = self.replicate(count) if count != 1 else self
        out = t.segments.copy()
        out[:, 0] += int(offset)
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Datatype):
            return NotImplemented
        return self.extent == other.extent and np.array_equal(self.segments, other.segments)

    def __hash__(self) -> int:
        return hash((self.extent, self.segments.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Datatype {self.num_segments} segs, size={self.size}, extent={self.extent}>"


# ----------------------------------------------------------------------
# Constructors
# ----------------------------------------------------------------------

def contiguous(nbytes: int) -> Datatype:
    """``nbytes`` contiguous bytes."""
    if nbytes < 0:
        raise DatatypeError(f"nbytes must be >= 0, got {nbytes}")
    if nbytes == 0:
        return Datatype(np.empty((0, 2), dtype=np.int64), extent=0)
    return Datatype([(0, nbytes)])


def vector(count: int, blocklength: int, stride: int) -> Datatype:
    """``count`` blocks of ``blocklength`` bytes every ``stride`` bytes."""
    if count < 1 or blocklength < 1:
        raise DatatypeError("count and blocklength must be >= 1")
    if stride < blocklength:
        raise DatatypeError(f"stride {stride} smaller than blocklength {blocklength}")
    offs = np.arange(count, dtype=np.int64) * stride
    segs = np.column_stack([offs, np.full(count, blocklength, dtype=np.int64)])
    return Datatype(segs)


def hindexed(blocks: Iterable[tuple[int, int]]) -> Datatype:
    """Explicit ``(displacement, length)`` blocks (byte displacements)."""
    return Datatype(list(blocks))


def subarray(
    sizes: Sequence[int],
    subsizes: Sequence[int],
    starts: Sequence[int],
    elem_size: int = 1,
) -> Datatype:
    """A C-order rectangular subarray of a larger array (MPI_Type_create_subarray).

    ``sizes`` is the full array shape, ``subsizes`` the selected block's
    shape, ``starts`` its origin, all in *elements* of ``elem_size`` bytes.
    The extent is the full array's byte size, so replication tiles whole
    arrays (as MPI-IO file views do).
    """
    sizes = list(sizes)
    subsizes = list(subsizes)
    starts = list(starts)
    if not (len(sizes) == len(subsizes) == len(starts)):
        raise DatatypeError("sizes, subsizes and starts must have equal rank")
    if not sizes:
        raise DatatypeError("rank-0 subarray")
    for full, sub, start in zip(sizes, subsizes, starts):
        if sub < 1 or start < 0 or start + sub > full:
            raise DatatypeError(
                f"invalid subarray: sizes={sizes} subsizes={subsizes} starts={starts}"
            )
    if elem_size < 1:
        raise DatatypeError(f"elem_size must be >= 1, got {elem_size}")
    # Rows along the last axis are contiguous runs.
    row_len = subsizes[-1] * elem_size
    lead_shape = subsizes[:-1]
    n_rows = int(np.prod(lead_shape)) if lead_shape else 1
    # Strides (in bytes) of the full array, C order.
    strides = np.empty(len(sizes), dtype=np.int64)
    strides[-1] = elem_size
    for d in range(len(sizes) - 2, -1, -1):
        strides[d] = strides[d + 1] * sizes[d + 1]
    base = int(np.dot(np.asarray(starts, dtype=np.int64), strides))
    if n_rows == 1:
        offs = np.array([base], dtype=np.int64)
    else:
        grids = np.indices(lead_shape).reshape(len(lead_shape), -1)
        offs = base + (grids * strides[:-1, None]).sum(axis=0)
    segs = np.column_stack([offs, np.full(n_rows, row_len, dtype=np.int64)])
    return Datatype(segs, extent=int(np.prod(sizes)) * elem_size)


def resized(dtype: Datatype, extent: int) -> Datatype:
    """Copy of ``dtype`` with its extent overridden (MPI_Type_create_resized)."""
    return Datatype(dtype.segments.copy(), extent=extent)


def struct_view(fields: Iterable[tuple[int, Datatype]], extent: int | None = None) -> Datatype:
    """Concatenate member datatypes at byte displacements (MPI_Type_create_struct)."""
    parts = []
    max_end = 0
    for disp, member in fields:
        if disp < 0:
            raise DatatypeError(f"negative displacement {disp}")
        segs = member.segments.copy()
        segs[:, 0] += disp
        parts.append(segs)
        max_end = max(max_end, disp + member.extent)
    if not parts:
        return contiguous(0)
    merged = np.concatenate(parts, axis=0)
    return Datatype(merged, extent=extent if extent is not None else max_end)
