"""The World: a cluster + file system + ``nprocs`` MPI ranks.

This is the top-level container a simulated MPI program runs in::

    world = World(crill(), nprocs=16, fs_spec=beegfs_crill())

    def program(mpi):
        yield from mpi.barrier()
        return mpi.rank

    results = world.run(program)   # [0, 1, ..., 15]
"""

from __future__ import annotations

from typing import Any, Callable

from repro.config import DEFAULT_SEED
from repro.errors import ConfigurationError
from repro.faults.injector import FaultInjector
from repro.faults.spec import FaultSpec
from repro.fs.aio import AioEngine
from repro.fs.pfs import ParallelFileSystem
from repro.fs.presets import FsSpec
from repro.hardware.cluster import Cluster, ClusterSpec
from repro.mpi.bufpool import BufferPool
from repro.mpi.collops import CollectiveEngine, CollectiveModel
from repro.mpi.comm import Communicator
from repro.mpi.runtime import RankRuntime
from repro.mpi.window import WindowRegistry
from repro.sim.engine import Engine
from repro.sim.trace import Tracer

__all__ = ["World"]


class World:
    """A complete simulated machine with ``nprocs`` MPI ranks."""

    def __init__(
        self,
        cluster_spec: ClusterSpec,
        nprocs: int,
        fs_spec: FsSpec | None = None,
        seed: int = DEFAULT_SEED,
        faults: FaultSpec | None = None,
        tracer: Tracer | None = None,
        journal=None,
        crashed_ranks: frozenset[int] = frozenset(),
        down_targets: frozenset[int] = frozenset(),
    ) -> None:
        if nprocs < 1:
            raise ConfigurationError(f"nprocs must be >= 1, got {nprocs}")
        if nprocs > cluster_spec.total_cores:
            raise ConfigurationError(
                f"{nprocs} ranks exceed the cluster's {cluster_spec.total_cores} cores"
            )
        self.engine = Engine()
        self.nprocs = nprocs
        self.cluster = Cluster(self.engine, cluster_spec, seed=seed, tracer=tracer)
        #: Shared fault injector, or None for a clean world.  A disabled
        #: FaultSpec (all rates zero) also yields None so the fault-free
        #: code paths stay byte-identical to a run without the subsystem.
        self.faults: FaultInjector | None = (
            FaultInjector(self.engine, self.cluster.rng, self.cluster.tracer, faults)
            if faults is not None and faults.enabled
            else None
        )
        #: Cycle journal shared by the aggregators' commit protocol, or
        #: None outside recovery runs (see :mod:`repro.recovery.journal`).
        self.journal = journal
        #: The burst-buffer staging tier, attached lazily by the first
        #: collective write whose config enables staging (see
        #: :meth:`repro.staging.tier.StagingTier.ensure`); None otherwise.
        self.staging = None
        #: The end-to-end integrity layer, attached lazily by the first
        #: collective write whose config enables it (see
        #: :meth:`repro.integrity.layer.IntegrityLayer.ensure`); None
        #: otherwise — the delivery/drain/storage verify hooks all check
        #: for None first, keeping clean runs byte-identical.
        self.integrity = None
        #: Ranks that died in *previous* recovery attempts.  They respawn
        #: (participate in this attempt, so their data reaches the file)
        #: but their crash draw is not re-armed — a rank crashes once.
        self.crashed_ranks = frozenset(crashed_ranks)
        #: Targets already known down from previous attempts; their
        #: outage draw is likewise not re-armed.
        self.down_targets = frozenset(down_targets)
        self.pfs = (
            ParallelFileSystem(
                self.engine,
                fs_spec,
                rng=self.cluster.rng,
                injector=self.faults,
                tracer=self.cluster.tracer,
                down_targets=self.down_targets,
            )
            if fs_spec is not None
            else None
        )
        # Permanent-fault schedules: one draw per rank/target, skipping
        # entities whose fault already fired (per-entity streams keep the
        # surviving draws identical across attempts).
        self._crash_times: dict[int, float] = {}
        self._outage_times: dict[int, float] = {}
        if self.faults is not None and faults.has_permanent:
            for r in range(nprocs):
                t = self.faults.rank_crash_time(r)
                if t is not None and r not in self.crashed_ranks:
                    self._crash_times[r] = t
            if self.pfs is not None:
                for target in self.pfs.targets:
                    t = self.faults.ost_outage_time(target.target_id)
                    if t is not None and target.target_id not in self.down_targets:
                        self._outage_times[target.target_id] = t
        self.coll = CollectiveEngine(
            self.engine,
            nprocs,
            CollectiveModel(
                latency=cluster_spec.network_latency,
                bandwidth=cluster_spec.network_bandwidth,
                call_overhead=cluster_spec.mpi_call_overhead,
            ),
        )
        self.window_registry = WindowRegistry(self)
        #: Shared cache of two-phase plans built by MPIFile.write_all /
        #: read_all (first rank to need a plan builds it; peers reuse it).
        self.plan_cache: dict = {}
        self._runtimes = [RankRuntime(self, r) for r in range(nprocs)]
        self._comms = [Communicator(self, r) for r in range(nprocs)]
        self._aio: dict[int, AioEngine] = {}
        #: Per-node receive-copy arenas (see :mod:`repro.mpi.bufpool`),
        #: created lazily by the first borrower on each node.
        self._buffer_pools: dict[int, BufferPool] = {}

    # ------------------------------------------------------------------
    def runtime(self, rank: int) -> RankRuntime:
        return self._runtimes[rank]

    def buffer_pool(self, node: int) -> BufferPool:
        """The node's delivery-side buffer arena (created lazily)."""
        pool = self._buffer_pools.get(node)
        if pool is None:
            pool = BufferPool(node)
            self._buffer_pools[node] = pool
        return pool

    def buffer_pool_counters(self) -> dict[str, int]:
        """Aggregated ``bufpool.*`` counters across all node arenas."""
        totals: dict[str, int] = {}
        for node in sorted(self._buffer_pools):
            for key, value in self._buffer_pools[node].counters().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def comm(self, rank: int) -> Communicator:
        return self._comms[rank]

    def aio_engine(self, rank: int) -> AioEngine:
        """The per-rank aio context (created lazily; needs a file system)."""
        if self.pfs is None:
            raise ConfigurationError("this world has no file system")
        engine = self._aio.get(rank)
        if engine is None:
            engine = AioEngine(
                self.engine,
                self.pfs,
                client=rank,
                injector=self.faults,
                tracer=self.cluster.tracer,
            )
            self._aio[rank] = engine
        return engine

    # ------------------------------------------------------------------
    def run(self, program: Callable, *args: Any, **kwargs: Any) -> list[Any]:
        """Run ``program(comm, *args, **kwargs)`` on every rank to completion.

        Returns the per-rank return values, ordered by rank.  Propagates
        the first failure (including deadlocks detected by the kernel).
        """
        procs = [
            self.engine.process(program(self._comms[r], *args, **kwargs), name=f"rank{r}")
            for r in range(self.nprocs)
        ]
        armed = self._arm_permanent_faults(procs)
        return self.engine.run_until_complete(procs, stop_when_done=armed)

    def _arm_permanent_faults(self, procs) -> bool:
        """Schedule the drawn rank crashes and OST outages; True if any.

        A crash timer interrupts the rank process (see
        :meth:`~repro.mpi.runtime.RankRuntime.deliver_crash`), aborting
        the run; an outage timer takes the target down in place —
        in-flight requests drain, later ones are rejected/remapped.
        Armed timers may outlive the program, so the caller must run the
        engine with ``stop_when_done``.
        """
        for r, t in sorted(self._crash_times.items()):
            fire = self.engine.timeout(t)
            fire.callbacks.append(
                lambda _evt, _r=r: self._runtimes[_r].deliver_crash(
                    procs[_r], self.engine.now
                )
            )
        for tid, t in sorted(self._outage_times.items()):
            fire = self.engine.timeout(t)

            def outage(_evt, _tid=tid):
                self.pfs.targets[_tid].go_down()
                if self.faults is not None:
                    self.faults.injected += 1
                self.cluster.tracer.emit(self.engine.now, "fault.ost_outage", target=_tid)

            fire.callbacks.append(outage)
        return bool(self._crash_times or self._outage_times)

    @property
    def now(self) -> float:
        return self.engine.now
