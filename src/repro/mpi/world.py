"""The World: a cluster + file system + ``nprocs`` MPI ranks.

This is the top-level container a simulated MPI program runs in::

    world = World(crill(), nprocs=16, fs_spec=beegfs_crill())

    def program(mpi):
        yield from mpi.barrier()
        return mpi.rank

    results = world.run(program)   # [0, 1, ..., 15]
"""

from __future__ import annotations

from typing import Any, Callable

from repro.config import DEFAULT_SEED
from repro.errors import ConfigurationError
from repro.faults.injector import FaultInjector
from repro.faults.spec import FaultSpec
from repro.fs.aio import AioEngine
from repro.fs.pfs import ParallelFileSystem
from repro.fs.presets import FsSpec
from repro.hardware.cluster import Cluster, ClusterSpec
from repro.mpi.collops import CollectiveEngine, CollectiveModel
from repro.mpi.comm import Communicator
from repro.mpi.runtime import RankRuntime
from repro.mpi.window import WindowRegistry
from repro.sim.engine import Engine
from repro.sim.trace import Tracer

__all__ = ["World"]


class World:
    """A complete simulated machine with ``nprocs`` MPI ranks."""

    def __init__(
        self,
        cluster_spec: ClusterSpec,
        nprocs: int,
        fs_spec: FsSpec | None = None,
        seed: int = DEFAULT_SEED,
        faults: FaultSpec | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        if nprocs < 1:
            raise ConfigurationError(f"nprocs must be >= 1, got {nprocs}")
        if nprocs > cluster_spec.total_cores:
            raise ConfigurationError(
                f"{nprocs} ranks exceed the cluster's {cluster_spec.total_cores} cores"
            )
        self.engine = Engine()
        self.nprocs = nprocs
        self.cluster = Cluster(self.engine, cluster_spec, seed=seed, tracer=tracer)
        #: Shared fault injector, or None for a clean world.  A disabled
        #: FaultSpec (all rates zero) also yields None so the fault-free
        #: code paths stay byte-identical to a run without the subsystem.
        self.faults: FaultInjector | None = (
            FaultInjector(self.engine, self.cluster.rng, self.cluster.tracer, faults)
            if faults is not None and faults.enabled
            else None
        )
        self.pfs = (
            ParallelFileSystem(
                self.engine,
                fs_spec,
                rng=self.cluster.rng,
                injector=self.faults,
                tracer=self.cluster.tracer,
            )
            if fs_spec is not None
            else None
        )
        self.coll = CollectiveEngine(
            self.engine,
            nprocs,
            CollectiveModel(
                latency=cluster_spec.network_latency,
                bandwidth=cluster_spec.network_bandwidth,
                call_overhead=cluster_spec.mpi_call_overhead,
            ),
        )
        self.window_registry = WindowRegistry(self)
        #: Shared cache of two-phase plans built by MPIFile.write_all /
        #: read_all (first rank to need a plan builds it; peers reuse it).
        self.plan_cache: dict = {}
        self._runtimes = [RankRuntime(self, r) for r in range(nprocs)]
        self._comms = [Communicator(self, r) for r in range(nprocs)]
        self._aio: dict[int, AioEngine] = {}

    # ------------------------------------------------------------------
    def runtime(self, rank: int) -> RankRuntime:
        return self._runtimes[rank]

    def comm(self, rank: int) -> Communicator:
        return self._comms[rank]

    def aio_engine(self, rank: int) -> AioEngine:
        """The per-rank aio context (created lazily; needs a file system)."""
        if self.pfs is None:
            raise ConfigurationError("this world has no file system")
        engine = self._aio.get(rank)
        if engine is None:
            engine = AioEngine(
                self.engine,
                self.pfs,
                client=rank,
                injector=self.faults,
                tracer=self.cluster.tracer,
            )
            self._aio[rank] = engine
        return engine

    # ------------------------------------------------------------------
    def run(self, program: Callable, *args: Any, **kwargs: Any) -> list[Any]:
        """Run ``program(comm, *args, **kwargs)`` on every rank to completion.

        Returns the per-rank return values, ordered by rank.  Propagates
        the first failure (including deadlocks detected by the kernel).
        """
        procs = [
            self.engine.process(program(self._comms[r], *args, **kwargs), name=f"rank{r}")
            for r in range(self.nprocs)
        ]
        return self.engine.run_until_complete(procs)

    @property
    def now(self) -> float:
        return self.engine.now
