"""Per-node buffer-pool arena for delivery-side receive copies.

The zero-copy send work (``readonly`` isend, rendezvous references) left
exactly one allocation per message on the hot path: the receive-side
copy — the eager snapshot a non-readonly sender pays for buffered
semantics, the bounce buffer an aggregator posts per expected sender,
and the gather leader's per-member stream buffer.  All of these are
short-lived, heavily size-repeating (cycle geometry fixes the shapes),
and single-owner — ideal pool fodder.

:class:`BufferPool` keeps power-of-two size-class freelists of ``uint8``
blocks.  :meth:`take` returns an exact-length *view* of a pooled block;
:meth:`release` maps the view back to its block via the view's ``base``
and returns it to the freelist.  Recycled blocks keep stale contents —
every pooled call site fully overwrites its view before reading it
(delivery copies the whole message, pack/scatter fill every byte), so no
zeroing pass is needed.

Lifetime rules (see DESIGN Appendix F):

* a block is owned by exactly one borrower between ``take`` and
  ``release``;
* the eager-snapshot block is the retransmission source, so the runtime
  releases it only at *terminal* delivery (success, unrepairable
  corruption, or dead source) — never between repair attempts;
* receive bounce buffers are released after their scatter/unpack
  consumed them;
* releasing a foreign (non-pooled) array is a harmless no-op, so
  callers need not track where a buffer came from.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BufferPool"]


class BufferPool:
    """One node's arena of power-of-two ``uint8`` blocks."""

    def __init__(self, node: int) -> None:
        self.node = node
        #: block size -> free blocks of that size class
        self._free: dict[int, list[np.ndarray]] = {}
        #: id(block) -> block, for every block currently lent out
        self._lent: dict[int, np.ndarray] = {}
        # Counters (surfaced as ``bufpool.*`` run metrics).
        self.takes = 0
        self.hits = 0
        self.releases = 0
        self.bytes_allocated = 0

    @staticmethod
    def _size_class(nbytes: int) -> int:
        return 1 << (int(nbytes) - 1).bit_length() if nbytes > 1 else 1

    def take(self, nbytes: int) -> np.ndarray:
        """Borrow an exact-length ``uint8`` view (contents undefined)."""
        size = self._size_class(nbytes)
        self.takes += 1
        free = self._free.get(size)
        if free:
            block = free.pop()
            self.hits += 1
        else:
            block = np.empty(size, dtype=np.uint8)
            self.bytes_allocated += size
        self._lent[id(block)] = block
        return block[:nbytes]

    def release(self, view: np.ndarray | None) -> None:
        """Return a borrowed view's block; no-op for foreign arrays."""
        if view is None:
            return
        base = view.base if view.base is not None else view
        block = self._lent.pop(id(base), None)
        if block is None:
            return
        self._free.setdefault(block.size, []).append(block)
        self.releases += 1

    @property
    def outstanding(self) -> int:
        """Blocks currently lent out (should be 0 between collectives)."""
        return len(self._lent)

    def counters(self) -> dict[str, int]:
        return {
            "bufpool.takes": self.takes,
            "bufpool.hits": self.hits,
            "bufpool.releases": self.releases,
            "bufpool.bytes_allocated": self.bytes_allocated,
        }
