"""The per-rank MPI API (communicator facade).

Every potentially time-consuming call is a **generator** to be driven with
``yield from`` inside a rank's program; this is how the simulation charges
CPU time and opens *progress windows* (see :mod:`repro.mpi.runtime`):

* all methods here charge the cluster's ``mpi_call_overhead`` and hold a
  progress window for their duration — in particular, a rank blocked in
  :meth:`wait`/:meth:`waitall`/:meth:`barrier` keeps driving pending
  protocol work, exactly like a real MPI library spinning in its progress
  engine;
* :meth:`compute` models application CPU time — **no** MPI progress.

Example rank program::

    def program(mpi):
        if mpi.rank == 0:
            req = yield from mpi.isend(1, tag=7, data=buf)
            yield from mpi.wait(req)
        elif mpi.rank == 1:
            req = yield from mpi.irecv(0, tag=7, buffer=out)
            yield from mpi.wait(req)
        yield from mpi.barrier()
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from repro.errors import MPIError
from repro.mpi.request import Request
from repro.sim.primitives import all_of

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.world import World

__all__ = ["Communicator"]


def _as_payload(data: np.ndarray | bytes | None, size: int | None) -> tuple[np.ndarray | None, int]:
    """Normalize (data, size) into (uint8 payload or None, byte count)."""
    if data is None:
        if size is None:
            raise MPIError("either data or size must be given")
        return None, int(size)
    if isinstance(data, (bytes, bytearray)):
        data = np.frombuffer(bytes(data), dtype=np.uint8)
    if not isinstance(data, np.ndarray):
        raise MPIError(f"payload must be ndarray/bytes/None, got {type(data).__name__}")
    view = data.reshape(-1).view(np.uint8)
    if size is not None and int(size) != view.size:
        raise MPIError(f"size={size} does not match payload of {view.size} bytes")
    return view, view.size


class Communicator:
    """MPI world communicator as seen by one rank."""

    def __init__(self, world: "World", rank: int) -> None:
        self.world = world
        self.rank = rank
        self._runtime = world.runtime(rank)
        self._spec = world.cluster.spec
        self._coll_seq = 0

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of ranks in the world."""
        return self.world.nprocs

    @property
    def engine(self):
        return self.world.engine

    @property
    def now(self) -> float:
        return self.world.engine.now

    @property
    def node(self) -> int:
        return self._runtime.node

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    def isend(
        self,
        dest: int,
        tag: int,
        data: np.ndarray | bytes | None = None,
        size: int | None = None,
        context: str = "pt2pt",
        readonly: bool = False,
        checksum: int | None = None,
        piece_checksums: tuple | None = None,
    ):
        """Non-blocking send.  ``yield from``; returns a :class:`Request`.

        ``readonly=True`` promises the payload buffer is not mutated until
        the message has fully arrived; the eager path then keeps a
        reference instead of its buffered-semantics snapshot (zero-copy).
        The collective-write hot path sends views of frozen rank data and
        single-use pack buffers, so it opts in.

        ``checksum``/``piece_checksums`` let a producer that already
        holds the payload's CRC-32 (and per-piece CRCs) ship it with the
        message instead of having the runtime recompute it at post time.
        """
        payload, nbytes = _as_payload(data, size)
        self._check_peer(dest)
        rt = self._runtime
        rt.enter_progress()
        try:
            yield self.engine.timeout(self._spec.mpi_call_overhead)
            op = rt.start_send(
                dest, tag, nbytes, payload, context, readonly=readonly,
                checksum=checksum, piece_checksums=piece_checksums,
            )
        finally:
            rt.exit_progress()
        return Request(op.event, "send", op)

    def irecv(
        self,
        source: int,
        tag: int,
        buffer: np.ndarray | None = None,
        size: int | None = None,
        context: str = "pt2pt",
    ):
        """Non-blocking receive.  ``yield from``; returns a :class:`Request`.

        Posting pays the unexpected-queue scan cost — the longer the
        receiver's backlog, the more expensive this call (paper, III-B1).
        """
        if buffer is not None:
            if buffer.dtype != np.uint8:
                raise MPIError(f"receive buffer must be uint8, got {buffer.dtype}")
            nbytes = buffer.size if size is None else int(size)
        else:
            if size is None:
                raise MPIError("either buffer or size must be given")
            nbytes = int(size)
        self._check_peer(source)
        rt = self._runtime
        rt.enter_progress()
        try:
            yield self.engine.timeout(self._spec.mpi_call_overhead + rt.match_cost())
            op = rt.post_recv(source, tag, nbytes, buffer, context)
        finally:
            rt.exit_progress()
        return Request(op.event, "recv", op)

    def wait(self, request: Request):
        """Block (with progress) until ``request`` completes."""
        yield from self.waitall([request])

    def waitall(self, requests: Sequence[Request]):
        """Block (with progress) until every request completes."""
        rt = self._runtime
        rt.enter_progress()
        try:
            yield self.engine.timeout(self._spec.mpi_call_overhead)
            yield all_of(self.engine, [r.event for r in requests])
        finally:
            rt.exit_progress()

    def send(
        self, dest: int, tag: int, data=None, size=None, context: str = "pt2pt",
        readonly: bool = False, checksum: int | None = None,
        piece_checksums: tuple | None = None,
    ):
        """Blocking send (isend + wait)."""
        req = yield from self.isend(
            dest, tag, data=data, size=size, context=context, readonly=readonly,
            checksum=checksum, piece_checksums=piece_checksums,
        )
        yield from self.wait(req)

    def recv(
        self,
        source: int,
        tag: int,
        buffer: np.ndarray | None = None,
        size: int | None = None,
        context: str = "pt2pt",
    ):
        """Blocking receive (irecv + wait); returns the buffer."""
        req = yield from self.irecv(source, tag, buffer=buffer, size=size, context=context)
        yield from self.wait(req)
        return buffer

    def _check_peer(self, peer: int) -> None:
        if not (0 <= peer < self.world.nprocs):
            raise MPIError(f"peer rank {peer} out of range [0, {self.world.nprocs})")

    # ------------------------------------------------------------------
    # Collectives (analytic; see repro.mpi.collops)
    # ------------------------------------------------------------------
    def _collective(self, kind: str, payload=None, nbytes: int = 0, root=None):
        rt = self._runtime
        rt.enter_progress()
        try:
            yield self.engine.timeout(self._spec.mpi_call_overhead)
            self._coll_seq += 1
            evt = self.world.coll.enter(
                self._coll_seq, kind, self.rank, payload=payload, nbytes=nbytes, root=root
            )
            result = yield evt
        finally:
            rt.exit_progress()
        return result

    def barrier(self):
        """Synchronize all ranks (dissemination-cost model)."""
        yield from self._collective("barrier")

    def bcast(self, obj: Any = None, root: int = 0, nbytes: int = 0):
        """Broadcast ``obj`` from ``root``; returns the root's object."""
        result = yield from self._collective("bcast", payload=obj, nbytes=nbytes, root=root)
        return result

    def allgather(self, obj: Any, nbytes: int):
        """All-gather Python objects; returns the list ordered by rank."""
        result = yield from self._collective("allgather", payload=obj, nbytes=nbytes)
        return result

    def allreduce_sum(self, value: Any, nbytes: int = 8):
        result = yield from self._collective("allreduce_sum", payload=value, nbytes=nbytes)
        return result

    def allreduce_max(self, value: Any, nbytes: int = 8):
        result = yield from self._collective("allreduce_max", payload=value, nbytes=nbytes)
        return result

    # ------------------------------------------------------------------
    # One-sided communication
    # ------------------------------------------------------------------
    def win_allocate(self, size: int):
        """Collectively create an RMA window (``size`` bytes on this rank).

        Returns this rank's :class:`~repro.mpi.window.WindowHandle`.
        """
        rt = self._runtime
        rt.enter_progress()
        try:
            yield self.engine.timeout(self._spec.mpi_call_overhead)
            self._coll_seq += 1
            win_id = self._coll_seq
            handle = self.world.window_registry.attach(win_id, self.rank, int(size))
            evt = self.world.coll.enter(win_id, "win_allocate", self.rank, nbytes=int(size))
            yield evt
        finally:
            rt.exit_progress()
        return handle

    # ------------------------------------------------------------------
    # Non-MPI time
    # ------------------------------------------------------------------
    def compute(self, seconds: float):
        """Application CPU time: the rank makes **no** MPI progress."""
        if seconds < 0:
            raise ValueError(f"negative compute time: {seconds}")
        if seconds:
            yield self.engine.timeout(seconds)

    def io_wait(self, event, setup_cost: float = 0.0):
        """Block in a non-MPI system call (e.g. a POSIX write).

        The rank makes **no** MPI progress while waiting — the mechanism
        that starves Comm-Overlap's background rendezvous traffic during
        blocking file writes.
        """
        if setup_cost:
            yield self.engine.timeout(setup_cost)
        result = yield event
        return result

    # ------------------------------------------------------------------
    # MPI-IO
    # ------------------------------------------------------------------
    def file_open(self, path: str):
        """Collectively open ``path``; returns this rank's MPI-IO handle."""
        from repro.mpi.mpiio import MPIFile  # local import to avoid a cycle

        yield from self.barrier()
        return MPIFile(self, path)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Communicator rank={self.rank}/{self.size}>"
