"""MPI-IO file handles over the simulated parallel file system.

Two write paths matter to the paper:

* :meth:`MPIFile.write_at` — the blocking POSIX-style path.  The rank is
  stuck in the system call: **no MPI progress** (rendezvous handshakes
  addressed to it stall until it returns).
* :meth:`MPIFile.iwrite_at` — the ``aio_write``/``MPI_File_iwrite`` path.
  The request is handed to the OS's aio engine and progresses in the
  background regardless of what the rank does; completion is consumed
  with the communicator's ``wait`` (which *is* an MPI call and therefore
  also drives communication progress while blocked).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import WriteTimeoutError
from repro.mpi.request import Request
from repro.sim.primitives import any_of, defuse

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.comm import Communicator

__all__ = ["MPIFile"]


def _as_bytes(data: np.ndarray | None, size: int | None) -> tuple[np.ndarray | None, int]:
    if data is None:
        if size is None:
            raise ValueError("either data or size is required")
        return None, int(size)
    view = data.reshape(-1).view(np.uint8)
    return view, view.size


class MPIFile:
    """One rank's handle on a shared file (open via ``comm.file_open``).

    Write calls accept either real ``data`` (bytes are stored — the
    default for correctness tests) or ``data=None`` with ``size`` for
    size-only timing runs.
    """

    def __init__(self, comm: "Communicator", path: str) -> None:
        self.comm = comm
        self.path = path
        world = comm.world
        self.pfs = world.pfs
        self.file = world.pfs.open(path)
        self.aio = world.aio_engine(comm.rank)
        self._view = None  # set by set_view; used by write_all/read_all
        self._coll_count = 0
        # Accounting (per handle, i.e. per rank).
        self.bytes_written = 0
        self.sync_writes = 0
        self.async_writes = 0

    def write_at(
        self,
        offset: int,
        data: np.ndarray | None = None,
        size: int | None = None,
        timeout: float | None = None,
        checksum: int | None = None,
    ):
        """Blocking write; the rank makes no MPI progress while it runs.

        ``timeout`` bounds the wait in simulated seconds: on expiry the
        in-flight request is abandoned (it may still land its bytes later
        — harmless, writes are idempotent) and
        :class:`~repro.errors.WriteTimeoutError` is raised.

        ``checksum`` is the extent's producer-side CRC-32, forwarded to
        the file system's read-back verify (see
        :meth:`repro.fs.pfs.ParallelFileSystem.write`).
        """
        view, nbytes = _as_bytes(data, size)
        self.bytes_written += nbytes
        self.sync_writes += 1
        done = self.pfs.write(self.file, offset, view, size=nbytes, checksum=checksum)
        if timeout is None:
            yield from self.comm.io_wait(done, setup_cost=self.pfs.spec.client_overhead)
            return
        engine = self.comm.world.engine
        race = any_of(engine, [done, engine.timeout(timeout)])
        yield from self.comm.io_wait(race, setup_cost=self.pfs.spec.client_overhead)
        if not done.triggered:
            defuse(done)
            raise WriteTimeoutError(
                f"write at offset {offset} timed out after {timeout}s"
            )

    def iwrite_at(
        self,
        offset: int,
        data: np.ndarray | None = None,
        size: int | None = None,
        checksum: int | None = None,
    ):
        """Asynchronous write; returns a :class:`Request` immediately.

        The posting cost is an MPI call (progress window); the I/O itself
        is progressed by the simulated OS.
        """
        view, nbytes = _as_bytes(data, size)
        self.bytes_written += nbytes
        self.async_writes += 1
        world = self.comm.world
        rt = world.runtime(self.comm.rank)
        rt.enter_progress()
        try:
            yield world.engine.timeout(
                world.cluster.spec.mpi_call_overhead + self.pfs.spec.client_overhead
            )
            req = self.aio.submit(self.file, offset, view, size=nbytes, checksum=checksum)
        finally:
            rt.exit_progress()
        return Request(req.event, "iwrite", req)

    def stage_at(
        self,
        scheduler,
        offset: int,
        data: np.ndarray | None = None,
        size: int | None = None,
        cycle: int = -1,
        on_drained=None,
        checksum: int | None = None,
    ):
        """Blocking write into the node's burst buffer (staging tier).

        Same calling shape and cost structure as :meth:`write_at` — the
        rank is stuck in the absorb call with no MPI progress — but the
        completion means "the staging device holds the bytes", not
        durability; the tier's drain scheduler lands them on the PFS in
        the background and fires ``on_drained`` then.
        """
        view, nbytes = _as_bytes(data, size)
        self.bytes_written += nbytes
        self.sync_writes += 1
        done = scheduler.absorb(
            self.file, offset, view, nbytes, rank=self.comm.rank,
            cycle=cycle, on_drained=on_drained, checksum=checksum,
        )
        yield from self.comm.io_wait(done, setup_cost=self.pfs.spec.client_overhead)

    def istage_at(
        self,
        scheduler,
        offset: int,
        data: np.ndarray | None = None,
        size: int | None = None,
        cycle: int = -1,
        on_drained=None,
        checksum: int | None = None,
    ):
        """Asynchronous write into the node's burst buffer; returns a Request.

        The posting cost mirrors :meth:`iwrite_at` (an MPI call plus the
        client overhead, under a progress window); the request completes
        when the absorb finishes — drain durability is signalled via
        ``on_drained``.
        """
        view, nbytes = _as_bytes(data, size)
        self.bytes_written += nbytes
        self.async_writes += 1
        world = self.comm.world
        rt = world.runtime(self.comm.rank)
        rt.enter_progress()
        try:
            yield world.engine.timeout(
                world.cluster.spec.mpi_call_overhead + self.pfs.spec.client_overhead
            )
            done = scheduler.absorb(
                self.file, offset, view, nbytes, rank=self.comm.rank,
                cycle=cycle, on_drained=on_drained, checksum=checksum,
            )
        finally:
            rt.exit_progress()
        return Request(done, "istage")

    def read_at(self, offset: int, size: int):
        """Blocking read; returns the bytes (zeros past EOF)."""
        done, out = self.pfs.read(self.file, offset, size)
        yield from self.comm.io_wait(done, setup_cost=self.pfs.spec.client_overhead)
        return out

    def iread_at(self, offset: int, size: int):
        """Asynchronous read; returns ``(Request, buffer)``.

        The buffer is filled once the request completes (wait on it with
        the communicator's ``wait``, which also drives MPI progress).
        """
        world = self.comm.world
        rt = world.runtime(self.comm.rank)
        rt.enter_progress()
        try:
            yield world.engine.timeout(
                world.cluster.spec.mpi_call_overhead + self.pfs.spec.client_overhead
            )
            req, out = self.aio.submit_read(self.file, offset, size)
        finally:
            rt.exit_progress()
        return Request(req.event, "iread", req), out

    # ------------------------------------------------------------------
    # Collective I/O (MPI_File_set_view + Write_all / Read_all)
    # ------------------------------------------------------------------
    def set_view(self, datatype=None, disp: int = 0, count: int = 1, view=None) -> None:
        """Declare this rank's file view for collective I/O.

        Pass either an MPI :class:`~repro.mpi.datatypes.Datatype` (with a
        file displacement and replication count, like
        ``MPI_File_set_view`` + an element count) or a ready
        :class:`~repro.collio.view.FileView`.
        """
        from repro.collio.view import FileView

        if view is not None:
            self._view = view
        elif datatype is not None:
            self._view = FileView.from_datatype(datatype, disp=disp, count=count)
        else:
            raise ValueError("set_view needs a datatype or a FileView")

    def _collective_plan(
        self, views: dict, config, cycle_bytes: int, two_layer=None
    ):
        """Build (or fetch) the shared plan for one collective operation.

        ``two_layer`` overrides ``config.two_layer`` (reads force it off:
        the scatter direction has no gather stage).
        """
        from repro.collio.api import build_plan

        world = self.comm.world
        self._coll_count += 1
        layering = config.two_layer if two_layer is None else two_layer
        key = (
            self.path, self._coll_count, cycle_bytes, config.cb_buffer_size,
            layering,
        )
        plan = world.plan_cache.get(key)
        if plan is None:
            plan = build_plan(
                world.cluster, world.nprocs, views, config, cycle_bytes,
                stripe_size=self.pfs.spec.stripe_size, two_layer=layering,
            )
            world.plan_cache[key] = plan
        return plan

    def write_all(
        self,
        data: np.ndarray | None = None,
        algorithm: str = "write_overlap",
        shuffle: str = "two_sided",
        config=None,
    ):
        """Collective write through the declared view (``MPI_File_write_all``).

        Every rank must call this with its own data after ``set_view``.
        Returns the rank's phase statistics.
        """
        from repro.collio.api import collective_write
        from repro.collio.config import CollectiveConfig
        from repro.collio.overlap import make_algorithm

        if self._view is None:
            raise ValueError("write_all requires a prior set_view()")
        config = config or CollectiveConfig()
        view = self._view
        # Real collective metadata exchange: every rank contributes its
        # view; the gathered result lets each rank derive the same plan.
        gathered = yield from self.comm.allgather(
            view, nbytes=view.num_extents * config.meta_bytes_per_extent
        )
        views = dict(enumerate(gathered))
        cycle_bytes = make_algorithm(algorithm).cycle_bytes(config.cb_buffer_size)
        plan = self._collective_plan(views, config, cycle_bytes)
        stats = yield from collective_write(
            self.comm, self, view, data, plan,
            algorithm=algorithm, shuffle=shuffle, config=config,
            exchange_metadata=False,
        )
        return stats

    def read_all(
        self,
        out: np.ndarray | None = None,
        algorithm: str = "read_ahead",
        scatter: str = "two_sided",
        config=None,
    ):
        """Collective read through the declared view (``MPI_File_read_all``).

        Fills ``out`` (or runs size-only when ``out is None``); returns
        the rank's phase statistics.
        """
        from repro.collio.config import CollectiveConfig
        from repro.collio.read import READ_ALGORITHMS, collective_read

        if self._view is None:
            raise ValueError("read_all requires a prior set_view()")
        config = config or CollectiveConfig()
        view = self._view
        gathered = yield from self.comm.allgather(
            view, nbytes=view.num_extents * config.meta_bytes_per_extent
        )
        views = dict(enumerate(gathered))
        nsub = READ_ALGORITHMS[algorithm].nsub
        cycle_bytes = max(1, config.cb_buffer_size // nsub)
        plan = self._collective_plan(views, config, cycle_bytes, two_layer=False)
        stats = yield from collective_read(
            self.comm, self, view, out, plan,
            algorithm=algorithm, scatter=scatter, config=config,
            exchange_metadata=False,
        )
        return stats

    @property
    def size(self) -> int:
        return self.file.size
