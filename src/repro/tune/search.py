"""Search strategies over a tuning space and their ranked results.

Two strategies, sharing the evaluator (and therefore the cache):

:func:`grid_search`
    Exhaustive: every candidate at the full repetition count.  One flat
    trial batch, so the worker pool sees maximal parallelism.

:func:`successive_halving`
    Pruned: screen **all** candidates at ``screen_reps`` repetitions,
    rank by the paper's min-of-series point estimate, and promote only
    the survivors to the full repetition count.  The promotion rule
    keeps (a) the top ``1/eta`` fraction and (b) any borderline
    candidate whose screening point lies within one sample standard
    deviation (:attr:`repro.analysis.stats.Series.std`) of the cutoff —
    a noisy single point is not enough evidence to discard a
    contender.  Because per-trial seeds depend only on (scenario,
    candidate, rep), a promoted candidate's full series is identical to
    the one grid search would have measured, and the screening trials
    are reused from the cache rather than re-run.

Pruning decisions are observable through the evaluator tracer's
``tune.screened`` / ``tune.promoted`` / ``tune.pruned`` counters.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

from repro._version import __version__
from repro.analysis.stats import Series
from repro.collio.config import CollectiveConfig
from repro.tune.evaluate import Evaluator, TrialResult, TrialSpec
from repro.tune.space import Candidate, ScenarioSpec, TuningSpace

__all__ = ["CandidateResult", "TuningResult", "grid_search", "successive_halving"]


@dataclass
class CandidateResult:
    """All measurements of one candidate within a search."""

    candidate: Candidate
    #: Simulated elapsed seconds, in repetition order.
    times: list[float]
    #: Simulated write bandwidth of the fastest repetition, bytes/s.
    write_bandwidth: float
    num_aggregators: int
    num_cycles: int
    #: "full" for candidates measured at the full repetition count,
    #: "screened" for candidates discarded after the screening round.
    stage: str = "full"

    def series(self) -> Series:
        return Series(key=("tune",), algorithm=self.candidate.label, times=list(self.times))

    @property
    def point(self) -> float:
        """The paper's point estimate: min over repetitions."""
        return min(self.times)

    @property
    def reps(self) -> int:
        return len(self.times)

    def to_dict(self) -> dict:
        return {
            "candidate": self.candidate.key(),
            "times": self.times,
            "point": self.point,
            "write_bandwidth": self.write_bandwidth,
            "num_aggregators": self.num_aggregators,
            "num_cycles": self.num_cycles,
            "reps": self.reps,
            "stage": self.stage,
        }


@dataclass
class TuningResult:
    """Ranked outcome of one search over one scenario."""

    scenario: ScenarioSpec
    search: str
    reps: int
    base_seed: int
    #: Candidates measured at full reps, best (lowest point) first.
    ranked: list[CandidateResult] = field(default_factory=list)
    #: Candidates discarded after screening (successive halving only).
    pruned: list[CandidateResult] = field(default_factory=list)
    screen_reps: int | None = None
    #: Snapshot of the evaluator's ``tune.*`` counters.  Excluded from
    #: :meth:`to_json` — cache hit/miss history is run-local state, and
    #: the canonical JSON must be identical across worker counts and
    #: warm/cold caches.
    counters: dict = field(default_factory=dict)

    @property
    def best(self) -> CandidateResult:
        if not self.ranked:
            raise ValueError("empty tuning result: no candidates were measured")
        return self.ranked[0]

    @property
    def total_candidates(self) -> int:
        return len(self.ranked) + len(self.pruned)

    def recommended_config(self) -> CollectiveConfig:
        """The winning candidate's scenario-scaled collective config."""
        return self.best.candidate.config_for(self.scenario)

    def cache_stats(self) -> tuple[int, int]:
        """``(cache_hits, simulations_run)`` observed during the search."""
        return (self.counters.get("tune.cache_hit", 0), self.counters.get("tune.sim_run", 0))

    def to_dict(self) -> dict:
        """Canonical plain-data form (deterministic; no run-local state)."""
        return {
            "version": __version__,
            "scenario": self.scenario.key(),
            "search": self.search,
            "reps": self.reps,
            "screen_reps": self.screen_reps,
            "base_seed": self.base_seed,
            "ranked": [r.to_dict() for r in self.ranked],
            "pruned": [r.to_dict() for r in self.pruned],
        }

    def to_json(self) -> str:
        """Byte-stable JSON: identical for identical (scenario, space,
        reps, seed) regardless of worker count or cache temperature."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)


def _measure(
    scenario: ScenarioSpec,
    candidates: list[Candidate],
    rep_range: range,
    evaluator: Evaluator,
    base_seed: int,
) -> dict[Candidate, list[TrialResult]]:
    """Evaluate ``rep_range`` repetitions of every candidate, one batch."""
    trials = [
        TrialSpec.build(scenario, cand, rep, base_seed)
        for cand in candidates
        for rep in rep_range
    ]
    outcomes = evaluator.evaluate(trials)
    per_candidate: dict[Candidate, list[TrialResult]] = {c: [] for c in candidates}
    for trial, outcome in zip(trials, outcomes):
        per_candidate[trial.candidate].append(outcome)
    return per_candidate


def _result(candidate: Candidate, outcomes: list[TrialResult], stage: str) -> CandidateResult:
    best = min(outcomes, key=lambda o: o.elapsed)
    return CandidateResult(
        candidate=candidate,
        times=[o.elapsed for o in outcomes],
        write_bandwidth=best.write_bandwidth,
        num_aggregators=best.num_aggregators,
        num_cycles=best.num_cycles,
        stage=stage,
    )


def _ranked(results: list[CandidateResult]) -> list[CandidateResult]:
    """Sort best-first with a deterministic candidate tie-break."""
    return sorted(results, key=lambda r: (r.point, r.candidate.sort_key()))


def grid_search(
    scenario: ScenarioSpec,
    space: TuningSpace,
    evaluator: Evaluator,
    reps: int = 3,
    base_seed: int = 2020,
) -> TuningResult:
    """Exhaustive search: every candidate at the full repetition count."""
    if reps < 1:
        raise ValueError(f"reps must be >= 1, got {reps}")
    candidates = space.candidates()
    measured = _measure(scenario, candidates, range(reps), evaluator, base_seed)
    ranked = _ranked([_result(c, measured[c], "full") for c in candidates])
    return TuningResult(
        scenario=scenario,
        search="grid",
        reps=reps,
        base_seed=base_seed,
        ranked=ranked,
        counters=dict(evaluator.tracer.counters),
    )


def successive_halving(
    scenario: ScenarioSpec,
    space: TuningSpace,
    evaluator: Evaluator,
    reps: int = 3,
    screen_reps: int = 1,
    eta: int = 3,
    base_seed: int = 2020,
) -> TuningResult:
    """Screen every candidate cheaply, promote survivors to full reps."""
    if reps < 1:
        raise ValueError(f"reps must be >= 1, got {reps}")
    if not (1 <= screen_reps <= reps):
        raise ValueError(f"screen_reps must be in [1, reps], got {screen_reps}")
    if eta < 2:
        raise ValueError(f"eta must be >= 2, got {eta}")
    candidates = space.candidates()
    tracer = evaluator.tracer

    # Round 1: screen everything at few reps.
    screened = _measure(scenario, candidates, range(screen_reps), evaluator, base_seed)
    screen_results = _ranked([_result(c, screened[c], "screened") for c in candidates])
    for _ in screen_results:
        tracer.emit(0.0, "tune.screened")

    if screen_reps == reps:
        survivors = list(screen_results)
        dropped: list[CandidateResult] = []
    else:
        keep = max(1, math.ceil(len(screen_results) / eta))
        cutoff = screen_results[keep - 1].point
        survivors, dropped = [], []
        for i, res in enumerate(screen_results):
            # Keep the top 1/eta, plus borderline candidates whose point
            # is within one sample std of the cutoff (noise benefit of
            # the doubt; inert at screen_reps=1 where std == 0).
            if i < keep or res.point - res.series().std <= cutoff:
                survivors.append(res)
            else:
                dropped.append(res)

    for _ in survivors:
        tracer.emit(0.0, "tune.promoted")
    for _ in dropped:
        tracer.emit(0.0, "tune.pruned")

    # Round 2: complete the survivors' series.  Repetition indices extend
    # the screening range, so the trials already simulated (or cached)
    # are reused and a survivor's final series equals grid search's.
    promoted = [r.candidate for r in survivors]
    full = _measure(scenario, promoted, range(reps), evaluator, base_seed)
    ranked = _ranked([_result(c, full[c], "full") for c in promoted])
    return TuningResult(
        scenario=scenario,
        search="halving",
        reps=reps,
        screen_reps=screen_reps,
        base_seed=base_seed,
        ranked=ranked,
        pruned=dropped,
        counters=dict(tracer.counters),
    )
