"""Trial execution: serial or fanned out over a ``multiprocessing`` pool.

A *trial* is one simulated collective write of a scenario under one
candidate configuration with one seed.  Trials are pure functions of
their :class:`TrialSpec`, which makes three things possible:

* **Parallelism with bit-for-bit agreement.**  Workers receive only the
  hashable descriptor and rebuild specs/views/config locally, and every
  trial's seed is derived from a stable content hash of the descriptor
  (:func:`trial_seed`) — never from worker identity or scheduling — so
  ``n_workers=4`` and ``n_workers=1`` produce identical numbers.
* **Caching.**  The same descriptor hash keys the persistent
  :class:`~repro.tune.cache.ResultCache`; a cached trial is never
  re-simulated, within a run or across runs.
* **Observability.**  The evaluator bumps ``tune.trial``,
  ``tune.cache_hit`` and ``tune.sim_run`` counters on its
  :class:`~repro.sim.trace.Tracer` so searches can assert, e.g., that a
  warm rerun performed zero simulations.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.bench.parallel import content_seed, parallel_map
from repro.collio.api import RunSpec, run_collective_write
from repro.config import DEFAULT_SEED
from repro.sim.trace import Tracer
from repro.tune.cache import MemoryCache, stable_key
from repro.tune.space import Candidate, ScenarioSpec

__all__ = ["TrialSpec", "TrialResult", "trial_seed", "trial_key", "run_trial", "Evaluator"]


def trial_seed(scenario: ScenarioSpec, candidate: Candidate, rep: int,
               base_seed: int = DEFAULT_SEED) -> int:
    """Deterministic per-trial seed from a stable hash of the descriptor.

    Independent of evaluation order, worker count and Python's hash
    randomization; distinct reps draw distinct (but reproducible) noise
    streams, mirroring the paper's repeated measurements.  (This is
    :func:`repro.bench.parallel.content_seed` of the descriptor — the
    same derivation every parallel campaign uses.)
    """
    return content_seed(
        {
            "base_seed": base_seed,
            "scenario": scenario.key(),
            "candidate": candidate.key(),
            "rep": rep,
        }
    )


@dataclass(frozen=True)
class TrialSpec:
    """Hashable, picklable description of one simulation trial."""

    scenario: ScenarioSpec
    candidate: Candidate
    rep: int
    seed: int

    @classmethod
    def build(cls, scenario: ScenarioSpec, candidate: Candidate, rep: int,
              base_seed: int = DEFAULT_SEED) -> "TrialSpec":
        return cls(scenario, candidate, rep, trial_seed(scenario, candidate, rep, base_seed))

    def key(self) -> dict:
        return {
            "scenario": self.scenario.key(),
            "candidate": self.candidate.key(),
            "seed": self.seed,
        }


def trial_key(trial: TrialSpec) -> str:
    """The trial's stable cache key (scenario + candidate + seed + version).

    The scenario participates through its canonical :class:`SpecBase`
    serialization (with the file-system default resolved, so ``fs=None``
    and its explicit spelling key identically); note :func:`trial_seed`
    deliberately keeps the older plain-data form — changing it would
    reshuffle every trial's noise stream.
    """
    scenario = trial.scenario.to_dict()
    scenario["fs"] = trial.scenario.fs_name
    return stable_key(
        {
            "scenario": scenario,
            "candidate": trial.candidate.key(),
            "seed": trial.seed,
        }
    )


@dataclass(frozen=True)
class TrialResult:
    """Simulated outcome of one trial (plain scalars; JSON-safe)."""

    elapsed: float
    write_bandwidth: float
    num_aggregators: int
    num_cycles: int
    total_bytes: int

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "TrialResult":
        return cls(
            elapsed=float(d["elapsed"]),
            write_bandwidth=float(d["write_bandwidth"]),
            num_aggregators=int(d["num_aggregators"]),
            num_cycles=int(d["num_cycles"]),
            total_bytes=int(d["total_bytes"]),
        )


def run_trial(trial: TrialSpec) -> TrialResult:
    """Simulate one trial (module-level so worker processes can import it).

    Runs in size-only mode (``carry_data=False``): tuning compares
    simulated *timing*, which does not depend on payload bytes.
    """
    scenario = trial.scenario
    workload = scenario.workload()
    run = run_collective_write(
        RunSpec(
            cluster=scenario.cluster_spec(),
            fs=scenario.fs_spec(),
            nprocs=scenario.nprocs,
            views=workload.views(),
            algorithm=trial.candidate.algorithm,
            shuffle=trial.candidate.shuffle,
            config=trial.candidate.config_for(scenario),
            seed=trial.seed,
            carry_data=False,
        )
    )
    return TrialResult(
        elapsed=run.elapsed,
        write_bandwidth=run.write_bandwidth,
        num_aggregators=run.num_aggregators,
        num_cycles=run.num_cycles,
        total_bytes=run.total_bytes,
    )


class Evaluator:
    """Runs batches of trials through the cache and a worker pool.

    ``n_workers=1`` evaluates inline (no processes spawned), which is
    also the fallback the tests compare parallel runs against.
    """

    def __init__(self, n_workers: int = 1, cache=None, tracer: Tracer | None = None) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = n_workers
        self.cache = cache if cache is not None else MemoryCache()
        self.tracer = tracer if tracer is not None else Tracer()

    def evaluate(self, trials: list[TrialSpec]) -> list[TrialResult]:
        """Results for ``trials``, in input order.

        Cache hits are served without simulation; misses are simulated
        (in parallel when ``n_workers > 1``) and written back.
        """
        results: list[TrialResult | None] = [None] * len(trials)
        misses: list[tuple[int, TrialSpec, str]] = []
        for i, trial in enumerate(trials):
            self.tracer.emit(0.0, "tune.trial")
            key = trial_key(trial)
            cached = self.cache.get(key)
            if cached is not None:
                self.tracer.emit(0.0, "tune.cache_hit")
                results[i] = TrialResult.from_dict(cached)
            else:
                misses.append((i, trial, key))

        if misses:
            specs = [t for _, t, _ in misses]
            outcomes = parallel_map(run_trial, specs, jobs=self.n_workers)
            for (i, _, key), outcome in zip(misses, outcomes):
                self.tracer.emit(0.0, "tune.sim_run")
                self.cache.put(key, outcome.to_dict())
                results[i] = outcome
        return results  # type: ignore[return-value]
