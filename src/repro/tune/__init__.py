"""Auto-tuning: search-driven selection of collective-write configs.

The paper's Table I shows no overlap algorithm wins everywhere — the
best (algorithm, shuffle, buffer size, aggregator count) depends on
benchmark, platform and process count.  This package turns that
observation into a subsystem: describe a scenario, search the
configuration space (exhaustively or with successive halving), and get
a ranked recommendation backed by a persistent result cache.

Quickstart::

    from repro.tune import autotune

    result = autotune(benchmark="ior", cluster="crill", nprocs=8,
                      scale=256, cache_dir="/tmp/tune-cache")
    print(result.best.candidate.label, result.best.point)
    config = result.recommended_config()

or let the write pick for itself::

    run_collective_write(..., algorithm="auto")
"""

from repro.tune.cache import MemoryCache, ResultCache, stable_key
from repro.tune.evaluate import Evaluator, TrialResult, TrialSpec, run_trial, trial_seed
from repro.tune.search import (
    CandidateResult,
    TuningResult,
    grid_search,
    successive_halving,
)
from repro.tune.space import (
    Candidate,
    ScenarioSpec,
    TuningSpace,
    default_space,
    full_space,
)
from repro.tune.api import autotune, select_algorithm, views_fingerprint

__all__ = [
    "autotune",
    "select_algorithm",
    "views_fingerprint",
    "ScenarioSpec",
    "Candidate",
    "TuningSpace",
    "default_space",
    "full_space",
    "TrialSpec",
    "TrialResult",
    "trial_seed",
    "run_trial",
    "Evaluator",
    "ResultCache",
    "MemoryCache",
    "stable_key",
    "grid_search",
    "successive_halving",
    "CandidateResult",
    "TuningResult",
]
