"""Auto-tuning entry points.

* :func:`autotune` — the full search: explore a
  :class:`~repro.tune.space.TuningSpace` for a named scenario and return
  a ranked :class:`~repro.tune.search.TuningResult`.  This is what
  ``python -m repro.bench tune`` drives.
* :func:`select_algorithm` — the lightweight in-process selection behind
  ``run_collective_write(algorithm="auto")``: given concrete views (not
  a named benchmark), race the overlap algorithms once each on the
  caller's exact workload and pick the winner.  Selections are cached
  (keyed by a fingerprint of the views + specs + config + seed) so a
  steady-state caller pays for the race once per workload shape.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict

from repro.collio.config import CollectiveConfig
from repro.collio.overlap import ALGORITHMS, make_algorithm
from repro.collio.api import RunSpec, build_plan, run_collective_write
from repro.obs.metrics import MetricsRegistry
from repro.config import DEFAULT_SCALE, DEFAULT_SEED
from repro.fs.presets import FsSpec
from repro.hardware.cluster import Cluster, ClusterSpec
from repro.sim.engine import Engine
from repro.sim.trace import Tracer
from repro.tune.cache import MemoryCache, ResultCache, stable_key
from repro.tune.evaluate import Evaluator
from repro.tune.search import TuningResult, grid_search, successive_halving
from repro.tune.space import ScenarioSpec, TuningSpace, default_space

__all__ = ["autotune", "select_algorithm", "views_fingerprint"]


def autotune(
    benchmark: str = "ior",
    cluster: str = "crill",
    nprocs: int = 8,
    scale: int = DEFAULT_SCALE,
    fs: str | None = None,
    size: tuple = (),
    space: TuningSpace | None = None,
    search: str = "halving",
    reps: int = 3,
    screen_reps: int = 1,
    n_workers: int = 1,
    cache_dir: str | None = None,
    base_seed: int = DEFAULT_SEED,
    tracer: Tracer | None = None,
) -> TuningResult:
    """Search for the best collective-write configuration of a scenario.

    ``search`` is ``"halving"`` (screen-then-promote; the default) or
    ``"grid"`` (exhaustive).  ``cache_dir`` makes trial results persist
    across runs; without it an in-memory cache still deduplicates trials
    within the search.
    """
    scenario = ScenarioSpec(
        benchmark=benchmark, cluster=cluster, nprocs=nprocs, scale=scale, fs=fs, size=size
    )
    space = space if space is not None else default_space()
    cache = ResultCache(cache_dir) if cache_dir else MemoryCache()
    evaluator = Evaluator(n_workers=n_workers, cache=cache, tracer=tracer)
    if search == "grid":
        return grid_search(scenario, space, evaluator, reps=reps, base_seed=base_seed)
    if search == "halving":
        return successive_halving(
            scenario, space, evaluator, reps=reps, screen_reps=screen_reps,
            base_seed=base_seed,
        )
    raise ValueError(f"unknown search strategy {search!r}; known: ['grid', 'halving']")


def views_fingerprint(views: dict) -> str:
    """Stable fingerprint of a rank→FileView mapping (extent geometry)."""
    h = hashlib.sha256()
    for rank in sorted(views):
        v = views[rank]
        h.update(f"rank:{rank}:{v.num_extents}".encode())
        h.update(v.offsets.tobytes())
        h.update(v.lengths.tobytes())
    return h.hexdigest()


def _selection_key(
    cluster_spec: ClusterSpec,
    fs_spec: FsSpec,
    nprocs: int,
    views: dict,
    config: CollectiveConfig,
    shuffle: str,
    seed: int,
    candidates: tuple[str, ...],
) -> str:
    return stable_key(
        {
            "kind": "select_algorithm",
            "cluster": asdict(cluster_spec),
            "fs": asdict(fs_spec),
            "nprocs": nprocs,
            "views": views_fingerprint(views),
            "config": config.cache_key(),
            "shuffle": shuffle,
            "seed": seed,
            "candidates": list(candidates),
        }
    )


def select_algorithm(
    cluster_spec: ClusterSpec,
    fs_spec: FsSpec,
    nprocs: int,
    views: dict,
    config: CollectiveConfig | None = None,
    shuffle: str = "two_sided",
    seed: int = DEFAULT_SEED,
    candidates: tuple[str, ...] | None = None,
    cache_dir: str | None = None,
) -> tuple[str, dict]:
    """Pick the fastest overlap algorithm for these exact views.

    Races every candidate algorithm once (size-only mode, shared seed so
    all draw the same noise stream — the same footing ``bench.runner``
    gives them), reusing one plan per distinct cycle size.  Returns
    ``(algorithm, counters)`` where ``counters`` holds the ``tune.*``
    observability counts (``tune.auto_select``, ``tune.auto_trials``,
    ``tune.auto_cache_hit``) for the caller to merge into its trace.

    With ``cache_dir`` the decision is persisted: a second call with the
    same workload shape, specs, config and seed performs zero
    simulations.
    """
    config = config or CollectiveConfig()
    names = tuple(candidates) if candidates is not None else tuple(sorted(ALGORITHMS))
    if not names:
        raise ValueError("select_algorithm: empty candidate list")
    registry = MetricsRegistry()
    registry.counter("tune.auto_select").inc()
    cache = ResultCache(cache_dir) if cache_dir else None
    key = _selection_key(cluster_spec, fs_spec, nprocs, views, config, shuffle, seed, names)
    if cache is not None:
        cached = cache.get(key)
        if cached is not None and cached.get("algorithm") in names:
            registry.counter("tune.auto_cache_hit").inc()
            return cached["algorithm"], registry.counter_values()

    placement = Cluster(Engine(), cluster_spec)
    plans: dict[int, object] = {}
    points: dict[str, float] = {}
    base = RunSpec(
        cluster=cluster_spec, fs=fs_spec, nprocs=nprocs, views=views,
        shuffle=shuffle, config=config, seed=seed, carry_data=False,
    )
    for name in names:
        cycle_bytes = make_algorithm(name).cycle_bytes(config.cb_buffer_size)
        plan = plans.get(cycle_bytes)
        if plan is None:
            plan = build_plan(
                placement, nprocs, views, config, cycle_bytes,
                stripe_size=fs_spec.stripe_size,
            )
            plans[cycle_bytes] = plan
        run = run_collective_write(base.replace(algorithm=name, plan=plan))
        points[name] = run.elapsed
        registry.counter("tune.auto_trials").inc()
        registry.histogram("tune.trial_elapsed").observe(run.elapsed)
    best = min(names, key=lambda n: (points[n], n))
    if cache is not None:
        cache.put(key, {"algorithm": best, "points": points, "shuffle": shuffle})
    return best, registry.counter_values()
