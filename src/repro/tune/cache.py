"""Persistent on-disk result cache for tuning trials.

One simulated trial is pure: its outcome is fully determined by the
(scenario, candidate, seed) descriptor and the package version.  The
cache therefore maps a **stable content hash** of that descriptor to the
trial's result dict, stored as one small JSON file per key under a
user-chosen directory.  Repeated sweeps, overlapping searches, and
``algorithm="auto"`` lookups all share the same directory and never
re-simulate a point.

Design notes:

* Keys come from :func:`stable_key` — SHA-256 over canonical JSON
  (sorted keys, no whitespace variance).  Python's built-in ``hash`` is
  salted per process and never touches disk formats.
* Writes are atomic (``os.replace`` of a same-directory temp file), so a
  concurrent reader sees either the old state or the new state, never a
  torn file; concurrent writers of the same key are idempotent because
  trials are deterministic.
* Corrupt or unreadable entries degrade to cache misses.
* The package version participates in the key, so upgrading the
  simulator invalidates stale physics instead of silently reusing it.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

from repro._version import __version__

__all__ = ["stable_key", "ResultCache", "MemoryCache"]


def stable_key(payload: dict) -> str:
    """SHA-256 hex digest of a canonical-JSON rendering of ``payload``.

    ``payload`` must be plain data (dicts/lists/str/int/float/bool/None).
    The package version is mixed in so results never survive a simulator
    upgrade.
    """
    canon = json.dumps(
        {"payload": payload, "version": __version__},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canon.encode()).hexdigest()


class ResultCache:
    """A directory of ``<key>.json`` files, one per cached trial."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """The cached value for ``key``, or None (missing or corrupt)."""
        try:
            with open(self._path(key)) as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict) or "value" not in entry:
            return None
        return entry["value"]

    def put(self, key: str, value: dict) -> None:
        """Atomically store ``value`` under ``key``."""
        entry = {"key": key, "version": __version__, "value": value}
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(entry, fh, sort_keys=True)
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def clear(self) -> None:
        for p in self.root.glob("*.json"):
            try:
                p.unlink()
            except OSError:
                pass


class MemoryCache:
    """Same interface as :class:`ResultCache`, but process-local.

    Used when no ``cache_dir`` is given: within one search, screening
    results are still reused by the promotion round for free.
    """

    def __init__(self) -> None:
        self._data: dict[str, dict] = {}

    def get(self, key: str) -> dict | None:
        return self._data.get(key)

    def put(self, key: str, value: dict) -> None:
        self._data[key] = value

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        self._data.clear()
