"""Scenario and configuration descriptors for the auto-tuner.

Everything in this module is a small frozen dataclass of plain Python
scalars, for two reasons that shape the whole subsystem:

* **Workers rebuild, they don't receive.**  The parallel evaluator ships
  a :class:`~repro.tune.evaluate.TrialSpec` — scenario + candidate +
  seed — to each worker process, and the worker reconstructs the cluster
  spec, file-system spec, workload views and
  :class:`~repro.collio.config.CollectiveConfig` locally.  Pickling a
  handful of strings and ints is cheap and version-safe; pickling views
  and worlds is neither.

* **Stable hashing.**  The persistent result cache keys entries by a
  canonical-JSON hash of these descriptors (see
  :func:`~repro.tune.cache.stable_key`), so two processes — or two runs
  a week apart — that describe the same trial agree on the key.

``Candidate.cb_buffer_size`` is expressed in **unscaled** bytes (the
paper's natural units: ompio's default is 32 MiB); the per-scenario
config applies :func:`repro.config.scaled`, so one tuning space is
meaningful at every ``scale``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.collio.config import CB_BUFFER_SIZE_UNSCALED, CollectiveConfig
from repro.collio.overlap import ALGORITHMS
from repro.collio.shuffle import SHUFFLE_PRIMITIVES
from repro.config import DEFAULT_SCALE, scaled
from repro.errors import ConfigurationError
from repro.fs.presets import FsSpec, fs_preset
from repro.specbase import SpecBase
from repro.staging.spec import DRAIN_POLICIES, StagingSpec
from repro.hardware.cluster import ClusterSpec
from repro.hardware.presets import PRESETS, preset
from repro.units import MiB
from repro.workloads import WORKLOADS, make_workload

__all__ = [
    "ScenarioSpec",
    "Candidate",
    "TuningSpace",
    "default_space",
    "full_space",
]

#: Default file system of each cluster preset (the paper's deployments).
_CLUSTER_DEFAULT_FS = {"crill": "beegfs-crill", "ibex": "beegfs-ibex"}


@dataclass(frozen=True)
class ScenarioSpec(SpecBase):
    """One tuning scenario: *what* is being written, *where*.

    The (workload, cluster, file system, process count) tuple the paper's
    Table I varies — everything the tuner holds fixed while it searches
    over :class:`Candidate` configurations.
    """

    benchmark: str
    cluster: str
    nprocs: int
    scale: int = DEFAULT_SCALE
    #: File-system preset name; None = the cluster's own BeeGFS.
    fs: str | None = None
    #: Extra workload kwargs as a hashable item tuple, e.g.
    #: ``(("block_size", 1 << 24),)`` — mirrors ``bench.runner.Case.size``.
    size: tuple = ()

    def __post_init__(self) -> None:
        if self.benchmark not in WORKLOADS:
            raise ConfigurationError(
                f"unknown benchmark {self.benchmark!r}; known: {sorted(WORKLOADS)}"
            )
        if self.cluster not in PRESETS:
            raise ConfigurationError(
                f"unknown cluster {self.cluster!r}; known: {sorted(PRESETS)}"
            )
        if self.nprocs < 1:
            raise ConfigurationError(f"nprocs must be >= 1, got {self.nprocs}")
        if self.scale < 1:
            raise ConfigurationError(f"scale must be >= 1, got {self.scale}")

    @property
    def fs_name(self) -> str:
        return self.fs or _CLUSTER_DEFAULT_FS[self.cluster]

    @property
    def label(self) -> str:
        suffix = "" if not self.size else "/" + ",".join(f"{k}={v}" for k, v in self.size)
        return f"{self.benchmark}@{self.cluster}:{self.fs_name} P={self.nprocs}{suffix}"

    # -- builders (used by trial workers to reconstruct the world) --------
    def cluster_spec(self) -> ClusterSpec:
        return preset(self.cluster, scale=self.scale)

    def fs_spec(self) -> FsSpec:
        return fs_preset(self.fs_name, scale=self.scale)

    def workload(self):
        return make_workload(self.benchmark, self.nprocs, scale=self.scale, **dict(self.size))

    def key(self) -> dict:
        """Canonical plain-data form for stable hashing."""
        return {
            "benchmark": self.benchmark,
            "cluster": self.cluster,
            "fs": self.fs_name,
            "nprocs": self.nprocs,
            "scale": self.scale,
            "size": [list(kv) for kv in self.size],
        }


@dataclass(frozen=True)
class Candidate:
    """One point of the configuration space the tuner searches."""

    algorithm: str
    shuffle: str = "two_sided"
    #: Collective buffer size in **unscaled** bytes; None = ompio default.
    cb_buffer_size: int | None = None
    #: Fixed aggregator count; None = automatic selection.
    num_aggregators: int | None = None
    #: Two-layer intra-node aggregation (True/False/"auto").
    two_layer: bool | str = False
    #: Burst-buffer staging: a drain-policy name enables the tier with
    #: the scenario-scaled NVMe defaults; None runs without staging.
    staging: str | None = None

    def __post_init__(self) -> None:
        if self.algorithm not in ALGORITHMS:
            raise ConfigurationError(
                f"unknown algorithm {self.algorithm!r}; known: {sorted(ALGORITHMS)}"
            )
        if self.shuffle not in SHUFFLE_PRIMITIVES:
            raise ConfigurationError(
                f"unknown shuffle {self.shuffle!r}; known: {sorted(SHUFFLE_PRIMITIVES)}"
            )
        if self.cb_buffer_size is not None and self.cb_buffer_size < 2:
            raise ConfigurationError("cb_buffer_size must be >= 2 bytes or None")
        if self.num_aggregators is not None and self.num_aggregators < 1:
            raise ConfigurationError("num_aggregators must be >= 1 or None")
        if self.two_layer not in (True, False, "auto"):
            raise ConfigurationError(
                f"two_layer must be True, False or 'auto', got {self.two_layer!r}"
            )
        if self.staging is not None and self.staging not in DRAIN_POLICIES:
            raise ConfigurationError(
                f"staging must be None or one of {DRAIN_POLICIES}, got {self.staging!r}"
            )

    @property
    def label(self) -> str:
        parts = [self.algorithm]
        if self.shuffle != "two_sided":
            parts.append(self.shuffle)
        if self.cb_buffer_size is not None:
            parts.append(f"cb={self.cb_buffer_size // MiB}MiB")
        if self.num_aggregators is not None:
            parts.append(f"aggr={self.num_aggregators}")
        if self.two_layer:
            parts.append("2layer" if self.two_layer is True else "2layer=auto")
        if self.staging is not None:
            parts.append(f"staging={self.staging}")
        return "/".join(parts)

    def key(self) -> dict:
        """Canonical plain-data form for stable hashing and sorting."""
        return {
            "algorithm": self.algorithm,
            "shuffle": self.shuffle,
            "cb_buffer_size": self.cb_buffer_size,
            "num_aggregators": self.num_aggregators,
            "two_layer": self.two_layer,
            "staging": self.staging,
        }

    def sort_key(self) -> tuple:
        """Deterministic total order (tie-breaking in rankings)."""
        return (
            self.algorithm,
            self.shuffle,
            self.cb_buffer_size if self.cb_buffer_size is not None else -1,
            self.num_aggregators if self.num_aggregators is not None else -1,
            str(self.two_layer),
            self.staging or "",
        )

    def config_for(self, scenario: ScenarioSpec) -> CollectiveConfig:
        """The scenario-scaled :class:`CollectiveConfig` of this candidate."""
        overrides: dict = {
            "extent_cost_factor": scenario.workload().extent_cost_factor,
            "num_aggregators": self.num_aggregators,
            "two_layer": self.two_layer,
        }
        if self.cb_buffer_size is not None:
            overrides["cb_buffer_size"] = scaled(self.cb_buffer_size, scenario.scale)
        if self.staging is not None:
            overrides["staging"] = StagingSpec.for_scale(
                scenario.scale, policy=self.staging
            )
        return CollectiveConfig.for_scale(scenario.scale, **overrides)


@dataclass(frozen=True)
class TuningSpace:
    """The cartesian grid of :class:`Candidate` points to search."""

    algorithms: tuple = tuple(sorted(ALGORITHMS))
    shuffles: tuple = ("two_sided",)
    cb_buffer_sizes: tuple = (None,)
    num_aggregators: tuple = (None,)
    two_layer: tuple = (False,)
    staging: tuple = (None,)

    def candidates(self) -> list[Candidate]:
        """All grid points in deterministic (sorted) enumeration order."""
        return [
            Candidate(a, s, cb, na, tl, st)
            for a, s, cb, na, tl, st in itertools.product(
                self.algorithms, self.shuffles, self.cb_buffer_sizes,
                self.num_aggregators, self.two_layer, self.staging,
            )
        ]

    def __len__(self) -> int:
        return (
            len(self.algorithms)
            * len(self.shuffles)
            * len(self.cb_buffer_sizes)
            * len(self.num_aggregators)
            * len(self.two_layer)
            * len(self.staging)
        )


def default_space() -> TuningSpace:
    """The quick space: all algorithms, two-sided shuffle, 3 buffer sizes."""
    return TuningSpace(
        cb_buffer_sizes=(CB_BUFFER_SIZE_UNSCALED // 2, None, CB_BUFFER_SIZE_UNSCALED * 2),
    )


def full_space() -> TuningSpace:
    """The exhaustive space: every shuffle, 4 buffer sizes, 4 aggregator
    counts, single- and two-layer aggregation, staging off/immediate."""
    return TuningSpace(
        shuffles=tuple(sorted(SHUFFLE_PRIMITIVES)),
        cb_buffer_sizes=(8 * MiB, 16 * MiB, None, 64 * MiB),
        num_aggregators=(None, 2, 4, 8),
        two_layer=(False, True),
        staging=(None, "immediate"),
    )
