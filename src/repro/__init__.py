"""repro — reproduction of "On Overlapping Communication and File I/O in
Collective Write Operation" (Feki & Gabriel, 2020).

The package provides a deterministic discrete-event simulation of an MPI
library (two-sided messaging with eager/rendezvous protocols, collectives,
one-sided RMA) and a striped parallel file system (with synchronous and
asynchronous I/O paths), and on top of them a complete reimplementation of
the two-phase collective write algorithm with the paper's four overlap
algorithms and three shuffle data-transfer primitives.

Quick start::

    from repro.collio import RunSpec, run_collective_write
    from repro.fs import beegfs_crill
    from repro.hardware import crill
    from repro.workloads import make_workload

    workload = make_workload("ior", nprocs=16)
    result = run_collective_write(RunSpec(
        cluster=crill(), fs=beegfs_crill(), nprocs=16,
        views=workload.views(), algorithm="write_overlap",
    ))
    print(result.elapsed, result.write_bandwidth)

Sub-packages
------------
``repro.sim``
    Discrete-event simulation kernel (event heap, generator processes,
    resources, seeded RNG streams).
``repro.hardware``
    Cluster hardware model: nodes, NICs, fabric; *crill* and *Ibex* presets.
``repro.mpi``
    Simulated MPI: datatypes, point-to-point with message matching and
    eager/rendezvous protocols, collectives, RMA windows, MPI-IO.
``repro.fs``
    Striped parallel file system with storage targets and an asynchronous
    I/O engine; BeeGFS-like and Lustre-like presets.
``repro.collio``
    The paper's contribution: two-phase collective write with overlap
    algorithms and shuffle primitives.
``repro.workloads``
    IOR, MPI-Tile-IO and FLASH-IO workload generators.
``repro.obs``
    Observability: span timelines, Chrome-trace/CSV exporters, metrics
    registry, span-derived overlap efficiency.
``repro.bench``
    Experiment harness reproducing Table I and Figures 1-4.
"""

from repro._version import __version__

__all__ = ["__version__"]
