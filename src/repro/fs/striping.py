"""Stripe layout arithmetic: mapping byte ranges to storage targets."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["StripeLayout", "StripePiece"]


@dataclass(frozen=True)
class StripePiece:
    """One contiguous piece of a request that lands on a single target."""

    target: int
    offset: int  # file offset of the piece
    size: int


@dataclass(frozen=True)
class StripeLayout:
    """Round-robin striping of a file across ``num_targets`` targets.

    Byte ``b`` of the file lives in stripe ``b // stripe_size``, which is
    served by target ``stripe_index % num_targets``.
    """

    stripe_size: int
    num_targets: int

    def __post_init__(self) -> None:
        if self.stripe_size < 1:
            raise ValueError(f"stripe_size must be >= 1, got {self.stripe_size}")
        if self.num_targets < 1:
            raise ValueError(f"num_targets must be >= 1, got {self.num_targets}")

    def target_of(self, offset: int) -> int:
        """Target serving the stripe containing byte ``offset``."""
        if offset < 0:
            raise ValueError(f"negative offset: {offset}")
        return (offset // self.stripe_size) % self.num_targets

    def split(self, offset: int, size: int) -> list[StripePiece]:
        """Split request ``[offset, offset+size)`` at stripe boundaries.

        Consecutive stripes on the *same* target (possible when
        ``num_targets == 1``) are coalesced into a single piece.
        """
        if offset < 0 or size < 0:
            raise ValueError(f"invalid request: offset={offset} size={size}")
        pieces: list[StripePiece] = []
        pos = offset
        end = offset + size
        while pos < end:
            stripe_end = (pos // self.stripe_size + 1) * self.stripe_size
            chunk_end = min(end, stripe_end)
            target = self.target_of(pos)
            if pieces and pieces[-1].target == target and pieces[-1].offset + pieces[-1].size == pos:
                last = pieces[-1]
                pieces[-1] = StripePiece(target, last.offset, last.size + (chunk_end - pos))
            else:
                pieces.append(StripePiece(target, pos, chunk_end - pos))
            pos = chunk_end
        return pieces

    def remap_target(self, target: int, down: frozenset[int]) -> int:
        """Survivor serving ``target``'s stripes under degraded striping.

        Dead targets are remapped deterministically onto the sorted
        survivor list (``alive[target % len(alive)]``), so every client
        that knows the same outage set routes the same stripes to the
        same survivors — no coordination needed.  A live target maps to
        itself.
        """
        if target not in down:
            return target
        alive = [t for t in range(self.num_targets) if t not in down]
        if not alive:
            raise ValueError("all storage targets are down")
        return alive[target % len(alive)]

    def bytes_per_target(
        self, offset: int, size: int, down: frozenset[int] = frozenset()
    ) -> dict[int, int]:
        """Total bytes of request ``[offset, offset+size)`` per target.

        With a non-empty ``down`` set, dead targets' bytes are folded
        into their :meth:`remap_target` survivors (degraded striping).

        Closed-form round-robin count: O(num_targets) regardless of how
        many stripes the request spans (equivalent to summing over
        :meth:`split`, which stays O(stripes)).
        """
        if offset < 0 or size < 0:
            raise ValueError(f"invalid request: offset={offset} size={size}")
        if size == 0:
            return {}
        stripe = self.stripe_size
        ntargets = self.num_targets
        end = offset + size
        first = offset // stripe
        last = (end - 1) // stripe
        nstripes = last - first + 1
        totals: dict[int, int] = {}
        if nstripes >= ntargets:
            # Every target is touched: whole rounds plus a partial round
            # starting at the first stripe's target.
            base, extra = divmod(nstripes, ntargets)
            for i in range(ntargets):
                totals[(first + i) % ntargets] = (base + (1 if i < extra else 0)) * stripe
        else:
            for i in range(nstripes):
                t = (first + i) % ntargets
                totals[t] = totals.get(t, 0) + stripe
        # Trim the partial head and tail stripes (both may hit one target).
        totals[first % ntargets] -= offset - first * stripe
        totals[last % ntargets] -= (last + 1) * stripe - end
        if down:
            folded: dict[int, int] = {}
            for t, nbytes in totals.items():
                survivor = self.remap_target(t, down)
                folded[survivor] = folded.get(survivor, 0) + nbytes
            return folded
        return totals

    def align_down(self, offset: int) -> int:
        """Largest stripe boundary <= ``offset``."""
        return (offset // self.stripe_size) * self.stripe_size

    def align_up(self, offset: int) -> int:
        """Smallest stripe boundary >= ``offset``."""
        return -(-offset // self.stripe_size) * self.stripe_size
