"""Byte-accurate file contents for the simulated file system."""

from __future__ import annotations

import numpy as np

from repro.errors import FileSystemError

__all__ = ["SimFile"]


class SimFile:
    """The data of one simulated file.

    Contents are held in a numpy ``uint8`` array that grows geometrically
    on writes past the current end (like a sparse file, holes read as
    zero).  This class is pure data — timing lives in
    :class:`repro.fs.pfs.ParallelFileSystem`.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._data = np.zeros(0, dtype=np.uint8)
        self._size = 0
        #: CRC-32 of committed extents, keyed by ``(offset, nbytes)`` —
        #: recorded by the PFS at commit time when the write carried a
        #: producer checksum (see repro.fs.pfs).  This is the stored-CRC
        #: metadata a real checksumming file system keeps per block; the
        #: integrity scrub verifies against it instead of re-reading
        #: every extent.  Empty (zero-cost) without an integrity layer.
        self._stored_crcs: dict[tuple[int, int], int] = {}

    @property
    def size(self) -> int:
        """Current file size in bytes (highest written offset + 1)."""
        return self._size

    def _ensure_capacity(self, end: int) -> None:
        if end <= len(self._data):
            return
        new_cap = max(end, 2 * len(self._data), 4096)
        grown = np.zeros(new_cap, dtype=np.uint8)
        grown[: len(self._data)] = self._data
        self._data = grown

    def write(self, offset: int, data: np.ndarray | bytes | bytearray) -> None:
        """Store ``data`` at ``offset`` (extends the file as needed)."""
        if offset < 0:
            raise FileSystemError(f"negative write offset: {offset}")
        buf = np.frombuffer(bytes(data), dtype=np.uint8) if not isinstance(data, np.ndarray) else data
        if buf.dtype != np.uint8:
            buf = buf.view(np.uint8)
        end = offset + len(buf)
        self._ensure_capacity(end)
        self._data[offset:end] = buf
        self._size = max(self._size, end)
        if self._stored_crcs:
            # Any overlapping write invalidates previously recorded CRCs
            # (the commit path re-records the exact extent afterwards).
            stale = [
                key for key in self._stored_crcs
                if key[0] < end and offset < key[0] + key[1]
            ]
            for key in stale:
                del self._stored_crcs[key]

    def note_size(self, end: int) -> None:
        """Record a size-only write's end offset (no bytes stored)."""
        if end < 0:
            raise FileSystemError(f"negative size: {end}")
        self._size = max(self._size, end)

    def read(self, offset: int, size: int) -> np.ndarray:
        """Return ``size`` bytes at ``offset``; holes/EOF read as zeros."""
        if offset < 0 or size < 0:
            raise FileSystemError(f"invalid read: offset={offset} size={size}")
        out = np.zeros(size, dtype=np.uint8)
        avail_end = min(offset + size, len(self._data))
        if avail_end > offset:
            out[: avail_end - offset] = self._data[offset:avail_end]
        return out

    def note_stored_crc(self, offset: int, nbytes: int, crc: int) -> None:
        """Record the CRC-32 of the committed extent at ``offset``."""
        self._stored_crcs[(int(offset), int(nbytes))] = int(crc)

    def stored_crc(self, offset: int, nbytes: int) -> int | None:
        """The recorded CRC of exactly this extent, or None (unknown)."""
        return self._stored_crcs.get((int(offset), int(nbytes)))

    def contents(self) -> np.ndarray:
        """The full file contents as a uint8 array (a copy)."""
        return self._data[: self._size].copy()
