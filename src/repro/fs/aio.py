"""Asynchronous I/O engine (the simulated OS's aio threads).

``aio_write``-style requests are progressed by the operating system, not by
the issuing process — so they advance even while the process is busy
computing or blocked in a non-MPI call.  This independence is what makes
the paper's Write-Overlap family effective, and its *absence* on systems
with poor aio support (the paper's Lustre note) is modelled by
``FsSpec.aio_slots`` (limiting concurrently progressing requests per
client) and ``FsSpec.aio_extra_overhead`` (per-request setup penalty).
"""

from __future__ import annotations

import numpy as np

from repro.errors import AioSubmitError, FileSystemError
from repro.sim.engine import Engine, Event
from repro.sim.resources import FifoResource
from repro.sim.trace import Tracer
from repro.fs.file import SimFile
from repro.fs.pfs import ParallelFileSystem

__all__ = ["AioEngine", "AioRequest"]


class AioRequest:
    """Handle for one in-flight asynchronous write."""

    __slots__ = ("event", "offset", "size", "issued_at")

    def __init__(self, event: Event, offset: int, size: int, issued_at: float) -> None:
        self.event = event
        self.offset = offset
        self.size = size
        self.issued_at = issued_at

    @property
    def done(self) -> bool:
        return self.event.triggered


class AioEngine:
    """Per-client asynchronous-I/O context.

    Each simulated process (rank) that issues asynchronous writes owns one
    ``AioEngine``; the slot limit is per client, matching per-process aio
    queue depth limits.
    """

    def __init__(
        self,
        engine: Engine,
        pfs: ParallelFileSystem,
        client: int = 0,
        injector=None,
        tracer: Tracer | None = None,
    ) -> None:
        self.engine = engine
        self.pfs = pfs
        self.client = client
        self.injector = injector
        self.tracer = tracer if tracer is not None else Tracer()
        spec = pfs.spec
        self._slots = (
            FifoResource(engine, capacity=spec.aio_slots) if spec.aio_slots is not None else None
        )
        self._extra = spec.aio_extra_overhead
        self.requests_issued = 0
        self.submits_refused = 0

    def submit(
        self,
        file: SimFile,
        offset: int,
        data: np.ndarray | None,
        size: int | None = None,
        checksum: int | None = None,
    ) -> AioRequest:
        """Issue an asynchronous write; returns immediately with a handle.

        The write is progressed by the simulated OS: it queues for an aio
        slot (if limited), pays the per-request aio overhead, then runs the
        striped write.  The caller's buffer must stay stable until the
        request's event fires (see :class:`ParallelFileSystem.write`).
        ``data=None`` + ``size`` selects size-only mode (same timing, no
        bytes stored).

        Raises :class:`~repro.errors.AioSubmitError` when the fault
        injector refuses the submission (EAGAIN-style); callers fall back
        to the synchronous path (see :mod:`repro.faults.retry`).
        """
        if self.injector is not None and self.injector.aio_submit_fails(self.client):
            self.submits_refused += 1
            raise AioSubmitError(
                f"injected aio submission failure on client {self.client}"
            )
        nbytes = int(data.size) if data is not None else int(size or 0)
        self.requests_issued += 1
        done = self.engine.event()
        req = AioRequest(done, offset, nbytes, self.engine.now)
        span = None
        if self.tracer.active:
            span = self.tracer.begin(
                self.engine.now, "aio.write", "io.aio", rank=self.client,
                flow="async", offset=offset, bytes=nbytes,
            )
        if span is not None:
            done.callbacks.append(lambda evt, _s=span: self.tracer.end(_s, evt.engine.now))
        self.engine.process(
            self._drive(file, offset, data, size, done, checksum), name=f"aio@{offset}"
        )
        return req

    def submit_read(self, file: SimFile, offset: int, size: int) -> tuple[AioRequest, np.ndarray]:
        """Issue an asynchronous read; returns ``(handle, buffer)``.

        The buffer is filled when the handle's event fires.  Reads share
        the same aio slot limits and quality knobs as writes.
        """
        self.requests_issued += 1
        done = self.engine.event()
        req = AioRequest(done, offset, int(size), self.engine.now)
        out = np.zeros(int(size), dtype=np.uint8)
        span = None
        if self.tracer.active:
            span = self.tracer.begin(
                self.engine.now, "aio.read", "io.aio", rank=self.client,
                flow="async", offset=offset, bytes=int(size),
            )
        if span is not None:
            done.callbacks.append(lambda evt, _s=span: self.tracer.end(_s, evt.engine.now))
        self.engine.process(self._drive_read(file, offset, out, done), name=f"aior@{offset}")
        return req, out

    def _drive_read(self, file: SimFile, offset: int, out: np.ndarray, done: Event):
        if self._slots is not None:
            yield self._slots.request()
        try:
            if self._extra:
                yield self.engine.timeout(self._extra)
            started = self.engine.now
            read_done, data = self.pfs.read(file, offset, out.size)
            yield read_done
            out[:] = data
            factor = self.pfs.spec.aio_throughput_factor
            if factor < 1.0:
                elapsed = self.engine.now - started
                yield self.engine.timeout(elapsed * (1.0 / factor - 1.0))
        finally:
            if self._slots is not None:
                self._slots.release()
        done.succeed(self.engine.now)

    def _drive(self, file: SimFile, offset: int, data: np.ndarray | None,
               size: int | None, done: Event, checksum: int | None = None):
        if self._slots is not None:
            yield self._slots.request()
        try:
            if self._extra:
                yield self.engine.timeout(self._extra)
            started = self.engine.now
            try:
                yield self.pfs.write(file, offset, data, size=size, checksum=checksum)
            except FileSystemError as exc:
                # Surface the storage failure through the request handle
                # (aio_error semantics) instead of killing the driver.
                done.fail(exc)
                return
            factor = self.pfs.spec.aio_throughput_factor
            if factor < 1.0:
                # Client-side aio slowness (e.g. Lustre lock handling): the
                # request takes 1/factor as long end-to-end, without
                # occupying the storage targets for the extra time.
                elapsed = self.engine.now - started
                yield self.engine.timeout(elapsed * (1.0 / factor - 1.0))
        finally:
            if self._slots is not None:
                self._slots.release()
        done.succeed(self.engine.now)
