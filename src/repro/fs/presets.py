"""File-system specifications and the paper's storage presets.

Calibration notes (Section IV of the paper):

* *crill*'s BeeGFS is built from two extra hard drives in each of the 16
  compute nodes — spinning disks, so the aggregate write bandwidth is on
  the order of 1.5-2 GB/s and the file-access phase utterly dominates the
  collective write (93% of the time at 576 procs for Tile-1M).
* *Ibex* mounts a 3.6 PB BeeGFS with 16 storage targets on dedicated
  servers — the paper reports "significantly higher write bandwidth"; we
  model ~1 GB/s per target (16 GB/s aggregate), which yields the ~77%/23%
  I/O-vs-communication split the paper measures at 576 procs.
* The closing note observes that ``aio_write`` performs badly on Lustre;
  the ``lustre_like`` preset keeps good raw bandwidth but serializes
  asynchronous I/O through a single slot with a hefty per-op overhead,
  which erases the advantage of the Write-Overlap family.

Stripe sizes scale with :mod:`repro.config` (paper: 1 MB stripes).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.config import DEFAULT_SCALE, scaled
from repro.errors import ConfigurationError
from repro.units import MB, MiB, US

__all__ = [
    "FsSpec",
    "beegfs_crill",
    "beegfs_ibex",
    "lustre_like",
    "fs_preset",
    "FS_PRESETS",
]

#: Both clusters in the paper use 1 MB stripes.
STRIPE_SIZE_UNSCALED: int = 1 * MiB


@dataclass(frozen=True)
class FsSpec:
    """Static description of a parallel file system."""

    name: str
    num_targets: int
    #: Sustained write bandwidth of one storage target, bytes/s.
    target_bandwidth: float
    #: Per-request service latency at a target (RPC + media), seconds.
    target_latency: float
    #: Stripe size in bytes (already scaled by the preset factory).
    stripe_size: int
    #: Log-normal sigma on target service times (shared-storage noise).
    noise_sigma: float = 0.0
    #: Max concurrently progressing aio requests per client (None = unlimited).
    aio_slots: int | None = None
    #: Extra fixed overhead added to each aio request, seconds.
    aio_extra_overhead: float = 0.0
    #: Relative throughput of the aio path vs the synchronous path
    #: (1.0 = equal).  <1 models file systems whose ``aio_write`` is
    #: client-side-serialized/slow (the paper's Lustre note); the extra
    #: time is spent on the client, not on the storage targets.
    aio_throughput_factor: float = 1.0
    #: Fixed client-side cost of posting any I/O request, seconds.
    client_overhead: float = 5.0 * US

    def __post_init__(self) -> None:
        if self.num_targets < 1:
            raise ConfigurationError("num_targets must be >= 1")
        if self.target_bandwidth <= 0:
            raise ConfigurationError("target_bandwidth must be positive")
        if self.stripe_size < 1:
            raise ConfigurationError("stripe_size must be >= 1")
        if self.aio_slots is not None and self.aio_slots < 1:
            raise ConfigurationError("aio_slots must be >= 1 or None")
        if not (0 < self.aio_throughput_factor <= 1.0):
            raise ConfigurationError("aio_throughput_factor must be in (0, 1]")

    @property
    def aggregate_bandwidth(self) -> float:
        return self.num_targets * self.target_bandwidth

    def with_(self, **overrides) -> "FsSpec":
        return replace(self, **overrides)

    #: Fixed time constants scaled together with data sizes (see
    #: ClusterSpec.with_time_scale): a scaled run is the full-size run
    #: with a compressed time unit.
    TIME_FIELDS = ("target_latency", "aio_extra_overhead", "client_overhead")

    def with_time_scale(self, scale: int) -> "FsSpec":
        """Divide every fixed time constant by ``scale``."""
        if scale < 1:
            raise ConfigurationError(f"scale must be >= 1, got {scale}")
        return replace(self, **{f: getattr(self, f) / scale for f in self.TIME_FIELDS})


def beegfs_crill(scale: int = DEFAULT_SCALE) -> FsSpec:
    """crill's node-local-HDD BeeGFS: 16 targets of spinning disks."""
    return FsSpec(
        name="beegfs-crill",
        num_targets=16,
        target_bandwidth=110 * MB,  # ~2 HDDs per node, shared with compute
        target_latency=250 * US,
        stripe_size=scaled(STRIPE_SIZE_UNSCALED, scale),
        # Per-request service variance of spinning disks (seeks, shared
        # with the compute node's own I/O).  This is what double-buffered
        # asynchronous writes hide on crill; run-to-run variance stays low
        # because the min-of-series statistic absorbs it.
        noise_sigma=0.35,
    ).with_time_scale(scale)


def beegfs_ibex(scale: int = DEFAULT_SCALE) -> FsSpec:
    """Ibex's large dedicated BeeGFS: 16 fast storage targets."""
    return FsSpec(
        name="beegfs-ibex",
        num_targets=16,
        target_bandwidth=1_000 * MB,
        target_latency=120 * US,
        stripe_size=scaled(STRIPE_SIZE_UNSCALED, scale),
        noise_sigma=0.22,  # shared system
    ).with_time_scale(scale)


def lustre_like(scale: int = DEFAULT_SCALE) -> FsSpec:
    """A Lustre-flavoured system: good bandwidth, *poor* aio behaviour.

    Models the paper's closing observation: ``aio_write`` on Lustre showed
    "significant performance problems", so asynchronous writes serialize
    (one in flight per client) and pay a large per-op penalty — the
    Write-Overlap family loses its edge.
    """
    return FsSpec(
        name="lustre-like",
        num_targets=16,
        target_bandwidth=1_000 * MB,
        target_latency=150 * US,
        stripe_size=scaled(STRIPE_SIZE_UNSCALED, scale),
        noise_sigma=0.10,
        aio_slots=1,
        aio_extra_overhead=600 * US,
        aio_throughput_factor=0.45,
    ).with_time_scale(scale)


FS_PRESETS = {
    "beegfs-crill": beegfs_crill,
    "beegfs-ibex": beegfs_ibex,
    "lustre-like": lustre_like,
}


def fs_preset(name: str, scale: int = DEFAULT_SCALE) -> FsSpec:
    """Look up a file-system preset by name."""
    try:
        factory = FS_PRESETS[name]
    except KeyError:
        raise KeyError(f"unknown fs preset {name!r}; known: {sorted(FS_PRESETS)}") from None
    return factory(scale=scale)


# Degraded-mode companions to the presets above: named fault scenarios
# (flaky targets, refused aio submissions, jittery delivery) that a world
# layers on top of any FsSpec via ``World(..., faults=...)``.
from repro.faults.presets import FAULT_PRESETS, fault_preset  # noqa: E402  (re-export)

__all__ += ["FAULT_PRESETS", "fault_preset"]
