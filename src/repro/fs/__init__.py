"""Simulated striped parallel file system.

Models a BeeGFS/Lustre-style parallel file system: a file is striped in
fixed-size chunks round-robin across *storage targets*; each target is a
serialized server (latency + bandwidth + optional shared-system noise).
A write of ``(offset, size)`` is split at stripe boundaries into per-target
requests and completes when the slowest target request drains.

File contents are **byte-accurate**: every write stores real bytes, so the
test suite can assert that all collective-write algorithm variants produce
identical files.

The :mod:`repro.fs.aio` engine provides asynchronous writes progressed by
the simulated OS — independent of the issuing process — which is the
mechanism behind the paper's Write-Overlap family of algorithms.  Its
``aio_slots`` / ``aio_extra_overhead`` knobs model file systems where
``aio_write`` performs poorly (the paper's closing note on Lustre).
"""

from repro.fs.aio import AioEngine, AioRequest
from repro.fs.file import SimFile
from repro.fs.pfs import ParallelFileSystem
from repro.fs.presets import FsSpec, beegfs_crill, beegfs_ibex, fs_preset, lustre_like, FS_PRESETS
from repro.fs.striping import StripeLayout
from repro.fs.target import StorageTarget

__all__ = [
    "AioEngine",
    "AioRequest",
    "SimFile",
    "ParallelFileSystem",
    "FsSpec",
    "beegfs_crill",
    "beegfs_ibex",
    "lustre_like",
    "fs_preset",
    "FS_PRESETS",
    "StripeLayout",
    "StorageTarget",
]
