"""A storage target (OST / BeeGFS storage service): a serialized server."""

from __future__ import annotations

from typing import Callable

from repro.sim.engine import Engine, Timeout
from repro.sim.resources import ServerQueue

__all__ = ["StorageTarget"]


class StorageTarget:
    """One storage server of the parallel file system.

    Requests are served FIFO at the target's bandwidth with a fixed
    per-request latency (seek/RPC overhead).  ``noise`` models interference
    from other tenants of a shared storage system.
    """

    def __init__(
        self,
        engine: Engine,
        target_id: int,
        bandwidth: float,
        latency: float,
        noise: Callable[[], float] | None = None,
    ) -> None:
        self.target_id = target_id
        self.queue = ServerQueue(
            engine,
            bandwidth=bandwidth,
            latency=latency,
            noise=noise,
            name=f"ost{target_id}",
        )

    def submit(self, size: int) -> Timeout:
        """Enqueue an I/O of ``size`` bytes; returns the completion event."""
        return self.queue.submit(size)

    @property
    def bytes_served(self) -> int:
        return self.queue.bytes_served

    @property
    def requests_served(self) -> int:
        return self.queue.requests_served
