"""A storage target (OST / BeeGFS storage service): a serialized server."""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.errors import TargetDownError, TransientWriteError
from repro.sim.engine import Engine, Event
from repro.sim.resources import ServerQueue

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.injector import FaultInjector

__all__ = ["StorageTarget"]


class StorageTarget:
    """One storage server of the parallel file system.

    Requests are served FIFO at the target's bandwidth with a fixed
    per-request latency (seek/RPC overhead).  ``noise`` models interference
    from other tenants of a shared storage system; ``injector`` (when set)
    adds discrete faults on the write path — transient failures and
    straggler slowdowns — each decided by one seeded draw per request.
    """

    def __init__(
        self,
        engine: Engine,
        target_id: int,
        bandwidth: float,
        latency: float,
        noise: Callable[[], float] | None = None,
        injector: "FaultInjector | None" = None,
    ) -> None:
        self.engine = engine
        self.target_id = target_id
        self.injector = injector
        self.queue = ServerQueue(
            engine,
            bandwidth=bandwidth,
            latency=latency,
            noise=noise,
            name=f"ost{target_id}",
        )
        #: Injected write failures served by this target.
        self.writes_failed = 0
        #: Requests rejected because the target was down.
        self.writes_rejected = 0
        #: Permanently down (OST outage).  In-flight requests drain —
        #: events already queued complete — but new submissions must be
        #: routed elsewhere (the PFS rejects, then remaps).
        self.down = False

    def go_down(self) -> None:
        """Take the target down permanently (outage).  Idempotent."""
        self.down = True

    def reject_write(self) -> Event:
        """Model one request bounced off a down target.

        Detection costs the request latency (the client learns from the
        error reply of the failed RPC); the returned event *fails* with
        :class:`~repro.errors.TargetDownError` at that time.
        """
        self.writes_rejected += 1
        failed = self.engine.event()
        exc = TargetDownError(f"ost{self.target_id} is down")
        fire = self.engine.timeout(self.queue.latency)
        fire.callbacks.append(lambda _evt: failed.fail(exc))
        return failed

    def submit(self, size: int, kind: str = "write") -> Event:
        """Enqueue an I/O of ``size`` bytes; returns the completion event.

        ``kind`` distinguishes writes from reads: only writes are subject
        to injected faults (reads never consume fault draws, so a
        write-only workload's fault schedule is independent of any reads
        around it).  Straggler faults stretch this one piece's service
        time; whole-request failures are decided at the PFS level (see
        :meth:`fail_write`).
        """
        if self.injector is not None and kind == "write":
            factor = self.injector.storage_service_factor(self.target_id)
            if factor != 1.0:
                return self.queue.submit(size, factor=factor)
        return self.queue.submit(size)

    def fail_write(self) -> Event:
        """Model one failed write request attributed to this target.

        The error is detected after the RPC/seek, so the target is
        occupied for its request latency; the returned event *fails*
        with :class:`~repro.errors.TransientWriteError` at that time.
        """
        self.writes_failed += 1
        start = self.queue.busy_until()
        self.queue.occupy(start, self.queue.latency)
        failed = self.engine.event()
        exc = TransientWriteError(
            f"injected transient write failure on ost{self.target_id}"
        )
        fire = self.engine.timeout(start + self.queue.latency - self.engine.now)
        fire.callbacks.append(lambda _evt: failed.fail(exc))
        return failed

    @property
    def bytes_served(self) -> int:
        return self.queue.bytes_served

    @property
    def requests_served(self) -> int:
        return self.queue.requests_served
