"""The parallel file system: striping + storage targets + file store."""

from __future__ import annotations

import numpy as np

from repro.errors import CorruptDataError, FileSystemError
from repro.integrity.checksum import extent_checksum
from repro.sim.engine import Engine, Event
from repro.sim.primitives import all_of, defuse
from repro.sim.rng import RngStreams
from repro.sim.trace import Tracer
from repro.fs.file import SimFile
from repro.fs.presets import FsSpec
from repro.fs.striping import StripeLayout
from repro.fs.target import StorageTarget

__all__ = ["ParallelFileSystem"]


class ParallelFileSystem:
    """A striped parallel file system bound to a simulation engine.

    Writes are split at stripe boundaries and queued on the owning
    targets; a write completes when its slowest piece completes.  The
    written bytes are copied into the file **at completion time**, which
    deliberately mirrors the ``aio_write`` contract: if an algorithm reuses
    a buffer before waiting for the write, the file receives the corrupted
    contents — exactly the bug the double-buffering algorithms must avoid,
    and one our correctness tests would catch.
    """

    def __init__(
        self,
        engine: Engine,
        spec: FsSpec,
        rng: RngStreams | None = None,
        injector=None,
        tracer: Tracer | None = None,
        down_targets: frozenset[int] = frozenset(),
    ) -> None:
        self.engine = engine
        self.spec = spec
        self.injector = injector
        self.tracer = tracer if tracer is not None else Tracer()
        self.layout = StripeLayout(stripe_size=spec.stripe_size, num_targets=spec.num_targets)
        rng = rng or RngStreams(0)
        self.targets = [
            StorageTarget(
                engine,
                target_id=i,
                bandwidth=spec.target_bandwidth,
                latency=spec.target_latency,
                noise=rng.lognormal_noise(f"fs.{spec.name}.t{i}", spec.noise_sigma),
                injector=injector,
            )
            for i in range(spec.num_targets)
        ]
        #: Outages this client has *detected* (learned from a rejected
        #: request, or carried in from a previous recovery attempt via
        #: ``down_targets``).  Writes remap these targets' stripes onto
        #: survivors; a target that is down but not yet known here still
        #: rejects the first request that touches it.
        self.known_down: set[int] = set(down_targets)
        for t in down_targets:
            self.targets[t].go_down()
        #: The world's integrity layer, attached by
        #: :meth:`repro.integrity.layer.IntegrityLayer.ensure`; None keeps
        #: the write path byte-identical to a world without the subsystem.
        self.integrity = None
        self._files: dict[str, SimFile] = {}
        #: Total bytes written through this file system (all files).
        self.bytes_written = 0

    # -- namespace --------------------------------------------------------
    def open(self, path: str) -> SimFile:
        """Open (creating if needed) the file at ``path``."""
        f = self._files.get(path)
        if f is None:
            f = SimFile(path)
            self._files[path] = f
        return f

    def exists(self, path: str) -> bool:
        return path in self._files

    def delete(self, path: str) -> None:
        if path not in self._files:
            raise FileSystemError(f"no such file: {path}")
        del self._files[path]

    def files(self) -> list[str]:
        return sorted(self._files)

    def adopt_files(self, files: dict[str, SimFile]) -> None:
        """Install a carried-over file store (durable state across worlds).

        The recovery manager hands each attempt's world the previous
        attempt's files: bytes that reached the storage targets survive a
        client crash, exactly like a real PFS.
        """
        self._files = files

    # -- I/O ---------------------------------------------------------------
    def write(
        self,
        file: SimFile,
        offset: int,
        data: np.ndarray | None,
        size: int | None = None,
        checksum: int | None = None,
    ) -> Event:
        """Submit a write; returns the completion event.

        ``data`` must be a contiguous ``uint8`` view of the caller's
        buffer.  The bytes are sampled at *completion* (see class docs), so
        callers must keep the buffer stable until the event fires.

        Pass ``data=None`` with an explicit ``size`` for *size-only* mode:
        the timing (striping, queueing, contention) is identical but no
        bytes are stored — used by large benchmark sweeps where moving
        real payloads would only exercise the host's memory bus.

        ``checksum`` is the extent's producer-side CRC-32.  When the world
        runs an integrity layer, a carried checksum is recorded as the
        extent's stored-CRC metadata at commit time — the commit already
        knows whether it landed the bytes clean (record the carried CRC,
        no byte pass) or mangled them (torn write, storage bit-flip:
        recompute from what actually landed).  With read-back enabled the
        write also *verifies*: the stored CRC is compared against the
        carried one before the completion event fires; a mismatch fails
        the event with :class:`CorruptDataError` — or, in repair mode,
        rewrites the extent from the still-stable caller buffer with
        bounded attempts.  Without a layer (or checksum) the path below is
        byte-identical to the pre-integrity write.
        """
        integrity = self.integrity
        if (
            integrity is None
            or not integrity.enabled
            or checksum is None
            or data is None
            or data.size == 0
        ):
            return self._write_plain(file, offset, data, size=size)
        if not integrity.spec.readback:
            # Record stored-CRC metadata but defer verification to the
            # scrub pass (corruption then surfaces only at scrub time).
            return self._write_plain(file, offset, data, carried_crc=int(checksum))
        done = self.engine.event()
        self.engine.process(
            self._commit_verify_driver(file, int(offset), data, int(checksum), done),
            name="pfs.readback",
        )
        return done

    def _commit_verify_driver(self, file: SimFile, offset: int, data: np.ndarray,
                              checksum: int, done: Event):
        """write → compare stored-CRC metadata → (repair-mode) rewrite.

        Replaces the old write → simulated-read-back → compare loop: the
        commit hook records the CRC of what actually landed, so verifying
        a write means comparing two 32-bit values instead of streaming
        the extent back off the storage targets.  Detection coverage is
        unchanged (every torn write and commit-time bit-flip yields a
        mismatching stored CRC); the per-write read traffic is gone.
        """
        integrity = self.integrity
        span = None
        if self.tracer.active:
            span = self.tracer.begin(
                self.engine.now, "readback", "integrity", flow="async",
                bytes=int(data.size),
            )
        attempt = 0
        try:
            while True:
                yield self._write_plain(file, offset, data, carried_crc=checksum)
                if file.stored_crc(offset, int(data.size)) == checksum:
                    if attempt:
                        integrity.note(
                            "repaired", stage="storage", offset=offset, attempts=attempt
                        )
                    done.succeed(self.engine.now)
                    return
                integrity.note(
                    "detected", stage="storage", offset=offset, attempt=attempt
                )
                if not (integrity.repairs and attempt < integrity.spec.max_repair_attempts):
                    # Defused: the failure belongs to the waiter (retry
                    # layer / drain process), which may attach next tick.
                    defuse(
                        done.fail(
                            CorruptDataError(
                                f"stored extent at offset {offset} ({data.size} "
                                "bytes) failed read-back verification"
                            )
                        )
                    )
                    return
                integrity.note("rewrite", stage="storage", offset=offset)
                attempt += 1
        except FileSystemError as exc:
            # Transient storage fault mid-verify: surface it unchanged so
            # the caller's existing retry machinery handles it.
            defuse(done.fail(exc))
        finally:
            self.tracer.end(span, self.engine.now)

    def _write_plain(
        self,
        file: SimFile,
        offset: int,
        data: np.ndarray | None,
        size: int | None = None,
        carried_crc: int | None = None,
    ) -> Event:
        """The raw striped write (commit-time corruption draws included)."""
        if data is None:
            if size is None:
                raise FileSystemError("size is required when data is None")
            size = int(size)
        else:
            if data.dtype != np.uint8:
                raise FileSystemError(f"write data must be uint8, got {data.dtype}")
            if size is not None and int(size) != data.size:
                raise FileSystemError(f"size={size} does not match data of {data.size} bytes")
            size = int(data.size)
        self.bytes_written += size
        if size == 0:
            done = self.engine.event()
            done.succeed(self.engine.now)
            return done
        # One coalesced request per storage target: PFS clients stream all
        # stripes of a write to a target in a single RPC, so the per-request
        # latency is paid once per (write, target) pair, not per stripe.
        # Known-down targets' stripes are remapped onto survivors
        # (degraded striping); an *undetected* outage rejects the request.
        per_target = self.layout.bytes_per_target(
            offset, size, down=frozenset(self.known_down)
        )
        span = None
        if self.tracer.active:
            span = self.tracer.begin(
                self.engine.now, "pfs.write", "io.fs", flow="async",
                bytes=size, targets=len(per_target),
            )
        undetected = sorted(
            t for t in per_target if self.targets[t].down and t not in self.known_down
        )
        if undetected:
            victim = undetected[0]
            rejected = self.targets[victim].reject_write()

            def learn(_evt, _t=victim):
                if _t not in self.known_down:
                    self.known_down.add(_t)
                    self.tracer.emit(
                        self.engine.now, "recovery.target_down", target=_t
                    )

            rejected.callbacks.insert(0, learn)
            if span is not None:
                rejected.callbacks.append(
                    lambda evt, _s=span: self.tracer.end(_s, evt.engine.now)
                )
            return rejected
        if self.injector is not None:
            victim = self.injector.storage_write_victim(sorted(per_target))
            if victim is not None:
                failed = self.targets[victim].fail_write()
                if span is not None:
                    failed.callbacks.append(
                        lambda evt, _s=span: self.tracer.end(_s, evt.engine.now)
                    )
                return failed
        piece_events = [self.targets[t].submit(n) for t, n in sorted(per_target.items())]
        done = all_of(self.engine, piece_events)
        if span is not None:
            done.callbacks.append(lambda evt, _s=span: self.tracer.end(_s, evt.engine.now))
        # Commit only on success: a write that failed (injected target
        # fault) must not land bytes — the caller retries the whole
        # request, which is idempotent.  Silent storage faults strike at
        # commit: a torn-write draw keeps only a prefix of the request,
        # and a storage draw flips one bit of the committed bytes.  Both
        # draws fire in size-only mode too (schedule parity); the flip
        # needs stored bytes.
        injector = self.injector
        integrity = self.integrity

        def commit(evt: Event, size=size) -> None:
            if not evt.ok:
                return
            keep = size
            if injector is not None:
                torn = injector.torn_write(size)
                if torn is not None:
                    keep = torn
            if data is not None:
                file.write(offset, data if keep == size else data[:keep])
            else:
                file.note_size(offset + keep)
            flipped = False
            if injector is not None:
                pos = injector.storage_corruption(size)
                if pos is not None and data is not None and pos < keep:
                    stored = file.read(offset + pos, 1)
                    file.write(offset + pos, stored ^ np.uint8(1 << (pos & 7)))
                    flipped = True
            if carried_crc is not None and data is not None:
                # Stored-CRC metadata: the clean case reuses the carried
                # checksum (no byte pass); only a mangling commit (torn
                # prefix, bit-flip) checksums what actually landed.
                if keep == size and not flipped:
                    file.note_stored_crc(offset, size, carried_crc)
                    if integrity is not None:
                        integrity.checksum_reused += 1
                else:
                    file.note_stored_crc(
                        offset, size, extent_checksum(file.read(offset, size))
                    )
                    if integrity is not None:
                        integrity.checksum_computed += 1

        done.callbacks.insert(0, commit)
        return done

    def read(self, file: SimFile, offset: int, size: int) -> tuple[Event, np.ndarray]:
        """Submit a read; returns ``(completion_event, out_buffer)``.

        The returned buffer is filled immediately (contents cannot change
        mid-flight in our write-once workloads); the event models timing.
        """
        per_target = self.layout.bytes_per_target(
            offset, size, down=frozenset(self.known_down)
        )
        span = None
        if self.tracer.active:
            span = self.tracer.begin(
                self.engine.now, "pfs.read", "io.fs", flow="async",
                bytes=size, targets=len(per_target),
            )
        piece_events = [
            self.targets[t].submit(n, kind="read") for t, n in sorted(per_target.items())
        ]
        done = all_of(self.engine, piece_events)
        if span is not None:
            done.callbacks.append(lambda evt, _s=span: self.tracer.end(_s, evt.engine.now))
        return done, file.read(offset, size)

    # -- accounting ---------------------------------------------------------
    def per_target_bytes(self) -> list[int]:
        return [t.bytes_served for t in self.targets]
