"""Named, seeded random-number streams.

Every source of randomness in a simulation draws from its own named stream
derived from a single master seed, so that (a) runs are bit-for-bit
reproducible, and (b) adding a new consumer of randomness does not perturb
existing streams (no shared global sequence).
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["RngStreams"]


def _stable_key(name: str) -> int:
    """A deterministic 32-bit key for a stream name (stable across runs)."""
    return zlib.crc32(name.encode("utf-8"))


class RngStreams:
    """Factory of independent :class:`numpy.random.Generator` streams.

    >>> streams = RngStreams(seed=42)
    >>> a = streams.stream("target.0")
    >>> b = streams.stream("target.1")

    Requesting the same name twice returns the *same* generator object, so
    a stream's consumption is cumulative within a run.
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        gen = self._streams.get(name)
        if gen is None:
            seq = np.random.SeedSequence(entropy=self.seed, spawn_key=(_stable_key(name),))
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def lognormal_noise(self, name: str, sigma: float, floor: float = 0.25):
        """Return a callable producing multiplicative log-normal noise factors.

        The factors have median 1.0 and spread ``sigma``; they are clipped
        below at ``floor`` so service times never collapse to ~zero.  With
        ``sigma == 0`` the callable always returns 1.0 (a dedicated,
        noise-free system such as the paper's *crill* runs).
        """
        if sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {sigma}")
        if sigma == 0.0:
            return lambda: 1.0
        gen = self.stream(name)

        def draw() -> float:
            return max(floor, float(gen.lognormal(mean=0.0, sigma=sigma)))

        return draw
