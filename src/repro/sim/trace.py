"""Lightweight event tracing and counters.

Tracing is off by default (zero overhead beyond one branch); when enabled
it records ``(time, category, detail)`` tuples that tests and the analysis
layer can inspect.  Counters are always on — they are plain dict bumps and
are used for cheap assertions (e.g. "how many rendezvous handshakes
happened?").
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry."""

    time: float
    category: str
    detail: dict[str, Any]


@dataclass
class Tracer:
    """Collects counters and (optionally) a full trace of a simulation."""

    enabled: bool = False
    records: list[TraceRecord] = field(default_factory=list)
    counters: Counter = field(default_factory=Counter)

    def emit(self, time: float, category: str, **detail: Any) -> None:
        """Bump the category counter; store a record if tracing is enabled."""
        self.counters[category] += 1
        if self.enabled:
            self.records.append(TraceRecord(time, category, detail))

    def count(self, category: str) -> int:
        """Number of times ``category`` was emitted."""
        return self.counters.get(category, 0)

    def of_category(self, category: str) -> list[TraceRecord]:
        """All stored records of a category (requires ``enabled=True``)."""
        return [r for r in self.records if r.category == category]

    def clear(self) -> None:
        """Drop all records and counters."""
        self.records.clear()
        self.counters.clear()
