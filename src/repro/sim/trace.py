"""Lightweight event tracing and counters.

Tracing is off by default (zero overhead beyond one branch); when enabled
it records ``(time, category, detail)`` tuples that tests and the analysis
layer can inspect.  Counters are always on — they are plain dict bumps and
are used for cheap assertions (e.g. "how many rendezvous handshakes
happened?").
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

__all__ = ["TraceRecord", "Tracer"]


def _hashable(value: Any) -> Any:
    """Coerce one detail value to a hashable plain-Python equivalent."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return tuple(value.tolist())
    if isinstance(value, (list, tuple)):
        return tuple(_hashable(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(_hashable(v) for v in value))
    if isinstance(value, Mapping):
        return tuple(sorted((k, _hashable(v)) for k, v in value.items()))
    return value


class TraceRecord:
    """One trace entry: a hashable value object.

    ``detail`` is a plain dict whose values have been coerced to hashable
    Python scalars/tuples by :meth:`Tracer.emit`, so records themselves
    are hashable and can live in sets or be counted — equality and hash
    are order-insensitive over the detail items.
    """

    __slots__ = ("time", "category", "detail")

    def __init__(self, time: float, category: str, detail: dict[str, Any]) -> None:
        self.time = time
        self.category = category
        self.detail = detail

    def _key(self) -> tuple:
        return (self.time, self.category, tuple(sorted(self.detail.items())))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceRecord):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceRecord(time={self.time!r}, category={self.category!r}, detail={self.detail!r})"


@dataclass
class Tracer:
    """Collects counters and (optionally) a full trace of a simulation.

    Counters contract (always on): every :meth:`emit` bumps
    ``counters[category]`` by exactly one, whether or not tracing is
    ``enabled`` — so tests and benchmarks may assert on counts without
    paying for record storage.  Records are only appended when
    ``enabled`` is True; their detail values are coerced to hashable
    plain-Python types (numpy scalars unwrapped, sequences tupled) so
    records support set/dict membership and exact comparison across
    runs.

    Memory bound: ``max_records`` (default ``None`` = unbounded) turns
    record storage into a ring buffer keeping only the newest
    ``max_records`` entries — counters stay exact either way, so long
    auto-tune sweeps can keep tracing enabled without growing without
    bound.  With a bound set, :attr:`records` is a ``collections.deque``
    (same iteration/indexing API the list offers).
    """

    enabled: bool = False
    records: list[TraceRecord] = field(default_factory=list)
    counters: Counter = field(default_factory=Counter)
    #: Ring-buffer capacity for stored records (None = unbounded).
    max_records: int | None = None

    #: Lazy-span guard: False on the base tracer, whose :meth:`begin` /
    #: :meth:`end` are no-ops.  Hot-path call sites check this one
    #: attribute and skip building the span's kwargs entirely when no
    #: real recorder is attached (`span = t.begin(...) if t.active else
    #: None`), which is the common benchmarking configuration.
    #: :class:`repro.obs.span.SpanRecorder` sets it True.
    active: bool = False

    def __post_init__(self) -> None:
        if self.max_records is not None:
            if self.max_records < 1:
                raise ValueError(f"max_records must be >= 1 or None, got {self.max_records}")
            self.records = deque(self.records, maxlen=self.max_records)

    def emit(self, time: float, category: str, **detail: Any) -> None:
        """Bump the category counter; store a record if tracing is enabled."""
        self.counters[category] += 1
        if self.enabled:
            self.records.append(
                TraceRecord(time, category, {k: _hashable(v) for k, v in detail.items()})
            )

    # -- span hooks (no-ops; see repro.obs.span.SpanRecorder) ------------
    def begin(
        self,
        time: float,
        name: str,
        category: str,
        rank: int = -1,
        cycle: int = -1,
        flow: str = "sync",
        **attrs: Any,
    ):
        """Open a span.  The base tracer records no spans; returns None.

        :class:`repro.obs.span.SpanRecorder` overrides this (and
        :meth:`end`) with real span storage, so instrumented code can
        call the pair unconditionally on any tracer.
        """
        return None

    def end(self, span, time: float):
        """Close a span opened by :meth:`begin` (no-op on the base tracer)."""
        return None

    def count(self, category: str) -> int:
        """Number of times ``category`` was emitted (always available)."""
        return self.counters.get(category, 0)

    def of_category(self, category: str) -> list[TraceRecord]:
        """All stored records of a category (requires ``enabled=True``)."""
        return [r for r in self.records if r.category == category]

    def clear(self) -> None:
        """Drop all records and counters."""
        self.records.clear()
        self.counters.clear()
