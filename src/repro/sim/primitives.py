"""Composite wait conditions: wait for *all* or *any* of a set of events.

These mirror MPI's ``Waitall`` / ``Waitany`` shapes and are used by the
overlap algorithms (e.g. Algorithm 3's ``wait_all(p1, p2)``).
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.sim.engine import Engine, Event

__all__ = ["AllOf", "AnyOf", "all_of", "any_of", "defuse"]


class _Condition(Event):
    """Base for composite events over a fixed set of child events."""

    __slots__ = ("_children", "_pending_count")

    def __init__(self, engine: Engine, children: Sequence[Event]) -> None:
        super().__init__(engine)
        self._children = list(children)
        for child in self._children:
            if child.engine is not engine:
                raise ValueError("all events of a condition must share one engine")
        # Count-down of children not yet accounted for: every
        # ``_on_child`` call (synchronous below, or via callback later)
        # accounts for exactly one child, so :class:`AllOf` can succeed
        # on reaching zero without rescanning the whole child list.
        self._pending_count = len(self._children)
        if not self._children:
            self.succeed(self._collect())
            return
        for child in self._children:
            if child.processed:
                self._on_child(child)
            else:
                child.callbacks.append(self._on_child)
            if self.triggered:
                break

    def _collect(self) -> list[Any]:
        return [c.value for c in self._children if c.triggered and c.ok]

    def _on_child(self, child: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Succeeds once every child event has succeeded.

    The value is the list of child values, in the order the children were
    given.  Fails as soon as any child fails (with that child's exception).
    """

    __slots__ = ()

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            if not child.ok:
                child.defused = True
            return
        if not child.ok:
            child.defused = True
            self.fail(child.value)
            return
        self._pending_count -= 1
        if self._pending_count == 0:
            self.succeed([c.value for c in self._children])


class AnyOf(_Condition):
    """Succeeds as soon as any child event succeeds.

    The value is a ``(index, value)`` pair identifying the first completed
    child.  Fails if a child fails before any succeeds.
    """

    __slots__ = ()

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            if not child.ok:
                child.defused = True
            return
        if not child.ok:
            child.defused = True
            self.fail(child.value)
            return
        self.succeed((self._children.index(child), child.value))


def all_of(engine: Engine, events: Iterable[Event]) -> AllOf:
    """Convenience constructor for :class:`AllOf`."""
    return AllOf(engine, list(events))


def any_of(engine: Engine, events: Iterable[Event]) -> AnyOf:
    """Convenience constructor for :class:`AnyOf`."""
    return AnyOf(engine, list(events))


def defuse(event: Event) -> None:
    """Declare that nobody will handle ``event``'s potential failure.

    Used when a waiter abandons an in-flight event (e.g. a timed-out
    write that is being reissued): without this, a later failure of the
    abandoned event would abort the whole simulation run.
    """
    if event.triggered:
        if not event.ok:
            event.defused = True
        return

    def _mark(evt: Event) -> None:
        if not evt.ok:
            evt.defused = True

    event.callbacks.append(_mark)
