"""Discrete-event simulation kernel.

A deliberately small, deterministic event-driven kernel in the style of
SimPy: simulated activities are Python generators that ``yield`` events;
the :class:`~repro.sim.engine.Engine` advances simulated time by draining a
binary-heap event queue.  Determinism is guaranteed by a monotonically
increasing sequence number used as a tie-breaker for simultaneous events,
and by sourcing all randomness from named, seeded RNG streams
(:mod:`repro.sim.rng`).
"""

from repro.sim.engine import Engine, Event, Process, Timeout
from repro.sim.primitives import AllOf, AnyOf, all_of, any_of
from repro.sim.resources import FifoResource, ServerQueue, Store
from repro.sim.rng import RngStreams
from repro.sim.trace import Tracer

__all__ = [
    "Engine",
    "Event",
    "Process",
    "Timeout",
    "AllOf",
    "AnyOf",
    "all_of",
    "any_of",
    "FifoResource",
    "ServerQueue",
    "Store",
    "RngStreams",
    "Tracer",
]
