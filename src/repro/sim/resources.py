"""Shared-resource primitives built on the event kernel.

Three shapes cover everything the upper layers need:

:class:`FifoResource`
    A counted semaphore with FIFO granting — models a pool of slots (e.g.
    aio threads, CPU cores).

:class:`Store`
    An unbounded FIFO of items with blocking ``get`` — models mailboxes and
    request queues serviced by a daemon process.

:class:`ServerQueue`
    A serialized server with latency + bandwidth service times — models a
    NIC injection port or a storage target.  Implemented without a server
    process: each submission reserves the next free slot of the server
    timeline (``max(now, next_free) + service_time``), which is O(1) per
    request and exactly equivalent to an M/G/1-style FIFO queue.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable

from repro.sim.engine import Engine, Event, Timeout

__all__ = ["FifoResource", "Store", "ServerQueue"]


class FifoResource:
    """A counted resource granting requests in FIFO order."""

    def __init__(self, engine: Engine, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self._in_use = 0
        self._waiters: deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently granted slots."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiters)

    def request(self) -> Event:
        """Return an event that succeeds once a slot is granted."""
        grant = self.engine.event()
        if self._in_use < self.capacity:
            self._in_use += 1
            grant.succeed(None)
        else:
            self._waiters.append(grant)
        return grant

    def release(self) -> None:
        """Release a previously granted slot."""
        if self._in_use <= 0:
            raise RuntimeError("release() without a matching request()")
        if self._waiters:
            # Hand the slot straight to the next waiter.
            self._waiters.popleft().succeed(None)
        else:
            self._in_use -= 1


class Store:
    """An unbounded FIFO item store with blocking ``get``."""

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes the oldest waiting getter, if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event that succeeds with the oldest available item."""
        fetch = self.engine.event()
        if self._items:
            fetch.succeed(self._items.popleft())
        else:
            self._getters.append(fetch)
        return fetch

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get: ``(True, item)`` if available, else ``(False, None)``."""
        if self._items:
            return True, self._items.popleft()
        return False, None


class ServerQueue:
    """A FIFO server with ``latency + size / bandwidth`` service times.

    Used for NIC injection ports and storage targets.  ``noise`` is an
    optional callable returning a multiplicative service-time factor
    (>= some positive floor), used to model shared-system interference;
    it is drawn once per request so repeated runs under one seed are
    deterministic.
    """

    def __init__(
        self,
        engine: Engine,
        bandwidth: float,
        latency: float = 0.0,
        noise: Callable[[], float] | None = None,
        name: str = "",
    ) -> None:
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        self.engine = engine
        self.bandwidth = float(bandwidth)
        self.latency = float(latency)
        self.noise = noise
        self.name = name
        self._next_free = 0.0
        #: Total bytes submitted, for utilisation accounting.
        self.bytes_served = 0
        self.requests_served = 0

    def busy_until(self) -> float:
        """Simulated time at which the server's current backlog drains."""
        return max(self._next_free, self.engine.now)

    def earliest_start(self) -> float:
        """Alias of :meth:`busy_until`, named for joint reservations."""
        return self.busy_until()

    def occupy(self, start: float, duration: float, size: int = 0) -> None:
        """Reserve the server for ``[start, start + duration)``.

        Used for *joint* reservations spanning several servers (e.g. a
        network transfer holding both the sender's tx port and the
        receiver's rx port): the caller computes a common start as the max
        of the servers' :meth:`earliest_start` values and occupies each.
        ``start`` must not precede this server's own earliest start.
        """
        if duration < 0:
            raise ValueError(f"negative duration: {duration}")
        if start < self.busy_until() - 1e-12:
            raise ValueError("occupy() start precedes the server's backlog drain")
        self._next_free = start + duration
        self.bytes_served += size
        self.requests_served += 1

    def service_time(self, size: int) -> float:
        """Unperturbed service time for a request of ``size`` bytes."""
        return self.latency + size / self.bandwidth

    def submit(self, size: int, factor: float = 1.0) -> Timeout:
        """Enqueue a request of ``size`` bytes; returns its completion event.

        The completion event's value is the completion time.  ``factor``
        scales this one request's service time on top of the queue's own
        noise (used for injected straggler faults).
        """
        if size < 0:
            raise ValueError(f"negative request size: {size}")
        if factor <= 0:
            raise ValueError(f"service factor must be positive, got {factor}")
        service = self.service_time(size) * factor
        if self.noise is not None:
            noise_factor = self.noise()
            if noise_factor <= 0:
                raise ValueError(f"noise factor must be positive, got {noise_factor}")
            service *= noise_factor
        start = max(self._next_free, self.engine.now)
        finish = start + service
        self._next_free = finish
        self.bytes_served += size
        self.requests_served += 1
        return self.engine.timeout(finish - self.engine.now, value=finish)
