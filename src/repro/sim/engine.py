"""The discrete-event engine: events, processes and the simulation clock.

The model follows the classic event-scheduling world view:

* An :class:`Event` is a one-shot occurrence.  It is *triggered* when its
  outcome (success value or failure exception) is decided, and *processed*
  when the engine pops it off the queue and runs its callbacks.
* A :class:`Process` wraps a generator.  Each ``yield`` hands the engine an
  event to wait for; the generator is resumed with the event's value (or
  the event's exception is thrown into it).  A process is itself an event
  that triggers when the generator terminates, so processes can wait for
  each other.
* The :class:`Engine` owns the clock and the event heap.  Two events
  scheduled for the same instant are processed in the order they were
  scheduled (FIFO), which makes runs bit-for-bit reproducible.

The kernel knows nothing about MPI, networks or file systems; those layers
are built on top of it.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable

from repro.errors import DeadlockError, SimulationError

__all__ = ["Engine", "Event", "Process", "Timeout"]

# Sentinel for "event outcome not yet decided".
_PENDING = object()


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*.  Calling :meth:`succeed` or :meth:`fail`
    *triggers* it and schedules it for processing at the current simulated
    time; when the engine processes it, every callback in
    :attr:`callbacks` is invoked with the event as its only argument.

    Waiting is expressed by appending a callback (processes do this
    automatically when they ``yield`` an event).
    """

    # ``triggered``/``processed``/``ok`` are plain attributes, not
    # properties: they are read hundreds of thousands of times per run
    # (every composite wait and every process resumption checks them),
    # and descriptor dispatch was a measurable share of the event loop.
    __slots__ = ("engine", "callbacks", "triggered", "processed", "ok",
                 "_outcome", "defused")

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self.callbacks: list[Callable[["Event"], None]] = []
        #: True once the outcome (value or exception) has been decided.
        self.triggered: bool = False
        #: True once callbacks have run.
        self.processed: bool = False
        #: True if the event succeeded.  Only meaningful once triggered.
        self.ok: bool = True
        self._outcome: Any = _PENDING
        #: A failed event whose exception was delivered to a waiter is
        #: "defused"; an un-defused failure surfaces from :meth:`Engine.run`.
        self.defused: bool = False

    @property
    def value(self) -> Any:
        """The success value or failure exception of a triggered event."""
        if self._outcome is _PENDING:
            raise SimulationError("event value read before it was triggered")
        return self._outcome

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError("event triggered twice")
        self._outcome = value
        self.triggered = True
        self.ok = True
        self.engine._push(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if self.triggered:
            raise SimulationError("event triggered twice")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._outcome = exception
        self.triggered = True
        self.ok = False
        self.engine._push(self)
        return self

    def _process(self) -> None:
        """Run callbacks.  Called exactly once by the engine."""
        self.processed = True
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)
        if not self.ok and not self.defused:
            # Nobody is handling this failure: abort the simulation run.
            raise self._outcome

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending" if not self.triggered else ("ok" if self.ok else "failed")
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that succeeds ``delay`` seconds after creation.

    The outcome is decided up front, but the event only *triggers* when
    its fire time arrives — ``triggered`` is False until then, so waiters
    (including :class:`~repro.sim.primitives.AllOf`) see it as pending.
    """

    __slots__ = ("delay", "_pending_value")

    def __init__(self, engine: "Engine", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(engine)
        self.delay = delay
        self._pending_value = value
        engine._push(self, delay=delay)

    def _process(self) -> None:
        self._outcome = self._pending_value
        self.triggered = True
        self.ok = True
        super()._process()

    def succeed(self, value: Any = None) -> "Event":  # pragma: no cover
        raise SimulationError("Timeout events trigger themselves")

    def fail(self, exception: BaseException) -> "Event":  # pragma: no cover
        raise SimulationError("Timeout events trigger themselves")


class Process(Event):
    """A simulated activity driven by a generator.

    The generator may ``yield`` any :class:`Event`; it is resumed with the
    event's value once the event is processed.  If the awaited event
    failed, its exception is thrown into the generator (which may catch
    it).  When the generator returns, the process event succeeds with the
    return value; an uncaught exception fails the process event.
    """

    __slots__ = ("_generator", "name", "_waiting_on")

    def __init__(
        self,
        engine: "Engine",
        generator: Generator[Event, Any, Any],
        name: str = "",
    ) -> None:
        if not hasattr(generator, "send"):
            raise TypeError(
                f"Process needs a generator, got {type(generator).__name__}; "
                "did you call a plain function instead of a generator function?"
            )
        super().__init__(engine)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Event | None = None
        engine._active_processes += 1
        # Bootstrap: first resumption at the current time.
        start = Event(engine)
        start.callbacks.append(self._resume)
        start.succeed(None)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not terminated."""
        return not self.triggered

    def interrupt(self, exception: BaseException) -> bool:
        """Kill the process by throwing ``exception`` into its generator.

        Used by the fault layer to deliver rank crashes: the generator is
        unwound (whatever it was waiting on is abandoned), the process
        event *fails* with ``exception``, and — unless something defuses
        it — the failure aborts the engine run at the current instant.
        Returns False (no-op) if the process already terminated.
        """
        if self.triggered:
            return False
        target = self._waiting_on
        if target is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
            self._waiting_on = None
        self.engine._active_processes -= 1
        try:
            self._generator.throw(exception)
        except BaseException:
            pass  # expected: the exception (or StopIteration) unwinding out
        else:
            # The generator caught the exception and yielded again; a
            # crashed process gets no say — close it.
            self._generator.close()
        self.fail(exception)
        return True

    def _resume(self, event: Event) -> None:
        if self.triggered:
            # Interrupted while a bridge/notification was in flight.
            return
        self._waiting_on = None
        engine = self.engine
        engine._current = self
        try:
            if event.ok:
                target = self._generator.send(event.value)
            else:
                event.defused = True
                target = self._generator.throw(event.value)
        except StopIteration as stop:
            engine._active_processes -= 1
            engine._current = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            engine._active_processes -= 1
            engine._current = None
            self.fail(exc)
            return
        engine._current = None
        if not isinstance(target, Event):
            error = SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must yield Events"
            )
            engine._active_processes -= 1
            self.fail(error)
            return
        self._waiting_on = target
        if target.processed:
            # The event already ran its callbacks; resume on a fresh tick so
            # ordering stays heap-mediated and deterministic.
            bridge = Event(engine)
            bridge.callbacks.append(self._resume)
            if target.ok:
                bridge.succeed(target.value)
            else:
                target.defused = True
                bridge.fail(target.value)
                bridge.defused = True  # re-armed via _resume's throw path
        else:
            target.callbacks.append(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name!r} {'alive' if self.is_alive else 'done'}>"


class Engine:
    """The simulation clock and event queue.

    Typical use::

        eng = Engine()

        def worker(eng):
            yield eng.timeout(1.5)
            return "done"

        proc = eng.process(worker(eng))
        eng.run()
        assert eng.now == 1.5 and proc.value == "done"
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq: int = 0
        self._active_processes: int = 0
        self._current: Process | None = None
        #: Events processed so far (monotone; cheap enough to keep always on).
        self.events_processed: int = 0
        #: High-water mark of the event heap — a proxy for how much
        #: concurrent in-flight work the modelled program generates.
        self.max_heap_len: int = 0

    # -- factory helpers --------------------------------------------------
    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that succeeds ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any], name: str = "") -> Process:
        """Start a new :class:`Process` running ``generator``."""
        return Process(self, generator, name=name)

    @property
    def active_process(self) -> Process | None:
        """The process currently being resumed, if any."""
        return self._current

    # -- scheduling --------------------------------------------------------
    def _push(self, event: Event, delay: float = 0.0) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, event))
        if len(self._heap) > self.max_heap_len:
            self.max_heap_len = len(self._heap)

    # -- execution ---------------------------------------------------------
    def step(self) -> None:
        """Process the single next event."""
        when, _, event = heapq.heappop(self._heap)
        if when < self.now:
            raise SimulationError("time went backwards")
        self.now = when
        self.events_processed += 1
        event._process()

    def run(self, until: float | None = None) -> None:
        """Drain the event queue, optionally stopping at time ``until``.

        Raises :class:`~repro.errors.DeadlockError` if the queue empties
        while processes are still alive (and no ``until`` bound was hit),
        because in a closed simulation that means the modelled program can
        never make progress again.
        """
        # Manually inlined step(): this loop IS the simulator's hot path,
        # so the heap, the pop and the event counter live in locals and
        # the count is folded back in one write (exception-safe via the
        # finally, preserving step()'s count-then-process semantics).
        heap = self._heap
        heappop = heapq.heappop
        count = 0
        try:
            while heap:
                if until is not None and heap[0][0] > until:
                    self.now = until
                    return
                when, _, event = heappop(heap)
                if when < self.now:
                    raise SimulationError("time went backwards")
                self.now = when
                count += 1
                event._process()
        finally:
            self.events_processed += count
        if until is not None:
            self.now = until
        if self._active_processes > 0:
            raise DeadlockError(
                f"event queue drained with {self._active_processes} process(es) "
                "still waiting — the simulated program is deadlocked"
            )

    def run_until_complete(
        self, processes: Iterable[Process], stop_when_done: bool = False
    ) -> list[Any]:
        """Run until every process in ``processes`` has terminated.

        Returns their values in order.  Any process failure propagates.

        ``stop_when_done=True`` stops stepping as soon as all of
        ``processes`` have been processed instead of draining the heap —
        needed when far-future fault timers are armed (a crash scheduled
        past the program's natural end must not advance the clock).
        """
        processes = list(processes)
        if stop_when_done:
            state = {"pending": 0}

            def _done(_evt: Event) -> None:
                state["pending"] -= 1

            for proc in processes:
                if not proc.processed:
                    state["pending"] += 1
                    proc.callbacks.append(_done)
            while self._heap and state["pending"] > 0:
                self.step()
        else:
            self.run()
        results = []
        for proc in processes:
            if not proc.triggered:
                raise DeadlockError(f"process {proc.name!r} never terminated")
            if not proc.ok:
                raise proc.value
            results.append(proc.value)
        return results
