"""Configuration of the node-local burst-buffer staging tier.

A :class:`StagingSpec` describes one tier the way :class:`~repro.fs.presets.FsSpec`
describes a parallel file system: static capacities, bandwidths and
latencies, plus the drain policy.  All sizes are *already scaled* (use
:meth:`StagingSpec.for_scale` to build a spec in the paper's physical
units); bandwidths stay physical, latencies compress with the scale —
the same convention every other spec in the repository follows.

The three drain policies:

``immediate``
    Drain each cycle's extents as soon as they land in the buffer: drain
    traffic overlaps the following cycles' shuffle and absorb phases.
``watermark``
    Start draining when occupancy crosses ``high_watermark * capacity``,
    stop once it falls to ``low_watermark * capacity`` — batched drains
    that keep the device half-empty without paying per-cycle drain RPCs.
``end_of_job``
    Keep everything buffered until the collective's final flush, then
    drain serially — the classic "stage out after the job" baseline.

Whatever the policy, a full buffer *stalls* absorbs (back-pressure) and
force-starts a drain so the job cannot deadlock against its own tier.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import DEFAULT_SCALE, scaled
from repro.errors import ConfigurationError
from repro.specbase import SpecBase
from repro.units import GB, GiB, US

__all__ = ["DRAIN_POLICIES", "StagingSpec", "nvme_staging"]

#: The drain policies the scheduler implements.
DRAIN_POLICIES = ("immediate", "watermark", "end_of_job")

#: Default per-node buffer capacity (unscaled): a small NVMe partition.
CAPACITY_UNSCALED: int = 4 * GiB


@dataclass(frozen=True)
class StagingSpec(SpecBase):
    """Static description of a node-local burst-buffer tier."""

    #: Master switch; a disabled spec behaves exactly like ``staging=None``.
    enabled: bool = True
    #: Per-node buffer capacity, bytes (already scaled).
    capacity: int = CAPACITY_UNSCALED // DEFAULT_SCALE
    #: Absorb (ingest) bandwidth of one node's device, bytes/s.
    absorb_bandwidth: float = 5 * GB
    #: Per-request absorb latency (submission + device), seconds.
    absorb_latency: float = 20 * US / DEFAULT_SCALE
    #: Shared drain bandwidth from one node's buffer to the PFS, bytes/s.
    drain_bandwidth: float = 1 * GB
    #: Per-request drain latency (RPC to the PFS client path), seconds.
    drain_latency: float = 100 * US / DEFAULT_SCALE
    #: Drain policy: ``immediate``, ``watermark`` or ``end_of_job``.
    policy: str = "immediate"
    #: Occupancy fraction that starts a watermark drain.
    high_watermark: float = 0.75
    #: Occupancy fraction at which a watermark (or forced) drain stops.
    low_watermark: float = 0.25
    #: Transient drain-write failures tolerated per extent before the
    #: failure propagates (the drain path hits the same injected faults
    #: and outages a foreground write would).
    max_drain_retries: int = 16

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1 byte, got {self.capacity}")
        if self.absorb_bandwidth <= 0 or self.drain_bandwidth <= 0:
            raise ConfigurationError("staging bandwidths must be positive")
        if self.absorb_latency < 0 or self.drain_latency < 0:
            raise ConfigurationError("staging latencies must be >= 0")
        if self.policy not in DRAIN_POLICIES:
            raise ConfigurationError(
                f"unknown drain policy {self.policy!r}; known: {list(DRAIN_POLICIES)}"
            )
        if not (0.0 < self.low_watermark < self.high_watermark <= 1.0):
            raise ConfigurationError(
                "watermarks must satisfy 0 < low < high <= 1, got "
                f"low={self.low_watermark}, high={self.high_watermark}"
            )
        if self.max_drain_retries < 0:
            raise ConfigurationError("max_drain_retries must be >= 0")

    @classmethod
    def for_scale(cls, scale: int = DEFAULT_SCALE, **overrides) -> "StagingSpec":
        """A spec in physical units scaled by ``scale``.

        Capacity shrinks with the data sizes, latencies compress with the
        time unit, bandwidths stay physical — exactly the convention of
        :meth:`~repro.fs.presets.FsSpec.with_time_scale`.
        """
        defaults = cls()
        overrides.setdefault("capacity", scaled(CAPACITY_UNSCALED, scale))
        overrides.setdefault("absorb_latency", 20 * US / scale)
        overrides.setdefault("drain_latency", 100 * US / scale)
        return cls(**overrides)

    def cache_key(self) -> dict:
        """Canonical plain-data form for stable hashing (tune caches).

        All fields are scalars, so :meth:`SpecBase.to_dict` is already
        the flat dict ``dataclasses.asdict`` used to produce — existing
        cache keys are unchanged.
        """
        return self.to_dict()


def nvme_staging(scale: int = DEFAULT_SCALE, **overrides) -> "StagingSpec":
    """The default tier: one NVMe-class device per node.

    Absorb is an order of magnitude faster than a spinning-disk PFS
    share, drain is a single shared link per node — the drain-bound
    regime where asynchronous drain pays off.
    """
    return StagingSpec.for_scale(scale, **overrides)
