"""The burst-buffer staging tier: per-node buffers + drain scheduling.

Three classes, one per responsibility:

:class:`BurstBuffer`
    One node's staging device: an absorb :class:`~repro.sim.resources.ServerQueue`
    (the NVMe ingest path), a shared drain-link queue (the node's pipe to
    the PFS), occupancy accounting with back-pressure, and counters.

:class:`DrainScheduler`
    One node's drain policy driver.  Absorbs land extents in the buffer;
    the scheduler decides *when* the drain link moves them to the
    :class:`~repro.fs.pfs.ParallelFileSystem` — immediately, on watermark
    crossings, or only at the end-of-job flush.  Drain traffic runs in
    background engine processes, so it overlaps subsequent cycles'
    shuffle and absorb phases exactly like the paper's asynchronous
    writes overlap communication.

:class:`StagingTier`
    The world-level facade: lazily creates one scheduler per node and
    aggregates their counters for the run's metrics registry.

Durability contract: an extent is *absorbed* when the staging device
holds its bytes (the write call returns) and *durable* only when its
drain write completed on the PFS.  The recovery integration hangs off
the per-extent ``on_drained`` callback — the cycle journal commits
there, never at absorb time, so a crash that loses undrained buffer
contents leaves those cycles uncommitted and the replay re-drives them.

The drain path goes through ``ParallelFileSystem.write``, so striping,
degraded remap and injected faults apply to drains exactly as they do to
foreground writes; transient failures and newly detected outages are
retried up to ``StagingSpec.max_drain_retries`` times per extent.

Scheduling is event-driven: a drain process exists only while there is
work it is allowed to do, and exits otherwise.  (A persistent daemon
blocked on a wake-up event would trip the engine's deadlock detector at
the end of the run.)
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.errors import ConfigurationError, CorruptDataError, FileSystemError
from repro.integrity.checksum import extent_checksum
from repro.sim.engine import Engine, Event
from repro.sim.resources import ServerQueue
from repro.staging.spec import StagingSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.fs.file import SimFile
    from repro.fs.pfs import ParallelFileSystem
    from repro.mpi.world import World

__all__ = ["BurstBuffer", "DrainScheduler", "StagingTier"]

#: Span-track encoding: staging spans carry ``rank = -(node + 2)`` so the
#: Chrome exporter can place each node's buffer on its own track without
#: colliding with the storage track's ``rank = -1``.
STAGING_RANK_BASE = -2


def staging_rank(node: int) -> int:
    """The pseudo-rank staging spans of ``node`` are recorded under."""
    return STAGING_RANK_BASE - node


class _StagedExtent:
    """One absorbed write waiting (or in flight) on the drain path."""

    __slots__ = (
        "file", "offset", "data", "nbytes", "rank", "cycle", "on_drained", "checksum",
    )

    def __init__(self, file, offset, data, nbytes, rank, cycle, on_drained, checksum):
        self.file = file
        self.offset = offset
        self.data = data
        self.nbytes = nbytes
        self.rank = rank
        self.cycle = cycle
        self.on_drained = on_drained
        #: Producer-side CRC-32 carried through the staging hop (None when
        #: the world runs without an integrity layer or in size-only mode).
        self.checksum = checksum


class BurstBuffer:
    """One node's staging device: queues, occupancy and counters."""

    def __init__(self, engine: Engine, spec: StagingSpec, node: int) -> None:
        self.engine = engine
        self.spec = spec
        self.node = node
        self.capacity = int(spec.capacity)
        self.absorb_queue = ServerQueue(
            engine, spec.absorb_bandwidth, spec.absorb_latency, name=f"bb{node}.absorb"
        )
        self.drain_link = ServerQueue(
            engine, spec.drain_bandwidth, spec.drain_latency, name=f"bb{node}.drain"
        )
        #: Bytes currently reserved (absorbing + buffered + draining).
        self.occupancy = 0
        self.occupancy_peak = 0
        #: Absorbed extents not yet picked up by the drain process.
        self.pending: deque[_StagedExtent] = deque()
        self.flushing = False
        # Counters (aggregated into ``staging.*`` run metrics).
        self.absorbed_bytes = 0
        self.drained_bytes = 0
        self.extents_absorbed = 0
        self.extents_drained = 0
        self.stalls = 0
        self.forced_drains = 0
        self.drain_retries = 0
        self._space_waiters: list[Event] = []
        self._flush_waiters: list[Event] = []

    @property
    def free_bytes(self) -> int:
        return self.capacity - self.occupancy

    def reserve(self, nbytes: int) -> None:
        self.occupancy += nbytes
        if self.occupancy > self.occupancy_peak:
            self.occupancy_peak = self.occupancy

    def release(self, nbytes: int) -> None:
        self.occupancy -= nbytes
        waiters, self._space_waiters = self._space_waiters, []
        for waiter in waiters:
            waiter.succeed(None)

    def wait_for_space(self) -> Event:
        waiter = self.engine.event()
        self._space_waiters.append(waiter)
        return waiter


class DrainScheduler:
    """One node's drain-policy driver over its :class:`BurstBuffer`."""

    def __init__(self, tier: "StagingTier", node: int) -> None:
        self.tier = tier
        self.node = node
        self.spec = tier.spec
        self.engine = tier.engine
        self.pfs = tier.pfs
        self.tracer = tier.tracer
        self.buffer = BurstBuffer(tier.engine, tier.spec, node)
        #: True while the policy wants the drain link busy.
        self._active = self.spec.policy == "immediate"
        #: True while a back-pressure stall forces a drain regardless of
        #: policy (cleared once occupancy falls to the low watermark).
        self._forced = False
        #: True while a drain process is running (at most one per node:
        #: the drain link is a single shared pipe).
        self._draining = False

    # ------------------------------------------------------------------
    # Absorb side (called from the aggregators' write path)
    # ------------------------------------------------------------------
    def absorb(
        self,
        file: "SimFile",
        offset: int,
        data: np.ndarray | None,
        nbytes: int,
        rank: int,
        cycle: int = -1,
        on_drained: Callable[[], None] | None = None,
        checksum: int | None = None,
    ) -> Event:
        """Stage one write; returns the absorb-completion event.

        The event succeeds (with the completion time as its value, like a
        PFS write) once the staging device holds the bytes; durability
        comes later, when the drain lands them on the PFS.  ``data`` is
        snapshotted at absorb completion, so callers may reuse their
        buffer as soon as the event fires — the same contract as a
        completed ``aio_write``.  A full buffer stalls the absorb
        (back-pressure) and force-starts a drain.
        """
        nbytes = int(nbytes)
        if nbytes > self.buffer.capacity:
            raise ConfigurationError(
                f"staged write of {nbytes} bytes exceeds the node buffer "
                f"capacity of {self.buffer.capacity} bytes"
            )
        done = self.engine.event()
        if nbytes == 0:
            done.succeed(self.engine.now)
            if on_drained is not None:
                on_drained()
            return done
        ext = _StagedExtent(file, offset, data, nbytes, rank, cycle, on_drained, checksum)
        self.engine.process(
            self._absorb_driver(ext, done), name=f"bb{self.node}.absorb"
        )
        return done

    def _absorb_driver(self, ext: _StagedExtent, done: Event):
        bb = self.buffer
        stalled = False
        while bb.free_bytes < ext.nbytes:
            if not stalled:
                stalled = True
                bb.stalls += 1
                self.tracer.emit(
                    self.engine.now, "staging.stall",
                    node=self.node, rank=ext.rank, bytes=ext.nbytes,
                )
            self._force_drain()
            yield bb.wait_for_space()
        bb.reserve(ext.nbytes)
        span = None
        if self.tracer.active:
            span = self.tracer.begin(
                self.engine.now, "absorb", "staging", rank=staging_rank(self.node),
                cycle=ext.cycle, flow="async", bytes=ext.nbytes, src_rank=ext.rank,
            )
        yield bb.absorb_queue.submit(ext.nbytes)
        self.tracer.end(span, self.engine.now)
        if ext.data is not None:
            # The device holds the bytes now; snapshot them so the caller
            # may reuse its buffer (the PFS samples at drain completion).
            ext.data = np.array(ext.data, dtype=np.uint8, copy=True)
        bb.absorbed_bytes += ext.nbytes
        bb.extents_absorbed += 1
        bb.pending.append(ext)
        done.succeed(self.engine.now)
        if self.spec.policy == "watermark" and (
            bb.occupancy >= self.spec.high_watermark * bb.capacity
        ):
            self._active = True
        if self._should_drain():
            self._ensure_drain_process()

    # ------------------------------------------------------------------
    # Drain side
    # ------------------------------------------------------------------
    def _should_drain(self) -> bool:
        return bool(self.buffer.pending) and (
            self._active or self._forced or self.buffer.flushing
        )

    def _force_drain(self) -> None:
        if not (self._active or self._forced or self.buffer.flushing):
            self.buffer.forced_drains += 1
        self._forced = True
        self._ensure_drain_process()

    def _ensure_drain_process(self) -> None:
        if self._draining or not self._should_drain():
            return
        self._draining = True
        self.engine.process(self._drain_driver(), name=f"bb{self.node}.drain")

    def _drain_driver(self):
        bb = self.buffer
        try:
            while self._should_drain():
                ext = bb.pending.popleft()
                yield from self._verify_staged(ext)
                span = None
                if self.tracer.active:
                    span = self.tracer.begin(
                        self.engine.now, "drain", "staging",
                        rank=staging_rank(self.node), cycle=ext.cycle, flow="async",
                        bytes=ext.nbytes, src_rank=ext.rank,
                    )
                yield bb.drain_link.submit(ext.nbytes)
                yield from self._write_durable(ext)
                self.tracer.end(span, self.engine.now)
                bb.drained_bytes += ext.nbytes
                bb.extents_drained += 1
                if ext.on_drained is not None:
                    ext.on_drained()
                bb.release(ext.nbytes)
                if bb.occupancy <= self.spec.low_watermark * bb.capacity:
                    self._forced = False
                    if self.spec.policy == "watermark" and not bb.flushing:
                        self._active = False
        finally:
            self._draining = False
        self._maybe_finish_flush()

    def _verify_staged(self, ext: _StagedExtent):
        """At-rest bitrot draw + verify-on-drain for one picked-up extent.

        Bitrot is modelled as striking between absorb and drain, so the
        draw (and flip — the absorb snapshot is private, safe to mutate)
        happens at drain pickup.  With an integrity layer and a carried
        checksum, the drain verifies before shipping; in repair mode a
        mismatch re-fetches the pristine escrow copy from the producing
        rank and re-ingests it through the absorb queue (paying the
        ingest time again), with a fresh bitrot draw per attempt.
        """
        world = self.tier.world
        injector = world.faults
        integrity = world.integrity

        def bitrot() -> None:
            if injector is not None:
                pos = injector.staging_corruption(self.node, ext.nbytes)
                if pos is not None and ext.data is not None:
                    ext.data[pos] ^= 1 << (pos & 7)

        bitrot()
        if integrity is None or ext.checksum is None or ext.data is None:
            return
        attempt = 0
        integrity.checksum_computed += 1
        while extent_checksum(ext.data[: ext.nbytes]) != ext.checksum:
            integrity.note(
                "detected", stage="staging", node=self.node,
                rank=ext.rank, offset=ext.offset, attempt=attempt,
            )
            source = (
                integrity.repair_source(ext.file.path, ext.offset, ext.nbytes)
                if integrity.repairs
                else None
            )
            if source is None or attempt >= integrity.spec.max_repair_attempts:
                raise CorruptDataError(
                    f"staged extent at offset {ext.offset} ({ext.nbytes} bytes) "
                    f"on node {self.node} failed checksum verification"
                )
            integrity.note("refetch", stage="staging", node=self.node, rank=ext.rank)
            ext.data = np.array(source, dtype=np.uint8, copy=True)
            yield self.buffer.absorb_queue.submit(ext.nbytes)
            attempt += 1
            bitrot()
            integrity.checksum_computed += 1
        if attempt:
            integrity.note(
                "repaired", stage="staging", node=self.node,
                rank=ext.rank, attempts=attempt,
            )

    def _write_durable(self, ext: _StagedExtent):
        """One extent's PFS write, retrying transient faults and outages."""
        attempts = 0
        while True:
            size = ext.nbytes if ext.data is None else None
            done = self.pfs.write(
                ext.file, ext.offset, ext.data, size=size, checksum=ext.checksum
            )
            try:
                yield done
                return
            except CorruptDataError:
                # Not a transient fault: the read-back verify exhausted its
                # attempts (or detect mode flagged the stored bytes).
                # Rewriting the same corrupt state would loop forever.
                raise
            except FileSystemError:
                attempts += 1
                self.buffer.drain_retries += 1
                if attempts > self.spec.max_drain_retries:
                    raise

    # ------------------------------------------------------------------
    # Flush (end of the collective: make everything staged durable)
    # ------------------------------------------------------------------
    def flush(self) -> Event:
        """Drain everything absorbed so far; event fires when durable.

        Every policy flushes at the end of the collective — for
        ``end_of_job`` this is where the whole drain happens, serialized
        after the last cycle; for the asynchronous policies it is just
        the tail that was still in flight.
        """
        bb = self.buffer
        bb.flushing = True
        done = self.engine.event()
        if bb.occupancy == 0 and not bb.pending:
            done.succeed(self.engine.now)
            return done
        bb._flush_waiters.append(done)
        self._ensure_drain_process()
        return done

    def _maybe_finish_flush(self) -> None:
        bb = self.buffer
        if bb.flushing and bb.occupancy == 0 and not bb.pending:
            waiters, bb._flush_waiters = bb._flush_waiters, []
            for waiter in waiters:
                waiter.succeed(self.engine.now)


class StagingTier:
    """World-level staging facade: one :class:`DrainScheduler` per node."""

    def __init__(self, world: "World", spec: StagingSpec) -> None:
        if world.pfs is None:
            raise ConfigurationError("a staging tier needs a file system to drain to")
        self.world = world
        self.spec = spec
        self.engine = world.engine
        self.pfs: "ParallelFileSystem" = world.pfs
        self.tracer = world.cluster.tracer
        self._nodes: dict[int, DrainScheduler] = {}

    @classmethod
    def ensure(cls, world: "World", spec: StagingSpec) -> "StagingTier":
        """Get-or-create the world's tier (idempotent per world).

        Mirrors the ``world.journal`` attach pattern: the first rank's
        collective-write call creates the tier, peers reuse it.  Two
        different specs on one world is a configuration bug.
        """
        tier = getattr(world, "staging", None)
        if tier is not None:
            if tier.spec != spec:
                raise ConfigurationError(
                    "this world already has a staging tier with a different spec"
                )
            return tier
        tier = cls(world, spec)
        world.staging = tier
        return tier

    def node(self, node_id: int) -> DrainScheduler:
        scheduler = self._nodes.get(node_id)
        if scheduler is None:
            scheduler = DrainScheduler(self, node_id)
            self._nodes[node_id] = scheduler
        return scheduler

    def scheduler_for_rank(self, rank: int) -> DrainScheduler:
        return self.node(self.world.cluster.node_of_rank(rank))

    # -- accounting ----------------------------------------------------
    def buffers(self) -> list[BurstBuffer]:
        return [self._nodes[n].buffer for n in sorted(self._nodes)]

    def counter_totals(self) -> dict[str, int]:
        """Aggregated ``staging.*`` counters across all node buffers."""
        totals = {
            "staging.absorbed_bytes": 0,
            "staging.drained_bytes": 0,
            "staging.extents_absorbed": 0,
            "staging.extents_drained": 0,
            "staging.stalls": 0,
            "staging.forced_drains": 0,
            "staging.drain_retries": 0,
        }
        for bb in self.buffers():
            totals["staging.absorbed_bytes"] += bb.absorbed_bytes
            totals["staging.drained_bytes"] += bb.drained_bytes
            totals["staging.extents_absorbed"] += bb.extents_absorbed
            totals["staging.extents_drained"] += bb.extents_drained
            totals["staging.stalls"] += bb.stalls
            totals["staging.forced_drains"] += bb.forced_drains
            totals["staging.drain_retries"] += bb.drain_retries
        return totals

    def occupancy_peak(self) -> int:
        """Highest per-node occupancy seen anywhere in the tier, bytes."""
        return max((bb.occupancy_peak for bb in self.buffers()), default=0)

    def undrained_bytes(self) -> int:
        """Bytes absorbed but not yet durable (0 after a completed flush)."""
        return sum(bb.occupancy for bb in self.buffers())
