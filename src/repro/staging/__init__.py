"""Node-local burst-buffer staging tier (see DESIGN.md, Appendix C).

Aggregators write into a per-node staging buffer at device speed; a
drain scheduler moves the staged extents to the parallel file system in
the background, overlapping subsequent cycles' communication and absorb
phases — the storage-hierarchy generalization of the paper's
communication/I-O overlap.
"""

from repro.staging.spec import DRAIN_POLICIES, StagingSpec, nvme_staging
from repro.staging.tier import BurstBuffer, DrainScheduler, StagingTier

__all__ = [
    "DRAIN_POLICIES",
    "StagingSpec",
    "nvme_staging",
    "BurstBuffer",
    "DrainScheduler",
    "StagingTier",
]
