"""Shared machinery of the frozen ``*Spec`` dataclass family.

Every user-facing specification object in the package — :class:`RunSpec`,
:class:`FaultSpec`, :class:`RecoverySpec`, :class:`StagingSpec`,
:class:`ScenarioSpec` — derives from :class:`SpecBase` and therefore
speaks one uniform protocol:

``to_dict()`` / ``from_dict()``
    Lossless plain-data round trip.  Nested specs, plain dataclasses
    (:class:`ClusterSpec`, :class:`FsSpec`, ...), tuples, frozensets,
    rank→view maps, numpy arrays and module-level callables are encoded
    with small ``{"__tag__": ...}`` wrappers so ``from_dict(to_dict(s))
    == s`` holds exactly.  Fields listed in ``_transient`` (derived or
    runtime-only state, e.g. a prebuilt plan) are skipped and come back
    as their defaults.

``to_json()`` / ``from_json()``
    The same round trip through a JSON string.

``canonical()`` / ``spec_sha256()``
    A canonical serialized form (sorted keys, no whitespace variance)
    and its content hash.  This is what caches and the golden
    fingerprint suite key off: two spec objects describing the same run
    agree on the hash across processes and sessions.

``validate()`` / ``replace()`` / ``with_()``
    Consistent spellings across the family.  Field-level checks live in
    each subclass's ``__post_init__`` (so invalid specs cannot be
    constructed); ``validate()`` is the hook for cross-field checks and
    returns ``self`` for chaining.  ``replace`` re-runs the checks.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import json
from typing import Any, ClassVar

__all__ = ["SpecBase", "SpecCodecError", "encode_value", "decode_value"]

#: Registered SpecBase subclasses by class name (filled by subclassing).
_SPEC_REGISTRY: dict[str, type] = {}


class SpecCodecError(TypeError):
    """A value cannot be represented in (or decoded from) spec plain data."""


def _qualname(obj: Any) -> str:
    return f"{obj.__module__}:{obj.__qualname__}"


def _resolve(path: str) -> Any:
    module_name, _, attr_path = path.partition(":")
    target: Any = importlib.import_module(module_name)
    for part in attr_path.split("."):
        target = getattr(target, part)
    return target


def encode_value(value: Any) -> Any:
    """Encode one field value as JSON-safe plain data (tagged where needed)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, SpecBase):
        return {"__spec__": type(value).__name__, "fields": value.to_dict()}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": _qualname(type(value)),
            "fields": {
                f.name: encode_value(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, tuple):
        return {"__tuple__": [encode_value(v) for v in value]}
    if isinstance(value, frozenset):
        items = [encode_value(v) for v in value]
        return {"__frozenset__": sorted(items, key=lambda v: json.dumps(v, sort_keys=True))}
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    if isinstance(value, dict):
        # Generic mapping (JSON object keys must be strings; spec maps are
        # often rank→view).  Entries are sorted for canonical hashing.
        items = [[encode_value(k), encode_value(v)] for k, v in value.items()]
        items.sort(key=lambda kv: json.dumps(kv[0], sort_keys=True))
        return {"__map__": items}
    # Late imports keep this module dependency-free at import time.
    from repro.collio.view import FileView

    if isinstance(value, FileView):
        return {
            "__fileview__": {
                "offsets": value.offsets.tolist(),
                "lengths": value.lengths.tolist(),
                "local_offsets": value.local_offsets.tolist(),
            }
        }
    import numpy as np

    if isinstance(value, np.ndarray):
        return {"__ndarray__": {"dtype": str(value.dtype), "data": value.tolist()}}
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if callable(value):
        qual = _qualname(value)
        if "<" in qual:  # lambdas / locals have no importable name
            raise SpecCodecError(
                f"cannot serialize callable {value!r}: only module-level "
                "functions round-trip (referenced by qualified name)"
            )
        return {"__callable__": qual}
    raise SpecCodecError(
        f"cannot serialize {type(value).__name__} value {value!r} in a spec"
    )


def decode_value(value: Any) -> Any:
    """Invert :func:`encode_value`."""
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    if not isinstance(value, dict):
        return value
    if "__spec__" in value:
        cls = _SPEC_REGISTRY.get(value["__spec__"])
        if cls is None:
            raise SpecCodecError(f"unknown spec class {value['__spec__']!r}")
        return cls.from_dict(value["fields"])
    if "__dataclass__" in value:
        cls = _resolve(value["__dataclass__"])
        return cls(**{k: decode_value(v) for k, v in value["fields"].items()})
    if "__tuple__" in value:
        return tuple(decode_value(v) for v in value["__tuple__"])
    if "__frozenset__" in value:
        return frozenset(decode_value(v) for v in value["__frozenset__"])
    if "__map__" in value:
        return {decode_value(k): decode_value(v) for k, v in value["__map__"]}
    if "__fileview__" in value:
        import numpy as np

        from repro.collio.view import FileView

        fv = value["__fileview__"]
        return FileView.from_pieces(
            np.asarray(fv["offsets"], np.int64),
            np.asarray(fv["lengths"], np.int64),
            np.asarray(fv["local_offsets"], np.int64),
        )
    if "__ndarray__" in value:
        import numpy as np

        return np.asarray(value["__ndarray__"]["data"], dtype=value["__ndarray__"]["dtype"])
    if "__callable__" in value:
        return _resolve(value["__callable__"])
    return {k: decode_value(v) for k, v in value.items()}


@dataclasses.dataclass(frozen=True)
class SpecBase:
    """Base class of the frozen ``*Spec`` family (see module docstring)."""

    #: Field names excluded from serialization (derived or runtime-only);
    #: they decode back to their dataclass defaults.
    _transient: ClassVar[frozenset[str]] = frozenset()

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        _SPEC_REGISTRY[cls.__name__] = cls

    # -- plain-data round trip -----------------------------------------
    def to_dict(self) -> dict:
        """The spec as plain JSON-safe data (see :func:`encode_value`)."""
        return {
            f.name: encode_value(getattr(self, f.name))
            for f in dataclasses.fields(self)
            if f.name not in self._transient
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SpecBase":
        """Rebuild a spec from :meth:`to_dict` output (strict on keys)."""
        known = {f.name for f in dataclasses.fields(cls) if f.init}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SpecCodecError(
                f"{cls.__name__}.from_dict: unknown field(s) {', '.join(unknown)}"
            )
        return cls(**{k: decode_value(v) for k, v in data.items()})

    # -- JSON round trip -----------------------------------------------
    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SpecBase":
        return cls.from_dict(json.loads(text))

    # -- canonical form / hashing --------------------------------------
    def canonical(self) -> str:
        """Canonical serialized form: sorted keys, no whitespace variance."""
        return json.dumps(
            {"spec": type(self).__name__, "fields": self.to_dict()},
            sort_keys=True,
            separators=(",", ":"),
        )

    def spec_sha256(self) -> str:
        """Content hash of :meth:`canonical` — the cache/fingerprint key."""
        return hashlib.sha256(self.canonical().encode()).hexdigest()

    # -- uniform verbs ---------------------------------------------------
    def validate(self) -> "SpecBase":
        """Cross-field consistency hook; returns ``self`` for chaining."""
        return self

    def replace(self, **overrides: Any) -> "SpecBase":
        """A copy with the given fields replaced (re-runs field checks)."""
        return dataclasses.replace(self, **overrides)

    def with_(self, **overrides: Any) -> "SpecBase":
        """Alias of :meth:`replace` (the family's historical spelling)."""
        return dataclasses.replace(self, **overrides)
