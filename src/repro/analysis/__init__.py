"""Statistics used by the paper's evaluation section.

* :mod:`repro.analysis.stats` — min-of-series point estimates, winner
  counts (Table I / Fig. 4) and the paper's "average positive relative
  improvement" metric (Figs. 2-3).
"""

from repro.analysis.breakdown import PhaseBreakdown, aggregate_phases
from repro.analysis.stats import (
    Series,
    average_positive_improvement,
    best_algorithm,
    relative_improvement,
    winner_counts,
)

__all__ = [
    "PhaseBreakdown",
    "aggregate_phases",
    "Series",
    "average_positive_improvement",
    "best_algorithm",
    "relative_improvement",
    "winner_counts",
]
