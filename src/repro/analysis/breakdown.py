"""Phase-time aggregation across ranks (the Sec. IV-A analysis, generalized).

Works on the per-rank :class:`~repro.collio.context.PhaseStats` lists that
:func:`~repro.collio.api.run_collective_write` (and the read counterpart)
return.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PhaseBreakdown", "aggregate_phases"]

#: Phases that constitute "communication" vs "file access" for the
#: paper's two-way split.
COMM_PHASES = ("shuffle", "shuffle_init", "scatter", "scatter_init")
IO_PHASES = ("write", "write_post", "read", "read_post")


@dataclass(frozen=True)
class PhaseBreakdown:
    """Aggregated phase shares of one run."""

    #: phase -> max accumulated seconds over the selected ranks.
    max_times: dict
    #: phase -> mean accumulated seconds over the selected ranks.
    mean_times: dict
    ranks_considered: int

    @property
    def communication_time(self) -> float:
        return sum(self.max_times.get(p, 0.0) for p in COMM_PHASES)

    @property
    def io_time(self) -> float:
        return sum(self.max_times.get(p, 0.0) for p in IO_PHASES)

    @property
    def communication_share(self) -> float:
        total = self.communication_time + self.io_time
        return self.communication_time / total if total else 0.0

    @property
    def io_share(self) -> float:
        total = self.communication_time + self.io_time
        return self.io_time / total if total else 0.0


def aggregate_phases(per_rank_stats, ranks=None) -> PhaseBreakdown:
    """Aggregate phase times over ``ranks`` (default: every rank).

    Pass the aggregator ranks to reproduce the paper's aggregator-side
    split; non-aggregators' "shuffle" time includes waiting for busy
    aggregators and would skew the picture.
    """
    selected = (
        list(enumerate(per_rank_stats))
        if ranks is None
        else [(r, per_rank_stats[r]) for r in ranks]
    )
    if not selected:
        raise ValueError("no ranks selected")
    phases = set()
    for _r, stats in selected:
        phases.update(stats.times)
    max_times = {p: max(s.time_in(p) for _r, s in selected) for p in phases}
    mean_times = {
        p: sum(s.time_in(p) for _r, s in selected) / len(selected) for p in phases
    }
    return PhaseBreakdown(max_times, mean_times, len(selected))
