"""The paper's summary statistics.

Section IV: "For each benchmark test case, we run between 3 and 9
measurements [...]  When comparing individual data points we used the
minimum execution time across all measurements within a series."  A
*series* is (benchmark, platform, process count, algorithm); its point
estimate is the min over repetitions.  Table I counts, per benchmark row,
how many series each algorithm won; Figs. 2-3 report the mean relative
improvement over the no-overlap baseline **excluding negative
improvements** (i.e. the average gain when there was a gain).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Series",
    "best_algorithm",
    "winner_counts",
    "relative_improvement",
    "average_positive_improvement",
]


@dataclass
class Series:
    """Repeated measurements of one (case, algorithm) combination."""

    key: tuple
    algorithm: str
    times: list[float] = field(default_factory=list)

    def add(self, t: float) -> None:
        if t < 0:
            raise ValueError(f"negative time {t}")
        self.times.append(t)

    @property
    def point(self) -> float:
        """The paper's point estimate: min over the series."""
        if not self.times:
            raise ValueError(f"empty series {self.key}/{self.algorithm}")
        return min(self.times)

    @property
    def mean(self) -> float:
        return sum(self.times) / len(self.times)

    @property
    def count(self) -> int:
        """Number of measurements in the series."""
        return len(self.times)

    @property
    def std(self) -> float:
        """Sample standard deviation (ddof=1); 0.0 for a single measurement.

        Used by the tuner's promotion rule: a candidate within one
        standard deviation of the screening cutoff is kept for the full
        round rather than discarded on a noisy point estimate.
        """
        n = len(self.times)
        if n == 0:
            raise ValueError(f"empty series {self.key}/{self.algorithm}")
        if n == 1:
            return 0.0
        m = self.mean
        return (sum((t - m) ** 2 for t in self.times) / (n - 1)) ** 0.5


def best_algorithm(series_by_algorithm: dict[str, Series]) -> str:
    """Winner of one test case: the algorithm with the lowest point estimate.

    Deterministic tie-break by algorithm name (ties are measure-zero with
    noisy service times, but determinism keeps reruns reproducible).
    """
    if not series_by_algorithm:
        raise ValueError("no series to compare")
    return min(series_by_algorithm.values(), key=lambda s: (s.point, s.algorithm)).algorithm


def winner_counts(cases: list[dict[str, Series]]) -> dict[str, int]:
    """Table-I-style tally: how many cases each algorithm won.

    Raises :class:`ValueError` on an empty case list: an empty tally is
    indistinguishable from "no algorithm ever won", which has silently
    produced all-zero tables upstream.
    """
    if not cases:
        raise ValueError("winner_counts: empty case list (no series were measured)")
    counts: dict[str, int] = {}
    for case in cases:
        winner = best_algorithm(case)
        counts[winner] = counts.get(winner, 0) + 1
    return counts


def relative_improvement(baseline_time: float, algo_time: float) -> float:
    """Fractional improvement of ``algo`` over the baseline (can be < 0)."""
    if baseline_time <= 0:
        raise ValueError(f"non-positive baseline time {baseline_time}")
    return (baseline_time - algo_time) / baseline_time


def average_positive_improvement(
    cases: list[dict[str, Series]],
    algorithm: str,
    baseline: str = "no_overlap",
) -> float | None:
    """Figs. 2-3's metric: mean improvement over the baseline, counting
    only the cases where the algorithm actually improved on it.

    Returns ``None`` if the algorithm never beat the baseline.  Raises
    :class:`ValueError` on an empty case list — that is a harness bug
    (nothing was measured), not a "never improved" observation.
    """
    if not cases:
        raise ValueError(
            "average_positive_improvement: empty case list (no series were measured)"
        )
    gains = []
    for case in cases:
        if algorithm not in case or baseline not in case:
            continue
        gain = relative_improvement(case[baseline].point, case[algorithm].point)
        if gain > 0:
            gains.append(gain)
    if not gains:
        return None
    return sum(gains) / len(gains)
