"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single except clause while letting
programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """The simulation kernel detected an inconsistent state."""


class DeadlockError(SimulationError):
    """The event queue drained while processes were still waiting.

    Raised by :meth:`repro.sim.engine.Engine.run` when simulation time can
    no longer advance but at least one process has not terminated — the
    simulated program is deadlocked (e.g. a receive without a matching
    send, or an unmatched barrier).
    """


class MPIError(ReproError):
    """Violation of MPI semantics by the simulated program."""


class RMAError(MPIError):
    """Violation of one-sided communication (RMA) semantics."""


class DatatypeError(MPIError):
    """Invalid datatype construction or use."""


class FileSystemError(ReproError):
    """Error raised by the simulated parallel file system."""


class TransientWriteError(FileSystemError):
    """A storage target failed a write request transiently.

    Injected by the fault subsystem (:mod:`repro.faults`) to model media
    errors, dropped RPCs and storage-side restarts.  Retrying the same
    write is safe: the file system's writes are idempotent (same bytes at
    the same offset).
    """


class WriteTimeoutError(FileSystemError):
    """A write did not complete within its per-write timeout.

    The underlying request may still complete later; because writes are
    idempotent, callers reissue the write rather than cancel it.
    """


class AioSubmitError(FileSystemError):
    """The asynchronous I/O engine refused a submission (EAGAIN-style).

    Models degraded ``aio`` support (the paper's Lustre note taken to its
    failure extreme); callers fall back to the synchronous write path.
    """


class WriteRetryExhaustedError(FileSystemError):
    """A retried write failed on every attempt the policy allowed.

    ``__cause__`` carries the last underlying failure."""


class TargetDownError(FileSystemError):
    """A storage target is permanently down and rejected the request.

    Unlike :class:`TransientWriteError`, retrying against the *same*
    target cannot succeed; recovery requires remapping the target's
    stripes onto survivors (see :mod:`repro.fs.striping`), after which a
    reissued write lands on live targets.
    """


class CorruptDataError(FileSystemError):
    """A checksum verify caught corrupted extent bytes.

    Raised (or delivered through a failing event) by the integrity
    layer's verify points — message receive, RMA landing, burst-buffer
    drain, PFS read-back, post-write scrub — when an extent's CRC-32 no
    longer matches the checksum its producing rank recorded.  In
    ``detect`` mode it fires on the first mismatch; in ``repair`` mode
    only after every bounded restoration attempt failed.

    Deliberately a :class:`FileSystemError` so it flows through the
    existing event-failure plumbing (aio handles, drain processes), but
    the retry layers treat it as **non-retryable**: blind reissue cannot
    fix bytes that are already wrong at the source the retry would read
    from — repair is the integrity layer's job, and when *it* gives up,
    the run must fail loudly rather than loop.
    """


class RankCrashError(ReproError):
    """A simulated rank died mid-collective (injected permanent fault).

    Delivered by interrupting the rank's process generator; the engine
    run aborts at the crash instant.  ``rank`` and ``time`` identify the
    casualty for the recovery layer.
    """

    def __init__(self, rank: int, time: float) -> None:
        super().__init__(f"rank {rank} crashed at t={time:.9f}")
        self.rank = rank
        self.time = time


class RecoveryExhaustedError(ReproError):
    """Crash-fault recovery gave up after its attempt budget.

    ``__cause__`` carries the failure of the last attempt."""


class ConfigurationError(ReproError):
    """Invalid configuration of a cluster, file system or experiment."""


class WorkloadError(ReproError):
    """Invalid workload specification."""
