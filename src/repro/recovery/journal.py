"""The cycle journal: the aggregators' commit protocol.

Every aggregator records, for each internal cycle whose file write has
*completed*, the written extent plus a checksum of its bytes — the
moment of recording is the cycle's **commit point**.  After a crash, the
successor aggregators scan the journal and re-verify each record against
the durable file contents:

* record present and checksum matches → the cycle is *committed*; its
  bytes are excluded from replay;
* record present but checksum mismatches → the cycle is *torn* (the
  commit raced the crash); it is replayed as if never written;
* no record → not committed; replayed.  Bytes that reached the file
  without a journal record are simply rewritten — writes are idempotent,
  so replaying is always safe.

The journal itself is durable state: it survives the crash of any rank
(think of it as a tiny metadata file next to the output file).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.integrity.checksum import extent_checksum

__all__ = ["CycleRecord", "CycleJournal"]


@dataclass(frozen=True)
class CycleRecord:
    """One committed cycle: who wrote which extent, with what contents."""

    agg_rank: int
    agg_index: int
    cycle: int
    offset: int
    nbytes: int
    #: CRC-32 of the written bytes; None in size-only mode (no payloads
    #: move, so commit is taken on trust).
    checksum: int | None


class CycleJournal:
    """Append-mostly store of :class:`CycleRecord`, keyed by file extent.

    Keyed by ``(offset, nbytes)`` rather than by aggregator: after a
    failover the same extent may be committed again by a *different*
    aggregator, and the newest record simply replaces the old one
    (idempotent, like the write itself).
    """

    def __init__(self) -> None:
        self._records: dict[tuple[int, int], CycleRecord] = {}
        #: Total commit operations (recommits included), for metrics.
        self.commits = 0

    @staticmethod
    def checksum(payload) -> int:
        """CRC-32 of a contiguous uint8 buffer (the shared extent checksum).

        Delegates to :func:`repro.integrity.checksum.extent_checksum` —
        one implementation backs the journal's commit records and the
        integrity layer's manifest, so their fingerprints agree by
        construction.
        """
        return extent_checksum(payload)

    def commit(
        self,
        *,
        agg_rank: int,
        agg_index: int,
        cycle: int,
        offset: int,
        nbytes: int,
        checksum: int | None,
    ) -> CycleRecord:
        """Declare one cycle durable (its aggregator's write completed)."""
        record = CycleRecord(agg_rank, agg_index, cycle, offset, nbytes, checksum)
        self._records[(offset, nbytes)] = record
        self.commits += 1
        return record

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> list[CycleRecord]:
        """All records in file order."""
        return [self._records[k] for k in sorted(self._records)]

    # ------------------------------------------------------------------
    def committed_intervals(self, file) -> tuple[list[tuple[int, int]], int]:
        """Verified committed file intervals, plus the torn-record count.

        ``file`` is the durable :class:`~repro.fs.file.SimFile` (or None
        when nothing was written yet).  Records whose checksum no longer
        matches the file — torn commits — are dropped from the committed
        set, so their extents get replayed.  Checksum-less records
        (size-only mode) are trusted.  Intervals are returned sorted and
        merged.
        """
        intervals: list[tuple[int, int]] = []
        torn = 0
        for record in self.records():
            if record.checksum is not None:
                if file is None:
                    torn += 1
                    continue
                actual = extent_checksum(file.read(record.offset, record.nbytes))
                if actual != record.checksum:
                    torn += 1
                    continue
            intervals.append((record.offset, record.offset + record.nbytes))
        return merge_intervals(intervals), torn


def merge_intervals(intervals: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Sort and merge overlapping/adjacent half-open intervals."""
    merged: list[tuple[int, int]] = []
    for lo, hi in sorted(intervals):
        if hi <= lo:
            continue
        if merged and lo <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return merged
