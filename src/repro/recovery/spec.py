"""Configuration of the crash-fault recovery loop."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.specbase import SpecBase
from repro.units import US

__all__ = ["RecoverySpec"]


@dataclass(frozen=True)
class RecoverySpec(SpecBase):
    """Tunables of the restart-from-journal recovery protocol.

    The recovery manager reruns the collective after every permanent
    fault, replaying only the cycles the journal has not committed.
    Each failover charges ``detection_timeout`` (the survivors' shuffle /
    commit-heartbeat timeout that reveals the crash) plus
    ``failover_overhead`` (re-election, plan rebuild, journal scan) to
    the end-to-end elapsed time.
    """

    #: Attempt budget; None = automatic (``nprocs + num_targets + 2``,
    #: enough for every rank to crash and every target to go down once).
    max_attempts: int | None = None
    #: Simulated time until the survivors detect a crashed peer.
    detection_timeout: float = 500 * US
    #: Simulated time for re-election + plan rebuild + journal replay setup.
    failover_overhead: float = 200 * US

    def __post_init__(self) -> None:
        if self.max_attempts is not None and self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1 or None, got {self.max_attempts}"
            )
        if self.detection_timeout < 0:
            raise ConfigurationError("detection_timeout must be >= 0")
        if self.failover_overhead < 0:
            raise ConfigurationError("failover_overhead must be >= 0")

    def attempt_budget(self, nprocs: int, num_targets: int) -> int:
        """The effective attempt cap for a given world size."""
        if self.max_attempts is not None:
            return self.max_attempts
        return nprocs + num_targets + 2
