"""Aggregator failover: restart the collective from the cycle journal.

The SPMD simulation cannot keep running a world whose rank generator
died, so recovery is modelled the way checkpoint/restart-style MPI
stacks (and the batch systems above them) actually behave: when the
survivors detect a permanent fault, the collective is **re-launched** —
crashed ranks respawn as plain senders, the aggregator set is
deterministically re-elected without them, stripes of dead targets are
remapped onto survivors, and only the cycles the journal has *not*
committed are replayed.  Durable state carries across attempts: the file
contents that reached storage, the cycle journal, and the sets of dead
ranks/targets.

Each failover charges the :class:`~repro.recovery.spec.RecoverySpec`'s
detection timeout and failover overhead to the global clock, and the
per-attempt span timelines are shifted onto that clock so one merged
Chrome trace shows write → crash → failover gap → replay.

Determinism: every injection draw comes from a per-entity stream keyed
only by the world seed, the re-election is a pure function of the
crashed set, and replay views are a pure function of the journal — so
one ``(spec, seed)`` pair yields bit-identical recovery traces and file
bytes on every run.
"""

from __future__ import annotations

import numpy as np

from repro.collio.api import (
    CollectiveWriteResult,
    build_plan,
    collective_write,
    _verify_file,
)
from repro.collio.overlap import make_algorithm
from repro.collio.view import FileView
from repro.errors import (
    ConfigurationError,
    RankCrashError,
    RecoveryExhaustedError,
    ReproError,
)
from repro.mpi.world import World
from repro.obs.metrics import MetricsRegistry
from repro.obs.span import Span, SpanRecorder
from repro.recovery.journal import CycleJournal
from repro.recovery.report import RecoveryReport
from repro.recovery.spec import RecoverySpec

__all__ = ["run_with_recovery", "subtract_intervals"]


def _uncovered(lo: int, hi: int, intervals: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Sub-ranges of ``[lo, hi)`` not covered by the merged ``intervals``."""
    out: list[tuple[int, int]] = []
    cur = lo
    for ilo, ihi in intervals:
        if ihi <= cur:
            continue
        if ilo >= hi:
            break
        if ilo > cur:
            out.append((cur, ilo))
        cur = max(cur, ihi)
        if cur >= hi:
            return out
    if cur < hi:
        out.append((cur, hi))
    return out


def subtract_intervals(view: FileView, intervals: list[tuple[int, int]]) -> FileView:
    """The replay view: ``view`` minus the journal-committed intervals.

    Remaining pieces keep their *original* local buffer offsets, so the
    rank replays straight out of its full payload buffer.
    """
    if not intervals or not view.num_extents:
        return view
    offs: list[int] = []
    lens: list[int] = []
    locs: list[int] = []
    for off, ln, loc in zip(view.offsets, view.lengths, view.local_offsets):
        for plo, phi in _uncovered(int(off), int(off + ln), intervals):
            offs.append(plo)
            lens.append(phi - plo)
            locs.append(int(loc) + (plo - int(off)))
    return FileView.from_pieces(
        np.array(offs, dtype=np.int64),
        np.array(lens, dtype=np.int64),
        np.array(locs, dtype=np.int64),
    )


def run_with_recovery(spec, algorithm: str, config, auto_counters: dict | None):
    """Run one collective write to completion under permanent faults.

    Called by :func:`repro.collio.api.run_collective_write` when the
    spec's :class:`~repro.faults.spec.FaultSpec` has crash-class faults;
    ``algorithm`` is already resolved (never ``"auto"``).  Returns a
    :class:`~repro.collio.api.CollectiveWriteResult` whose ``recovery``
    field carries the :class:`~repro.recovery.report.RecoveryReport`.

    Raises :class:`~repro.errors.RecoveryExhaustedError` if the attempt
    budget runs out or a failed attempt yields no new fault information
    (which would loop forever, as the schedule is deterministic).
    """
    rspec = spec.recovery if spec.recovery is not None else RecoverySpec()
    if not isinstance(rspec, RecoverySpec):
        raise ConfigurationError(
            f"RunSpec.recovery must be a RecoverySpec or None, got {type(rspec).__name__}"
        )
    algo = make_algorithm(algorithm)
    cycle_bytes = algo.cycle_bytes(config.cb_buffer_size)
    payloads = {
        r: spec.data_factory(r, spec.views[r].total_bytes) if spec.carry_data else None
        for r in range(spec.nprocs)
    }
    budget = rspec.attempt_budget(spec.nprocs, spec.fs.num_targets)

    journal = CycleJournal()
    crashed: set[int] = set()
    down: set[int] = set()
    files = None  # durable file store, carried world to world
    base = 0.0  # global-clock offset of the current attempt
    all_spans: list[Span] = []
    counters: dict[str, int] = {}
    events: list[dict] = []
    events_processed = 0
    bytes_written = 0
    writes_failed = 0
    writes_rejected = 0
    max_heap_len = 0
    replayed_bytes = 0
    torn_total = 0
    staging_counters: dict[str, int] = {}
    staging_peak = 0
    staging_lost = 0
    staging_used = False
    integrity_snapshot = None  # last attempt's layer snapshot
    total_failover = 0.0
    plan0 = None  # the intended (attempt-1) plan, reported in the result
    final_world = None
    final_stats = None
    attempt = 0
    last_failure: BaseException | None = None

    while attempt < budget:
        attempt += 1
        if len(down) >= spec.fs.num_targets:
            raise RecoveryExhaustedError(
                "all storage targets are down; no survivors to remap onto"
            ) from last_failure
        recorder = (
            SpanRecorder(enabled=True, max_records=spec.max_trace_records)
            if spec.trace
            else None
        )
        world = World(
            spec.cluster, spec.nprocs, fs_spec=spec.fs, seed=spec.seed,
            faults=spec.faults, tracer=recorder, journal=journal,
            crashed_ranks=frozenset(crashed), down_targets=frozenset(down),
        )
        if files is not None:
            world.pfs.adopt_files(files)
        durable = files.get(spec.path) if files is not None else None
        intervals, torn = journal.committed_intervals(durable)
        torn_total += torn
        views = {
            r: subtract_intervals(spec.views[r], intervals)
            for r in range(spec.nprocs)
        }
        remaining = sum(v.total_bytes for v in views.values())
        if attempt > 1:
            replayed_bytes += remaining
        plan = build_plan(
            world.cluster, spec.nprocs, views, config, cycle_bytes,
            stripe_size=spec.fs.stripe_size, exclude_ranks=frozenset(crashed),
        )
        if plan0 is None:
            plan0 = plan
        attempt_span = None
        if recorder is not None:
            attempt_span = recorder.begin(
                0.0, f"attempt{attempt}", "recovery", flow="async",
                attempt=attempt, remaining_bytes=remaining,
                aggregators=list(plan.aggregators),
            )

        def program(mpi):
            fh = yield from mpi.file_open(spec.path)
            stats = yield from collective_write(
                mpi, fh, views[mpi.rank], payloads[mpi.rank], plan,
                algorithm=algorithm, shuffle=spec.shuffle, config=config,
            )
            return stats

        failure: BaseException | None = None
        stats = None
        try:
            stats = world.run(program)
        except (ReproError, ValueError) as exc:
            failure = exc
        elapsed = world.now

        # Harvest durable / diagnostic state from the attempt's world.
        files = world.pfs._files
        newly_down = sorted(
            {t.target_id for t in world.pfs.targets if t.down} - down
        )
        down.update(newly_down)
        for key, val in world.cluster.tracer.counters.items():
            counters[key] = counters.get(key, 0) + val
        events_processed += world.engine.events_processed
        bytes_written += world.pfs.bytes_written
        writes_failed += sum(t.writes_failed for t in world.pfs.targets)
        writes_rejected += sum(t.writes_rejected for t in world.pfs.targets)
        max_heap_len = max(max_heap_len, world.engine.max_heap_len)
        # Burst-buffer accounting: the tier is per-attempt (volatile — a
        # crash loses whatever had not drained), so counters accumulate
        # across attempts and undrained bytes of a *failed* attempt are
        # the data the crash destroyed (the journal never committed them,
        # so replay re-drives those cycles).
        layer = getattr(world, "integrity", None)
        if layer is not None:
            integrity_snapshot = layer.snapshot()
        tier = getattr(world, "staging", None)
        if tier is not None:
            staging_used = True
            for name, value in tier.counter_totals().items():
                staging_counters[name] = staging_counters.get(name, 0) + value
            staging_peak = max(staging_peak, tier.occupancy_peak())
            if failure is not None:
                staging_lost += tier.undrained_bytes()
        if recorder is not None:
            recorder.end(attempt_span, elapsed)
            for span in recorder.closed_spans():
                span.t0 += base
                span.t1 += base
                all_spans.append(span)

        if failure is None:
            events.append({
                "attempt": attempt, "t": base + elapsed, "kind": "completed",
                "replayed_bytes": remaining if attempt > 1 else 0,
            })
            final_world = world
            final_stats = stats
            base += elapsed
            break

        last_failure = failure
        if isinstance(failure, RankCrashError):
            crashed.add(failure.rank)
            event_kind = "rank_crash"
            detail = {"rank": failure.rank}
        elif newly_down:
            event_kind = "ost_outage"
            detail = {"targets": newly_down}
        else:
            # No new fault information: the identical attempt would fail
            # identically forever.  Give up rather than spin.
            raise RecoveryExhaustedError(
                f"attempt {attempt} failed with {type(failure).__name__} but "
                "exposed no new crashed rank or down target"
            ) from failure
        failover = rspec.detection_timeout + rspec.failover_overhead
        total_failover += failover
        events.append({
            "attempt": attempt, "t": base + elapsed, "kind": event_kind,
            "error": type(failure).__name__, **detail,
        })
        if spec.trace:
            all_spans.append(Span(
                name="failover", category="recovery", rank=-1,
                t0=base + elapsed, t1=base + elapsed + failover, flow="async",
                attrs={"attempt": attempt, **detail},
            ))
        base += elapsed + failover

    if final_world is None:
        raise RecoveryExhaustedError(
            f"collective write did not complete within {budget} attempts"
        ) from last_failure

    report = RecoveryReport(
        attempts=attempt,
        crashed_ranks=sorted(crashed),
        down_targets=sorted(down),
        failover_time=total_failover,
        replayed_bytes=replayed_bytes,
        torn_cycles=torn_total,
        journal_commits=journal.commits,
        completed=True,
        events=events,
    )
    result = CollectiveWriteResult(
        algorithm=algorithm,
        shuffle=spec.shuffle,
        nprocs=spec.nprocs,
        num_aggregators=len(plan0.aggregators),
        num_cycles=plan0.num_cycles,
        cycle_bytes=plan0.cycle_bytes,
        total_bytes=plan0.total_bytes,
        elapsed=base,
        write_bandwidth=plan0.total_bytes / base if base > 0 else 0.0,
        per_rank_stats=final_stats,
        trace_counters=dict(counters),
        spans=all_spans,
        recovery=report,
        integrity=integrity_snapshot,
    )
    if auto_counters:
        result.trace_counters.update(auto_counters)

    registry = MetricsRegistry()
    registry.merge_counters(counters)
    if auto_counters:
        registry.merge_counters(auto_counters)
    registry.counter("sim.events_processed").inc(events_processed)
    registry.gauge("sim.max_heap_len").set(max_heap_len)
    registry.gauge("run.elapsed").set(result.elapsed)
    registry.gauge("run.write_bandwidth").set(result.write_bandwidth)
    registry.gauge("fs.bytes_written").set(bytes_written)
    registry.counter("fs.writes_failed").inc(writes_failed)
    registry.counter("fs.writes_rejected").inc(writes_rejected)
    registry.gauge("fs.targets_down").set(len(down))
    registry.counter("recovery.attempts").inc(attempt)
    registry.counter("recovery.rank_crashes").inc(len(crashed))
    registry.counter("recovery.ost_outages").inc(len(down))
    registry.counter("recovery.replayed_bytes").inc(replayed_bytes)
    registry.counter("recovery.torn_cycles").inc(torn_total)
    registry.gauge("recovery.failover_time").set(total_failover)
    if staging_used:
        registry.merge_counters(staging_counters)
        registry.counter("staging.lost_bytes").inc(staging_lost)
        registry.gauge("staging.occupancy_peak").set(staging_peak)
    for span in all_spans:
        registry.histogram(f"span.{span.category}.dur").observe(span.dur)
    result.metrics = registry.snapshot()

    if spec.verify or config.verify:
        result.verified, result.file_sha256 = _verify_file(
            final_world, spec.path, spec.views, payloads
        )
    return result
