"""The recovery outcome attached to a collective-write result."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RecoveryReport"]


@dataclass
class RecoveryReport:
    """What the recovery manager did to finish one collective write."""

    #: Attempts run, including the successful one (1 = no failover).
    attempts: int
    #: Ranks that crashed (and were demoted from aggregator duty).
    crashed_ranks: list[int]
    #: Storage targets that went down (stripes remapped to survivors).
    down_targets: list[int]
    #: Total simulated time spent in detection + failover gaps.
    failover_time: float
    #: Bytes rewritten by replay attempts (the redundant-work overhead).
    replayed_bytes: int
    #: Journal records whose checksum no longer matched the file.
    torn_cycles: int
    #: Cycle commits recorded across all attempts.
    journal_commits: int
    completed: bool
    #: Chronological failover timeline: one dict per attempt outcome,
    #: each with ``attempt``, global time ``t`` and ``kind``
    #: (``rank_crash`` / ``ost_outage`` / ``completed``).
    events: list[dict] = field(default_factory=list)

    @property
    def had_faults(self) -> bool:
        return bool(self.crashed_ranks or self.down_targets)

    def timeline(self) -> str:
        """Human-readable one-line-per-event recovery timeline."""
        lines = []
        for ev in self.events:
            extra = {
                k: v for k, v in ev.items() if k not in ("attempt", "t", "kind")
            }
            detail = ", ".join(f"{k}={v}" for k, v in extra.items())
            lines.append(
                f"  t={ev['t'] * 1e3:9.4f}ms  attempt {ev['attempt']}: "
                f"{ev['kind']}" + (f" ({detail})" if detail else "")
            )
        return "\n".join(lines)
