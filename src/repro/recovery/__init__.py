"""Crash-fault recovery: cycle journal, failover, restart-from-journal.

Sits above :mod:`repro.collio`: when a :class:`~repro.faults.spec.FaultSpec`
carries crash-class rates (``rank_crash_rate`` / ``ost_outage_rate``),
:func:`repro.collio.api.run_collective_write` hands the run to
:func:`~repro.recovery.manager.run_with_recovery`, which reruns the
collective after each permanent fault — re-electing aggregators without
the crashed ranks, remapping stripes off dead targets, and replaying
only the cycles the :class:`~repro.recovery.journal.CycleJournal` has
not committed.
"""

from repro.recovery.journal import CycleJournal, CycleRecord, merge_intervals
from repro.recovery.manager import run_with_recovery, subtract_intervals
from repro.recovery.report import RecoveryReport
from repro.recovery.spec import RecoverySpec

__all__ = [
    "CycleJournal",
    "CycleRecord",
    "RecoveryReport",
    "RecoverySpec",
    "merge_intervals",
    "run_with_recovery",
    "subtract_intervals",
]
