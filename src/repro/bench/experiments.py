"""Experiment definitions for every table and figure of the paper.

Each function returns a plain-data result object that
:mod:`repro.bench.reporting` renders as text.  Two matrix sizes exist:

* ``quick`` — reduced process counts and problem sizes that run in
  minutes on a laptop while preserving every studied regime (multi-node
  placement, I/O-dominance on crill, communication share on Ibex, the
  many-small-extents character of Tile-256);
* ``full`` — the paper's process-count ladders and problem sizes
  (hours of host time; the artifact shapes are the same).

Every case keeps the paper's methodology: 3+ repetitions per series with
fresh noise seeds, min-of-series point estimates, winner counts and
positive-average improvements (see :mod:`repro.analysis.stats`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.stats import (
    Series,
    average_positive_improvement,
    best_algorithm,
    relative_improvement,
)
from repro.bench.runner import Case, MatrixResult, run_matrix, specs_for
from repro.collio.api import RunSpec, run_collective_write
from repro.collio.config import CollectiveConfig
from repro.collio.overlap import ALGORITHMS, ASYNC_WRITE_ALGORITHMS
from repro.config import DEFAULT_SCALE, DEFAULT_SEED
from repro.fs.presets import lustre_like
from repro.units import MiB
from repro.workloads import make_workload

__all__ = [
    "ALGORITHM_ORDER",
    "SHUFFLE_ORDER",
    "BENCHMARK_ORDER",
    "table1_cases",
    "fig4_cases",
    "table1",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "breakdown",
    "lustre_note",
    "read_study",
    "overlap_study",
    "twolayer_study",
    "staging_study",
    "STAGING_POLICY_ORDER",
]

ALGORITHM_ORDER = ["no_overlap", "comm_overlap", "write_overlap", "write_comm", "write_comm2"]
SHUFFLE_ORDER = ["two_sided", "one_sided_fence", "one_sided_lock"]
BENCHMARK_ORDER = ["ior", "tile_256", "tile_1m", "flash"]
CLUSTERS = ["crill", "ibex"]

# --------------------------------------------------------------------------
# Matrices
# --------------------------------------------------------------------------

#: Quick-mode problem-size overrides (post-scale byte values) chosen so a
#: case runs in seconds while keeping its regime; full mode uses the
#: paper's sizes (workload defaults).
_QUICK_SIZE: dict[str, tuple] = {
    "ior": (("block_size", 4 * MiB),),
    "tile_1m": (("element_size", 4096),),
    "tile_256": (("rows", 256), ("row_elements", 16)),
    "flash": (),
}

#: Process-count ladders.  All counts span >= 2 nodes on both clusters
#: (crill has 48 cores/node, Ibex 40): single-node runs are not a regime
#: the paper evaluates.
_LADDERS = {
    "quick": {
        "ior": [96, 144],
        "tile_256": [64, 100],
        "tile_1m": [100, 144],
        "flash": [96, 144],
    },
    "full": {
        "ior": [64, 128, 192, 256, 320, 384, 448, 512, 576, 704],
        "tile_256": [64, 100, 144, 196, 256, 400, 576, 704],
        "tile_1m": [64, 100, 144, 196, 256, 400, 576, 704],
        "flash": [64, 128, 192, 256, 320, 384, 448, 512, 576, 704],
    },
}

#: Extra problem-size variants (full mode only), mirroring the paper's
#: "problem sizes" dimension of Table I.
_FULL_SIZE_VARIANTS: dict[str, list[tuple]] = {
    "ior": [(), (("block_size", 8 * MiB),), (("block_size", 32 * MiB),)],
    "tile_256": [()],
    "tile_1m": [()],
    "flash": [(), (("blocks_per_proc", 20),)],
}


def _sizes(benchmark: str, mode: str) -> list[tuple]:
    if mode == "quick":
        return [_QUICK_SIZE[benchmark]]
    return _FULL_SIZE_VARIANTS[benchmark]


def table1_cases(mode: str = "quick") -> list[Case]:
    """The (benchmark, platform, process count, size) matrix of Table I."""
    ladder = _LADDERS[mode]
    cases = []
    for benchmark in BENCHMARK_ORDER:
        for cluster in CLUSTERS:
            for nprocs in ladder[benchmark]:
                for size in _sizes(benchmark, mode):
                    cases.append(Case(benchmark, cluster, nprocs, size))
    return cases


def fig4_cases(mode: str = "quick") -> list[Case]:
    """Fig. 4's matrix: IOR and both Tile I/O configurations."""
    ladder = _LADDERS[mode]
    cases = []
    for benchmark in ("ior", "tile_256", "tile_1m"):
        for cluster in CLUSTERS:
            counts = ladder[benchmark]
            if mode == "full" and benchmark == "tile_256":
                # Sec. IV-B's scale trend needs crill points on both sides
                # of the 256-process threshold.
                counts = sorted(set(counts) | {100, 256, 400})
            for nprocs in counts:
                for size in _sizes(benchmark, mode):
                    cases.append(Case(benchmark, cluster, nprocs, size))
    return cases


# --------------------------------------------------------------------------
# Table I
# --------------------------------------------------------------------------

@dataclass
class Table1Result:
    """Winner counts per benchmark row (the paper's Table I)."""

    rows: dict[str, dict[str, int]] = field(default_factory=dict)
    matrix: MatrixResult | None = None

    @property
    def totals(self) -> dict[str, int]:
        out = {a: 0 for a in ALGORITHM_ORDER}
        for row in self.rows.values():
            for a, n in row.items():
                out[a] += n
        return out

    @property
    def total_cases(self) -> int:
        return sum(self.totals.values())

    def async_write_share(self) -> float:
        """Fraction of cases won by an asynchronous-write algorithm."""
        totals = self.totals
        won = sum(n for a, n in totals.items() if a in ASYNC_WRITE_ALGORITHMS)
        return won / max(1, self.total_cases)


def table1(
    mode: str = "quick",
    reps: int = 3,
    scale: int = DEFAULT_SCALE,
    matrix: MatrixResult | None = None,
    progress=None,
    jobs: int = 1,
) -> Table1Result:
    """Reproduce Table I: count, per benchmark, the winning algorithm."""
    if matrix is None:
        matrix = run_matrix(
            table1_cases(mode), ALGORITHM_ORDER, reps=reps, scale=scale,
            progress=progress, jobs=jobs,
        )
    result = Table1Result(matrix=matrix)
    for benchmark in BENCHMARK_ORDER:
        row = {a: 0 for a in ALGORITHM_ORDER}
        for case_result in matrix.cases(benchmark=benchmark):
            row[best_algorithm(case_result.by_algorithm())] += 1
        result.rows[benchmark] = row
    return result


# --------------------------------------------------------------------------
# Figure 1 — Tile-1M execution times
# --------------------------------------------------------------------------

@dataclass
class Fig1Result:
    """Execution time per (cluster, nprocs, algorithm), min-of-series."""

    points: dict[tuple[str, int, str], float] = field(default_factory=dict)
    nprocs_list: list[int] = field(default_factory=list)

    def improvement(self, cluster: str, nprocs: int) -> float:
        """Best overlap algorithm's gain over the baseline."""
        base = self.points[(cluster, nprocs, "no_overlap")]
        best = min(
            self.points[(cluster, nprocs, a)] for a in ALGORITHM_ORDER if a != "no_overlap"
        )
        return relative_improvement(base, best)


def fig1(
    mode: str = "quick", reps: int = 3, scale: int = DEFAULT_SCALE, progress=None,
    jobs: int = 1,
) -> Fig1Result:
    """Reproduce Fig. 1: Tile-1M at two process counts on both clusters."""
    counts = [256, 576] if mode == "full" else [100, 196]
    size = _sizes("tile_1m", mode)[0]
    result = Fig1Result(nprocs_list=counts)
    cases = [Case("tile_1m", cluster, nprocs, size)
             for cluster in CLUSTERS for nprocs in counts]
    matrix = run_matrix(cases, ALGORITHM_ORDER, reps=reps, scale=scale,
                        progress=progress, jobs=jobs)
    for case, case_result in zip(cases, matrix.results):
        for algorithm, series in case_result.by_algorithm().items():
            result.points[(case.cluster, case.nprocs, algorithm)] = series.point
    return result


# --------------------------------------------------------------------------
# Figures 2 and 3 — average positive improvement
# --------------------------------------------------------------------------

@dataclass
class ImprovementResult:
    """Average positive improvement per (algorithm, benchmark) on a cluster."""

    cluster: str
    #: (algorithm, benchmark) -> mean positive improvement, or None.
    values: dict[tuple[str, str], float | None] = field(default_factory=dict)

    def range_over_all(self) -> tuple[float, float]:
        present = [v for v in self.values.values() if v is not None]
        if not present:
            return (0.0, 0.0)
        return (min(present), max(present))


def _improvements(matrix: MatrixResult, cluster: str) -> ImprovementResult:
    result = ImprovementResult(cluster)
    for benchmark in BENCHMARK_ORDER:
        cases = [r.by_algorithm() for r in matrix.cases(benchmark=benchmark, cluster=cluster)]
        for algorithm in ALGORITHM_ORDER:
            if algorithm == "no_overlap":
                continue
            # A benchmark can be absent from a partial matrix; that is
            # "no data" (None), distinct from the ValueError the stats
            # layer raises when handed an empty tally by mistake.
            result.values[(algorithm, benchmark)] = (
                average_positive_improvement(cases, algorithm) if cases else None
            )
    return result


def fig2(
    mode: str = "quick",
    reps: int = 3,
    scale: int = DEFAULT_SCALE,
    matrix: MatrixResult | None = None,
    progress=None,
    jobs: int = 1,
) -> ImprovementResult:
    """Reproduce Fig. 2 (crill average positive improvements)."""
    if matrix is None:
        matrix = table1(mode, reps=reps, scale=scale, progress=progress,
                        jobs=jobs).matrix
    return _improvements(matrix, "crill")


def fig3(
    mode: str = "quick",
    reps: int = 3,
    scale: int = DEFAULT_SCALE,
    matrix: MatrixResult | None = None,
    progress=None,
    jobs: int = 1,
) -> ImprovementResult:
    """Reproduce Fig. 3 (Ibex average positive improvements)."""
    if matrix is None:
        matrix = table1(mode, reps=reps, scale=scale, progress=progress,
                        jobs=jobs).matrix
    return _improvements(matrix, "ibex")


# --------------------------------------------------------------------------
# Figure 4 — shuffle primitives
# --------------------------------------------------------------------------

@dataclass
class Fig4Result:
    """Winner counts per shuffle primitive (on Write-Comm-2)."""

    rows: dict[str, dict[str, int]] = field(default_factory=dict)
    #: (benchmark, cluster, nprocs) -> winning shuffle, for the scale trend.
    winners: dict[tuple[str, str, int], str] = field(default_factory=dict)
    matrix: MatrixResult | None = None

    @property
    def totals(self) -> dict[str, int]:
        out = {s: 0 for s in SHUFFLE_ORDER}
        for row in self.rows.values():
            for s, n in row.items():
                out[s] += n
        return out

    def two_sided_share(self) -> float:
        totals = self.totals
        return totals["two_sided"] / max(1, sum(totals.values()))

    def crill_onesided_wins(self, min_procs: int = 0, max_procs: int = 10**9) -> int:
        return sum(
            1
            for (b, cl, n), win in self.winners.items()
            if cl == "crill" and min_procs <= n <= max_procs and win != "two_sided"
        )


def fig4(
    mode: str = "quick", reps: int = 3, scale: int = DEFAULT_SCALE, progress=None,
    jobs: int = 1,
) -> Fig4Result:
    """Reproduce Fig. 4: two-sided vs one-sided shuffles on Write-Comm-2."""
    matrix = run_matrix(
        fig4_cases(mode), ["write_comm2"], shuffles=tuple(SHUFFLE_ORDER),
        reps=reps, scale=scale, progress=progress, jobs=jobs,
    )
    result = Fig4Result(matrix=matrix)
    for benchmark in ("ior", "tile_256", "tile_1m"):
        row = {s: 0 for s in SHUFFLE_ORDER}
        for case_result in matrix.cases(benchmark=benchmark):
            series = case_result.by_shuffle("write_comm2")
            winner_name = min(series.items(), key=lambda kv: (kv[1].point, kv[0]))[0]
            row[winner_name] += 1
            c = case_result.case
            result.winners[(benchmark, c.cluster, c.nprocs)] = winner_name
        result.rows[benchmark] = row
    return result


# --------------------------------------------------------------------------
# Sec. IV-A breakdown and Sec. V Lustre note
# --------------------------------------------------------------------------

@dataclass
class BreakdownResult:
    """No-overlap aggregator phase split per (cluster, nprocs)."""

    #: (cluster, nprocs) -> (comm_fraction, io_fraction)
    shares: dict[tuple[str, int], tuple[float, float]] = field(default_factory=dict)


def breakdown(mode: str = "quick", scale: int = DEFAULT_SCALE) -> BreakdownResult:
    """Reproduce Sec. IV-A's communication/IO split (no-overlap, Tile-1M).

    Always uses the paper's Tile-1M problem size — the quoted 93%/7%
    (crill) vs 77%/23% (Ibex) splits are size-dependent; quick mode only
    reduces the process counts.
    """
    counts = [256, 576] if mode == "full" else [144, 256]
    result = BreakdownResult()
    for cluster in CLUSTERS:
        cluster_spec, fs_spec = specs_for(cluster, scale)
        for nprocs in counts:
            workload = make_workload("tile_1m", nprocs, scale=scale)
            config = CollectiveConfig.for_scale(
                scale, extent_cost_factor=workload.extent_cost_factor
            )
            run = run_collective_write(
                RunSpec(
                    cluster=cluster_spec, fs=fs_spec, nprocs=nprocs,
                    views=workload.views(), algorithm="no_overlap",
                    config=config, carry_data=False,
                )
            )
            agg = run.per_rank_stats[0]  # rank 0 is always an aggregator
            comm = agg.time_in("shuffle") + agg.time_in("shuffle_init")
            io = agg.time_in("write")
            total = comm + io
            result.shares[(cluster, nprocs)] = (comm / total, io / total)
    return result


@dataclass
class ReadStudyResult:
    """Collective-read extension study: algorithm x scatter times."""

    #: (cluster, algorithm, scatter) -> point time
    points: dict[tuple[str, str, str], float] = field(default_factory=dict)

    def gain(self, cluster: str, algorithm: str, scatter: str = "two_sided") -> float:
        base = self.points[(cluster, "no_overlap", scatter)]
        return relative_improvement(base, self.points[(cluster, algorithm, scatter)])

    def render(self) -> str:
        lines = ["EXTENSION — two-phase collective READ (IOR pattern)"]
        header = f"{'cluster':8s} {'algorithm':17s} {'scatter':15s} {'time':>12s} {'vs no_overlap':>14s}"
        lines.append(header)
        lines.append("-" * len(header))
        for (cluster, algorithm, scatter), t in sorted(self.points.items()):
            base = self.points[(cluster, "no_overlap", scatter)]
            gain = relative_improvement(base, t)
            lines.append(
                f"{cluster:8s} {algorithm:17s} {scatter:15s} {t * 1e3:>9.2f} ms {gain:>+13.1%}"
            )
        return "\n".join(lines)


def read_study(
    mode: str = "quick", reps: int = 3, scale: int = DEFAULT_SCALE
) -> ReadStudyResult:
    """Extension experiment: the paper's overlap question for collective
    *reads* (read-ahead vs scatter overlap vs no overlap, two-sided vs
    one-sided Get)."""
    from repro.collio.read import run_collective_read

    nprocs = 96 if mode == "quick" else 256
    size = dict(_QUICK_SIZE["ior"]) if mode == "quick" else {}
    result = ReadStudyResult()
    for cluster in CLUSTERS:
        cluster_spec, fs_spec = specs_for(cluster, scale)
        workload = make_workload("ior", nprocs, scale=scale, **size)
        config = CollectiveConfig.for_scale(scale)
        views = workload.views()
        for algorithm in ("no_overlap", "read_ahead", "scatter_overlap"):
            for scatter in ("two_sided", "one_sided_get"):
                series = Series(key=(cluster,), algorithm=algorithm)
                for rep in range(reps):
                    run = run_collective_read(
                        cluster_spec, fs_spec, nprocs, views,
                        algorithm=algorithm, scatter=scatter, config=config,
                        seed=DEFAULT_SEED + 1000 * rep, carry_data=False,
                    )
                    series.add(run.elapsed)
                result.points[(cluster, algorithm, scatter)] = series.point
    return result


@dataclass
class OverlapStudyResult:
    """Span-derived overlap efficiency per algorithm (EXPERIMENTS.md X7).

    Efficiency is the fraction of file-write time hidden under same-rank
    shuffle communication, computed from the exported spans of a traced
    run (see :func:`repro.obs.overlap.overlap_report`).
    """

    cluster: str = "crill"
    nprocs: int = 0
    num_cycles: int = 0
    #: algorithm -> (elapsed, io_time, hidden_time, efficiency)
    rows: dict[str, tuple[float, float, float, float]] = field(default_factory=dict)
    #: Spans of the last (most-overlapped) algorithm, for ``--trace-out``.
    spans: list = field(default_factory=list)

    def efficiency(self, algorithm: str) -> float:
        return self.rows[algorithm][3]


def overlap_study(
    mode: str = "quick", scale: int = DEFAULT_SCALE, cluster: str = "crill",
) -> OverlapStudyResult:
    """Extension experiment X7: how much write time does each algorithm
    actually hide under the shuffle?

    Runs the four overlap algorithms (plus the baseline) on the crill
    preset with span tracing enabled and derives the overlap efficiency
    from the recorded ``io``/``comm`` spans.  The baseline must come out
    at ~0 (its writes are strictly ordered after the shuffle) and every
    overlap algorithm above it.  The algorithms that keep a shuffle
    posted across the blocking write (Comm-Overlap, Write-Comm) cover
    most of the write interval; the asynchronous-write algorithms are
    bounded by the platform's communication share.
    """
    nprocs = 96 if mode == "quick" else 256
    size = dict(_QUICK_SIZE["ior"]) if mode == "quick" else {}
    cluster_spec, fs_spec = specs_for(cluster, scale)
    workload = make_workload("ior", nprocs, scale=scale, **size)
    config = CollectiveConfig.for_scale(scale)
    views = workload.views()
    result = OverlapStudyResult(cluster=cluster, nprocs=nprocs)
    for algorithm in ALGORITHM_ORDER:
        run = run_collective_write(
            RunSpec(
                cluster=cluster_spec, fs=fs_spec, nprocs=nprocs, views=views,
                algorithm=algorithm, config=config, carry_data=False, trace=True,
            )
        )
        report = run.overlap_report()
        result.rows[algorithm] = (
            run.elapsed, report.io_time, report.hidden_time, report.efficiency
        )
        result.num_cycles = max(result.num_cycles, run.num_cycles)
        result.spans = run.spans
    return result


@dataclass
class LustreResult:
    """Write-Overlap's gain over the baseline per file system."""

    #: fs name -> (baseline time, write_overlap time, improvement)
    entries: dict[str, tuple[float, float, float]] = field(default_factory=dict)

    def gain(self, fs: str) -> float:
        return self.entries[fs][2]


def lustre_note(
    mode: str = "quick", reps: int = 3, scale: int = DEFAULT_SCALE
) -> LustreResult:
    """Reproduce the Sec. V observation: poor aio support (Lustre-like)
    erases the advantage of asynchronous-write overlap."""
    nprocs = 96 if mode == "quick" else 256
    size = dict(_QUICK_SIZE["ior"]) if mode == "quick" else {}
    cluster_spec, beegfs = specs_for("ibex", scale)
    result = LustreResult()
    for fs_name, fs_spec in (("beegfs", beegfs), ("lustre", lustre_like(scale=scale))):
        workload = make_workload("ior", nprocs, scale=scale, **size)
        config = CollectiveConfig.for_scale(scale)
        views = workload.views()
        times = {}
        for algorithm in ("no_overlap", "write_overlap"):
            series = Series(key=(fs_name,), algorithm=algorithm)
            for rep in range(reps):
                run = run_collective_write(
                    RunSpec(
                        cluster=cluster_spec, fs=fs_spec, nprocs=nprocs,
                        views=views, algorithm=algorithm, config=config,
                        seed=DEFAULT_SEED + 1000 * rep, carry_data=False,
                    )
                )
                series.add(run.elapsed)
            times[algorithm] = series.point
        gain = relative_improvement(times["no_overlap"], times["write_overlap"])
        result.entries[fs_name] = (times["no_overlap"], times["write_overlap"], gain)
    return result


# --------------------------------------------------------------------------
# Two-layer aggregation study
# --------------------------------------------------------------------------

@dataclass
class TwoLayerRow:
    """One (placement, algorithm, shuffle) point of the two-layer sweep."""

    nodes: int
    ranks_per_node: int
    nprocs: int
    algorithm: str
    shuffle: str
    #: Inter-node message counts (single-layer vs two-layer).
    inter_base: int
    inter_two: int
    #: Intra-node gather messages of the two-layer run.
    gather: int
    #: Min-of-series elapsed times, seconds.
    t_base: float
    t_two: float

    @property
    def reduction(self) -> float:
        """Inter-node message-count reduction factor (base / two-layer)."""
        return self.inter_base / self.inter_two if self.inter_two else float("inf")

    @property
    def speedup(self) -> float:
        return self.t_base / self.t_two if self.t_two else float("inf")


@dataclass
class TwoLayerStudyResult:
    """The node-count x algorithm sweep of two-layer aggregation."""

    cluster: str
    benchmark: str
    rows: list[TwoLayerRow] = field(default_factory=list)

    def min_reduction(self, min_ranks_per_node: int = 4) -> float:
        """Smallest message-reduction factor over placements with at
        least ``min_ranks_per_node`` ranks per node (the acceptance bar:
        it must be >= the ranks-per-node factor)."""
        eligible = [r for r in self.rows if r.ranks_per_node >= min_ranks_per_node]
        return min(r.reduction for r in eligible) if eligible else 0.0

    def best_speedup(self) -> float:
        return max((r.speedup for r in self.rows), default=0.0)


def twolayer_study(
    mode: str = "quick",
    reps: int = 3,
    scale: int = DEFAULT_SCALE,
    progress=None,
) -> TwoLayerStudyResult:
    """Sweep node counts x algorithms, single- vs two-layer aggregation.

    Uses the comm-heavy regime: Ibex's fast BeeGFS keeps the
    communication share high, and a segmented IOR layout (every segment
    holds all ranks' blocks in rank order) interleaves each rank's data
    across every aggregator's file domain, so nearly all shuffle traffic
    crosses nodes.  Reports, per placement and algorithm, the inter-node
    message counts of both layerings and their min-of-series times.
    Message counts are deterministic (placement-derived), times use the
    usual repetition methodology.
    """
    from dataclasses import replace as _replace

    from repro.bench.runner import specs_for

    benchmark = "ior"
    cluster = "ibex"
    base_cluster, fs_spec = specs_for(cluster, scale)
    if mode == "quick":
        placements = [(2, 4), (4, 4), (4, 8), (16, 8)]
        shuffles = ["two_sided", "one_sided_fence"]
        size = {"block_size": 4096, "segment_count": 16}
    else:
        placements = [(2, 8), (4, 8), (8, 8), (16, 8), (16, 16)]
        shuffles = list(SHUFFLE_ORDER)
        size = {"block_size": 4096, "segment_count": 32}
    result = TwoLayerStudyResult(cluster=cluster, benchmark=benchmark)
    for nodes, rpn in placements:
        nprocs = nodes * rpn
        cluster_spec = _replace(base_cluster, cores_per_node=rpn)
        workload = make_workload(benchmark, nprocs, scale=scale, **size)
        config = CollectiveConfig.for_scale(
            scale, extent_cost_factor=workload.extent_cost_factor
        )
        views = workload.views()
        for algorithm in ALGORITHM_ORDER:
            for shuffle in shuffles:
                counts = {}
                times = {}
                for two_layer in (False, True):
                    series = Series(key=(nodes, rpn), algorithm=algorithm)
                    last = None
                    for rep in range(reps):
                        last = run_collective_write(
                            RunSpec(
                                cluster=cluster_spec, fs=fs_spec, nprocs=nprocs,
                                views=views, algorithm=algorithm, shuffle=shuffle,
                                config=config, seed=DEFAULT_SEED + 1000 * rep,
                                carry_data=False, two_layer=two_layer,
                            )
                        )
                        series.add(last.elapsed)
                    counters = last.metrics.get("counters", {})
                    counts[two_layer] = (
                        counters.get("comm.messages_inter_node", 0),
                        counters.get("intranode.gather_messages", 0),
                    )
                    times[two_layer] = series.point
                row = TwoLayerRow(
                    nodes=nodes, ranks_per_node=rpn, nprocs=nprocs,
                    algorithm=algorithm, shuffle=shuffle,
                    inter_base=counts[False][0], inter_two=counts[True][0],
                    gather=counts[True][1],
                    t_base=times[False], t_two=times[True],
                )
                result.rows.append(row)
                if progress is not None:
                    progress(nodes, rpn, algorithm, shuffle, row)
    return result


# --------------------------------------------------------------------------
# X10 — burst-buffer staging: drain policies vs direct writes
# --------------------------------------------------------------------------

#: Order the staging study reports policies in (off first, then the
#: paper-style escalation from fully deferred to fully overlapped).
STAGING_POLICY_ORDER = ["end_of_job", "watermark", "immediate"]


@dataclass
class StagingRow:
    """One (algorithm, regime) cell of the staging study."""

    algorithm: str
    regime: str
    t_direct: float
    #: Min-of-series elapsed per drain policy.
    times: dict = field(default_factory=dict)
    #: Back-pressure stall count per policy (last rep's counters).
    stalls: dict = field(default_factory=dict)
    #: Drained bytes per policy (conservation witness).
    drained: dict = field(default_factory=dict)

    def speedup(self, policy: str) -> float:
        """end_of_job time over this policy's time (>1 = overlap won)."""
        t = self.times.get(policy, 0.0)
        return self.times.get("end_of_job", 0.0) / t if t else float("inf")

    @property
    def async_wins(self) -> bool:
        """True when the best overlapping policy strictly beats end_of_job."""
        overlapped = min(self.times["immediate"], self.times["watermark"])
        return overlapped < self.times["end_of_job"]


@dataclass
class StagingStudyResult:
    """The algorithm x regime sweep of the burst-buffer staging tier."""

    cluster: str
    benchmark: str
    nprocs: int
    rows: list[StagingRow] = field(default_factory=list)
    #: Per-algorithm file hashes: {algorithm: {label: sha256}} where the
    #: labels are "direct" and the three drain policies.  Identical
    #: hashes across labels prove staging never changes file contents.
    shas: dict = field(default_factory=dict)
    #: Spans of one traced drain-bound immediate run (for --trace-out).
    spans: list = field(default_factory=list, repr=False)

    def sha_identical(self) -> bool:
        return all(len(set(by_label.values())) == 1 for by_label in self.shas.values())

    def async_wins_everywhere(self) -> bool:
        """The acceptance bar: on the drain-bound regime, overlapped
        draining strictly beats end_of_job for every algorithm."""
        drain_bound = [r for r in self.rows if r.regime == "drain_bound"]
        return bool(drain_bound) and all(r.async_wins for r in drain_bound)


def _staging_regimes(scale: int, capacity: int) -> dict[str, "object"]:
    """The two staging regimes of the study, as scaled StagingSpecs.

    * ``drain_bound`` — a fast NVMe absorbs at 8 GB/s but the shared
      node-to-PFS drain link runs at 300 MB/s: the slow link bounds how
      much of the drain any schedule can hide, so the policies separate
      by how early they start it.
    * ``absorb_bound`` — the mirror image (slow absorb, fast drain link):
      the PFS becomes the drain bottleneck and an overlapped drain hides
      nearly all of it behind the slow absorbs — the largest wins.

    ``capacity`` (scaled bytes) is sized by the caller just above the
    per-node job bytes: ``end_of_job`` defers everything (the un-overlapped
    baseline), while the lowered high watermark makes the ``watermark``
    policy start draining mid-job — three visibly distinct schedules.
    """
    from repro.staging import StagingSpec
    from repro.units import GB, MB

    marks = {"high_watermark": 0.3, "low_watermark": 0.1}
    return {
        "drain_bound": StagingSpec.for_scale(
            scale, capacity=capacity,
            absorb_bandwidth=8 * GB, drain_bandwidth=300 * MB, **marks,
        ),
        "absorb_bound": StagingSpec.for_scale(
            scale, capacity=capacity,
            absorb_bandwidth=300 * MB, drain_bandwidth=8 * GB, **marks,
        ),
    }


def staging_study(
    mode: str = "quick",
    reps: int = 3,
    scale: int = DEFAULT_SCALE,
    progress=None,
) -> StagingStudyResult:
    """Sweep algorithms x drain policies on drain- and absorb-bound tiers.

    Timing rows use size-only runs with the usual repetition methodology
    (min-of-series, fresh noise seeds).  A separate verified pass runs
    every (algorithm, policy) with real data and records the sha256 of
    the file bytes read back from the PFS: staging must never change
    what lands in the file, only when it lands.
    """
    from dataclasses import replace as _replace

    from repro.config import scaled
    from repro.units import MiB

    benchmark = "ior"
    cluster = "crill"
    base_cluster, fs_spec = specs_for(cluster, scale)
    if mode == "quick":
        rpn, nodes = 8, 2
        size = {"block_size": 256 * 1024, "segment_count": 8}
    else:
        rpn, nodes = 8, 4
        size = {"block_size": 512 * 1024, "segment_count": 16}
    nprocs = rpn * nodes
    cluster_spec = _replace(base_cluster, cores_per_node=rpn)
    workload = make_workload(benchmark, nprocs, scale=scale, **size)
    # A small collective buffer gives the job many internal cycles (the
    # units the drain scheduler overlaps); the tier capacity sits just
    # above a node's job bytes so end_of_job fully defers while the
    # lowered watermark starts draining mid-job.
    config = CollectiveConfig.for_scale(
        scale, extent_cost_factor=workload.extent_cost_factor,
        cb_buffer_size=scaled(2 * MiB, scale),
    )
    views = workload.views()
    total_bytes = sum(v.total_bytes for v in views.values())
    capacity = max(scaled(2 * MiB, scale) * 2, total_bytes // nodes * 5 // 4)
    regimes = _staging_regimes(scale, capacity)
    result = StagingStudyResult(cluster=cluster, benchmark=benchmark, nprocs=nprocs)

    def timed(algorithm, staging):
        series = Series(key=(algorithm,), algorithm=algorithm)
        last = None
        for rep in range(reps):
            last = run_collective_write(RunSpec(
                cluster=cluster_spec, fs=fs_spec, nprocs=nprocs, views=views,
                algorithm=algorithm, config=config, staging=staging,
                seed=DEFAULT_SEED + 1000 * rep, carry_data=False,
            ))
            series.add(last.elapsed)
        return series.point, last.metrics.get("counters", {})

    for regime, spec in regimes.items():
        for algorithm in ALGORITHM_ORDER:
            t_direct, _ = timed(algorithm, None)
            row = StagingRow(algorithm=algorithm, regime=regime, t_direct=t_direct)
            for policy in STAGING_POLICY_ORDER:
                t, counters = timed(algorithm, spec.with_(policy=policy))
                row.times[policy] = t
                row.stalls[policy] = counters.get("staging.stalls", 0)
                row.drained[policy] = counters.get("staging.drained_bytes", 0)
            result.rows.append(row)
            if progress is not None:
                progress(regime, algorithm, row)

    # Identity pass: real data, verify=True, hash of the actual file.
    small = make_workload(benchmark, nprocs, scale=scale,
                          block_size=16 * 1024, segment_count=4)
    small_views = small.views()
    for algorithm in ALGORITHM_ORDER:
        by_label: dict[str, str] = {}
        for label, staging in [("direct", None)] + [
            (p, regimes["drain_bound"].with_(policy=p)) for p in STAGING_POLICY_ORDER
        ]:
            run = run_collective_write(RunSpec(
                cluster=cluster_spec, fs=fs_spec, nprocs=nprocs,
                views=small_views, algorithm=algorithm, config=config,
                staging=staging, verify=True,
            ))
            assert run.verified is True
            by_label[label] = run.file_sha256
        result.shas[algorithm] = by_label

    # One traced drain-bound immediate run for the --trace-out artifact.
    traced = run_collective_write(RunSpec(
        cluster=cluster_spec, fs=fs_spec, nprocs=nprocs, views=small_views,
        algorithm="write_overlap", config=config,
        staging=regimes["drain_bound"], verify=True, trace=True,
    ))
    result.spans = traced.spans
    return result
