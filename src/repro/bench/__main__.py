"""Command-line entry point: ``python -m repro.bench <experiment>``.

Examples::

    python -m repro.bench table1               # quick matrix (minutes)
    python -m repro.bench fig4 --reps 5
    python -m repro.bench all --mode quick
    python -m repro.bench table1 --mode full   # the paper's ladders (hours)
    python -m repro.bench tune --benchmark ior --cluster crill \
        --cache-dir /tmp/tune-cache            # auto-tune one scenario
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.bench import experiments, reporting
from repro.config import DEFAULT_SCALE, DEFAULT_SEED

EXPERIMENTS = (
    "table1", "fig1", "fig2", "fig3", "fig4", "breakdown", "lustre",
    "read", "overlap", "twolayer", "staging", "ablations", "tune",
    "chaos", "integrity", "perf", "all",
)


def _progress(case, algorithm, shuffle, series) -> None:
    point = series.point
    label = algorithm if shuffle == "two_sided" else f"{algorithm}/{shuffle}"
    print(f"  [{time.strftime('%H:%M:%S')}] {case.label:40s} {label:28s} {point:.4f}s",
          file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures on the simulator.",
        epilog="Campaign experiments (table1/fig1-fig4, chaos, integrity) "
               "accept --jobs N to fan independent simulated runs out over "
               "N worker processes. Results are byte-identical to a serial "
               "run for any N: per-run seeds are derived from the run's "
               "content, never from scheduling, and results fold back in "
               "serial order (tune has its own --n-workers; --jobs is "
               "honored there as a fallback alias).",
    )
    parser.add_argument("experiment", choices=EXPERIMENTS)
    parser.add_argument("--mode", choices=("quick", "full"), default="quick",
                        help="matrix size: quick (minutes) or full (paper ladders, hours)")
    parser.add_argument("--reps", type=int, default=3,
                        help="measurements per series (paper: 3-9)")
    parser.add_argument("--scale", type=int, default=DEFAULT_SCALE,
                        help="data-size scale divisor (see repro.config)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for campaign fan-out (default: "
                             "1 = serial; any N yields byte-identical output)")
    parser.add_argument("--quiet", action="store_true", help="suppress progress lines")
    parser.add_argument("--csv-dir", default=None,
                        help="also write machine-readable CSVs into this directory")
    parser.add_argument("--trace-out", default=None, metavar="TRACE.JSON",
                        help="write a Chrome trace_event file of the overlap "
                             "experiment's most-overlapped run (overlap only; "
                             "open in chrome://tracing or Perfetto)")
    tune_group = parser.add_argument_group("tune", "options for the 'tune' experiment")
    tune_group.add_argument("--benchmark", default="ior",
                            help="workload registry name (tune; default: ior)")
    tune_group.add_argument("--cluster", default="crill", choices=("crill", "ibex"),
                            help="cluster preset (tune; default: crill)")
    tune_group.add_argument("--fs", default=None,
                            help="fs preset name (tune; default: the cluster's BeeGFS)")
    tune_group.add_argument("--nprocs", type=int, default=8,
                            help="process count of the tuned scenario (default: 8)")
    tune_group.add_argument("--search", choices=("halving", "grid"), default="halving",
                            help="search strategy: successive halving or exhaustive grid")
    tune_group.add_argument("--space", choices=("quick", "full"), default="quick",
                            help="candidate space: quick (~15 points) or full (~240)")
    tune_group.add_argument("--screen-reps", type=int, default=1,
                            help="screening repetitions before promotion (halving)")
    tune_group.add_argument("--n-workers", type=int, default=None,
                            help="simulation worker processes (default: min(8, cpus))")
    tune_group.add_argument("--cache-dir", default=None,
                            help="persistent trial-result cache directory")
    tune_group.add_argument("--seed", type=int, default=DEFAULT_SEED,
                            help=f"base seed of the search (default: {DEFAULT_SEED})")
    chaos_group = parser.add_argument_group("chaos", "options for the 'chaos' experiment")
    chaos_group.add_argument("--faults", default=None, metavar="PRESET",
                             help="run one named fault preset (e.g. flaky_aggregator, "
                                  "ost_outage, degraded_cluster) instead of the "
                                  "built-in crash/outage intensity sweep")
    chaos_group.add_argument("--check-complete", action="store_true",
                             help="exit non-zero unless every chaos run completed "
                                  "and verified (the CI smoke assertion)")
    integrity_group = parser.add_argument_group(
        "integrity", "options for the 'integrity' experiment")
    integrity_group.add_argument(
        "--check-integrity", action="store_true",
        help="exit non-zero unless the campaign reached 100%% detection and "
             "100%% repair with zero false positives under the "
             "bitrot_cluster preset (the CI smoke assertion)")
    staging_group = parser.add_argument_group(
        "staging", "options for the 'staging' experiment")
    staging_group.add_argument(
        "--check-staging", action="store_true",
        help="exit non-zero unless async drain beats end_of_job on the "
             "drain-bound tier for every algorithm AND file bytes are "
             "identical across staging on/off (the CI smoke assertion)")
    perf_group = parser.add_argument_group("perf", "options for the 'perf' experiment")
    perf_group.add_argument("--perf-out", default="BENCH_perf.json",
                            metavar="BENCH_perf.json",
                            help="where to write the perf trajectory point "
                                 "(default: BENCH_perf.json)")
    perf_group.add_argument("--baseline", default=None, metavar="PATH",
                            help="recorded BENCH_perf baseline to gate against")
    perf_group.add_argument("--min-speedup", type=float, default=None,
                            metavar="X",
                            help="fail unless the calibrated medium-scenario "
                                 "speedup vs --baseline is >= X (e.g. 2.0)")
    perf_group.add_argument("--max-regression", type=float, default=None,
                            metavar="FRAC",
                            help="fail if the calibrated medium scenario is "
                                 "more than FRAC slower than --baseline "
                                 "(e.g. 0.10 for 10%%)")
    perf_group.add_argument("--max-integrity-overhead", type=float, default=None,
                            metavar="FRAC",
                            help="fail if integrity mode=detect slows any "
                                 "medium-scale case by more than FRAC in "
                                 "simulated time (e.g. 0.25 for 25%%; "
                                 "absolute gate, needs no --baseline)")
    args = parser.parse_args(argv)

    if args.reps < 1:
        parser.error(f"--reps must be >= 1 (got {args.reps}): at least one "
                     "measurement per series is needed")
    if args.scale < 1:
        parser.error(f"--scale must be >= 1 (got {args.scale}): the scale is a "
                     "divisor applied to all data sizes")
    if args.nprocs < 1:
        parser.error(f"--nprocs must be >= 1 (got {args.nprocs})")
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1 (got {args.jobs}): 1 runs serially, "
                     "N > 1 fans runs out over N worker processes")
    if args.n_workers is not None and args.n_workers < 1:
        parser.error(f"--n-workers must be >= 1 (got {args.n_workers})")
    if args.screen_reps < 1:
        parser.error(f"--screen-reps must be >= 1 (got {args.screen_reps})")
    if args.screen_reps > args.reps:
        parser.error(f"--screen-reps ({args.screen_reps}) cannot exceed "
                     f"--reps ({args.reps})")
    if args.trace_out and args.experiment not in ("overlap", "staging", "all"):
        parser.error("--trace-out is only meaningful with the 'overlap' or "
                     "'staging' experiments (or 'all')")
    if (args.faults or args.check_complete) and args.experiment not in ("chaos", "all"):
        parser.error("--faults/--check-complete are only meaningful with the "
                     "'chaos' experiment (or 'all')")
    if args.check_staging and args.experiment not in ("staging", "all"):
        parser.error("--check-staging is only meaningful with the 'staging' "
                     "experiment (or 'all')")
    if args.check_integrity and args.experiment not in ("integrity", "all"):
        parser.error("--check-integrity is only meaningful with the "
                     "'integrity' experiment (or 'all')")
    if (args.baseline or args.min_speedup or args.max_regression
            or args.max_integrity_overhead is not None) \
            and args.experiment != "perf":
        parser.error("--baseline/--min-speedup/--max-regression/"
                     "--max-integrity-overhead are only meaningful with "
                     "the 'perf' experiment")
    if (args.min_speedup or args.max_regression) and not args.baseline:
        parser.error("--min-speedup/--max-regression need --baseline")

    csv_files: dict[str, str] = {}
    chaos_failed = False
    staging_failed = False
    integrity_failed = False
    perf_failed = False

    progress = None if args.quiet else _progress
    kwargs = dict(mode=args.mode, reps=args.reps, scale=args.scale, jobs=args.jobs)

    started = time.time()
    outputs: list[str] = []
    if args.experiment in ("table1", "fig2", "fig3", "all"):
        shared = None
        if args.experiment in ("table1", "all") or shared is None:
            t1 = experiments.table1(progress=progress, **kwargs)
            shared = t1.matrix
            if args.experiment in ("table1", "all"):
                outputs.append(reporting.render_table1(t1))
                csv_files["table1.csv"] = reporting.table1_csv(t1)
        if args.experiment in ("fig2", "all"):
            f2 = experiments.fig2(matrix=shared, **kwargs)
            outputs.append(reporting.render_improvements(f2, "FIG. 2"))
            csv_files["fig2.csv"] = reporting.improvements_csv(f2)
        if args.experiment in ("fig3", "all"):
            f3 = experiments.fig3(matrix=shared, **kwargs)
            outputs.append(reporting.render_improvements(f3, "FIG. 3"))
            csv_files["fig3.csv"] = reporting.improvements_csv(f3)
    if args.experiment in ("fig1", "all"):
        f1 = experiments.fig1(progress=progress, **kwargs)
        outputs.append(reporting.render_fig1(f1))
        csv_files["fig1.csv"] = reporting.fig1_csv(f1)
    if args.experiment in ("fig4", "all"):
        f4 = experiments.fig4(progress=progress, **kwargs)
        outputs.append(reporting.render_fig4(f4))
        csv_files["fig4.csv"] = reporting.fig4_csv(f4)
    if args.experiment in ("breakdown", "all"):
        outputs.append(
            reporting.render_breakdown(
                experiments.breakdown(mode=args.mode, scale=args.scale)
            )
        )
    if args.experiment in ("lustre", "all"):
        outputs.append(
            reporting.render_lustre(
                experiments.lustre_note(mode=args.mode, reps=args.reps, scale=args.scale)
            )
        )
    if args.experiment == "read":
        outputs.append(
            experiments.read_study(mode=args.mode, reps=args.reps, scale=args.scale).render()
        )
    if args.experiment in ("overlap", "all"):
        if not args.quiet:
            print("  running overlap-efficiency study ...", file=sys.stderr)
        ov = experiments.overlap_study(mode=args.mode, scale=args.scale)
        outputs.append(reporting.render_overlap(ov))
        csv_files["overlap.csv"] = reporting.overlap_csv(ov)
        if args.trace_out:
            from repro.obs import write_chrome_trace

            write_chrome_trace(args.trace_out, ov.spans)
            print(f"[wrote {args.trace_out}]", file=sys.stderr)
    if args.experiment in ("twolayer", "all"):
        def twolayer_progress(nodes, rpn, algorithm, shuffle, row):
            print(f"  [{time.strftime('%H:%M:%S')}] twolayer {nodes}x{rpn} "
                  f"{algorithm}/{shuffle}: inter {row.inter_base}->{row.inter_two} "
                  f"({row.reduction:.1f}x), {row.speedup:.2f}x speedup",
                  file=sys.stderr)

        tl = experiments.twolayer_study(
            mode=args.mode, reps=args.reps, scale=args.scale,
            progress=None if args.quiet else twolayer_progress,
        )
        outputs.append(reporting.render_twolayer(tl))
        csv_files["twolayer.csv"] = reporting.twolayer_csv(tl)
    if args.experiment in ("staging", "all"):
        def staging_progress(regime, algorithm, row):
            print(f"  [{time.strftime('%H:%M:%S')}] staging {regime:13s} "
                  f"{algorithm}: eoj {row.times['end_of_job']:.4f}s -> "
                  f"imm {row.times['immediate']:.4f}s "
                  f"({row.speedup('immediate'):.2f}x)", file=sys.stderr)

        st = experiments.staging_study(
            mode=args.mode, reps=args.reps, scale=args.scale,
            progress=None if args.quiet else staging_progress,
        )
        outputs.append(reporting.render_staging(st))
        csv_files["staging.csv"] = reporting.staging_csv(st)
        if args.trace_out and args.experiment == "staging":
            from repro.obs import write_chrome_trace

            write_chrome_trace(args.trace_out, st.spans)
            print(f"[wrote {args.trace_out}]", file=sys.stderr)
        if args.check_staging:
            if not st.async_wins_everywhere():
                print("staging check FAILED: end_of_job was not beaten by an "
                      "overlapped drain policy for every algorithm on the "
                      "drain-bound tier", file=sys.stderr)
                staging_failed = True
            if not st.sha_identical():
                print("staging check FAILED: file bytes differ between "
                      "staging-on and staging-off runs", file=sys.stderr)
                staging_failed = True
    if args.experiment == "tune":
        from repro.sim.trace import Tracer
        from repro.tune import autotune, default_space, full_space
        from repro.workloads import WORKLOADS

        if args.benchmark not in WORKLOADS:
            parser.error(f"--benchmark must be one of {sorted(WORKLOADS)} "
                         f"(got {args.benchmark!r})")
        n_workers = args.n_workers or (
            args.jobs if args.jobs > 1 else max(1, min(8, os.cpu_count() or 1))
        )
        if not args.quiet:
            print(f"  tuning {args.benchmark}@{args.cluster} P={args.nprocs} "
                  f"(search={args.search}, space={args.space}, "
                  f"workers={n_workers}) ...", file=sys.stderr)
        tuning = autotune(
            benchmark=args.benchmark, cluster=args.cluster, nprocs=args.nprocs,
            scale=args.scale, fs=args.fs,
            space=full_space() if args.space == "full" else default_space(),
            search=args.search, reps=args.reps, screen_reps=args.screen_reps,
            n_workers=n_workers, cache_dir=args.cache_dir, base_seed=args.seed,
            tracer=Tracer(),
        )
        outputs.append(reporting.render_tuning(tuning))
        csv_files["tune.csv"] = reporting.tuning_csv(tuning)
    if args.experiment in ("chaos", "all"):
        from repro.bench.chaos import chaos_campaign
        from repro.faults import FAULT_PRESETS

        if args.faults is not None and args.faults not in FAULT_PRESETS:
            parser.error(f"--faults must be one of {sorted(FAULT_PRESETS)} "
                         f"(got {args.faults!r})")

        def chaos_progress(algorithm, level, rep, completed):
            status = "ok" if completed else "FAILED"
            print(f"  [{time.strftime('%H:%M:%S')}] chaos {algorithm:14s} "
                  f"{level:18s} rep {rep}: {status}", file=sys.stderr)

        chaos = chaos_campaign(
            nprocs=args.nprocs, reps=args.reps, scale=args.scale,
            seed=args.seed, faults=args.faults,
            progress=None if args.quiet else chaos_progress,
            jobs=args.jobs,
        )
        outputs.append(reporting.render_chaos(chaos))
        csv_files["chaos.csv"] = reporting.chaos_csv(chaos)
        chaos_failed = args.check_complete and chaos.completion_rate < 1.0
        if chaos_failed:
            print(f"chaos check FAILED: completion rate "
                  f"{chaos.completion_rate:.0%} < 100%", file=sys.stderr)
    if args.experiment in ("integrity", "all"):
        from repro.bench.integrity import integrity_campaign

        def integrity_progress(algorithm, staged, rep, outcome):
            tier = "staged" if staged else "direct"
            print(f"  [{time.strftime('%H:%M:%S')}] integrity {algorithm:14s} "
                  f"{tier:6s} rep {rep}: {outcome}", file=sys.stderr)

        integ = integrity_campaign(
            nprocs=args.nprocs, reps=args.reps, scale=args.scale,
            seed=args.seed,
            progress=None if args.quiet else integrity_progress,
            jobs=args.jobs,
        )
        outputs.append(reporting.render_integrity(integ))
        csv_files["integrity.csv"] = reporting.integrity_csv(integ)
        integrity_failed = args.check_integrity and not integ.check_ok()
        if integrity_failed:
            print(f"integrity check FAILED: detection "
                  f"{integ.detection_rate:.0%}, repair {integ.repair_rate:.0%}, "
                  f"false positives {integ.false_positives}, corrupted runs "
                  f"{integ.corrupted}", file=sys.stderr)
    if args.experiment == "perf":
        import json

        from repro.bench import perf as perf_mod

        def perf_progress(case):
            print(f"  [{time.strftime('%H:%M:%S')}] perf {case.scale:7s} "
                  f"{case.algorithm:15s} staging={'on' if case.staging else 'off':3s} "
                  f"{case.wall_s:.4f}s {case.events_per_s:,.0f} ev/s",
                  file=sys.stderr)

        report = perf_mod.run_perf(
            reps=args.reps, seed=args.seed,
            progress=None if args.quiet else perf_progress,
        )
        outputs.append(report.render())
        report.write(args.perf_out)
        print(f"[wrote {args.perf_out}]", file=sys.stderr)
        if args.baseline:
            with open(args.baseline) as fh:
                baseline = json.load(fh)
            failures = perf_mod.check_against(
                report, baseline,
                min_speedup=args.min_speedup,
                max_regression=args.max_regression,
            )
            for failure in failures:
                print(f"perf check FAILED: {failure}", file=sys.stderr)
            perf_failed = bool(failures)
            if not failures and (args.min_speedup or args.max_regression):
                base_norm = baseline["normalized_medium"]
                cur = report.normalized_medium
                print(f"perf check ok: medium {base_norm / cur:.2f}x vs "
                      f"{args.baseline}", file=sys.stderr)
        if args.max_integrity_overhead is not None:
            failures = perf_mod.integrity_overhead_failures(
                report, args.max_integrity_overhead)
            for failure in failures:
                print(f"perf check FAILED: {failure}", file=sys.stderr)
            perf_failed = perf_failed or bool(failures)
            if not failures:
                print(f"perf check ok: integrity detect overhead "
                      f"{report.max_integrity_overhead:+.1%} <= "
                      f"{args.max_integrity_overhead:.0%}", file=sys.stderr)
    if args.experiment == "ablations":
        from repro.bench.ablations import ALL_ABLATIONS

        for name, fn in ALL_ABLATIONS.items():
            if not args.quiet:
                print(f"  running ablation {name} ...", file=sys.stderr)
            outputs.append(fn(reps=args.reps, scale=args.scale).render())

    print("\n\n".join(outputs))
    if args.csv_dir and csv_files:
        os.makedirs(args.csv_dir, exist_ok=True)
        for name, content in csv_files.items():
            path = os.path.join(args.csv_dir, name)
            with open(path, "w") as fh:
                fh.write(content)
            print(f"[wrote {path}]", file=sys.stderr)
    print(f"\n[elapsed {time.time() - started:.0f}s, mode={args.mode}, "
          f"reps={args.reps}, scale={args.scale}]", file=sys.stderr)
    return 1 if (chaos_failed or staging_failed or integrity_failed
                 or perf_failed) else 0


if __name__ == "__main__":
    raise SystemExit(main())
