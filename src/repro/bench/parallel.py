"""Shared parallel executor for campaign fan-out.

Every campaign in this package (and the auto-tuner's
:class:`~repro.tune.evaluate.Evaluator`) fans independent simulated runs
out over a ``multiprocessing`` pool through :func:`parallel_map`.  The
contract that makes ``--jobs 4`` output byte-identical to serial runs:

* **Tasks are pure module-level functions of plain data.**  Workers
  receive a picklable descriptor, rebuild specs/views/config locally and
  return plain scalars — no live simulator object ever crosses the pool
  boundary, so fork/spawn differences cannot leak into results.
* **Order-preserving fold.**  ``parallel_map`` returns results in input
  order (``Pool.map``, not ``imap_unordered``), and the campaigns fold
  them into cells in exactly the order the serial loop would have; the
  rendered tables and CSVs come out byte-for-byte identical.
* **Content-hash seeds.**  Any seed a task needs is either an explicit
  arithmetic derivation carried inside the descriptor (``seed + rep``)
  or :func:`content_seed` of the descriptor itself — never a function of
  worker identity, scheduling order or Python's hash randomization.

``jobs=1`` runs inline (no processes spawned), which is also the
reference the parallel-determinism tests compare against.
"""

from __future__ import annotations

import multiprocessing

__all__ = ["parallel_map", "content_seed", "pool_context"]


def pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (cheap, inherits sys.path); fall back to spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def content_seed(payload: dict, modulus: int = 2**31 - 1) -> int:
    """Deterministic seed from a stable content hash of ``payload``.

    ``payload`` must be plain data (the :func:`~repro.tune.cache.stable_key`
    contract).  Independent of evaluation order, worker count and hash
    randomization — the same descriptor always draws the same noise
    stream, so parallel and serial campaigns agree bit-for-bit.
    """
    # Imported lazily: repro.tune imports this module at package-init
    # time, so a module-level import here would be circular.
    from repro.tune.cache import stable_key

    return int(stable_key(payload)[:15], 16) % modulus


def parallel_map(fn, items, jobs: int = 1) -> list:
    """Map ``fn`` over ``items``, preserving input order.

    ``fn`` must be a module-level function (picklable by reference) and
    ``items`` picklable plain data.  ``jobs=1`` — or a single item —
    evaluates inline in the calling process; ``jobs>1`` fans out over a
    pool of ``min(jobs, len(items))`` workers.  Either way the result
    list lines up index-for-index with ``items``.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    items = list(items)
    if jobs == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with pool_context().Pool(min(jobs, len(items))) as pool:
        return pool.map(fn, items)
