"""Extension experiment X8: the chaos campaign.

Sweeps crash-class fault intensity (rank crashes + OST outages) across
all five overlap algorithms and reports, per cell:

* **completion rate** — fraction of runs that finished *and* verified
  byte-exactly against the fault-free expectation;
* **recovery latency** — simulated time spent in detection/failover gaps;
* **slowdown** — elapsed vs the fault-free run of the same seed.

Every chaos run goes through the restart-from-journal recovery manager
(:mod:`repro.recovery`), so a completion-rate below 1.0 would mean the
failover protocol itself lost data — the campaign doubles as the
acceptance test of the recovery subsystem (the CI smoke job asserts 100%
under the ``flaky_aggregator`` preset).

The fault window is rescaled per algorithm to ~80% of the measured
fault-free duration, so faults land *inside* the collective whatever the
scenario size; preset fault specs (``--faults flaky_aggregator``) get
the same rescale applied to their ``crash_window``.

The platform is deliberately small (4 nodes, 4 storage targets): chaos
reruns the whole collective once per failover, and a small target count
makes degraded striping (stripes of a dead OST remapped onto survivors)
a visible fraction of the load.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.parallel import parallel_map
from repro.collio.api import RunSpec, run_collective_write
from repro.collio.view import FileView
from repro.config import DEFAULT_SCALE, DEFAULT_SEED
from repro.errors import ReproError
from repro.faults.presets import fault_preset
from repro.faults.spec import FaultSpec
from repro.fs.presets import FsSpec
from repro.hardware.cluster import ClusterSpec
from repro.units import KiB, MB

__all__ = ["ChaosCell", "ChaosCampaignResult", "chaos_campaign", "CHAOS_LEVELS"]

#: The intensity sweep: (label, rank_crash_rate, ost_outage_rate).
CHAOS_LEVELS: tuple[tuple[str, float, float], ...] = (
    ("low", 0.20, 0.10),
    ("mid", 0.50, 0.30),
    ("high", 0.80, 0.60),
)

#: Every overlap algorithm must survive the campaign.
CHAOS_ALGORITHMS = (
    "no_overlap", "comm_overlap", "write_overlap", "write_comm", "write_comm2",
)


def _chaos_cluster() -> ClusterSpec:
    return ClusterSpec(
        name="chaos",
        num_nodes=4,
        cores_per_node=4,
        network_bandwidth=1000 * MB,
        network_latency=1e-6,
        eager_threshold=1024,
    )


def _chaos_fs() -> FsSpec:
    return FsSpec(
        name="chaosfs",
        num_targets=4,
        target_bandwidth=300 * MB,
        target_latency=5e-5,
        stripe_size=4096,
    )


@dataclass
class ChaosCell:
    """One (algorithm, fault level) cell of the campaign."""

    algorithm: str
    level: str
    runs: int = 0
    completions: int = 0
    #: Mean recovery attempts of the completed runs (1.0 = never failed over).
    attempts: float = 0.0
    #: Mean elapsed / fault-free elapsed of the completed runs.
    slowdown: float = 0.0
    #: Mean simulated seconds spent in detection + failover gaps.
    recovery_latency: float = 0.0
    rank_crashes: int = 0
    ost_outages: int = 0
    replayed_bytes: int = 0

    @property
    def completion_rate(self) -> float:
        return self.completions / self.runs if self.runs else 0.0


@dataclass
class ChaosCampaignResult:
    """The whole campaign: one :class:`ChaosCell` per (algorithm, level)."""

    nprocs: int
    reps: int
    #: Preset name when the campaign ran one named fault preset, else None
    #: (the built-in intensity sweep).
    preset: str | None = None
    cells: list[ChaosCell] = field(default_factory=list)
    #: algorithm -> fault-free elapsed at the base seed, seconds.
    baselines: dict[str, float] = field(default_factory=dict)

    @property
    def levels(self) -> list[str]:
        seen: list[str] = []
        for cell in self.cells:
            if cell.level not in seen:
                seen.append(cell.level)
        return seen

    def cell(self, algorithm: str, level: str) -> ChaosCell:
        for c in self.cells:
            if c.algorithm == algorithm and c.level == level:
                return c
        raise KeyError((algorithm, level))

    @property
    def completion_rate(self) -> float:
        """Campaign-wide completion rate."""
        runs = sum(c.runs for c in self.cells)
        return sum(c.completions for c in self.cells) / runs if runs else 0.0


def _fault_levels(preset: str | None) -> list[tuple[str, FaultSpec]]:
    """The fault specs to sweep (window rescaled later per algorithm)."""
    if preset is not None:
        return [(preset, fault_preset(preset))]
    return [
        (label, FaultSpec(rank_crash_rate=crash, ost_outage_rate=outage,
                          crash_window=1.0))
        for label, crash, outage in CHAOS_LEVELS
    ]


def _chaos_views(nprocs: int, per_rank: int) -> dict[int, FileView]:
    return {r: FileView.contiguous(r * per_rank, per_rank) for r in range(nprocs)}


def _chaos_baseline(task: tuple) -> float:
    """Fault-free elapsed of one (algorithm, seed) run (pool-importable)."""
    algorithm, rep_seed, nprocs, per_rank = task
    return run_collective_write(RunSpec(
        cluster=_chaos_cluster(), fs=_chaos_fs(), nprocs=nprocs,
        views=_chaos_views(nprocs, per_rank), algorithm=algorithm,
        verify=True, seed=rep_seed,
    )).elapsed


def _chaos_run(task: tuple) -> dict:
    """One chaos run under a rebuilt, window-armed fault spec.

    Module-level for pool workers; the fault spec is reconstructed from
    the plain descriptor (preset name, or the sweep's rate pair) so the
    task carries no live objects.  Returns plain scalars for the fold.
    """
    (algorithm, preset, crash, outage, window,
     rep_seed, nprocs, per_rank) = task
    if preset is not None:
        fault_spec = fault_preset(preset)
    else:
        fault_spec = FaultSpec(rank_crash_rate=crash, ost_outage_rate=outage,
                               crash_window=1.0)
    try:
        run = run_collective_write(RunSpec(
            cluster=_chaos_cluster(), fs=_chaos_fs(), nprocs=nprocs,
            views=_chaos_views(nprocs, per_rank), algorithm=algorithm,
            verify=True, seed=rep_seed,
            faults=fault_spec.with_(crash_window=window),
        ))
    except ReproError:
        # Recovery exhausted (or an unrecoverable fault mix): counted
        # as a non-completion, not a crash of the bench.
        return {"completed": False}
    report = run.recovery
    return {
        "completed": True,
        "elapsed": run.elapsed,
        "attempts": report.attempts,
        "failover_time": report.failover_time,
        "rank_crashes": len(report.crashed_ranks),
        "ost_outages": len(report.down_targets),
        "replayed_bytes": report.replayed_bytes,
    }


def chaos_campaign(
    nprocs: int = 8,
    reps: int = 3,
    scale: int = DEFAULT_SCALE,
    seed: int = DEFAULT_SEED,
    faults: str | None = None,
    progress=None,
    jobs: int = 1,
) -> ChaosCampaignResult:
    """Run the chaos sweep; ``faults`` names a preset to use instead.

    ``scale`` divides the per-rank payload (64 KiB at scale 1) like the
    other experiments.  ``progress(algorithm, level, rep, completed)`` is
    called after every chaos run.

    ``jobs`` parallelizes both phases — the fault-free baselines, then
    (their windows known) every chaos run — via
    :func:`repro.bench.parallel.parallel_map`.  Seeds live in the task
    descriptors (``seed + rep``, unchanged from the serial derivation)
    and results fold in serial-loop order, so the campaign's tables and
    CSVs are byte-identical for any ``jobs``; with ``jobs > 1`` the
    progress callback fires during the fold, after the simulations.
    """
    per_rank = max(4096, int(64 * KiB) // scale)
    levels = _fault_levels(faults)
    result = ChaosCampaignResult(nprocs=nprocs, reps=reps, preset=faults)

    # Phase 1: fault-free baselines (they size every fault window).
    base_tasks = [
        (algorithm, seed + i, nprocs, per_rank)
        for algorithm in CHAOS_ALGORITHMS for i in range(reps)
    ]
    base_elapsed = iter(parallel_map(_chaos_baseline, base_tasks, jobs=jobs))
    baselines = {
        algorithm: {seed + i: next(base_elapsed) for i in range(reps)}
        for algorithm in CHAOS_ALGORITHMS
    }

    # Phase 2: the chaos runs, windows armed from the base-seed baseline.
    chaos_tasks = []
    for algorithm in CHAOS_ALGORITHMS:
        window = 0.8 * baselines[algorithm][seed]
        for level, _fault_spec in levels:
            for i in range(reps):
                chaos_tasks.append((
                    algorithm, faults,
                    _fault_spec.rank_crash_rate, _fault_spec.ost_outage_rate,
                    window, seed + i, nprocs, per_rank,
                ))
    outcomes = iter(parallel_map(_chaos_run, chaos_tasks, jobs=jobs))

    for algorithm in CHAOS_ALGORITHMS:
        result.baselines[algorithm] = baselines[algorithm][seed]
        for level, _fault_spec in levels:
            cell = ChaosCell(algorithm=algorithm, level=level)
            result.cells.append(cell)
            for i in range(reps):
                o = next(outcomes)
                cell.runs += 1
                if not o["completed"]:
                    if progress is not None:
                        progress(algorithm, level, i, False)
                    continue
                cell.completions += 1
                cell.attempts += o["attempts"]
                cell.slowdown += o["elapsed"] / baselines[algorithm][seed + i]
                cell.recovery_latency += o["failover_time"]
                cell.rank_crashes += o["rank_crashes"]
                cell.ost_outages += o["ost_outages"]
                cell.replayed_bytes += o["replayed_bytes"]
                if progress is not None:
                    progress(algorithm, level, i, True)
            if cell.completions:
                cell.attempts /= cell.completions
                cell.slowdown /= cell.completions
                cell.recovery_latency /= cell.completions
    return result
