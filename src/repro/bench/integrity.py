"""Extension experiment X12: the integrity campaign.

Exercises the end-to-end integrity layer (:mod:`repro.integrity`) under
the ``bitrot_cluster`` fault preset — silent bit flips on message
deliveries and RMA landings, at-rest burst-buffer rot, storage media
flips and torn writes — across all five overlap algorithms, with and
without the staging tier, and reports per cell:

* **detection rate** — of the runs where injected corruption actually
  reached the file (ground truth: the same ``(seed, faults)`` run with
  ``mode="off"`` fails its byte-exact verification), the fraction where
  ``mode="detect"`` raised :class:`~repro.errors.CorruptDataError`
  instead of completing with a silently corrupt file;
* **repair rate** — the fraction of corrupted runs where
  ``mode="repair"`` completed with a final ``file_sha256`` identical to
  the fault-free run of the same seed;
* **false positives** — fault-free runs that a checking mode failed
  (must be zero: checksums never fire on clean data);
* **overhead** — fault-free elapsed of detect/repair mode relative to
  ``mode="off"`` (the cost of checksum computation, read-back verifies
  and the end-of-job scrub on a clean run).

The campaign doubles as the acceptance test of the integrity subsystem:
the CI smoke job runs it with ``--check-integrity``, which demands 100%
detection, 100% repair, zero false positives and at least one corrupted
run per cell (anything less means the preset rates are mistuned for the
scenario size).

The ground-truth protocol leans on the injector's schedule parity: every
corruption decision comes from a per-entity named RNG stream keyed only
by the world seed, so the ``mode="off"`` run and the checking runs see
bit-identical corruption schedules and the off-run's verification
verdict is a valid oracle for what the checking modes faced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.collio.api import RunSpec, run_collective_write
from repro.collio.config import CollectiveConfig
from repro.collio.view import FileView
from repro.config import DEFAULT_SCALE, DEFAULT_SEED
from repro.errors import CorruptDataError, ReproError
from repro.faults.presets import fault_preset
from repro.fs.presets import FsSpec
from repro.hardware.cluster import ClusterSpec
from repro.integrity.spec import IntegritySpec
from repro.staging.spec import StagingSpec
from repro.units import KiB, MB

__all__ = ["IntegrityCell", "IntegrityCampaignResult", "integrity_campaign"]

#: Every overlap algorithm must survive the campaign.
INTEGRITY_ALGORITHMS = (
    "no_overlap", "comm_overlap", "write_overlap", "write_comm", "write_comm2",
)


def _integrity_cluster() -> ClusterSpec:
    return ClusterSpec(
        name="bitrot",
        num_nodes=4,
        cores_per_node=4,
        network_bandwidth=1000 * MB,
        network_latency=1e-6,
        eager_threshold=1024,
    )


def _integrity_fs() -> FsSpec:
    return FsSpec(
        name="bitrotfs",
        num_targets=4,
        target_bandwidth=300 * MB,
        target_latency=5e-5,
        stripe_size=4096,
    )


@dataclass
class IntegrityCell:
    """One (algorithm, staging on/off) cell of the campaign."""

    algorithm: str
    staged: bool
    runs: int = 0
    #: Ground truth: runs whose mode="off" twin ended with a corrupt file.
    corrupted: int = 0
    #: Corrupted runs that mode="detect" flagged with CorruptDataError.
    detected: int = 0
    #: Corrupted runs that mode="detect" completed silently (must be 0).
    missed: int = 0
    #: Clean or fault-free runs that a checking mode failed (must be 0).
    false_positives: int = 0
    #: Corrupted runs that mode="repair" finished byte-identically.
    repaired: int = 0
    #: Corrupted runs where repair failed or produced wrong bytes.
    repair_failed: int = 0
    #: Mean fault-free elapsed of detect/repair mode vs mode="off".
    detect_overhead: float = 0.0
    repair_overhead: float = 0.0
    #: Total integrity.detected / integrity.repaired events of the
    #: repair-mode runs (one corruption can need several repair hops).
    detected_events: int = 0
    repaired_events: int = 0

    @property
    def detection_rate(self) -> float:
        return self.detected / self.corrupted if self.corrupted else 1.0

    @property
    def repair_rate(self) -> float:
        return self.repaired / self.corrupted if self.corrupted else 1.0


@dataclass
class IntegrityCampaignResult:
    """The whole campaign: one :class:`IntegrityCell` per (algorithm, tier)."""

    nprocs: int
    reps: int
    preset: str = "bitrot_cluster"
    cells: list[IntegrityCell] = field(default_factory=list)

    def cell(self, algorithm: str, staged: bool) -> IntegrityCell:
        for c in self.cells:
            if c.algorithm == algorithm and c.staged == staged:
                return c
        raise KeyError((algorithm, staged))

    @property
    def corrupted(self) -> int:
        return sum(c.corrupted for c in self.cells)

    @property
    def detection_rate(self) -> float:
        total = self.corrupted
        return sum(c.detected for c in self.cells) / total if total else 1.0

    @property
    def repair_rate(self) -> float:
        total = self.corrupted
        return sum(c.repaired for c in self.cells) / total if total else 1.0

    @property
    def false_positives(self) -> int:
        return sum(c.false_positives for c in self.cells)

    def check_ok(self) -> bool:
        """The CI gate: perfect detection and repair, and faults that fire.

        ``--check-integrity`` demands every injected corruption detected
        (no misses), every corrupted run repaired byte-exactly, zero
        false positives, and at least one corrupted run overall — a
        campaign where no corruption fired proves nothing.
        """
        return (
            self.corrupted > 0
            and self.false_positives == 0
            and all(c.missed == 0 and c.repair_failed == 0 for c in self.cells)
            and self.detection_rate == 1.0
            and self.repair_rate == 1.0
        )


def integrity_campaign(
    nprocs: int = 8,
    reps: int = 3,
    scale: int = DEFAULT_SCALE,
    seed: int = DEFAULT_SEED,
    progress=None,
) -> IntegrityCampaignResult:
    """Run the integrity matrix; ``progress(algorithm, staged, rep, outcome)``
    is called after every seed's trio of checked runs.

    ``scale`` divides the per-rank payload (64 KiB at scale 1) like the
    other experiments.  Each (algorithm, tier, seed) cell costs six
    simulated runs: off/detect/repair fault-free (baseline + overheads +
    false-positive check) and off/detect/repair under ``bitrot_cluster``
    (ground truth + detection + repair).
    """
    per_rank = max(4096, int(64 * KiB) // scale)
    views = {r: FileView.contiguous(r * per_rank, per_rank) for r in range(nprocs)}
    faults = fault_preset("bitrot_cluster")
    result = IntegrityCampaignResult(nprocs=nprocs, reps=reps)

    def config(staged: bool, mode: str | None) -> CollectiveConfig:
        return CollectiveConfig(
            cb_buffer_size=16 * KiB,
            staging=StagingSpec() if staged else None,
            integrity=IntegritySpec(mode=mode) if mode else None,
        )

    for algorithm in INTEGRITY_ALGORITHMS:
        for staged in (False, True):
            cell = IntegrityCell(algorithm=algorithm, staged=staged)
            result.cells.append(cell)
            overhead_detect: list[float] = []
            overhead_repair: list[float] = []
            for i in range(reps):
                rep_seed = seed + i
                cell.runs += 1

                def run(mode: str | None, faulty: bool):
                    return run_collective_write(RunSpec(
                        cluster=_integrity_cluster(), fs=_integrity_fs(),
                        nprocs=nprocs, views=views, algorithm=algorithm,
                        config=config(staged, mode), verify=True,
                        seed=rep_seed, faults=faults if faulty else None,
                    ))

                # Fault-free: baseline sha/elapsed and mode overheads.
                # A checking mode failing a clean run is a false positive.
                base = run(None, faulty=False)
                for mode, acc in (("detect", overhead_detect),
                                  ("repair", overhead_repair)):
                    try:
                        clean = run(mode, faulty=False)
                    except (ReproError, AssertionError):
                        cell.false_positives += 1
                        continue
                    if base.elapsed > 0:
                        acc.append(clean.elapsed / base.elapsed)

                # Ground truth: does this seed's corruption schedule
                # actually damage the file when nobody is checking?
                corrupted = False
                try:
                    run(None, faulty=True)
                except AssertionError:
                    corrupted = True
                if corrupted:
                    cell.corrupted += 1

                # Detection.
                outcome = "clean"
                try:
                    run("detect", faulty=True)
                except CorruptDataError:
                    outcome = "detected"
                except AssertionError:
                    outcome = "missed"
                if corrupted:
                    if outcome == "detected":
                        cell.detected += 1
                    else:
                        cell.missed += 1
                elif outcome != "clean":
                    cell.false_positives += 1

                # Repair: byte-identical to the fault-free run or bust.
                repair_ok = False
                try:
                    rep = run("repair", faulty=True)
                except (ReproError, AssertionError):
                    rep = None
                else:
                    repair_ok = rep.file_sha256 == base.file_sha256
                if corrupted:
                    if repair_ok:
                        cell.repaired += 1
                    else:
                        cell.repair_failed += 1
                elif not repair_ok:
                    cell.false_positives += 1
                if rep is not None and rep.integrity is not None:
                    cell.detected_events += rep.integrity["detected"]
                    cell.repaired_events += rep.integrity["repaired"]

                if progress is not None:
                    progress(algorithm, staged, i,
                             outcome if corrupted else "clean")
            if overhead_detect:
                cell.detect_overhead = sum(overhead_detect) / len(overhead_detect)
            if overhead_repair:
                cell.repair_overhead = sum(overhead_repair) / len(overhead_repair)
    return result
