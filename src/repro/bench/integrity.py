"""Extension experiment X12: the integrity campaign.

Exercises the end-to-end integrity layer (:mod:`repro.integrity`) under
the ``bitrot_cluster`` fault preset — silent bit flips on message
deliveries and RMA landings, at-rest burst-buffer rot, storage media
flips and torn writes — across all five overlap algorithms, with and
without the staging tier, and reports per cell:

* **detection rate** — of the runs where injected corruption actually
  reached the file (ground truth: the same ``(seed, faults)`` run with
  ``mode="off"`` fails its byte-exact verification), the fraction where
  ``mode="detect"`` raised :class:`~repro.errors.CorruptDataError`
  instead of completing with a silently corrupt file;
* **repair rate** — the fraction of corrupted runs where
  ``mode="repair"`` completed with a final ``file_sha256`` identical to
  the fault-free run of the same seed;
* **false positives** — fault-free runs that a checking mode failed
  (must be zero: checksums never fire on clean data);
* **overhead** — fault-free elapsed of detect/repair mode relative to
  ``mode="off"`` (the cost of checksum computation, read-back verifies
  and the end-of-job scrub on a clean run).

The campaign doubles as the acceptance test of the integrity subsystem:
the CI smoke job runs it with ``--check-integrity``, which demands 100%
detection, 100% repair, zero false positives and at least one corrupted
run per cell (anything less means the preset rates are mistuned for the
scenario size).

The ground-truth protocol leans on the injector's schedule parity: every
corruption decision comes from a per-entity named RNG stream keyed only
by the world seed, so the ``mode="off"`` run and the checking runs see
bit-identical corruption schedules and the off-run's verification
verdict is a valid oracle for what the checking modes faced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.parallel import parallel_map
from repro.collio.api import RunSpec, run_collective_write
from repro.collio.config import CollectiveConfig
from repro.collio.view import FileView
from repro.config import DEFAULT_SCALE, DEFAULT_SEED
from repro.errors import CorruptDataError, ReproError
from repro.faults.presets import fault_preset
from repro.fs.presets import FsSpec
from repro.hardware.cluster import ClusterSpec
from repro.integrity.spec import IntegritySpec
from repro.staging.spec import StagingSpec
from repro.units import KiB, MB

__all__ = ["IntegrityCell", "IntegrityCampaignResult", "integrity_campaign"]

#: Every overlap algorithm must survive the campaign.
INTEGRITY_ALGORITHMS = (
    "no_overlap", "comm_overlap", "write_overlap", "write_comm", "write_comm2",
)


def _integrity_cluster() -> ClusterSpec:
    return ClusterSpec(
        name="bitrot",
        num_nodes=4,
        cores_per_node=4,
        network_bandwidth=1000 * MB,
        network_latency=1e-6,
        eager_threshold=1024,
    )


def _integrity_fs() -> FsSpec:
    return FsSpec(
        name="bitrotfs",
        num_targets=4,
        target_bandwidth=300 * MB,
        target_latency=5e-5,
        stripe_size=4096,
    )


@dataclass
class IntegrityCell:
    """One (algorithm, staging on/off) cell of the campaign."""

    algorithm: str
    staged: bool
    runs: int = 0
    #: Ground truth: runs whose mode="off" twin ended with a corrupt file.
    corrupted: int = 0
    #: Corrupted runs that mode="detect" flagged with CorruptDataError.
    detected: int = 0
    #: Corrupted runs that mode="detect" completed silently (must be 0).
    missed: int = 0
    #: Clean or fault-free runs that a checking mode failed (must be 0).
    false_positives: int = 0
    #: Corrupted runs that mode="repair" finished byte-identically.
    repaired: int = 0
    #: Corrupted runs where repair failed or produced wrong bytes.
    repair_failed: int = 0
    #: Mean fault-free elapsed of detect/repair mode vs mode="off".
    detect_overhead: float = 0.0
    repair_overhead: float = 0.0
    #: Total integrity.detected / integrity.repaired events of the
    #: repair-mode runs (one corruption can need several repair hops).
    detected_events: int = 0
    repaired_events: int = 0

    @property
    def detection_rate(self) -> float:
        return self.detected / self.corrupted if self.corrupted else 1.0

    @property
    def repair_rate(self) -> float:
        return self.repaired / self.corrupted if self.corrupted else 1.0


@dataclass
class IntegrityCampaignResult:
    """The whole campaign: one :class:`IntegrityCell` per (algorithm, tier)."""

    nprocs: int
    reps: int
    preset: str = "bitrot_cluster"
    cells: list[IntegrityCell] = field(default_factory=list)

    def cell(self, algorithm: str, staged: bool) -> IntegrityCell:
        for c in self.cells:
            if c.algorithm == algorithm and c.staged == staged:
                return c
        raise KeyError((algorithm, staged))

    @property
    def corrupted(self) -> int:
        return sum(c.corrupted for c in self.cells)

    @property
    def detection_rate(self) -> float:
        total = self.corrupted
        return sum(c.detected for c in self.cells) / total if total else 1.0

    @property
    def repair_rate(self) -> float:
        total = self.corrupted
        return sum(c.repaired for c in self.cells) / total if total else 1.0

    @property
    def false_positives(self) -> int:
        return sum(c.false_positives for c in self.cells)

    def check_ok(self) -> bool:
        """The CI gate: perfect detection and repair, and faults that fire.

        ``--check-integrity`` demands every injected corruption detected
        (no misses), every corrupted run repaired byte-exactly, zero
        false positives, and at least one corrupted run overall — a
        campaign where no corruption fired proves nothing.
        """
        return (
            self.corrupted > 0
            and self.false_positives == 0
            and all(c.missed == 0 and c.repair_failed == 0 for c in self.cells)
            and self.detection_rate == 1.0
            and self.repair_rate == 1.0
        )


def _integrity_rep(task: tuple) -> dict:
    """One (algorithm, tier, seed) trio of checked runs.

    Module-level so pool workers can import it; the task tuple is plain
    data and everything (views, faults, specs) is rebuilt locally, so a
    worker's result depends only on the descriptor — never on which
    process ran it.  Returns plain scalars for the in-order fold.
    """
    algorithm, staged, rep_seed, nprocs, per_rank = task
    views = {r: FileView.contiguous(r * per_rank, per_rank) for r in range(nprocs)}
    faults = fault_preset("bitrot_cluster")

    def config(mode: str | None) -> CollectiveConfig:
        return CollectiveConfig(
            cb_buffer_size=16 * KiB,
            staging=StagingSpec() if staged else None,
            integrity=IntegritySpec(mode=mode) if mode else None,
        )

    def run(mode: str | None, faulty: bool):
        return run_collective_write(RunSpec(
            cluster=_integrity_cluster(), fs=_integrity_fs(),
            nprocs=nprocs, views=views, algorithm=algorithm,
            config=config(mode), verify=True,
            seed=rep_seed, faults=faults if faulty else None,
        ))

    out = {
        "false_positives": 0, "detect_ratio": None, "repair_ratio": None,
        "corrupted": False, "outcome": "clean", "repair_ok": False,
        "detected_events": 0, "repaired_events": 0,
    }

    # Fault-free: baseline sha/elapsed and mode overheads.
    # A checking mode failing a clean run is a false positive.
    base = run(None, faulty=False)
    for mode, key in (("detect", "detect_ratio"), ("repair", "repair_ratio")):
        try:
            clean = run(mode, faulty=False)
        except (ReproError, AssertionError):
            out["false_positives"] += 1
            continue
        if base.elapsed > 0:
            out[key] = clean.elapsed / base.elapsed

    # Ground truth: does this seed's corruption schedule actually
    # damage the file when nobody is checking?
    try:
        run(None, faulty=True)
    except AssertionError:
        out["corrupted"] = True

    # Detection.
    try:
        run("detect", faulty=True)
    except CorruptDataError:
        out["outcome"] = "detected"
    except AssertionError:
        out["outcome"] = "missed"
    if not out["corrupted"] and out["outcome"] != "clean":
        out["false_positives"] += 1

    # Repair: byte-identical to the fault-free run or bust.
    try:
        rep = run("repair", faulty=True)
    except (ReproError, AssertionError):
        rep = None
    else:
        out["repair_ok"] = rep.file_sha256 == base.file_sha256
    if not out["corrupted"] and not out["repair_ok"]:
        out["false_positives"] += 1
    if rep is not None and rep.integrity is not None:
        out["detected_events"] = rep.integrity["detected"]
        out["repaired_events"] = rep.integrity["repaired"]
    return out


def integrity_campaign(
    nprocs: int = 8,
    reps: int = 3,
    scale: int = DEFAULT_SCALE,
    seed: int = DEFAULT_SEED,
    progress=None,
    jobs: int = 1,
) -> IntegrityCampaignResult:
    """Run the integrity matrix; ``progress(algorithm, staged, rep, outcome)``
    is called after every seed's trio of checked runs.

    ``scale`` divides the per-rank payload (64 KiB at scale 1) like the
    other experiments.  Each (algorithm, tier, seed) cell costs six
    simulated runs: off/detect/repair fault-free (baseline + overheads +
    false-positive check) and off/detect/repair under ``bitrot_cluster``
    (ground truth + detection + repair).

    ``jobs`` fans the (algorithm, tier, seed) trios out over a process
    pool (:func:`repro.bench.parallel.parallel_map`); every per-run seed
    is carried inside the task descriptor and results are folded in
    serial-loop order, so the campaign's tables and CSVs are
    byte-identical for any ``jobs``.  With ``jobs > 1`` the progress
    callback fires during the fold, after the simulations.
    """
    per_rank = max(4096, int(64 * KiB) // scale)
    result = IntegrityCampaignResult(nprocs=nprocs, reps=reps)
    tasks = [
        (algorithm, staged, seed + i, nprocs, per_rank)
        for algorithm in INTEGRITY_ALGORITHMS
        for staged in (False, True)
        for i in range(reps)
    ]
    outcomes = iter(parallel_map(_integrity_rep, tasks, jobs=jobs))

    for algorithm in INTEGRITY_ALGORITHMS:
        for staged in (False, True):
            cell = IntegrityCell(algorithm=algorithm, staged=staged)
            result.cells.append(cell)
            overhead_detect: list[float] = []
            overhead_repair: list[float] = []
            for i in range(reps):
                o = next(outcomes)
                cell.runs += 1
                cell.false_positives += o["false_positives"]
                if o["detect_ratio"] is not None:
                    overhead_detect.append(o["detect_ratio"])
                if o["repair_ratio"] is not None:
                    overhead_repair.append(o["repair_ratio"])
                if o["corrupted"]:
                    cell.corrupted += 1
                    if o["outcome"] == "detected":
                        cell.detected += 1
                    else:
                        cell.missed += 1
                    if o["repair_ok"]:
                        cell.repaired += 1
                    else:
                        cell.repair_failed += 1
                cell.detected_events += o["detected_events"]
                cell.repaired_events += o["repaired_events"]
                if progress is not None:
                    progress(algorithm, staged, i,
                             o["outcome"] if o["corrupted"] else "clean")
            if overhead_detect:
                cell.detect_overhead = sum(overhead_detect) / len(overhead_detect)
            if overhead_repair:
                cell.repair_overhead = sum(overhead_repair) / len(overhead_repair)
    return result
