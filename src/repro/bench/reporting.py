"""Text renderers for the experiment results (paper-style tables)."""

from __future__ import annotations

from repro.bench.experiments import (
    ALGORITHM_ORDER,
    BENCHMARK_ORDER,
    SHUFFLE_ORDER,
    BreakdownResult,
    Fig1Result,
    Fig4Result,
    ImprovementResult,
    LustreResult,
    OverlapStudyResult,
    Table1Result,
)
from repro.units import fmt_time

__all__ = [
    "render_table1",
    "render_fig1",
    "render_improvements",
    "render_fig4",
    "render_breakdown",
    "render_lustre",
    "render_overlap",
    "render_twolayer",
    "render_tuning",
    "render_chaos",
    "chaos_csv",
    "table1_csv",
    "fig1_csv",
    "improvements_csv",
    "fig4_csv",
    "overlap_csv",
    "twolayer_csv",
    "tuning_csv",
    "render_staging",
    "staging_csv",
    "render_integrity",
    "integrity_csv",
]

_ALGO_LABEL = {
    "no_overlap": "No Overlap",
    "comm_overlap": "Comm Overlap",
    "write_overlap": "Write Overlap",
    "write_comm": "Write-Comm",
    "write_comm2": "Write-Comm 2",
}
_BENCH_LABEL = {
    "ior": "IOR",
    "tile_256": "Tile I/O 256",
    "tile_1m": "Tile I/O 1M",
    "flash": "Flash I/O",
}
_SHUFFLE_LABEL = {
    "two_sided": "Two-sided",
    "one_sided_fence": "1-sided fence",
    "one_sided_lock": "1-sided lock",
}


def _table(header: list[str], rows: list[list[str]]) -> str:
    widths = [max(len(str(r[i])) for r in [header] + rows) for i in range(len(header))]
    def fmt(row):
        return " | ".join(str(c).rjust(w) for c, w in zip(row, widths))
    sep = "-+-".join("-" * w for w in widths)
    return "\n".join([fmt(header), sep] + [fmt(r) for r in rows])


def render_table1(result: Table1Result) -> str:
    """Table I: number of runs each overlap algorithm was best."""
    header = ["Benchmark"] + [_ALGO_LABEL[a] for a in ALGORITHM_ORDER]
    rows = []
    for benchmark in BENCHMARK_ORDER:
        row = result.rows.get(benchmark, {})
        rows.append([_BENCH_LABEL[benchmark]] + [row.get(a, 0) for a in ALGORITHM_ORDER])
    totals = result.totals
    rows.append(["Total:"] + [totals[a] for a in ALGORITHM_ORDER])
    body = _table(header, rows)
    share = result.async_write_share()
    return (
        "TABLE I — number of cases an overlap algorithm was best\n"
        f"{body}\n"
        f"cases: {result.total_cases}; won by an async-write algorithm: {share:.0%}"
    )


def render_fig1(result: Fig1Result) -> str:
    """Fig. 1: Tile-1M execution times."""
    header = ["Cluster", "Procs"] + [_ALGO_LABEL[a] for a in ALGORITHM_ORDER] + ["best gain"]
    rows = []
    for cluster in ("crill", "ibex"):
        for nprocs in result.nprocs_list:
            row = [cluster, nprocs]
            for algorithm in ALGORITHM_ORDER:
                row.append(fmt_time(result.points[(cluster, nprocs, algorithm)]))
            row.append(f"{result.improvement(cluster, nprocs):+.1%}")
            rows.append(row)
    return "FIG. 1 — Tile I/O 1M execution time (min of series)\n" + _table(header, rows)


def render_improvements(result: ImprovementResult, figure: str) -> str:
    """Figs. 2-3: average positive improvement over No Overlap."""
    header = ["Algorithm"] + [_BENCH_LABEL[b] for b in BENCHMARK_ORDER]
    rows = []
    for algorithm in ALGORITHM_ORDER:
        if algorithm == "no_overlap":
            continue
        row = [_ALGO_LABEL[algorithm]]
        for benchmark in BENCHMARK_ORDER:
            v = result.values.get((algorithm, benchmark))
            row.append("—" if v is None else f"{v:.1%}")
        rows.append(row)
    lo, hi = result.range_over_all()
    return (
        f"{figure} — average positive improvement over No Overlap ({result.cluster})\n"
        + _table(header, rows)
        + f"\nrange: {lo:.1%} .. {hi:.1%}"
    )


def render_fig4(result: Fig4Result) -> str:
    """Fig. 4: winner counts per shuffle primitive."""
    header = ["Benchmark"] + [_SHUFFLE_LABEL[s] for s in SHUFFLE_ORDER]
    rows = []
    for benchmark in ("ior", "tile_256", "tile_1m"):
        row = result.rows.get(benchmark, {})
        rows.append([_BENCH_LABEL[benchmark]] + [row.get(s, 0) for s in SHUFFLE_ORDER])
    totals = result.totals
    rows.append(["Total:"] + [totals[s] for s in SHUFFLE_ORDER])
    return (
        "FIG. 4 — cases each shuffle primitive was best (Write-Comm-2)\n"
        + _table(header, rows)
        + f"\ntwo-sided share: {result.two_sided_share():.0%}"
    )


def render_breakdown(result: BreakdownResult) -> str:
    """Sec. IV-A: no-overlap aggregator phase split."""
    header = ["Cluster", "Procs", "Communication", "File I/O"]
    rows = [
        [cluster, nprocs, f"{comm:.0%}", f"{io:.0%}"]
        for (cluster, nprocs), (comm, io) in sorted(result.shares.items())
    ]
    return "SEC. IV-A — no-overlap phase breakdown (aggregator, Tile-1M)\n" + _table(header, rows)


def render_lustre(result: LustreResult) -> str:
    """Sec. V: the Lustre aio note."""
    header = ["File system", "No Overlap", "Write Overlap", "gain"]
    rows = [
        [fs, fmt_time(base), fmt_time(wo), f"{gain:+.1%}"]
        for fs, (base, wo, gain) in result.entries.items()
    ]
    return "SEC. V — Write Overlap gain by file system (IOR)\n" + _table(header, rows)


def render_overlap(result: OverlapStudyResult) -> str:
    """X7: span-derived overlap efficiency per algorithm."""
    header = ["Algorithm", "Time", "Write time", "Hidden", "Overlap eff."]
    rows = []
    for algorithm in ALGORITHM_ORDER:
        if algorithm not in result.rows:
            continue
        elapsed, io, hidden, eff = result.rows[algorithm]
        rows.append(
            [_ALGO_LABEL[algorithm], fmt_time(elapsed), fmt_time(io),
             fmt_time(hidden), f"{eff:.1%}"]
        )
    return (
        "X7 — overlap efficiency from spans "
        f"(IOR@{result.cluster} P={result.nprocs}, {result.num_cycles} cycles)\n"
        + _table(header, rows)
        + "\noverlap eff. = fraction of file-write time hidden under the shuffle"
    )


def _candidate_cells(c) -> list[str]:
    """Shared candidate columns of the tuning table/CSV."""
    from repro.units import MiB

    cb = "default" if c.cb_buffer_size is None else f"{c.cb_buffer_size // MiB}MiB"
    aggr = "auto" if c.num_aggregators is None else str(c.num_aggregators)
    return [c.algorithm, c.shuffle, cb, aggr]


def render_tuning(result) -> str:
    """Ranked recommendation table of one auto-tuning search."""
    header = ["Rank", "Algorithm", "Shuffle", "cb_buffer", "Aggr",
              "Time", "Bandwidth", "Reps", "Stage"]
    rows = []
    for i, r in enumerate(result.ranked, start=1):
        rows.append(
            [i, *_candidate_cells(r.candidate), fmt_time(r.point),
             f"{r.write_bandwidth / 1e6:.1f} MB/s", r.reps, r.stage]
        )
    for r in result.pruned:
        rows.append(
            ["—", *_candidate_cells(r.candidate), fmt_time(r.point),
             f"{r.write_bandwidth / 1e6:.1f} MB/s", r.reps, r.stage]
        )
    best = result.best
    hits, sims = result.cache_stats()
    total = hits + sims
    hit_line = (
        f"cache: {hits} hits, {sims} simulations run"
        + (f" ({hits / total:.0%} cache hits)" if total else "")
    )
    lines = [
        f"TUNE — {result.scenario.label} "
        f"(search={result.search}, {result.total_candidates} candidates, "
        f"reps={result.reps}"
        + (f", screen_reps={result.screen_reps}" if result.screen_reps else "")
        + f", seed={result.base_seed})",
        _table(header, rows),
        f"recommendation: {best.candidate.label}  "
        f"({fmt_time(best.point)}, {best.write_bandwidth / 1e6:.1f} MB/s)",
    ]
    if result.pruned:
        lines.append(
            f"pruned after screening: {len(result.pruned)} of "
            f"{result.total_candidates} candidates"
        )
    lines.append(hit_line)
    return "\n".join(lines)


# --------------------------------------------------------------------------
# Machine-readable exports (for replotting the figures elsewhere)
# --------------------------------------------------------------------------

def _csv(header: list[str], rows: list[list]) -> str:
    for i, row in enumerate(rows):
        if len(row) != len(header):
            raise ValueError(
                f"CSV row {i} has {len(row)} cells, header has {len(header)}"
            )

    def esc(cell) -> str:
        s = str(cell)
        if any(ch in s for ch in (",", '"', "\n")):
            return '"' + s.replace('"', '""') + '"'
        return s

    return "\n".join(",".join(esc(c) for c in row) for row in [header] + rows) + "\n"


def table1_csv(result: Table1Result) -> str:
    """Table I winner counts as CSV (benchmark, algorithm, wins)."""
    rows = [
        [benchmark, algorithm, count]
        for benchmark, row in result.rows.items()
        for algorithm, count in row.items()
    ]
    return _csv(["benchmark", "algorithm", "wins"], rows)


def fig1_csv(result: Fig1Result) -> str:
    """Fig. 1 series as CSV (cluster, nprocs, algorithm, seconds)."""
    rows = [
        [cluster, nprocs, algorithm, f"{t:.9f}"]
        for (cluster, nprocs, algorithm), t in sorted(result.points.items())
    ]
    return _csv(["cluster", "nprocs", "algorithm", "seconds"], rows)


def improvements_csv(result: ImprovementResult) -> str:
    """Figs. 2-3 bars as CSV (cluster, algorithm, benchmark, improvement)."""
    rows = [
        [result.cluster, algorithm, benchmark, "" if v is None else f"{v:.6f}"]
        for (algorithm, benchmark), v in sorted(result.values.items())
    ]
    return _csv(["cluster", "algorithm", "benchmark", "avg_positive_improvement"], rows)


def tuning_csv(result) -> str:
    """Tuning ranking as CSV (rank empty for pruned candidates)."""
    rows = []
    for i, r in enumerate(result.ranked, start=1):
        rows.append(_tuning_csv_row(i, r))
    for r in result.pruned:
        rows.append(_tuning_csv_row("", r))
    return _csv(
        ["rank", "algorithm", "shuffle", "cb_buffer_bytes", "num_aggregators",
         "seconds", "write_bandwidth", "reps", "stage"],
        rows,
    )


def _tuning_csv_row(rank, r) -> list:
    c = r.candidate
    return [
        rank, c.algorithm, c.shuffle,
        "" if c.cb_buffer_size is None else c.cb_buffer_size,
        "" if c.num_aggregators is None else c.num_aggregators,
        f"{r.point:.9f}", f"{r.write_bandwidth:.3f}", r.reps, r.stage,
    ]


def overlap_csv(result: OverlapStudyResult) -> str:
    """X7 rows as CSV (algorithm, seconds, io/hidden time, efficiency)."""
    rows = [
        [algorithm, f"{elapsed:.9f}", f"{io:.9f}", f"{hidden:.9f}", f"{eff:.6f}"]
        for algorithm, (elapsed, io, hidden, eff) in result.rows.items()
    ]
    return _csv(
        ["algorithm", "seconds", "io_seconds", "hidden_seconds", "overlap_efficiency"],
        rows,
    )


def fig4_csv(result: Fig4Result) -> str:
    """Fig. 4 winner counts as CSV (benchmark, shuffle, wins)."""
    rows = [
        [benchmark, shuffle, count]
        for benchmark, row in result.rows.items()
        for shuffle, count in row.items()
    ]
    return _csv(["benchmark", "shuffle", "wins"], rows)


def render_chaos(result) -> str:
    """X8: completion / slowdown / recovery latency per (algorithm, level)."""
    header = ["Algorithm", "Level", "Complete", "Attempts", "Slowdown",
              "Recovery", "Crashes", "Outages"]
    rows = []
    for algorithm in ALGORITHM_ORDER:
        for level in result.levels:
            try:
                c = result.cell(algorithm, level)
            except KeyError:
                continue
            rows.append([
                _ALGO_LABEL[algorithm], level,
                f"{c.completions}/{c.runs}",
                f"{c.attempts:.1f}" if c.completions else "-",
                f"{c.slowdown:.2f}x" if c.completions else "-",
                fmt_time(c.recovery_latency) if c.completions else "-",
                c.rank_crashes, c.ost_outages,
            ])
    source = (f"preset={result.preset}" if result.preset
              else "crash/outage intensity sweep")
    return (
        f"X8 — chaos campaign ({source}, P={result.nprocs}, "
        f"reps={result.reps})\n"
        + _table(header, rows)
        + f"\noverall completion rate: {result.completion_rate:.0%}; "
        "slowdown/recovery are means over completed runs vs the same-seed "
        "fault-free baseline"
    )


def chaos_csv(result) -> str:
    """X8 cells as CSV (one row per algorithm x fault level)."""
    rows = [
        [c.algorithm, c.level, c.runs, c.completions,
         f"{c.completion_rate:.6f}", f"{c.attempts:.6f}",
         f"{c.slowdown:.6f}", f"{c.recovery_latency:.9f}",
         c.rank_crashes, c.ost_outages, c.replayed_bytes]
        for c in result.cells
    ]
    return _csv(
        ["algorithm", "level", "runs", "completions", "completion_rate",
         "attempts_mean", "slowdown_mean", "recovery_latency_seconds",
         "rank_crashes", "ost_outages", "replayed_bytes"],
        rows,
    )


def render_twolayer(result) -> str:
    """X9: two-layer aggregation — inter-node messages and times."""
    header = ["Nodes", "R/node", "Algorithm", "Shuffle",
              "Inter msgs", "2-layer", "Reduction", "Gather",
              "Time", "2-layer time", "Speedup"]
    rows = []
    for r in result.rows:
        rows.append([
            r.nodes, r.ranks_per_node, _ALGO_LABEL[r.algorithm],
            _SHUFFLE_LABEL[r.shuffle], r.inter_base, r.inter_two,
            f"{r.reduction:.1f}x", r.gather,
            fmt_time(r.t_base), fmt_time(r.t_two), f"{r.speedup:.2f}x",
        ])
    return (
        "X9 — two-layer intra-node aggregation "
        f"({result.benchmark}@{result.cluster}, size-only runs)\n"
        + _table(header, rows)
        + "\nreduction = inter-node messages single-layer / two-layer; "
        f"min reduction at >=4 ranks/node: {result.min_reduction(4):.1f}x; "
        f"best speedup: {result.best_speedup():.2f}x"
    )


def twolayer_csv(result) -> str:
    """Two-layer sweep as CSV (placement, algorithm, messages, times)."""
    rows = [
        [r.nodes, r.ranks_per_node, r.nprocs, r.algorithm, r.shuffle,
         r.inter_base, r.inter_two, f"{r.reduction:.3f}", r.gather,
         f"{r.t_base:.9f}", f"{r.t_two:.9f}", f"{r.speedup:.4f}"]
        for r in result.rows
    ]
    return _csv(
        ["nodes", "ranks_per_node", "nprocs", "algorithm", "shuffle",
         "inter_messages_single", "inter_messages_twolayer", "reduction",
         "gather_messages", "seconds_single", "seconds_twolayer", "speedup"],
        rows,
    )


def render_staging(result) -> str:
    """X10: burst-buffer drain policies vs direct writes, per regime."""
    from repro.bench.experiments import STAGING_POLICY_ORDER

    header = ["Regime", "Algorithm", "Direct", "End-of-job", "Watermark",
              "Immediate", "Speedup", "Stalls"]
    rows = []
    for r in result.rows:
        rows.append([
            r.regime, _ALGO_LABEL[r.algorithm], fmt_time(r.t_direct),
            fmt_time(r.times["end_of_job"]), fmt_time(r.times["watermark"]),
            fmt_time(r.times["immediate"]),
            f"{r.speedup('immediate'):.2f}x",
            max(r.stalls[p] for p in STAGING_POLICY_ORDER),
        ])
    sha = "identical" if result.sha_identical() else "DIFFERENT"
    wins = "yes" if result.async_wins_everywhere() else "NO"
    return (
        f"X10 — burst-buffer staging ({result.benchmark}@{result.cluster}, "
        f"P={result.nprocs}, size-only timing runs)\n"
        + _table(header, rows)
        + "\nspeedup = end_of_job / immediate (the time the overlapped "
        "drain hides); file bytes across direct and all policies: "
        f"{sha}; async drain beats end_of_job for every algorithm on "
        f"drain_bound: {wins}"
    )


def staging_csv(result) -> str:
    """Staging sweep as CSV (one row per regime x algorithm x policy)."""
    from repro.bench.experiments import STAGING_POLICY_ORDER

    rows = []
    for r in result.rows:
        rows.append([r.regime, r.algorithm, "direct",
                     f"{r.t_direct:.9f}", "", "", ""])
        for policy in STAGING_POLICY_ORDER:
            rows.append([
                r.regime, r.algorithm, policy,
                f"{r.times[policy]:.9f}", f"{r.speedup(policy):.4f}",
                r.stalls[policy], r.drained[policy],
            ])
    return _csv(
        ["regime", "algorithm", "policy", "seconds",
         "speedup_vs_end_of_job", "stalls", "drained_bytes"],
        rows,
    )


def render_integrity(result) -> str:
    """X12: detection / repair / overhead per (algorithm, staging tier)."""
    header = ["Algorithm", "Staging", "Corrupt", "Detected", "Repaired",
              "Missed", "FalsePos", "Detect ovh", "Repair ovh"]
    rows = []
    for algorithm in ALGORITHM_ORDER:
        for staged in (False, True):
            try:
                c = result.cell(algorithm, staged)
            except KeyError:
                continue
            rows.append([
                _ALGO_LABEL[algorithm], "on" if staged else "off",
                f"{c.corrupted}/{c.runs}",
                f"{c.detected}/{c.corrupted}" if c.corrupted else "-",
                f"{c.repaired}/{c.corrupted}" if c.corrupted else "-",
                c.missed, c.false_positives,
                f"{(c.detect_overhead - 1) * 100:+.1f}%" if c.detect_overhead else "-",
                f"{(c.repair_overhead - 1) * 100:+.1f}%" if c.repair_overhead else "-",
            ])
    return (
        f"X12 — integrity campaign (preset={result.preset}, "
        f"P={result.nprocs}, reps={result.reps})\n"
        + _table(header, rows)
        + f"\ncorrupted runs: {result.corrupted}; "
        f"detection rate: {result.detection_rate:.0%}; "
        f"repair rate: {result.repair_rate:.0%}; "
        f"false positives: {result.false_positives}; overheads are "
        "fault-free elapsed vs mode=off (carried checksums + commit verify + scrub)"
    )


def integrity_csv(result) -> str:
    """X12 cells as CSV (one row per algorithm x staging tier)."""
    rows = [
        [c.algorithm, "on" if c.staged else "off", c.runs, c.corrupted,
         c.detected, c.missed, c.repaired, c.repair_failed,
         c.false_positives, f"{c.detection_rate:.6f}", f"{c.repair_rate:.6f}",
         f"{c.detect_overhead:.6f}", f"{c.repair_overhead:.6f}",
         c.detected_events, c.repaired_events]
        for c in result.cells
    ]
    return _csv(
        ["algorithm", "staging", "runs", "corrupted", "detected", "missed",
         "repaired", "repair_failed", "false_positives", "detection_rate",
         "repair_rate", "detect_overhead", "repair_overhead",
         "detected_events", "repaired_events"],
        rows,
    )
