"""Case runner: repeated simulated measurements with plan reuse."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.stats import Series
from repro.bench.parallel import parallel_map
from repro.collio.api import RunSpec, build_plan, run_collective_write
from repro.collio.config import CollectiveConfig
from repro.collio.overlap import make_algorithm
from repro.config import DEFAULT_SCALE, DEFAULT_SEED
from repro.fs.presets import beegfs_crill, beegfs_ibex, FsSpec
from repro.hardware.cluster import Cluster, ClusterSpec
from repro.hardware.presets import preset
from repro.sim.engine import Engine
from repro.workloads import make_workload

__all__ = ["Case", "CaseResult", "MatrixResult", "run_case", "run_matrix", "specs_for"]

#: Storage preset used for each cluster (the paper's BeeGFS deployments).
_CLUSTER_FS = {"crill": beegfs_crill, "ibex": beegfs_ibex}


def specs_for(cluster: str, scale: int) -> tuple[ClusterSpec, FsSpec]:
    """The (cluster, file-system) spec pair of a named platform."""
    return preset(cluster, scale=scale), _CLUSTER_FS[cluster](scale=scale)


@dataclass(frozen=True)
class Case:
    """One of the paper's test cases."""

    benchmark: str          # workload registry name: ior / tile_256 / tile_1m / flash
    cluster: str            # 'crill' or 'ibex'
    nprocs: int
    #: Problem-size label with workload kwargs (hashable): e.g.
    #: (("block_size", 1 << 24),) for an IOR size variant.
    size: tuple = ()

    @property
    def label(self) -> str:
        suffix = "" if not self.size else "/" + ",".join(f"{k}={v}" for k, v in self.size)
        return f"{self.benchmark}@{self.cluster} P={self.nprocs}{suffix}"


@dataclass
class CaseResult:
    """All series measured for one case."""

    case: Case
    #: (algorithm, shuffle) -> Series
    series: dict[tuple[str, str], Series] = field(default_factory=dict)
    num_aggregators: int = 0
    num_cycles: int = 0
    total_bytes: int = 0

    def by_algorithm(self, shuffle: str = "two_sided") -> dict[str, Series]:
        return {a: s for (a, sh), s in self.series.items() if sh == shuffle}

    def by_shuffle(self, algorithm: str = "write_comm2") -> dict[str, Series]:
        return {sh: s for (a, sh), s in self.series.items() if a == algorithm}


@dataclass
class MatrixResult:
    """Results of a whole experiment matrix."""

    results: list[CaseResult] = field(default_factory=list)

    def cases(self, **filters) -> list[CaseResult]:
        out = []
        for r in self.results:
            if all(getattr(r.case, k) == v for k, v in filters.items()):
                out.append(r)
        return out

    def find(self, benchmark: str, cluster: str, nprocs: int) -> CaseResult:
        for r in self.results:
            c = r.case
            if (c.benchmark, c.cluster, c.nprocs) == (benchmark, cluster, nprocs):
                return r
        raise KeyError(f"no case {benchmark}@{cluster} P={nprocs}")


def run_case(
    case: Case,
    algorithms: list[str],
    shuffles: tuple[str, ...] = ("two_sided",),
    reps: int = 3,
    scale: int = DEFAULT_SCALE,
    base_seed: int = DEFAULT_SEED,
    progress=None,
) -> CaseResult:
    """Measure every (algorithm, shuffle) series of one case.

    Repetitions use distinct seeds (fresh noise draws), mirroring the
    paper's 3-9 measurements per series; the plan for each cycle size is
    built once and shared across algorithms and repetitions.
    """
    cluster_spec, fs_spec = specs_for(case.cluster, scale)
    workload = make_workload(case.benchmark, case.nprocs, scale=scale, **dict(case.size))
    config = CollectiveConfig.for_scale(scale, extent_cost_factor=workload.extent_cost_factor)
    views = workload.views()
    placement = Cluster(Engine(), cluster_spec)
    plans: dict[int, object] = {}
    result = CaseResult(case)
    for algorithm in algorithms:
        cycle_bytes = make_algorithm(algorithm).cycle_bytes(config.cb_buffer_size)
        plan = plans.get(cycle_bytes)
        if plan is None:
            plan = build_plan(
                placement, case.nprocs, views, config, cycle_bytes,
                stripe_size=fs_spec.stripe_size,
            )
            plans[cycle_bytes] = plan
        for shuffle in shuffles:
            series = Series(key=(case.label,), algorithm=algorithm)
            for rep in range(reps):
                run = run_collective_write(
                    RunSpec(
                        cluster=cluster_spec, fs=fs_spec, nprocs=case.nprocs,
                        views=views, algorithm=algorithm, shuffle=shuffle,
                        config=config, seed=base_seed + 1000 * rep,
                        carry_data=False, plan=plan,
                    )
                )
                series.add(run.elapsed)
                result.num_aggregators = run.num_aggregators
                result.num_cycles = max(result.num_cycles, run.num_cycles)
                result.total_bytes = run.total_bytes
            result.series[(algorithm, shuffle)] = series
            if progress is not None:
                progress(case, algorithm, shuffle, series)
    return result


def _matrix_case(task: tuple) -> CaseResult:
    """One case of a matrix (module-level so pool workers can import it).

    The task tuple is plain picklable data; the worker rebuilds plans
    and specs locally, so its result depends only on the descriptor.
    """
    case, algorithms, shuffles, reps, scale, base_seed = task
    return run_case(
        case, list(algorithms), shuffles=shuffles, reps=reps,
        scale=scale, base_seed=base_seed,
    )


def run_matrix(
    cases: list[Case],
    algorithms: list[str],
    shuffles: tuple[str, ...] = ("two_sided",),
    reps: int = 3,
    scale: int = DEFAULT_SCALE,
    base_seed: int = DEFAULT_SEED,
    progress=None,
    jobs: int = 1,
) -> MatrixResult:
    """Run every case of an experiment matrix.

    ``jobs`` fans whole cases out over a process pool
    (:func:`repro.bench.parallel.parallel_map`).  Per-rep seeds are a
    fixed derivation of ``base_seed`` inside each case, and case results
    fold back in input order, so the matrix — and every table or CSV
    derived from it — is byte-identical for any ``jobs``; with
    ``jobs > 1`` the progress callback fires per completed case instead
    of streaming per series.
    """
    matrix = MatrixResult()
    if jobs == 1:
        for case in cases:
            matrix.results.append(
                run_case(
                    case, algorithms, shuffles=shuffles, reps=reps,
                    scale=scale, base_seed=base_seed, progress=progress,
                )
            )
        return matrix
    tasks = [
        (case, tuple(algorithms), tuple(shuffles), reps, scale, base_seed)
        for case in cases
    ]
    for case, result in zip(cases, parallel_map(_matrix_case, tasks, jobs=jobs)):
        matrix.results.append(result)
        if progress is not None:
            for algorithm in algorithms:
                for shuffle in shuffles:
                    progress(case, algorithm, shuffle,
                             result.series[(algorithm, shuffle)])
    return matrix
