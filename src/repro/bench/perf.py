"""Self-benchmark suite: how fast is the simulator itself?

``python -m repro.bench perf`` times the *host-side* cost of simulated
collective writes — 5 algorithms x 3 problem scales x staging on/off —
and emits ``BENCH_perf.json``, one point of the repository's perf
trajectory.  Each case reports

* ``wall_s``      — best-of-reps host wall-clock of one full run
                    (plan construction included: that is what tuning
                    sweeps pay per trial);
* ``events``      — discrete events processed by the engine;
* ``events_per_s``— events / wall, the engine's throughput;
* ``peak_rss_kb`` — process high-water RSS after the case.

Cross-hardware comparability
----------------------------
Absolute wall-clock depends on the machine, so every report embeds a
**calibration score**: the runtime of a fixed pure-Python arithmetic
loop that none of the simulator's optimizations can touch.  Comparisons
between two reports divide each medium-scenario wall by its own
calibration time, cancelling machine speed:

    speedup = (baseline.medium / baseline.cal) / (current.medium / current.cal)

``check_against`` implements the two CI gates on that normalized ratio:
the one-time ``>= min_speedup`` gate against the pre-overhaul seed
baseline, and the ``<= max_regression`` drift gate against the most
recent committed report.
"""

from __future__ import annotations

import json
import resource
import sys
import time
from dataclasses import dataclass, field

from repro._version import __version__
from repro.collio.api import RunSpec, run_collective_write
from repro.collio.config import CollectiveConfig
from repro.collio.overlap import ALGORITHMS
from repro.config import DEFAULT_SEED
from repro.fs.presets import beegfs_crill
from repro.hardware.presets import crill
from repro.integrity.spec import IntegritySpec
from repro.staging import StagingSpec
from repro.workloads import make_workload

__all__ = [
    "PERF_SCALES", "CalibrationResult", "PerfCase", "IntegrityPerfCase",
    "PerfReport", "calibrate", "run_perf", "check_against",
    "integrity_overhead_failures",
]

#: The three self-benchmark problem sizes: the paper's IOR workload at
#: increasing process counts and data-size divisors (see
#: :mod:`repro.config`).  ``medium`` is the gated scenario; small
#: bounds fixed overheads, large bounds scaling behaviour.
PERF_SCALES: dict[str, dict] = {
    "small": {"nprocs": 4, "scale": 256},
    "medium": {"nprocs": 8, "scale": 64},
    "large": {"nprocs": 16, "scale": 64},
}

_CAL_ITERS = 2_000_000


def _cal_loop(n: int) -> int:
    acc = 0
    for i in range(n):
        acc += i * i % 97
    return acc


@dataclass(frozen=True)
class CalibrationResult:
    """Machine-speed reference: seconds for the fixed arithmetic loop."""

    loop_s: float
    iters: int = _CAL_ITERS


def calibrate(reps: int = 3) -> CalibrationResult:
    """Time the fixed calibration loop (best of ``reps``)."""
    best = min(_timed(_cal_loop, _CAL_ITERS) for _ in range(reps))
    return CalibrationResult(loop_s=best)


def _timed(fn, *args):
    t0 = time.perf_counter()
    fn(*args)
    return time.perf_counter() - t0


@dataclass
class PerfCase:
    """One (scale, algorithm, staging) measurement."""

    scale: str
    algorithm: str
    staging: bool
    wall_s: float
    sim_elapsed: float
    events: int
    events_per_s: float
    peak_rss_kb: int

    def to_dict(self) -> dict:
        return dict(self.__dict__)


@dataclass
class IntegrityPerfCase:
    """Simulated-time cost of ``mode="detect"`` on one medium-scale case.

    The gated quantity is *simulated* elapsed, not host wall: the
    checksum-carrying datapath removes the modeled per-extent checksum
    compute, the read-back re-read and the scrub re-read from the
    simulated timeline, and this case proves it.  The reuse counters
    come along so the report also shows *why* (carried CRCs replacing
    fresh byte passes).
    """

    algorithm: str
    sim_elapsed_off: float
    sim_elapsed_detect: float
    checksum_computed: int
    checksum_reused: int

    @property
    def overhead(self) -> float:
        """Fractional detect-mode slowdown (0.0 = free) in sim time."""
        if not self.sim_elapsed_off:
            return 0.0
        return self.sim_elapsed_detect / self.sim_elapsed_off - 1.0

    def to_dict(self) -> dict:
        d = dict(self.__dict__)
        d["overhead"] = round(self.overhead, 6)
        return d


@dataclass
class PerfReport:
    """Everything ``BENCH_perf.json`` holds."""

    calibration: CalibrationResult
    cases: list[PerfCase] = field(default_factory=list)
    integrity_cases: list[IntegrityPerfCase] = field(default_factory=list)
    plan_cache: dict = field(default_factory=dict)

    def scale_wall(self, scale: str) -> float:
        return sum(c.wall_s for c in self.cases if c.scale == scale)

    @property
    def max_integrity_overhead(self) -> float:
        """Worst detect-mode sim-time overhead across the integrity cases."""
        return max((c.overhead for c in self.integrity_cases), default=0.0)

    @property
    def medium_wall_s(self) -> float:
        return self.scale_wall("medium")

    @property
    def normalized_medium(self) -> float:
        """Medium wall in calibration-loop units (machine-independent)."""
        return self.medium_wall_s / self.calibration.loop_s

    def to_dict(self) -> dict:
        return {
            "schema": 1,
            "version": __version__,
            "python": ".".join(map(str, sys.version_info[:3])),
            "calibration": {
                "loop_s": self.calibration.loop_s,
                "iters": self.calibration.iters,
            },
            "scales": PERF_SCALES,
            "cases": [c.to_dict() for c in self.cases],
            "totals": {
                name: round(self.scale_wall(name), 6) for name in PERF_SCALES
            },
            "medium_wall_s": round(self.medium_wall_s, 6),
            "normalized_medium": round(self.normalized_medium, 6),
            "integrity": {
                "cases": [c.to_dict() for c in self.integrity_cases],
                "max_overhead": round(self.max_integrity_overhead, 6),
            },
            "plan_cache": self.plan_cache,
            "peak_rss_kb": max((c.peak_rss_kb for c in self.cases), default=0),
        }

    def write(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    def render(self) -> str:
        lines = [
            "PERF — simulator self-benchmark "
            f"(calibration loop {self.calibration.loop_s * 1e3:.1f} ms)",
            f"{'scale':8s} {'algorithm':15s} {'staging':8s} "
            f"{'wall (s)':>9s} {'events':>8s} {'ev/s':>10s} {'rss (MB)':>9s}",
        ]
        for c in self.cases:
            lines.append(
                f"{c.scale:8s} {c.algorithm:15s} "
                f"{'on' if c.staging else 'off':8s} {c.wall_s:9.4f} "
                f"{c.events:8d} {c.events_per_s:10.0f} "
                f"{c.peak_rss_kb / 1024:9.1f}"
            )
        for name in PERF_SCALES:
            lines.append(f"total {name:8s} {self.scale_wall(name):9.4f} s")
        lines.append(
            f"medium normalized: {self.normalized_medium:.2f} cal-units"
        )
        if self.integrity_cases:
            lines.append(
                f"{'integrity':8s} {'algorithm':15s} {'off (sim s)':>12s} "
                f"{'detect':>9s} {'overhead':>9s} {'crc comp':>9s} "
                f"{'reused':>7s}"
            )
            for c in self.integrity_cases:
                lines.append(
                    f"{'medium':8s} {c.algorithm:15s} {c.sim_elapsed_off:12.6f} "
                    f"{c.sim_elapsed_detect:9.6f} {c.overhead:+9.1%} "
                    f"{c.checksum_computed:9d} {c.checksum_reused:7d}"
                )
            lines.append(
                f"max integrity detect overhead: {self.max_integrity_overhead:+.1%}"
            )
        return "\n".join(lines)


def _case_spec(scale: str, algorithm: str, staging: bool, seed: int) -> RunSpec:
    params = PERF_SCALES[scale]
    nprocs, divisor = params["nprocs"], params["scale"]
    workload = make_workload("ior", nprocs, scale=divisor)
    return RunSpec(
        cluster=crill(scale=divisor), fs=beegfs_crill(scale=divisor),
        nprocs=nprocs, views=workload.views(), algorithm=algorithm, seed=seed,
        staging=StagingSpec.for_scale(divisor, policy="immediate")
        if staging else None,
    )


def run_perf(
    reps: int = 2, seed: int = DEFAULT_SEED, progress=None
) -> PerfReport:
    """Run the full 5 x 3 x 2 self-benchmark matrix."""
    try:
        from repro.collio.plan import plan_cache_stats, reset_plan_cache
    except ImportError:  # pre-cache tree: recording the seed baseline
        def plan_cache_stats():
            return {}

        def reset_plan_cache():
            return None

    reset_plan_cache()
    report = PerfReport(calibration=calibrate())
    for scale in PERF_SCALES:
        for algorithm in sorted(ALGORITHMS):
            for staging in (False, True):
                best_wall, events, sim_elapsed = None, 0, 0.0
                for rep in range(max(1, reps)):
                    spec = _case_spec(scale, algorithm, staging, seed)
                    t0 = time.perf_counter()
                    result = run_collective_write(spec)
                    wall = time.perf_counter() - t0
                    if best_wall is None or wall < best_wall:
                        best_wall = wall
                        events = result.metrics["counters"].get(
                            "sim.events_processed", 0
                        )
                        sim_elapsed = result.elapsed
                case = PerfCase(
                    scale=scale, algorithm=algorithm, staging=staging,
                    wall_s=round(best_wall, 6), sim_elapsed=sim_elapsed,
                    events=int(events),
                    events_per_s=round(events / best_wall if best_wall else 0.0, 1),
                    peak_rss_kb=resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
                )
                report.cases.append(case)
                if progress is not None:
                    progress(case)

    # Integrity-on cases: gate the checksum-carrying datapath.  The
    # compared quantity is *simulated* elapsed, which is deterministic
    # per seed, so one off/detect pair per algorithm suffices (no
    # best-of-reps needed).
    for algorithm in sorted(ALGORITHMS):
        off_spec = _case_spec("medium", algorithm, False, seed)
        off = run_collective_write(off_spec)
        det = run_collective_write(off_spec.replace(
            config=CollectiveConfig(integrity=IntegritySpec(mode="detect")),
        ))
        counters = det.integrity["counters"] if det.integrity else {}
        report.integrity_cases.append(IntegrityPerfCase(
            algorithm=algorithm,
            sim_elapsed_off=off.elapsed,
            sim_elapsed_detect=det.elapsed,
            checksum_computed=int(counters.get("integrity.checksum_computed", 0)),
            checksum_reused=int(counters.get("integrity.checksum_reused", 0)),
        ))
    report.plan_cache = plan_cache_stats()
    return report


def check_against(
    report: PerfReport | dict,
    baseline: dict,
    min_speedup: float | None = None,
    max_regression: float | None = None,
) -> list[str]:
    """Gate ``report`` against a recorded ``baseline`` dict.

    Returns a list of human-readable failures (empty = pass).  Both
    medium walls are normalized by their own calibration loop before
    comparison, so baselines recorded on different hardware stay
    meaningful.
    """
    current = report.to_dict() if isinstance(report, PerfReport) else report
    failures: list[str] = []
    base_norm = baseline.get("normalized_medium")
    cur_norm = current.get("normalized_medium")
    if not base_norm or not cur_norm:
        return ["baseline or current report lacks 'normalized_medium'"]
    speedup = base_norm / cur_norm
    if min_speedup is not None and speedup < min_speedup:
        failures.append(
            f"medium scenario speedup {speedup:.2f}x < required "
            f"{min_speedup:.2f}x (baseline {base_norm:.2f} cal-units, "
            f"current {cur_norm:.2f})"
        )
    if max_regression is not None and cur_norm > base_norm * (1.0 + max_regression):
        failures.append(
            f"medium scenario regressed {cur_norm / base_norm - 1.0:.1%} "
            f"> allowed {max_regression:.0%} (baseline {base_norm:.2f} "
            f"cal-units, current {cur_norm:.2f})"
        )
    return failures


def integrity_overhead_failures(
    report: PerfReport | dict, limit: float
) -> list[str]:
    """Gate the integrity cases: detect-mode sim overhead must be ``<= limit``.

    Unlike :func:`check_against` this is an absolute gate on the current
    report (simulated time is machine-independent, so no baseline or
    calibration is involved).  Returns human-readable failures (empty =
    pass); a report without integrity cases fails, because a missing
    measurement must not read as a passing one.
    """
    current = report.to_dict() if isinstance(report, PerfReport) else report
    cases = current.get("integrity", {}).get("cases", [])
    if not cases:
        return ["report has no integrity cases to gate"]
    failures = []
    for c in cases:
        if c["overhead"] > limit:
            failures.append(
                f"integrity detect overhead {c['overhead']:+.1%} on "
                f"{c['algorithm']}/medium exceeds the {limit:.0%} limit"
            )
    return failures
