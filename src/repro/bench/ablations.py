"""Ablation studies of the design choices the paper (and DESIGN.md) call out.

Each ablation flips one knob of the model or the implementation and
measures the consequence, turning the paper's *explanations* into
testable predictions:

``progress_thread``
    Paper III-A1: Comm-Overlap's effectiveness hinges on the MPI library
    progressing communication in the background.  With a progress
    thread, Comm-Overlap should close most of its gap to Write-Overlap.
``eager_threshold``
    Paper III-B1: rendezvous couples senders to busy aggregators.
    Raising the threshold (more eager traffic) should *help* the
    blocking-write algorithms by decoupling senders.
``buffer_size``
    The collective buffer trades cycle-management overhead (small
    buffers) against pipelining granularity and memory (large buffers).
``aggregators``
    More aggregators buy parallel file-system injection until the
    targets saturate; the automatic selection should sit near the knee.
``storage_noise``
    DESIGN.md 6.0(3): per-request storage variance is what double-
    buffered asynchronous writes hide on crill; with a noiseless file
    system the Write-Overlap gain should shrink toward the pure
    shuffle-hiding bound.
``fault_injection``
    Transient storage faults + bounded retries: how much of each
    algorithm's advantage survives a flaky file system?  Retried cycles
    serialize behind their backoff, so overlap algorithms degrade more
    gracefully than the blocking baseline only while the retry traffic
    still fits in the shuffle window.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.stats import Series, relative_improvement
from repro.bench.runner import specs_for
from repro.collio.api import RunSpec, run_collective_write
from repro.collio.config import CollectiveConfig
from repro.config import DEFAULT_SCALE, DEFAULT_SEED
from repro.units import MiB
from repro.workloads import make_workload

__all__ = [
    "AblationResult",
    "progress_thread_ablation",
    "eager_threshold_ablation",
    "buffer_size_ablation",
    "aggregator_ablation",
    "storage_noise_ablation",
    "fault_injection_ablation",
    "ALL_ABLATIONS",
]


@dataclass
class AblationResult:
    """One ablation: rows of (setting label -> {algorithm: point time})."""

    name: str
    parameter: str
    rows: dict[str, dict[str, float]] = field(default_factory=dict)
    notes: str = ""

    def gain(self, setting: str, algorithm: str, baseline: str = "no_overlap") -> float:
        row = self.rows[setting]
        return relative_improvement(row[baseline], row[algorithm])

    def render(self) -> str:
        algorithms = list(next(iter(self.rows.values())))
        header = [self.parameter] + algorithms
        widths = [max(len(str(h)), 12) for h in header]
        lines = [" | ".join(str(h).rjust(w) for h, w in zip(header, widths))]
        lines.append("-+-".join("-" * w for w in widths))
        for setting, row in self.rows.items():
            cells = [setting] + [f"{row[a] * 1e3:.2f} ms" for a in algorithms]
            lines.append(" | ".join(str(c).rjust(w) for c, w in zip(cells, widths)))
        title = f"ABLATION — {self.name}"
        if self.notes:
            title += f"\n{self.notes}"
        return title + "\n" + "\n".join(lines)


def _measure(
    cluster_spec, fs_spec, nprocs, workload, algorithms, config, reps,
    seed=DEFAULT_SEED, faults=None,
) -> dict[str, float]:
    views = workload.views()
    points = {}
    for algorithm in algorithms:
        series = Series(key=("ablation",), algorithm=algorithm)
        for rep in range(reps):
            run = run_collective_write(
                RunSpec(
                    cluster=cluster_spec, fs=fs_spec, nprocs=nprocs,
                    views=views, algorithm=algorithm, config=config,
                    carry_data=False, seed=seed + 1000 * rep, faults=faults,
                )
            )
            series.add(run.elapsed)
        points[algorithm] = series.point
    return points


def progress_thread_ablation(
    nprocs: int = 96, reps: int = 2, scale: int = DEFAULT_SCALE
) -> AblationResult:
    """Does a progress thread rescue Comm-Overlap?  (paper III-A1)."""
    result = AblationResult(
        "MPI progress thread", "progress",
        notes="Comm-Overlap relies on background progress of rendezvous traffic.",
    )
    fs_spec = specs_for("ibex", scale)[1]
    workload = make_workload("ior", nprocs, scale=scale, block_size=4 * MiB)
    config = CollectiveConfig.for_scale(scale)
    for label, flag in (("off", False), ("on", True)):
        cluster_spec = specs_for("ibex", scale)[0].with_(progress_thread=flag)
        result.rows[label] = _measure(
            cluster_spec, fs_spec, nprocs, workload,
            ["no_overlap", "comm_overlap", "write_overlap"], config, reps,
        )
    return result


def eager_threshold_ablation(
    nprocs: int = 96, reps: int = 2, scale: int = DEFAULT_SCALE
) -> AblationResult:
    """How does the rendezvous switch-over shape the algorithms?"""
    result = AblationResult(
        "eager/rendezvous threshold", "threshold",
        notes="Rendezvous couples senders to busy aggregators (paper III-B1).",
    )
    base_cluster, fs_spec = specs_for("ibex", scale)
    workload = make_workload("ior", nprocs, scale=scale, block_size=4 * MiB)
    config = CollectiveConfig.for_scale(scale)
    for threshold in (512, 8 * 1024, 1 * MiB):
        cluster_spec = base_cluster.with_(eager_threshold=threshold)
        label = f"{threshold} B"
        result.rows[label] = _measure(
            cluster_spec, fs_spec, nprocs, workload,
            ["no_overlap", "comm_overlap", "write_overlap"], config, reps,
        )
    return result


def buffer_size_ablation(
    nprocs: int = 96, reps: int = 2, scale: int = DEFAULT_SCALE
) -> AblationResult:
    """Collective buffer size sweep (ompio default: 32 MB unscaled)."""
    result = AblationResult("collective buffer size", "cb_buffer")
    cluster_spec, fs_spec = specs_for("crill", scale)
    workload = make_workload("ior", nprocs, scale=scale, block_size=4 * MiB)
    for cb in (64 * 1024, 256 * 1024, 512 * 1024, 2 * MiB):
        config = CollectiveConfig.for_scale(scale, cb_buffer_size=cb)
        result.rows[f"{cb >> 10} KiB"] = _measure(
            cluster_spec, fs_spec, nprocs, workload,
            ["no_overlap", "write_overlap"], config, reps,
        )
    return result


def aggregator_ablation(
    nprocs: int = 96, reps: int = 2, scale: int = DEFAULT_SCALE
) -> AblationResult:
    """Aggregator count sweep vs. the automatic selection."""
    result = AblationResult("aggregator count", "aggregators")
    cluster_spec, fs_spec = specs_for("ibex", scale)
    workload = make_workload("ior", nprocs, scale=scale, block_size=4 * MiB)
    for count in (1, 2, 3, None):
        config = CollectiveConfig.for_scale(scale, num_aggregators=count)
        label = "auto" if count is None else str(count)
        result.rows[label] = _measure(
            cluster_spec, fs_spec, nprocs, workload,
            ["write_overlap"], config, reps,
        )
    return result


def storage_noise_ablation(
    nprocs: int = 96, reps: int = 2, scale: int = DEFAULT_SCALE
) -> AblationResult:
    """Per-request storage variance: what pipelined writes actually hide."""
    result = AblationResult(
        "crill storage noise (sigma)", "sigma",
        notes="HDD service variance is what double-buffered writes hide on crill.",
    )
    cluster_spec, base_fs = specs_for("crill", scale)
    workload = make_workload("ior", nprocs, scale=scale, block_size=4 * MiB)
    config = CollectiveConfig.for_scale(scale)
    for sigma in (0.0, 0.15, 0.35, 0.6):
        fs_spec = base_fs.with_(noise_sigma=sigma)
        result.rows[f"{sigma:.2f}"] = _measure(
            cluster_spec, fs_spec, nprocs, workload,
            ["no_overlap", "comm_overlap", "write_overlap"], config, reps,
        )
    return result


def fault_injection_ablation(
    nprocs: int = 96, reps: int = 2, scale: int = DEFAULT_SCALE
) -> AblationResult:
    """Transient write failures + retries: graceful degradation check.

    Sweeps the per-storage-request failure rate with a fixed retry
    policy; the 0% row must be bit-identical to a run without the fault
    subsystem (a disabled FaultSpec never builds an injector).
    """
    from repro.faults import FaultSpec, RetryPolicy

    result = AblationResult(
        "transient write faults + retries", "fail_rate",
        notes="Per-storage-request failure probability; bounded-backoff retries.",
    )
    cluster_spec, fs_spec = specs_for("ibex", scale)
    workload = make_workload("ior", nprocs, scale=scale, block_size=4 * MiB)
    config = CollectiveConfig.for_scale(scale).with_(retry=RetryPolicy(max_retries=25))
    algorithms = ["no_overlap", "comm_overlap", "write_overlap", "write_comm", "write_comm2"]
    for rate in (0.0, 0.05, 0.10):
        faults = FaultSpec(write_fail_rate=rate)
        result.rows[f"{rate:.0%}"] = _measure(
            cluster_spec, fs_spec, nprocs, workload, algorithms, config, reps,
            faults=faults if faults.enabled else None,
        )
    return result


ALL_ABLATIONS = {
    "progress_thread": progress_thread_ablation,
    "eager_threshold": eager_threshold_ablation,
    "buffer_size": buffer_size_ablation,
    "aggregators": aggregator_ablation,
    "storage_noise": storage_noise_ablation,
    "fault_injection": fault_injection_ablation,
}
