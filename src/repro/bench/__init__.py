"""Experiment harness reproducing the paper's evaluation (Sec. IV).

The harness runs *cases* — (benchmark, cluster, process count, problem
size) — with repeated measurements per (case, algorithm) series, and
derives the paper's artifacts:

* :func:`~repro.bench.experiments.table1` — winner counts per overlap
  algorithm (Table I);
* :func:`~repro.bench.experiments.fig1` — Tile-1M execution times at two
  process counts on both clusters (Fig. 1);
* :func:`~repro.bench.experiments.fig2` / ``fig3`` — average positive
  improvement per algorithm x benchmark on crill / Ibex (Figs. 2-3);
* :func:`~repro.bench.experiments.fig4` — shuffle-primitive winner counts
  on Write-Comm-2 (Fig. 4), with the crill scale trend (Sec. IV-B);
* :func:`~repro.bench.experiments.breakdown` — the no-overlap
  communication/IO split quoted in Sec. IV-A;
* :func:`~repro.bench.experiments.lustre_note` — the Sec. V note that
  poor ``aio_write`` support (Lustre) erases Write-Overlap's advantage.

``python -m repro.bench <experiment> [--full] [--reps N] [--scale N]``
prints each artifact; the ``benchmarks/`` pytest suite runs reduced
slices of the same code.
"""

from repro.bench.runner import Case, MatrixResult, run_case, run_matrix
from repro.bench import experiments, reporting

__all__ = ["Case", "MatrixResult", "run_case", "run_matrix", "experiments", "reporting"]
