"""Unit constants and helpers.

Simulated time is measured in **seconds** (floats), data sizes in **bytes**
(ints) and bandwidths in **bytes per second**.  These constants exist so
that calling code reads like the paper: ``32 * MiB``, ``1 * GiB``,
``bw = 2600 * MB`` (the paper quotes MB/s in decimal units).
"""

from __future__ import annotations

# Binary data sizes (bytes).
KiB: int = 1024
MiB: int = 1024 * KiB
GiB: int = 1024 * MiB

# Decimal data sizes / bandwidths, as commonly quoted for networks & disks.
KB: int = 1000
MB: int = 1000 * KB
GB: int = 1000 * MB

# Time (seconds).
SECOND: float = 1.0
MILLISECOND: float = 1e-3
MICROSECOND: float = 1e-6
NANOSECOND: float = 1e-9

US = MICROSECOND
MS = MILLISECOND


def fmt_bytes(n: int | float) -> str:
    """Format a byte count with a binary suffix, e.g. ``fmt_bytes(2048) == '2.0 KiB'``."""
    n = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(n) < 1024.0 or unit == "TiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024.0
    raise AssertionError("unreachable")


def fmt_time(t: float) -> str:
    """Format a duration in seconds with an appropriate SI suffix."""
    if t >= 1.0:
        return f"{t:.3f} s"
    if t >= 1e-3:
        return f"{t * 1e3:.3f} ms"
    if t >= 1e-6:
        return f"{t * 1e6:.3f} us"
    return f"{t * 1e9:.1f} ns"


def fmt_bandwidth(bw: float) -> str:
    """Format a bandwidth in bytes/second as MB/s or GB/s (decimal)."""
    if bw >= GB:
        return f"{bw / GB:.2f} GB/s"
    return f"{bw / MB:.1f} MB/s"
