"""Structured observability: spans, exporters, metrics and overlap analysis.

The subsystem decomposes into four orthogonal pieces:

* :mod:`repro.obs.span` — the :class:`Span` timeline model and the
  :class:`SpanRecorder` (a drop-in :class:`~repro.sim.trace.Tracer`);
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON (Perfetto /
  ``chrome://tracing``) and CSV/summary exporters, plus the schema check;
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` with counters,
  gauges and fixed-bucket histograms;
* :mod:`repro.obs.overlap` — the overlap-efficiency derived metric
  (fraction of write time hidden under in-flight shuffles).

``python -m repro.obs validate trace.json`` runs the schema check from
the command line (used by CI on the bench smoke artifact).
"""

from repro.obs.export import (
    COMPUTE_PID,
    STORAGE_PID,
    chrome_trace,
    chrome_trace_json,
    span_summary,
    spans_csv,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import (
    DURATION_BUCKETS,
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricsRegistry,
)
from repro.obs.overlap import (
    CyclePair,
    OverlapReport,
    RankOverlap,
    merge_intervals,
    overlap_report,
)
from repro.obs.span import SPAN_CATEGORIES, Span, SpanRecorder, total_time

__all__ = [
    "Span",
    "SpanRecorder",
    "SPAN_CATEGORIES",
    "total_time",
    "chrome_trace",
    "chrome_trace_json",
    "write_chrome_trace",
    "validate_chrome_trace",
    "spans_csv",
    "span_summary",
    "COMPUTE_PID",
    "STORAGE_PID",
    "MetricsRegistry",
    "CounterMetric",
    "GaugeMetric",
    "HistogramMetric",
    "DURATION_BUCKETS",
    "OverlapReport",
    "RankOverlap",
    "CyclePair",
    "overlap_report",
    "merge_intervals",
]
