"""Command-line entry: ``python -m repro.obs validate <trace.json>``.

Runs the Chrome ``trace_event`` schema check on an exported trace file
and exits non-zero with the violation message if it fails.  CI uses
this on the bench smoke artifact.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.export import validate_chrome_trace


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.obs")
    sub = parser.add_subparsers(dest="command", required=True)
    p_validate = sub.add_parser("validate", help="schema-check a Chrome trace JSON file")
    p_validate.add_argument("path", help="trace file written with --trace-out")
    ns = parser.parse_args(argv)

    if ns.command == "validate":
        try:
            with open(ns.path, "r", encoding="utf-8") as fh:
                trace = json.load(fh)
        except OSError as exc:
            print(f"INVALID: cannot read {ns.path}: {exc}", file=sys.stderr)
            return 1
        except json.JSONDecodeError as exc:
            print(f"INVALID: {ns.path} is not JSON: {exc}", file=sys.stderr)
            return 1
        try:
            n = validate_chrome_trace(trace)
        except ValueError as exc:
            print(f"INVALID: {exc}", file=sys.stderr)
            return 1
        print(f"OK: {ns.path} ({n} events)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
