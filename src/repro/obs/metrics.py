"""Metrics registry: counters, gauges and fixed-bucket histograms.

Replaces the ad-hoc ``dict`` counter plumbing that used to flow through
``collio.api`` and ``tune.api``: producers register named instruments on
a :class:`MetricsRegistry`, consumers read a plain-data
:meth:`~MetricsRegistry.snapshot`.  All three instrument kinds are
deliberately minimal and allocation-free on the hot path:

* :class:`CounterMetric` — monotonically increasing integer;
* :class:`GaugeMetric` — last-written value;
* :class:`HistogramMetric` — fixed bucket boundaries chosen at creation
  (so merged/compared snapshots always line up), cumulative-count
  semantics like Prometheus ("count of observations <= boundary").
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Mapping

__all__ = [
    "CounterMetric",
    "GaugeMetric",
    "HistogramMetric",
    "MetricsRegistry",
    "DURATION_BUCKETS",
]

#: Default histogram boundaries for simulated durations, seconds.
#: Decade ladder spanning sub-microsecond MPI call overheads up to whole
#: collective writes; a final implicit +inf bucket catches the rest.
DURATION_BUCKETS: tuple[float, ...] = (
    1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)


class CounterMetric:
    """Monotonically increasing integer counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, by: int = 1) -> None:
        if by < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (by={by})")
        self.value += by


class GaugeMetric:
    """Last-written value (e.g. a peak or a configuration fact)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def max(self, value: float) -> None:
        """Keep the running maximum."""
        if value > self.value:
            self.value = value


class HistogramMetric:
    """Histogram with fixed, sorted bucket boundaries.

    ``counts[i]`` is the number of observations ``<= boundaries[i]``
    (non-cumulative per-bucket storage; :meth:`cumulative` derives the
    Prometheus-style view), with one extra overflow bucket at the end.
    """

    __slots__ = ("name", "boundaries", "counts", "count", "sum")

    def __init__(self, name: str, boundaries: Iterable[float] = DURATION_BUCKETS) -> None:
        bounds = tuple(float(b) for b in boundaries)
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one boundary")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram {name!r} boundaries must be strictly increasing")
        self.name = name
        self.boundaries = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.boundaries, value)] += 1
        self.count += 1
        self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def cumulative(self) -> list[tuple[float, int]]:
        """``(boundary, count_of_observations_at_or_below)`` pairs."""
        out, running = [], 0
        for boundary, n in zip(self.boundaries, self.counts):
            running += n
            out.append((boundary, running))
        return out


class MetricsRegistry:
    """Named instruments with get-or-create access and plain-data export."""

    def __init__(self) -> None:
        self._counters: dict[str, CounterMetric] = {}
        self._gauges: dict[str, GaugeMetric] = {}
        self._histograms: dict[str, HistogramMetric] = {}

    # -- instruments ----------------------------------------------------
    def counter(self, name: str) -> CounterMetric:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = CounterMetric(name)
        return metric

    def gauge(self, name: str) -> GaugeMetric:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = GaugeMetric(name)
        return metric

    def histogram(self, name: str, boundaries: Iterable[float] = DURATION_BUCKETS) -> HistogramMetric:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = HistogramMetric(name, boundaries)
        elif tuple(float(b) for b in boundaries) != metric.boundaries:
            raise ValueError(
                f"histogram {name!r} already registered with different boundaries"
            )
        return metric

    # -- bulk helpers ---------------------------------------------------
    def merge_counters(self, counters: Mapping[str, int]) -> None:
        """Add a plain counter mapping (e.g. a tracer's) into the registry."""
        for name, value in counters.items():
            self.counter(name).inc(int(value))

    def counter_values(self) -> dict[str, int]:
        """All counters as a plain ``{name: value}`` dict (sorted keys)."""
        return {name: self._counters[name].value for name in sorted(self._counters)}

    def snapshot(self) -> dict:
        """JSON-safe dump of every instrument."""
        return {
            "counters": self.counter_values(),
            "gauges": {name: self._gauges[name].value for name in sorted(self._gauges)},
            "histograms": {
                name: {
                    "boundaries": list(h.boundaries),
                    "counts": list(h.counts),
                    "count": h.count,
                    "sum": h.sum,
                }
                for name, h in sorted(self._histograms.items())
            },
        }
