"""Span exporters: Chrome ``trace_event`` JSON and CSV/summary tables.

The Chrome format (one JSON object with a ``traceEvents`` list) loads
directly in ``chrome://tracing`` and https://ui.perfetto.dev.  Mapping:

* pid 0 is the compute side — one tid (track) per MPI rank;
* pid 1 is the storage side — spans recorded with ``rank < 0`` (the
  parallel file system's stripe writes);
* pid 2 is the staging tier — ``staging``-category spans recorded with
  ``rank <= -2`` (per-node burst-buffer absorb/drain intervals; the
  encoded node id ``-rank - 2`` becomes the tid);
* sync spans become ``"X"`` (complete) events, which Chrome renders as
  a properly nested flame per track;
* async spans (in-flight shuffles, aio requests) become ``"b"``/``"e"``
  async event pairs with sequentially assigned ids, so partially
  overlapping intervals render on their own sub-tracks.

Timestamps are simulated seconds scaled to microseconds (the unit the
format mandates).  Serialization is deterministic — events are emitted
in recorded span order, ids are sequential, and ``json.dumps`` runs
with sorted keys and compact separators — so two runs with the same
seed produce byte-identical files.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Sequence

from repro.obs.span import Span

__all__ = [
    "COMPUTE_PID",
    "STORAGE_PID",
    "STAGING_PID",
    "chrome_trace",
    "chrome_trace_json",
    "write_chrome_trace",
    "validate_chrome_trace",
    "spans_csv",
    "span_summary",
]

#: pid used for rank (compute) tracks and for storage-side spans.
COMPUTE_PID = 0
STORAGE_PID = 1
#: pid of the burst-buffer staging tier (one tid per node's buffer).
STAGING_PID = 2

_US = 1e6  # simulated seconds -> trace microseconds


def _track(span: Span) -> tuple[int, int]:
    """(pid, tid) placement: ranks pid 0, storage pid 1, staging pid 2."""
    if span.rank >= 0:
        return COMPUTE_PID, span.rank
    if span.category == "staging" and span.rank <= -2:
        return STAGING_PID, -span.rank - 2
    return STORAGE_PID, 0


def _json_safe_attrs(span: Span) -> dict[str, Any]:
    args: dict[str, Any] = {"cycle": span.cycle}
    for key, value in span.attrs.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            args[key] = value
        else:
            args[key] = repr(value)
    return args


def chrome_trace(spans: Iterable[Span]) -> dict[str, Any]:
    """Build the Chrome ``trace_event`` object for ``spans``.

    Open (unclosed) spans are skipped — a trace of intervals needs both
    endpoints.  Event order follows span-recording order, which is
    deterministic for a fixed seed.
    """
    events: list[dict[str, Any]] = []
    tracks_seen: set[tuple[int, int]] = set()
    body: list[dict[str, Any]] = []
    next_async_id = 1

    for span in spans:
        if not span.closed:
            continue
        pid, tid = _track(span)
        tracks_seen.add((pid, tid))
        common = {
            "name": span.name,
            "cat": span.category,
            "pid": pid,
            "tid": tid,
            "ts": span.t0 * _US,
            "args": _json_safe_attrs(span),
        }
        if span.flow == "sync":
            body.append({**common, "ph": "X", "dur": span.dur * _US})
        else:
            async_id = next_async_id
            next_async_id += 1
            body.append({**common, "ph": "b", "id": async_id})
            body.append(
                {
                    "name": span.name,
                    "cat": span.category,
                    "pid": pid,
                    "tid": tid,
                    "ts": (span.t1 or span.t0) * _US,
                    "ph": "e",
                    "id": async_id,
                    "args": {},
                }
            )

    # Metadata first: names for the processes and one track per rank.
    process_labels = {COMPUTE_PID: "ranks", STORAGE_PID: "storage", STAGING_PID: "staging"}
    pids = sorted({pid for pid, _ in tracks_seen})
    for pid in pids:
        events.append(
            {"ph": "M", "pid": pid, "tid": 0, "name": "process_name",
             "args": {"name": process_labels[pid]}}
        )
    for pid, tid in sorted(tracks_seen):
        if pid == COMPUTE_PID:
            label = f"rank {tid}"
        elif pid == STAGING_PID:
            label = f"node {tid} buffer"
        else:
            label = "pfs"
        events.append(
            {"ph": "M", "pid": pid, "tid": tid, "name": "thread_name",
             "args": {"name": label}}
        )
    events.extend(body)
    return {"displayTimeUnit": "ms", "traceEvents": events}


def chrome_trace_json(spans: Iterable[Span]) -> str:
    """Deterministic serialization: sorted keys, compact separators."""
    return json.dumps(chrome_trace(spans), sort_keys=True, separators=(",", ":"))


def write_chrome_trace(path: str, spans: Iterable[Span]) -> dict[str, Any]:
    """Validate, then write the Chrome trace to ``path``; returns the object."""
    obj = chrome_trace(spans)
    validate_chrome_trace(obj)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(obj, sort_keys=True, separators=(",", ":")))
        fh.write("\n")
    return obj


# ----------------------------------------------------------------------
# Schema check
# ----------------------------------------------------------------------

_REQUIRED = {
    "X": ("name", "cat", "ph", "ts", "dur", "pid", "tid"),
    "b": ("name", "cat", "ph", "ts", "pid", "tid", "id"),
    "e": ("ph", "ts", "pid", "tid", "id"),
    "M": ("ph", "pid", "name", "args"),
}

#: The process tracks this exporter emits: compute ranks, the parallel
#: file system, and the burst-buffer staging tier.
_KNOWN_PROCESS_LABELS = ("ranks", "storage", "staging")


def validate_chrome_trace(trace: Any) -> int:
    """Check a Chrome ``trace_event`` object; returns the event count.

    Raises :class:`ValueError` describing the first violation:
    missing/ill-typed required fields, negative durations, unbalanced
    async begin/end pairs, or ``"X"`` events on one track that overlap
    without nesting (sync spans must form a proper flame).
    """
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise ValueError("trace must be an object with a 'traceEvents' list")
    events = trace["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")

    sync_by_track: dict[tuple[int, int], list[tuple[float, float]]] = {}
    async_open: dict[tuple[int, Any], float] = {}

    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"event #{i} is not an object")
        ph = ev.get("ph")
        if ph not in _REQUIRED:
            raise ValueError(f"event #{i} has unsupported ph={ph!r}")
        for key in _REQUIRED[ph]:
            if key not in ev:
                raise ValueError(f"event #{i} (ph={ph}) missing field {key!r}")
        if ph == "M":
            if ev["name"] == "process_name":
                label = ev.get("args", {}).get("name")
                if label not in _KNOWN_PROCESS_LABELS:
                    raise ValueError(
                        f"event #{i}: unknown process track {label!r}; "
                        f"known: {', '.join(_KNOWN_PROCESS_LABELS)}"
                    )
            continue
        ts = ev["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError(f"event #{i} has invalid ts={ts!r}")
        track = (ev["pid"], ev["tid"])
        if ph == "X":
            dur = ev["dur"]
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"event #{i} has invalid dur={dur!r}")
            sync_by_track.setdefault(track, []).append((float(ts), float(ts) + float(dur)))
        elif ph == "b":
            key = (ev["pid"], ev["id"])
            if key in async_open:
                raise ValueError(f"event #{i}: async id {ev['id']!r} begun twice")
            async_open[key] = float(ts)
        elif ph == "e":
            key = (ev["pid"], ev["id"])
            if key not in async_open:
                raise ValueError(f"event #{i}: async end without begin (id={ev['id']!r})")
            if float(ts) < async_open.pop(key):
                raise ValueError(f"event #{i}: async end before its begin (id={ev['id']!r})")

    if async_open:
        dangling = sorted(str(k[1]) for k in async_open)
        raise ValueError(f"unbalanced async events, open ids: {', '.join(dangling)}")

    for track, intervals in sync_by_track.items():
        # Sorted by start (longest first at ties), each interval must either
        # nest inside the enclosing one or start at/after its end.
        stack: list[tuple[float, float]] = []
        for t0, t1 in sorted(intervals, key=lambda iv: (iv[0], -iv[1])):
            while stack and t0 >= stack[-1][1] - 1e-9:
                stack.pop()
            if stack and t1 > stack[-1][1] + 1e-9:
                raise ValueError(
                    f"track pid={track[0]} tid={track[1]}: sync span "
                    f"[{t0}, {t1}] overlaps [{stack[-1][0]}, {stack[-1][1]}] "
                    "without nesting"
                )
            stack.append((t0, t1))
    return len(events)


# ----------------------------------------------------------------------
# CSV / summary
# ----------------------------------------------------------------------

def _csv_escape(value: Any) -> str:
    text = str(value)
    if any(c in text for c in ',"\n'):
        return '"' + text.replace('"', '""') + '"'
    return text


def spans_csv(spans: Iterable[Span]) -> str:
    """Closed spans as RFC-4180 CSV (one row per span, recorded order)."""
    rows = ["name,category,rank,cycle,flow,depth,t0,t1,dur"]
    for s in spans:
        if not s.closed:
            continue
        rows.append(
            ",".join(
                _csv_escape(v)
                for v in (
                    s.name, s.category, s.rank, s.cycle, s.flow, s.depth,
                    f"{s.t0:.9f}", f"{s.t1:.9f}", f"{s.dur:.9f}",
                )
            )
        )
    return "\n".join(rows) + "\n"


def span_summary(spans: Sequence[Span]) -> list[dict[str, Any]]:
    """Per-(category, name) totals: count, total and mean duration."""
    agg: dict[tuple[str, str], list[float]] = {}
    for s in spans:
        if s.closed:
            agg.setdefault((s.category, s.name), []).append(s.dur)
    out = []
    for (category, name), durs in sorted(agg.items()):
        total = sum(durs)
        out.append(
            {
                "category": category,
                "name": name,
                "count": len(durs),
                "total": total,
                "mean": total / len(durs),
            }
        )
    return out
