"""Structured spans: the timeline model behind the observability layer.

A :class:`Span` is one named interval of simulated time attributed to a
rank (and usually an internal cycle): a shuffle in flight, a blocking
write, a fence, a retry attempt.  Spans come in two *flows*:

``sync``
    On the rank's call stack — spans of the same rank are properly
    nested (a ``fence`` inside a ``shuffle_init`` inside a ``cycle``).
    Exported as Chrome ``"X"`` (complete) events.

``async``
    An in-flight interval that outlives the posting call — an
    ``aio_write`` between submission and completion, a shuffle between
    ``shuffle_init`` and ``shuffle_wait``.  Async spans of one rank may
    overlap each other and any sync span; they are exported as Chrome
    ``"b"``/``"e"`` (async) event pairs.

:class:`SpanRecorder` extends :class:`~repro.sim.trace.Tracer` — the
counter/record contract is unchanged — with span storage behind the same
``enabled`` flag: when disabled, :meth:`SpanRecorder.begin` returns
``None`` after one branch, so the instrumented hot paths pay nothing.
``max_records`` bounds span storage with the same ring-buffer semantics
the base tracer applies to records (counters stay exact).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.sim.trace import Tracer

__all__ = ["Span", "SpanRecorder", "SPAN_CATEGORIES", "total_time"]

#: The categories the built-in instrumentation emits.
#:
#: =============  ========================================================
#: ``algo``       one whole collective write on one rank
#: ``algo.cycle`` one internal-cycle iteration of an overlap algorithm
#: ``comm``       a cycle's shuffle *in flight* (init start → data placed)
#: ``comm.call``  time inside shuffle_init / shuffle_wait / wait_all calls
#: ``io``         a write being *serviced* (post/start → completion)
#: ``io.call``    time inside write_post / write_wait calls
#: ``io.aio``     an aio request inside the simulated OS (per client)
#: ``io.fs``      a striped write inside the parallel file system
#: ``sync``       fences, barriers and lock epochs of the RMA shuffles
#: ``retry``      one attempt of a retrying write (foreground or supervisor)
#: ``recovery``   a recovery attempt or failover gap (crash-fault runs)
#: ``staging``    the burst-buffer tier: per-node absorb/drain intervals
#:                (async, on the staging track) and rank-side flush waits
#: =============  ========================================================
SPAN_CATEGORIES = (
    "algo", "algo.cycle", "comm", "comm.call", "io", "io.call",
    "io.aio", "io.fs", "sync", "retry", "recovery", "staging",
)


@dataclass
class Span:
    """One named interval of simulated time on one rank's timeline."""

    name: str
    category: str
    rank: int = -1
    cycle: int = -1
    t0: float = 0.0
    #: Completion time; ``None`` while the span is still open.
    t1: float | None = None
    #: Nesting depth among the rank's *sync* spans at open time.
    depth: int = 0
    #: ``"sync"`` (call-stack interval) or ``"async"`` (in-flight interval).
    flow: str = "sync"
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def closed(self) -> bool:
        return self.t1 is not None

    @property
    def dur(self) -> float:
        """Duration in simulated seconds (0.0 while open)."""
        return 0.0 if self.t1 is None else self.t1 - self.t0

    def overlap_with(self, other: "Span") -> float:
        """Length of the wall-clock intersection with ``other``, seconds."""
        if self.t1 is None or other.t1 is None:
            return 0.0
        return max(0.0, min(self.t1, other.t1) - max(self.t0, other.t0))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        end = "open" if self.t1 is None else f"{self.t1:.9f}"
        return (
            f"Span({self.name!r}, {self.category!r}, rank={self.rank}, "
            f"cycle={self.cycle}, t0={self.t0:.9f}, t1={end})"
        )


@dataclass
class SpanRecorder(Tracer):
    """A :class:`Tracer` that additionally records :class:`Span` timelines.

    Drop-in for the base tracer everywhere (the counter contract is
    inherited unchanged); spans are stored only while ``enabled`` is
    True.  ``max_records`` (inherited) bounds spans with the same ring
    buffer applied to records: only the newest ``max_records`` spans are
    kept, counters stay exact.  Default is ``None`` — unbounded.
    """

    spans: list[Span] = field(default_factory=list)

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.max_records is not None:
            self.spans = deque(self.spans, maxlen=self.max_records)
        self._depths: dict[int, int] = {}
        # Real span storage: let guarded call sites build span kwargs.
        self.active = self.enabled

    # ------------------------------------------------------------------
    def begin(
        self,
        time: float,
        name: str,
        category: str,
        rank: int = -1,
        cycle: int = -1,
        flow: str = "sync",
        **attrs: Any,
    ) -> Span | None:
        """Open (and store) a span; returns it as the handle for :meth:`end`.

        Returns ``None`` when the recorder is disabled — :meth:`end`
        accepts that, so call sites never need their own guard.
        """
        if not self.enabled:
            return None
        depth = 0
        if flow == "sync":
            depth = self._depths.get(rank, 0)
            self._depths[rank] = depth + 1
        span = Span(
            name=name, category=category, rank=rank, cycle=cycle,
            t0=float(time), depth=depth, flow=flow, attrs=attrs,
        )
        self.spans.append(span)
        return span

    def end(self, span: Span | None, time: float) -> Span | None:
        """Close ``span`` at ``time``.  ``None`` (disabled begin) is a no-op."""
        if span is None:
            return None
        span.t1 = float(time)
        if span.flow == "sync":
            depth = self._depths.get(span.rank, 1) - 1
            self._depths[span.rank] = max(0, depth)
        return span

    # ------------------------------------------------------------------
    def closed_spans(self) -> list[Span]:
        """All spans whose end has been recorded, in open order."""
        return [s for s in self.spans if s.closed]

    def spans_of(
        self,
        category: str | None = None,
        rank: int | None = None,
        name: str | None = None,
    ) -> list[Span]:
        """Closed spans filtered by category / rank / name (all optional)."""
        return [
            s
            for s in self.spans
            if s.closed
            and (category is None or s.category == category)
            and (rank is None or s.rank == rank)
            and (name is None or s.name == name)
        ]

    def clear(self) -> None:
        super().clear()
        self.spans.clear()
        self._depths.clear()


def total_time(spans: Iterable[Span], category: str, rank: int | None = None) -> float:
    """Summed duration of the closed spans of one category (one or all ranks)."""
    return sum(
        s.dur
        for s in spans
        if s.closed and s.category == category and (rank is None or s.rank == rank)
    )
