"""Overlap efficiency: how much write time hides under communication.

The paper's overlap algorithms (Sec. III) differ precisely in which
cycle's shuffle runs concurrently with which cycle's file write.  From
the recorded spans this module computes that directly:

* **io spans** (category ``"io"``) — intervals during which a rank has a
  file write being serviced (blocking call, or post → completion for
  the asynchronous variants);
* **comm spans** (category ``"comm"``) — intervals during which a
  rank's shuffle is in flight (``shuffle_init`` start → data placed).

For each rank, the comm intervals are merged into a union and every io
span is intersected with it; *overlap efficiency* is

    hidden_io_time / total_io_time

summed per rank (and overall).  ``no_overlap`` runs its shuffle and its
write strictly back to back, so its efficiency is ~0; ``write_comm2``
overlaps both neighbours' cycles and scores highest.  The per-pair
attribution (which *write* cycle overlapped which *comm* cycle) is kept
so benches can show the diagonal structure the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.obs.span import Span

__all__ = ["RankOverlap", "CyclePair", "OverlapReport", "overlap_report", "merge_intervals"]


def merge_intervals(intervals: Iterable[tuple[float, float]]) -> list[tuple[float, float]]:
    """Union of possibly-overlapping ``(t0, t1)`` intervals, sorted."""
    merged: list[tuple[float, float]] = []
    for t0, t1 in sorted(intervals):
        if merged and t0 <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], t1))
        else:
            merged.append((t0, t1))
    return merged


def _intersection(t0: float, t1: float, union: Sequence[tuple[float, float]]) -> float:
    return sum(max(0.0, min(t1, b) - max(t0, a)) for a, b in union)


@dataclass(frozen=True)
class RankOverlap:
    """One rank's totals."""

    rank: int
    io_time: float
    hidden_time: float

    @property
    def efficiency(self) -> float:
        return self.hidden_time / self.io_time if self.io_time > 0 else 0.0


@dataclass(frozen=True)
class CyclePair:
    """Overlap attributed to one (write cycle, comm cycle) pair on a rank."""

    rank: int
    write_cycle: int
    comm_cycle: int
    seconds: float


@dataclass(frozen=True)
class OverlapReport:
    """Aggregated overlap-efficiency result computed from spans."""

    io_time: float
    hidden_time: float
    per_rank: tuple[RankOverlap, ...] = ()
    pairs: tuple[CyclePair, ...] = field(default=(), repr=False)

    @property
    def efficiency(self) -> float:
        """Fraction of total write time hidden under in-flight shuffles."""
        return self.hidden_time / self.io_time if self.io_time > 0 else 0.0


def overlap_report(spans: Iterable[Span]) -> OverlapReport:
    """Compute :class:`OverlapReport` from recorded spans.

    Uses closed ``"io"`` and ``"comm"`` spans of each rank; spans of
    other categories are ignored, so the report is stable under added
    instrumentation detail.
    """
    io_by_rank: dict[int, list[Span]] = {}
    comm_by_rank: dict[int, list[Span]] = {}
    for s in spans:
        if not s.closed or s.rank < 0:
            continue
        if s.category == "io":
            io_by_rank.setdefault(s.rank, []).append(s)
        elif s.category == "comm":
            comm_by_rank.setdefault(s.rank, []).append(s)

    per_rank: list[RankOverlap] = []
    pairs: list[CyclePair] = []
    total_io = 0.0
    total_hidden = 0.0
    for rank in sorted(io_by_rank):
        ios = io_by_rank[rank]
        comms = comm_by_rank.get(rank, [])
        union = merge_intervals((c.t0, c.t1) for c in comms)  # type: ignore[misc]
        io_time = sum(s.dur for s in ios)
        hidden = sum(_intersection(s.t0, s.t1, union) for s in ios)  # type: ignore[arg-type]
        per_rank.append(RankOverlap(rank=rank, io_time=io_time, hidden_time=hidden))
        total_io += io_time
        total_hidden += hidden
        for w in ios:
            for c in comms:
                seconds = w.overlap_with(c)
                if seconds > 0.0:
                    pairs.append(
                        CyclePair(
                            rank=rank,
                            write_cycle=w.cycle,
                            comm_cycle=c.cycle,
                            seconds=seconds,
                        )
                    )

    return OverlapReport(
        io_time=total_io,
        hidden_time=total_hidden,
        per_rank=tuple(per_rank),
        pairs=tuple(pairs),
    )
