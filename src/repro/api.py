"""The package's front door: one import surface for the common workflow.

Everything a typical study touches — describing a run (:class:`RunSpec`
and the rest of the ``*Spec`` family), executing it
(:func:`run_collective_write`, :func:`run_with_recovery`), and tuning it
(:func:`autotune`) — is re-exported here so user code can say::

    from repro.api import RunSpec, run_collective_write, crill, beegfs_crill

    spec = RunSpec(cluster=crill(), fs=beegfs_crill(), nprocs=16,
                   views=make_workload("ior", 16).views())
    result = run_collective_write(spec)

The deep module paths (``repro.collio.api`` etc.) remain import-stable —
this facade adds, it does not move.  Specialized surfaces (``repro.sim``
primitives, ``repro.obs`` exporters, ``repro.bench`` harnesses) stay in
their own modules on purpose: they are subsystem tooling, not the
everyday API.
"""

from __future__ import annotations

from repro.collio.api import (
    CollectiveWriteResult,
    RunSpec,
    build_plan,
    collective_write,
    default_data,
    run_collective_write,
)
from repro.collio.config import CollectiveConfig
from repro.collio.view import FileView
from repro.faults.retry import RetryPolicy
from repro.faults.spec import FaultSpec
from repro.fs.presets import FsSpec, beegfs_crill, beegfs_ibex, fs_preset
from repro.hardware.cluster import ClusterSpec
from repro.hardware.presets import crill, ibex, preset
from repro.integrity.report import ScrubReport
from repro.integrity.spec import IntegritySpec
from repro.recovery.manager import run_with_recovery
from repro.recovery.spec import RecoverySpec
from repro.specbase import SpecBase
from repro.staging.spec import StagingSpec, nvme_staging
from repro.tune.api import autotune
from repro.tune.space import Candidate, ScenarioSpec, TuningSpace
from repro.workloads import make_workload

__all__ = [
    # -- describing a run: the spec family ------------------------------
    "SpecBase",
    "RunSpec",
    "FaultSpec",
    "RecoverySpec",
    "StagingSpec",
    "IntegritySpec",
    "ScrubReport",
    "ScenarioSpec",
    "ClusterSpec",
    "FsSpec",
    "CollectiveConfig",
    "RetryPolicy",
    "Candidate",
    "TuningSpace",
    # -- building the inputs ---------------------------------------------
    "FileView",
    "make_workload",
    "default_data",
    "build_plan",
    "crill",
    "ibex",
    "preset",
    "beegfs_crill",
    "beegfs_ibex",
    "fs_preset",
    "nvme_staging",
    # -- running ----------------------------------------------------------
    "run_collective_write",
    "run_with_recovery",
    "collective_write",
    "CollectiveWriteResult",
    # -- tuning -----------------------------------------------------------
    "autotune",
]
