"""End-to-end data integrity: checksummed datapath, repair and scrub.

The collective-write pipeline moves every byte through several hops —
shuffle (two-sided messages or RMA puts), intra-node gather, burst-buffer
staging, striped PFS writes — and each hop is a silent-data-corruption
surface.  This package adds the defense:

* :mod:`~repro.integrity.checksum` — the one CRC-32 extent-checksum
  implementation (also used by the recovery journal);
* :mod:`~repro.integrity.spec` — :class:`IntegritySpec`
  (``mode="off"|"detect"|"repair"``, scrub/read-back knobs);
* :mod:`~repro.integrity.layer` — :class:`IntegrityLayer`, the
  per-world manifest + escrow + counter surface the datapath hooks
  talk to;
* :mod:`~repro.integrity.report` — :class:`ScrubReport`.

With ``mode="off"`` (the default) nothing here is ever constructed and
every simulated byte and event is identical to a build without the
package — the golden fingerprint suite pins that.
"""

from repro.integrity.checksum import extent_checksum
from repro.integrity.layer import IntegrityLayer
from repro.integrity.report import ScrubReport
from repro.integrity.spec import INTEGRITY_MODES, IntegritySpec

__all__ = [
    "INTEGRITY_MODES",
    "IntegrityLayer",
    "IntegritySpec",
    "ScrubReport",
    "extent_checksum",
]
