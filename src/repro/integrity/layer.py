"""The per-world integrity layer: checksum manifest, escrow, accounting.

One :class:`IntegrityLayer` is attached to a world (the same
get-or-create pattern the staging tier uses) when a collective write's
config enables integrity.  It is the meeting point of the datapath's
verify hooks:

* aggregators **record** every extent they are about to write —
  ``record_extent`` checksums the bytes at the producing side and files
  them in the per-path manifest (plus a pristine escrow copy in repair
  mode, the source of drain/scrub restoration);
* the delivery, drain and storage hooks **verify** against carried
  checksums and **note** what they saw — every note goes through the
  world tracer as an ``integrity.*`` event, so detection/repair counts
  ride the always-on counter machinery into the run's metrics for free;
* the end-of-job scrub walks ``entries_for`` and appends its
  :class:`~repro.integrity.report.ScrubReport` here.

The layer never touches a clean run's byte stream: checksums are
computed over buffers the datapath already holds, and the escrow copies
exist only in repair mode (their memory cost — one pristine copy per
in-flight extent manifest entry — is the price of source-side repair).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigurationError
from repro.integrity.checksum import extent_checksum
from repro.integrity.report import ScrubReport
from repro.integrity.spec import IntegritySpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.world import World

__all__ = ["IntegrityLayer"]


class IntegrityLayer:
    """World-level integrity state (see module docstring)."""

    def __init__(self, world: "World", spec: IntegritySpec) -> None:
        self.world = world
        self.spec = spec
        self.tracer = world.cluster.tracer
        self.engine = world.engine
        #: (path, offset, nbytes) -> (crc32, producing aggregator rank).
        self.manifest: dict[tuple[str, int, int], tuple[int, int]] = {}
        #: Pristine extent copies for source-side repair (repair mode only).
        self._escrow: dict[tuple[str, int, int], np.ndarray] = {}
        self.extents_recorded = 0
        self.scrub_reports: list[ScrubReport] = []
        #: Checksum-carrying accounting: byte-touching CRC passes vs
        #: carried/combined uses (the reuse rate the datapath optimises).
        self.checksum_computed = 0
        self.checksum_reused = 0

    # ------------------------------------------------------------------
    @classmethod
    def ensure(cls, world: "World", spec: IntegritySpec) -> "IntegrityLayer":
        """Get-or-create the world's layer (idempotent per world).

        The first rank's collective-write call creates it and hooks the
        file system's read-back verify; peers reuse it.  Two different
        specs on one world is a configuration bug.
        """
        layer = getattr(world, "integrity", None)
        if layer is not None:
            if layer.spec != spec:
                raise ConfigurationError(
                    "this world already has an integrity layer with a different spec"
                )
            return layer
        layer = cls(world, spec)
        world.integrity = layer
        if world.pfs is not None:
            world.pfs.integrity = layer
        return layer

    @property
    def enabled(self) -> bool:
        return self.spec.enabled

    @property
    def repairs(self) -> bool:
        return self.spec.repairs

    # ------------------------------------------------------------------
    # Manifest (the producing side)
    # ------------------------------------------------------------------
    def record_extent(
        self,
        path: str,
        rank: int,
        offset: int,
        payload: np.ndarray,
        nbytes: int,
        checksum: int | None = None,
    ) -> int:
        """Checksum one extent at its producing rank; returns the CRC-32.

        Called by the aggregator just before it posts the extent's write
        (the buffer is stable until the write completes, so the post-time
        checksum equals the bytes every downstream hop should see).
        Re-recording the same extent (retry, recovery replay) simply
        replaces the entry — idempotent, like the write itself.

        ``checksum`` is the carried CRC when the caller already knows it
        (combined from verified delivery checksums) — the payload bytes
        are not re-read in that case.
        """
        key = (path, int(offset), int(nbytes))
        if checksum is None:
            crc = extent_checksum(payload)
            self.checksum_computed += 1
        else:
            crc = checksum
            self.checksum_reused += 1
        self.manifest[key] = (crc, rank)
        self.extents_recorded += 1
        if self.spec.repairs:
            self._escrow[key] = np.array(payload, dtype=np.uint8, copy=True)
        return crc

    def entries_for(self, path: str, rank: int) -> list[tuple[int, int, int]]:
        """This rank's recorded extents of ``path``: (offset, nbytes, crc)."""
        return sorted(
            (off, n, crc)
            for (p, off, n), (crc, owner) in self.manifest.items()
            if p == path and owner == rank
        )

    def repair_source(self, path: str, offset: int, nbytes: int) -> np.ndarray | None:
        """Pristine bytes of a recorded extent, or None (not escrowed)."""
        return self._escrow.get((path, int(offset), int(nbytes)))

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def note(self, kind: str, **detail) -> None:
        """Record one integrity event (``integrity.<kind>`` counter)."""
        self.tracer.emit(self.engine.now, f"integrity.{kind}", **detail)

    def counters(self) -> dict[str, int]:
        """The tracer's ``integrity.*`` counters (detections, repairs, ...).

        The checksum-carrying tallies ride along under the same prefix so
        they surface in run metrics with the rest.
        """
        out = {
            k: v for k, v in self.tracer.counters.items() if k.startswith("integrity.")
        }
        out["integrity.checksum_computed"] = self.checksum_computed
        out["integrity.checksum_reused"] = self.checksum_reused
        return out

    def snapshot(self) -> dict:
        """Plain-data summary for :class:`CollectiveWriteResult.integrity`."""
        counts = self.counters()
        return {
            "mode": self.spec.mode,
            "extents_recorded": self.extents_recorded,
            "detected": counts.get("integrity.detected", 0),
            "repaired": counts.get("integrity.repaired", 0),
            "counters": counts,
            "scrub_reports": [
                {
                    "rank": r.rank,
                    "extents": r.extents,
                    "bytes_scrubbed": r.bytes_scrubbed,
                    "mismatches": r.mismatches,
                    "repaired": r.repaired,
                }
                for r in self.scrub_reports
            ],
        }
