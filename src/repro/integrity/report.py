"""Outcome records of the integrity layer's verification passes."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ScrubReport"]


@dataclass
class ScrubReport:
    """One aggregator's post-write scrub over its own extents.

    The scrub re-reads every extent this rank committed to the striped
    file and verifies it against the checksum manifest recorded at
    produce time — the end-to-end check that catches whatever the
    per-hop verifies missed (e.g. storage corruption with read-back
    disabled).
    """

    rank: int
    #: Extents re-read and compared.
    extents: int = 0
    #: Bytes re-read from the file system.
    bytes_scrubbed: int = 0
    #: Checksum mismatches found.
    mismatches: int = 0
    #: Mismatched extents successfully rewritten (repair mode).
    repaired: int = 0
    #: File offsets of mismatched extents (diagnostics).
    bad_offsets: list = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when every extent verified (possibly after repair)."""
        return self.mismatches == self.repaired
