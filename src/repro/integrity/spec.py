"""Configuration surface of the end-to-end integrity layer."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.specbase import SpecBase

__all__ = ["IntegritySpec", "INTEGRITY_MODES"]

#: Valid values of :attr:`IntegritySpec.mode`.
INTEGRITY_MODES = ("off", "detect", "repair")


@dataclass(frozen=True)
class IntegritySpec(SpecBase):
    """How a collective write checksums, verifies and repairs its data.

    ``mode`` selects the overall posture:

    ``"off"``
        No checksums anywhere; every code path is byte-identical to a
        build without the integrity subsystem (the golden suite pins
        this).  Injected corruption then lands silently — only a
        ``verify=True`` run's byte-exact file comparison would notice.
    ``"detect"``
        Per-extent CRC-32 computed at the producing rank and verified at
        every hop (message receive, RMA landing, burst-buffer drain,
        PFS read-back, end-of-job scrub).  The first mismatch raises
        :class:`~repro.errors.CorruptDataError` — fail-stop, no silent
        corruption.
    ``"repair"``
        Like ``detect``, but each verify point first tries to restore
        the extent — message/RMA retransmission from the (pristine)
        source buffer, re-ingest from the layer's escrow copy on the
        drain path, rewrite from the still-stable caller buffer on the
        storage path — up to ``max_repair_attempts`` times before
        giving up with :class:`~repro.errors.CorruptDataError`.

    Attach it to a run via the collective configuration::

        RunSpec(..., config=CollectiveConfig(integrity=IntegritySpec(mode="detect")))
    """

    mode: str = "off"
    #: Run the post-write scrub pass: after the final flush every
    #: aggregator re-reads its own extents from the striped file and
    #: verifies them against the plan's checksum manifest, producing a
    #: :class:`~repro.integrity.report.ScrubReport`.
    scrub: bool = True
    #: Verify every PFS write by reading it back and comparing checksums
    #: before the write's completion event fires.  Disable to exercise
    #: the scrub pass on its own (storage corruption then surfaces only
    #: at scrub time).
    readback: bool = True
    #: Bounded repair attempts per extent per verify point (repair mode).
    max_repair_attempts: int = 3

    def __post_init__(self) -> None:
        if self.mode not in INTEGRITY_MODES:
            raise ConfigurationError(
                f"integrity mode must be one of {INTEGRITY_MODES}, got {self.mode!r}"
            )
        if self.max_repair_attempts < 1:
            raise ConfigurationError(
                f"max_repair_attempts must be >= 1, got {self.max_repair_attempts}"
            )

    @property
    def enabled(self) -> bool:
        """True when the checksummed datapath is active at all."""
        return self.mode != "off"

    @property
    def repairs(self) -> bool:
        """True when verify points attempt restoration before failing."""
        return self.mode == "repair"
