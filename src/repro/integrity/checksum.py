"""The one extent-checksum implementation shared by every layer.

CRC-32 over a contiguous ``uint8`` buffer.  The same function backs

* the recovery journal's commit records (:mod:`repro.recovery.journal`),
* the integrity layer's per-extent manifest and message checksums
  (:mod:`repro.integrity.layer`, :mod:`repro.mpi.runtime`),
* the verify-on-drain and commit-time checks (:mod:`repro.staging.tier`,
  :mod:`repro.fs.pfs`).

CRC-32 detects *all* single-bit errors (and all burst errors up to 32
bits), which makes it exactly strong enough for the simulator's bit-flip
fault model: an injected corruption can never slip past a verify point
by colliding.

Beyond the plain checksum this module provides the *carry* machinery the
checksum-carrying datapath is built on:

* :func:`crc32_combine` — fuse ``crc(A)`` and ``crc(B)`` into
  ``crc(A+B)`` without touching a single payload byte (the standard
  GF(2) matrix method zlib implements in C but does not expose to
  Python);
* :func:`crc32_concat` — fold a piece list ``[(nbytes, crc), ...]``;
* :class:`ChecksumLedger` — an offset-keyed registry of verified piece
  CRCs that can answer "what is the CRC of [lo, hi)?" by combining,
  provided the filed pieces tile the range exactly.
"""

from __future__ import annotations

import zlib
from functools import lru_cache

__all__ = ["ChecksumLedger", "crc32_combine", "crc32_concat", "extent_checksum"]


def extent_checksum(payload) -> int:
    """CRC-32 of a ``uint8`` buffer (numpy array or bytes).

    Contiguous buffers are checksummed zero-copy; a strided view (rare —
    every datapath call site slices contiguously) is made contiguous
    with one copy via ``np.ascontiguousarray`` and checksummed from its
    buffer directly.
    """
    view = memoryview(payload)
    if not view.c_contiguous:
        import numpy as np

        view = memoryview(np.ascontiguousarray(payload))
    return zlib.crc32(view)


# ----------------------------------------------------------------------
# CRC-32 combination (GF(2) matrix method)
# ----------------------------------------------------------------------
# crc(A+B) is a linear function of crc(A), crc(B) and len(B): shift
# crc(A) through len(B) zero bytes (a GF(2) matrix power) and xor with
# crc(B).  zlib's crc32_combine() does exactly this in C; Python's zlib
# binding does not expose it, so we implement the 32x32 bit-matrix
# arithmetic here.  Matrices are plain 32-entry int lists (column i is
# the image of bit i), squared/applied with shifts and xors.

_CRC32_POLY_REFLECTED = 0xEDB88320


def _matrix_times_vec(mat: list[int], vec: int) -> int:
    out = 0
    i = 0
    while vec:
        if vec & 1:
            out ^= mat[i]
        vec >>= 1
        i += 1
    return out


def _matrix_square(mat: list[int]) -> list[int]:
    return [_matrix_times_vec(mat, col) for col in mat]


@lru_cache(maxsize=None)
def _shift_operator(len2: int) -> list[int]:
    """The 32x32 GF(2) matrix advancing a CRC through ``len2`` zero bytes.

    Cached per length: piece sizes in a collective write repeat heavily
    (every cycle produces the same extent shapes), so after the first
    cycle a combine costs one 32-step matrix·vector product, not a
    fresh O(log n) matrix build.
    """
    # One-bit-shift operator (reflected polynomial).
    odd = [_CRC32_POLY_REFLECTED] + [1 << i for i in range(31)]
    even = _matrix_square(odd)  # two-bit shift
    op = _matrix_square(even)  # four-bit shift
    # Walk the bits of len2 (bytes); the first square yields the
    # one-zero-byte (8-bit) operator, each further square doubles it.
    combined: list[int] | None = None
    n = len2
    while n:
        op = _matrix_square(op)
        if n & 1:
            combined = op if combined is None else [
                _matrix_times_vec(op, col) for col in combined
            ]
        n >>= 1
    if combined is None:  # len2 == 0 -> identity (callers short-circuit)
        combined = [1 << i for i in range(32)]
    return combined


def crc32_combine(crc1: int, crc2: int, len2: int) -> int:
    """``crc32(A + B)`` given ``crc1 = crc32(A)``, ``crc2 = crc32(B)``.

    ``len2`` is ``len(B)`` in bytes.  Pure metadata arithmetic — no
    payload bytes are touched.
    """
    if len2 == 0:
        return crc1
    return _matrix_times_vec(_shift_operator(len2), crc1) ^ crc2


def crc32_concat(pieces) -> int:
    """CRC-32 of the concatenation of ``pieces = [(nbytes, crc), ...]``."""
    crc = 0
    for nbytes, piece_crc in pieces:
        crc = crc32_combine(crc, piece_crc, nbytes)
    return crc


class ChecksumLedger:
    """Verified piece CRCs keyed by absolute offset, combinable on demand.

    The datapath files ``(offset, nbytes, crc)`` for every piece whose
    CRC it has *verified* (delivery compare, RMA landing, local copy at
    the producer).  :meth:`combine` answers "CRC of ``[lo, hi)``" by
    fusing filed pieces with :func:`crc32_combine` — but only when the
    pieces tile the range **exactly**; any gap or misalignment returns
    ``None`` and the caller must fall back to a fresh recompute (a hole
    means the range includes buffer bytes nobody checksummed).
    """

    __slots__ = ("_pieces",)

    def __init__(self) -> None:
        #: offset -> (nbytes, crc)
        self._pieces: dict[int, tuple[int, int]] = {}

    def __len__(self) -> int:
        return len(self._pieces)

    def file(self, offset: int, nbytes: int, crc: int) -> None:
        """Register a verified piece (re-filing an offset replaces it)."""
        if nbytes > 0:
            self._pieces[int(offset)] = (int(nbytes), crc)

    def combine(self, lo: int, hi: int, pop: bool = False) -> int | None:
        """CRC-32 of ``[lo, hi)`` if filed pieces tile it exactly, else None.

        With ``pop=True`` the consumed pieces are removed on success
        (the common consume-once pattern: one extent record per cycle).
        """
        if hi <= lo:
            return 0 if hi == lo else None
        crc = 0
        pos = lo
        used: list[int] = []
        while pos < hi:
            entry = self._pieces.get(pos)
            if entry is None:
                return None
            nbytes, piece_crc = entry
            if pos + nbytes > hi:
                return None
            crc = crc32_combine(crc, piece_crc, nbytes)
            used.append(pos)
            pos += nbytes
        if pop:
            for off in used:
                del self._pieces[off]
        return crc

    def clear(self) -> None:
        self._pieces.clear()
