"""The one extent-checksum implementation shared by every layer.

CRC-32 over a contiguous ``uint8`` buffer.  The same function backs

* the recovery journal's commit records (:mod:`repro.recovery.journal`),
* the integrity layer's per-extent manifest and message checksums
  (:mod:`repro.integrity.layer`, :mod:`repro.mpi.runtime`),
* the verify-on-drain and read-back checks (:mod:`repro.staging.tier`,
  :mod:`repro.fs.pfs`).

CRC-32 detects *all* single-bit errors (and all burst errors up to 32
bits), which makes it exactly strong enough for the simulator's bit-flip
fault model: an injected corruption can never slip past a verify point
by colliding.
"""

from __future__ import annotations

import zlib

__all__ = ["extent_checksum"]


def extent_checksum(payload) -> int:
    """CRC-32 of a ``uint8`` buffer (numpy array or bytes).

    Contiguous buffers are checksummed zero-copy; a strided view (rare —
    every datapath call site slices contiguously) is materialised first.
    """
    view = memoryview(payload)
    if not view.c_contiguous:
        view = view.tobytes()
    return zlib.crc32(view)
