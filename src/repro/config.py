"""Global reproduction configuration.

The paper's experiments move Gigabytes per process; re-running them at full
size inside a byte-accurate simulation would waste memory without changing
any of the studied effects, which are *ratio* effects (shuffle cost vs.
file-access cost, protocol thresholds vs. message sizes, buffer size vs.
cycle count).  We therefore scale every *data size* — workload sizes,
collective buffer, stripe width, eager threshold — by a single common
factor ``DEFAULT_SCALE`` while keeping bandwidths and latencies at their
physical values.  Because every size shrinks together, cycle counts,
messages per cycle and the eager/rendezvous split all match the full-size
run, and simulated durations shrink by exactly the scale factor.

Experiments record the scale they ran at; set ``scale=1`` for a full-size
run (slow, memory hungry) if desired.
"""

from __future__ import annotations

#: Common divisor applied to all data sizes (workloads, buffers, stripes,
#: protocol thresholds).  64 turns the paper's 1 GiB-per-process runs into
#: 16 MiB-per-process simulations.
DEFAULT_SCALE: int = 64

#: Master seed used by entry points that do not specify one.
DEFAULT_SEED: int = 2020  # the paper's publication year, for flavour

#: Default retry budget of :class:`repro.faults.RetryPolicy`: retries
#: allowed after the first attempt of a collective-write file access.
DEFAULT_RETRY_LIMIT: int = 4

#: Default first-backoff delay between write retries, simulated seconds.
#: Grows exponentially per retry; small relative to typical write-phase
#: times so recovery does not dominate a mildly faulty run.
DEFAULT_RETRY_BACKOFF: float = 1e-4


def scaled(size: int, scale: int) -> int:
    """Scale a byte size down by ``scale``, keeping at least one byte."""
    if scale < 1:
        raise ValueError(f"scale must be >= 1, got {scale}")
    return max(1, int(size) // int(scale))
