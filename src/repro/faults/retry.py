"""Retrying writes: the recovery half of the fault subsystem.

:class:`RetryPolicy` is pure configuration; :class:`ReliableWriter`
applies it around one rank's :class:`~repro.mpi.mpiio.MPIFile` during a
collective write.  The division of labour mirrors a real I/O stack:

* the *first* submission of every write happens in the rank's own
  context (charging the usual MPI-call and client overheads, exactly as
  the non-retrying path does);
* *retries* of an asynchronous write are driven by a background
  supervisor process — the I/O stack's problem, progressing while the
  rank shuffles the next cycle — and surface through the request handle
  the rank waits on, which fails only after the policy is exhausted;
* repeated aio submission failures degrade the writer to the blocking
  path (sticky), modelling a client that gives up on broken ``aio``
  support the way the paper's Lustre note suggests one should.

Retrying is safe because the simulated file system's writes are
idempotent: reissuing the same bytes at the same offset converges to the
same file contents even when an earlier, timed-out attempt completes
later.  Every retry, timeout, degradation and recovery is emitted
through the world's tracer under a ``retry.*`` category.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, replace

from repro.config import DEFAULT_RETRY_BACKOFF, DEFAULT_RETRY_LIMIT
from repro.errors import (
    AioSubmitError,
    ConfigurationError,
    CorruptDataError,
    FileSystemError,
    WriteRetryExhaustedError,
    WriteTimeoutError,
)
from repro.sim.primitives import any_of, defuse

__all__ = ["RetryPolicy", "ReliableWriter"]


def _request_cls():
    # Imported lazily: repro.mpi pulls in the whole world (literally),
    # which would close an import cycle through fs.presets' re-export of
    # the fault presets.
    from repro.mpi.request import Request

    return Request


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry configuration for collective-write file access."""

    #: Retries allowed *after* the first attempt.  0 = fail fast, surfacing
    #: the underlying :class:`~repro.errors.FileSystemError` unchanged.
    max_retries: int = DEFAULT_RETRY_LIMIT
    #: First backoff delay, simulated seconds.
    backoff_base: float = DEFAULT_RETRY_BACKOFF
    #: Multiplier applied to the backoff on every further retry.
    backoff_factor: float = 2.0
    #: Per-attempt write timeout, simulated seconds (None = no timeout).
    #: A timed-out attempt counts as a failure and is reissued.
    write_timeout: float | None = None
    #: Consecutive aio submission failures before the writer degrades to
    #: blocking writes for the rest of the operation (None = never).
    degrade_after: int | None = 2
    #: Ceiling on any single backoff delay, seconds (None = uncapped —
    #: the pre-cap exponential behaviour, bit-identical by default).
    backoff_cap: float | None = None
    #: Jitter fraction in [0, 1]: each backoff is scaled by a
    #: deterministic uniform draw from ``[1 - jitter, 1]``, decorrelating
    #: retry storms across ranks without giving up reproducibility.
    #: 0 (the default) draws nothing and keeps delays bit-identical.
    jitter: float = 0.0
    #: Seed folded into the per-attempt jitter draws.
    jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0:
            raise ConfigurationError(f"backoff_base must be >= 0, got {self.backoff_base}")
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.write_timeout is not None and self.write_timeout <= 0:
            raise ConfigurationError("write_timeout must be positive or None")
        if self.degrade_after is not None and self.degrade_after < 1:
            raise ConfigurationError("degrade_after must be >= 1 or None")
        if self.backoff_cap is not None and self.backoff_cap <= 0:
            raise ConfigurationError("backoff_cap must be positive or None")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(f"jitter must be in [0, 1], got {self.jitter}")

    def backoff_for(self, attempt: int, key: tuple = ()) -> float:
        """Backoff before retry number ``attempt`` (1-based), seconds.

        Capped exponential with deterministic jitter: the draw is seeded
        from ``(jitter_seed, attempt, key)`` — no shared RNG state, so
        adding jittered retries anywhere never perturbs other streams,
        and the same (rank, offset, attempt) always backs off the same
        amount within one policy.
        """
        delay = self.backoff_base * self.backoff_factor ** (attempt - 1)
        if self.backoff_cap is not None:
            delay = min(delay, self.backoff_cap)
        if self.jitter:
            seed = zlib.crc32(f"{self.jitter_seed}:{attempt}:{key}".encode())
            u = random.Random(seed).random()
            delay *= 1.0 - self.jitter * u
        return delay

    def with_(self, **overrides) -> "RetryPolicy":
        return replace(self, **overrides)


class ReliableWriter:
    """Applies a :class:`RetryPolicy` to one rank's file writes."""

    def __init__(self, mpi, fh, policy: RetryPolicy) -> None:
        self.mpi = mpi
        self.fh = fh
        self.policy = policy
        self.engine = mpi.engine
        self.tracer = mpi.world.cluster.tracer
        self.rank = mpi.rank
        #: Sticky: once True, every write takes the blocking path.
        self.degraded = False
        self._submit_failures = 0  # consecutive aio submission refusals

    # ------------------------------------------------------------------
    def write_at(self, offset: int, data, size: int | None = None,
                 checksum: int | None = None):
        """Blocking write with retries (generator; run in rank context)."""
        policy = self.policy
        attempt = 0
        while True:
            span = self.tracer.begin(
                self.engine.now, "write_attempt", "retry",
                rank=self.rank, offset=offset, attempt=attempt,
            )
            try:
                yield from self.fh.write_at(
                    offset, data, size=size, timeout=policy.write_timeout,
                    checksum=checksum,
                )
                self.tracer.end(span, self.engine.now)
                if attempt:
                    self.tracer.emit(
                        self.engine.now, "retry.recovered",
                        rank=self.rank, offset=offset, attempts=attempt,
                    )
                return
            except CorruptDataError:
                # Not retryable here: the integrity layer already spent
                # its bounded repair attempts (or detect mode wants the
                # failure surfaced).  Reissuing the same bytes would just
                # burn the whole retry budget on a lost cause.
                self.tracer.end(span, self.engine.now)
                raise
            except FileSystemError as exc:
                self.tracer.end(span, self.engine.now)
                attempt += 1
                if policy.max_retries == 0:
                    raise
                if attempt > policy.max_retries:
                    self.tracer.emit(
                        self.engine.now, "retry.exhausted",
                        rank=self.rank, offset=offset, attempts=attempt,
                    )
                    raise WriteRetryExhaustedError(
                        f"write at offset {offset} failed on all {attempt} attempts"
                    ) from exc
                backoff = policy.backoff_for(attempt, key=(self.rank, offset))
                self.tracer.emit(
                    self.engine.now, "retry.attempt",
                    rank=self.rank, offset=offset, attempt=attempt,
                    error=type(exc).__name__, backoff=backoff,
                )
                if backoff:
                    yield self.engine.timeout(backoff)

    # ------------------------------------------------------------------
    def iwrite_at(self, offset: int, data, size: int | None = None,
                  checksum: int | None = None):
        """Asynchronous write with supervised retries (generator).

        Returns a :class:`Request` whose event fails only once the policy
        is exhausted, so overlap algorithms can safely include it in a
        joint ``waitall``.  After repeated submission refusals the writer
        degrades (sticky) to the blocking path and returns an
        already-completed handle.
        """
        policy = self.policy
        if self.degraded:
            yield from self.write_at(offset, data, size=size, checksum=checksum)
            return self._completed_handle()
        try:
            req = yield from self.fh.iwrite_at(offset, data, size=size, checksum=checksum)
        except AioSubmitError:
            self._submit_failures += 1
            if (
                policy.degrade_after is not None
                and self._submit_failures >= policy.degrade_after
            ):
                self.degraded = True
                self.tracer.emit(
                    self.engine.now, "retry.degraded",
                    rank=self.rank, after=self._submit_failures,
                )
            if policy.max_retries == 0:
                raise
            # This write falls back to the blocking path right away; the
            # rank loses this cycle's overlap but the pipeline stays
            # correct.
            self.tracer.emit(
                self.engine.now, "retry.sync_fallback", rank=self.rank, offset=offset
            )
            yield from self.write_at(offset, data, size=size, checksum=checksum)
            return self._completed_handle()
        self._submit_failures = 0
        outer = self.engine.event()
        self.engine.process(
            self._supervise(offset, data, size, req.event, outer, checksum),
            name=f"retry.r{self.rank}@{offset}",
        )
        return _request_cls()(outer, "iwrite", req)

    def _completed_handle(self):
        done = self.engine.event()
        done.succeed(self.engine.now)
        return _request_cls()(done, "iwrite", None)

    # ------------------------------------------------------------------
    def _supervise(self, offset, data, size, event, outer, checksum=None):
        """Background supervisor: await, time out, reissue (generator).

        Runs as its own process so retries progress while the rank is
        busy shuffling; the rank only observes ``outer``.
        """
        policy = self.policy
        engine = self.engine
        attempt = 0
        attempt_span = None  # span of the current *reissued* attempt
        while True:
            failure = None
            try:
                if policy.write_timeout is None:
                    yield event
                else:
                    timer = engine.timeout(policy.write_timeout)
                    yield any_of(engine, [event, timer])
                    if not event.triggered:
                        # The attempt may still complete (or fail) later;
                        # either way nobody waits on it any more.
                        defuse(event)
                        self.tracer.emit(
                            engine.now, "retry.timeout",
                            rank=self.rank, offset=offset, attempt=attempt,
                        )
                        failure = WriteTimeoutError(
                            f"write at offset {offset} timed out after "
                            f"{policy.write_timeout}s"
                        )
            except CorruptDataError as exc:
                # Non-retryable (see write_at): surface it through the
                # handle without burning the retry budget.
                self.tracer.end(attempt_span, engine.now)
                outer.fail(exc)
                return
            except FileSystemError as exc:
                failure = exc
            self.tracer.end(attempt_span, engine.now)
            attempt_span = None
            if failure is None:
                if attempt:
                    self.tracer.emit(
                        engine.now, "retry.recovered",
                        rank=self.rank, offset=offset, attempts=attempt,
                    )
                outer.succeed(engine.now)
                return
            attempt += 1
            if policy.max_retries == 0:
                outer.fail(failure)
                return
            if attempt > policy.max_retries:
                self.tracer.emit(
                    engine.now, "retry.exhausted",
                    rank=self.rank, offset=offset, attempts=attempt,
                )
                exhausted = WriteRetryExhaustedError(
                    f"write at offset {offset} failed on all {attempt} attempts"
                )
                exhausted.__cause__ = failure
                outer.fail(exhausted)
                return
            backoff = policy.backoff_for(attempt, key=(self.rank, offset))
            self.tracer.emit(
                engine.now, "retry.attempt",
                rank=self.rank, offset=offset, attempt=attempt,
                error=type(failure).__name__, backoff=backoff,
            )
            if backoff:
                yield engine.timeout(backoff)
            # Reissue inside the I/O stack (no rank involvement).  A
            # refused aio submission here forces the synchronous path for
            # this attempt — the OS writing through without aio.
            attempt_span = self.tracer.begin(
                engine.now, "retry_attempt", "retry",
                rank=self.rank, flow="async", offset=offset, attempt=attempt,
            )
            try:
                event = self.fh.aio.submit(
                    self.fh.file, offset, data, size=size, checksum=checksum
                ).event
            except AioSubmitError:
                self.tracer.emit(
                    engine.now, "retry.sync_fallback", rank=self.rank, offset=offset
                )
                event = self.fh.pfs.write(
                    self.fh.file, offset, data, size=size, checksum=checksum
                )
