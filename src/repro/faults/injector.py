"""The injector: turns a :class:`FaultSpec` into per-decision draws.

One injector is shared by every layer of a world.  Each decision site
draws from its own named RNG stream (one for whole-write failures, one
per storage target for stragglers, one per rank for deliveries), so
adding a new fault consumer never perturbs the schedules of existing
ones — the same property :class:`~repro.sim.rng.RngStreams` gives the
performance model's noise.  Every *fired* injection is recorded through
the world's :class:`~repro.sim.trace.Tracer` under a ``fault.*``
category, so tests and benchmarks can assert on counters without
enabling full tracing.

Fault draws happen in event callbacks and rank generators, both of which
the engine processes in deterministic heap order; a faulty run is
therefore exactly as reproducible as a clean one.
"""

from __future__ import annotations

from repro.faults.spec import FaultSpec
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams
from repro.sim.trace import Tracer

__all__ = ["FaultInjector"]


class FaultInjector:
    """Per-world fault decision source (see module docs)."""

    def __init__(self, engine: Engine, rng: RngStreams, tracer: Tracer, spec: FaultSpec) -> None:
        self.engine = engine
        self.rng = rng
        self.tracer = tracer
        self.spec = spec
        #: Total injections fired, by kind (cheap mirror of the tracer's
        #: ``fault.*`` counters, kept for layers without tracer access).
        self.injected = 0

    # -- storage ---------------------------------------------------------
    def storage_write_victim(self, target_ids) -> int | None:
        """Decide one *whole* PFS write request: failing target id or None.

        ``write_fail_rate`` is the probability that the client's write
        RPC fails, however many storage targets it spans — per-request
        rather than per-piece, so the effective failure probability does
        not compound with stripe count (a 10% rate means ~10% of writes
        retry, for a 1-stripe and a 16-stripe write alike).  One uniform
        draw both decides the failure and attributes it to a victim
        target.
        """
        spec = self.spec
        if spec.write_fail_rate == 0.0:
            return None
        u = float(self.rng.stream("faults.pfs").random())
        if u >= spec.write_fail_rate:
            return None
        ids = list(target_ids)
        victim = ids[min(int(u / spec.write_fail_rate * len(ids)), len(ids) - 1)]
        self.injected += 1
        self.tracer.emit(self.engine.now, "fault.write_fail", target=victim)
        return victim

    def storage_service_factor(self, target_id: int) -> float:
        """Decide one target write piece: straggler service-time factor.

        Per-piece (unlike failures): a straggling target slows only its
        own stripe pieces, which the write's ``all_of`` then waits out —
        the slow-OST tail effect.
        """
        spec = self.spec
        if spec.straggler_rate == 0.0:
            return 1.0
        u = float(self.rng.stream(f"faults.ost{target_id}").random())
        if u < spec.straggler_rate:
            self.injected += 1
            self.tracer.emit(
                self.engine.now, "fault.straggler",
                target=target_id, factor=spec.straggler_factor,
            )
            return spec.straggler_factor
        return 1.0

    # -- silent data corruption -------------------------------------------
    def _corruption_position(self, stream: str, rate: float, size: int) -> int | None:
        """One corruption decision: the victim byte position, or None.

        The single-draw trick again: one uniform both decides the flip
        and places it within the extent, so a zero-rate spec consumes no
        draws and a nonzero one consumes exactly one per decision —
        fault schedules stay identical across integrity modes.
        """
        if rate == 0.0 or size <= 0:
            return None
        u = float(self.rng.stream(stream).random())
        if u >= rate:
            return None
        return min(int(u / rate * size), size - 1)

    def message_corruption(self, rank: int, size: int) -> int | None:
        """Decide one payload landing at ``rank`` (message or RMA put):
        byte position to flip one bit of, or None.

        The firing site flips bit ``pos & 7`` of the *receiver-side*
        copy only; the sender's buffer stays pristine, so source
        retransmission is a valid repair.
        """
        pos = self._corruption_position(
            f"faults.corrupt.r{rank}", self.spec.message_corrupt_rate, size
        )
        if pos is not None:
            self.injected += 1
            self.tracer.emit(self.engine.now, "fault.msg_corrupt", rank=rank, pos=pos)
        return pos

    def staging_corruption(self, node: int, size: int) -> int | None:
        """Decide one staged extent at drain pickup on ``node``: at-rest
        bit-flip position, or None."""
        pos = self._corruption_position(
            f"faults.bitrot.n{node}", self.spec.staging_corrupt_rate, size
        )
        if pos is not None:
            self.injected += 1
            self.tracer.emit(
                self.engine.now, "fault.staging_corrupt", node=node, pos=pos
            )
        return pos

    def storage_corruption(self, size: int) -> int | None:
        """Decide one PFS write commit: stored-byte flip position, or None."""
        pos = self._corruption_position(
            "faults.storage", self.spec.storage_corrupt_rate, size
        )
        if pos is not None:
            self.injected += 1
            self.tracer.emit(self.engine.now, "fault.storage_corrupt", pos=pos)
        return pos

    def torn_write(self, size: int) -> int | None:
        """Decide one PFS write commit: torn-write keep-length (only the
        first ``keep`` bytes reach the file), or None for a full commit."""
        keep = self._corruption_position(
            "faults.torn", self.spec.torn_write_rate, size
        )
        if keep is not None:
            self.injected += 1
            self.tracer.emit(self.engine.now, "fault.torn_write", keep=keep, size=size)
        return keep

    # -- permanent faults ------------------------------------------------
    def rank_crash_time(self, rank: int) -> float | None:
        """One-time draw: when ``rank`` crashes, or None if it survives.

        One uniform draw both decides the crash and places it in
        ``[0, crash_window)`` (the same single-draw trick as
        :meth:`storage_write_victim`), from a per-rank stream so skipping
        an already-crashed rank on a recovery attempt never perturbs the
        other ranks' schedules.  The firing site emits ``fault.rank_crash``
        when the crash is actually delivered.
        """
        spec = self.spec
        if spec.rank_crash_rate == 0.0 or spec.crash_window <= 0.0:
            return None
        u = float(self.rng.stream(f"faults.crash.r{rank}").random())
        if u >= spec.rank_crash_rate:
            return None
        return (u / spec.rank_crash_rate) * spec.crash_window

    def ost_outage_time(self, target_id: int) -> float | None:
        """One-time draw: when the target goes down, or None if it stays up.

        Mirrors :meth:`rank_crash_time`; the firing site emits
        ``fault.ost_outage`` when the outage takes effect.
        """
        spec = self.spec
        if spec.ost_outage_rate == 0.0 or spec.crash_window <= 0.0:
            return None
        u = float(self.rng.stream(f"faults.outage.t{target_id}").random())
        if u >= spec.ost_outage_rate:
            return None
        return (u / spec.ost_outage_rate) * spec.crash_window

    # -- aio -------------------------------------------------------------
    def aio_submit_fails(self, client: int) -> bool:
        """Decide whether one aio submission by ``client`` is refused."""
        spec = self.spec
        if spec.aio_submit_fail_rate == 0.0:
            return False
        u = float(self.rng.stream(f"faults.aio.r{client}").random())
        if u < spec.aio_submit_fail_rate:
            self.injected += 1
            self.tracer.emit(self.engine.now, "fault.aio_submit", client=client)
            return True
        return False

    # -- messaging -------------------------------------------------------
    def _delivery_delay(self, stream: str, rate: float, mean: float, category: str, rank: int) -> float:
        if rate == 0.0 or mean == 0.0:
            return 0.0
        gen = self.rng.stream(stream)
        if float(gen.random()) >= rate:
            return 0.0
        delay = mean * (0.5 + float(gen.random()))
        self.injected += 1
        self.tracer.emit(self.engine.now, category, rank=rank, delay=delay)
        return delay

    def message_delay(self, rank: int) -> float:
        """Extra delivery delay for one payload arrival at ``rank``."""
        spec = self.spec
        return self._delivery_delay(
            f"faults.net.r{rank}", spec.message_delay_rate, spec.message_delay,
            "fault.msg_delay", rank,
        )

    def rendezvous_delay(self, rank: int) -> float:
        """Extra delay for one rendezvous control message (RTS/CTS) at ``rank``."""
        spec = self.spec
        return self._delivery_delay(
            f"faults.rndv.r{rank}", spec.rendezvous_delay_rate, spec.rendezvous_delay,
            "fault.rendezvous_delay", rank,
        )
