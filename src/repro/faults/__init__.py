"""Deterministic fault injection for the simulated I/O and MPI stacks.

The paper's overlap algorithms are only trustworthy if the double-buffered
pipeline stays correct when the layers beneath it misbehave — the paper's
own closing note on Lustre's weak ``aio`` support is exactly such a
degraded mode.  This package perturbs those layers *inside* the
discrete-event simulation:

* transient :class:`~repro.fs.target.StorageTarget` write failures and
  straggler slowdowns,
* :class:`~repro.fs.aio.AioEngine` submission failures (with forced
  synchronous fallback),
* message-delivery jitter and delayed rendezvous handshakes in the MPI
  layer,
* permanent crash-class faults — rank crashes (``rank_crash_rate``) and
  storage-target outages (``ost_outage_rate``) inside ``crash_window``
  — recovered by the restart-from-journal protocol of
  :mod:`repro.recovery`,

and provides the recovery mechanism the collective-write path uses to
survive them: :class:`RetryPolicy` (bounded retries with exponential
backoff in simulated time, per-write timeouts, graceful degradation from
asynchronous to blocking writes) applied by :class:`ReliableWriter`.

Every injection decision draws from a named stream of the world's seeded
:class:`~repro.sim.rng.RngStreams`, so a faulty run is exactly as
reproducible as a clean one: same :class:`FaultSpec` + same seed
→ bit-for-bit identical schedule, trace and file contents.
"""

from repro.faults.injector import FaultInjector
from repro.faults.presets import FAULT_PRESETS, fault_preset
from repro.faults.retry import ReliableWriter, RetryPolicy
from repro.faults.spec import FaultSpec

__all__ = [
    "FaultSpec",
    "FaultInjector",
    "RetryPolicy",
    "ReliableWriter",
    "FAULT_PRESETS",
    "fault_preset",
]
