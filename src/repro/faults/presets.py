"""Named fault scenarios, analogous to the hardware/file-system presets.

Each preset is a degraded mode worth studying against the overlap
algorithms; ``repro.fs.presets`` re-exports :func:`fault_preset` so the
fault surface sits next to the file-system presets it perturbs.
"""

from __future__ import annotations

from repro.faults.spec import FaultSpec
from repro.units import MS, US

__all__ = ["FAULT_PRESETS", "fault_preset"]


def flaky_targets() -> FaultSpec:
    """Transiently failing storage targets (10%), occasional stragglers."""
    return FaultSpec(write_fail_rate=0.10, straggler_rate=0.05, straggler_factor=4.0)


def degraded_aio() -> FaultSpec:
    """An aio stack that refuses half the submissions (Lustre note, worse)."""
    return FaultSpec(aio_submit_fail_rate=0.5)


def jittery_network() -> FaultSpec:
    """Delivery jitter plus delayed rendezvous handshakes."""
    return FaultSpec(
        message_delay_rate=0.10,
        message_delay=20 * US,
        rendezvous_delay_rate=0.20,
        rendezvous_delay=50 * US,
    )


def stormy() -> FaultSpec:
    """Everything at once: the 'as many scenarios as you can imagine' mode."""
    return FaultSpec(
        write_fail_rate=0.10,
        straggler_rate=0.10,
        straggler_factor=6.0,
        aio_submit_fail_rate=0.25,
        message_delay_rate=0.05,
        message_delay=20 * US,
        rendezvous_delay_rate=0.10,
        rendezvous_delay=50 * US,
    )


def flaky_aggregator() -> FaultSpec:
    """Crash-prone ranks: each rank has a 35% chance of dying mid-write.

    The default ``crash_window`` suits the small test/CI scenarios; the
    chaos bench rescales it to ~80% of the measured fault-free duration
    so crashes land inside the collective whatever the scenario size.
    """
    return FaultSpec(rank_crash_rate=0.35, crash_window=2 * MS)


def ost_outage() -> FaultSpec:
    """Storage targets that go down and stay down (40% each)."""
    return FaultSpec(ost_outage_rate=0.40, crash_window=2 * MS)


def bitrot_cluster() -> FaultSpec:
    """Silent data corruption everywhere bytes rest or move.

    Every hop of the write datapath misbehaves at rates high enough to
    fire reliably at CI/bench scale: message deliveries and RMA put
    landings flip bits, the burst buffer rots extents between absorb and
    drain, and the storage layer both flips stored bits and tears write
    requests.  No crash-class faults — this preset exists to exercise the
    integrity layer (detection/repair), not the recovery manager.
    """
    return FaultSpec(
        message_corrupt_rate=0.02,
        staging_corrupt_rate=0.05,
        storage_corrupt_rate=0.05,
        torn_write_rate=0.02,
    )


def degraded_cluster() -> FaultSpec:
    """Crashes, outages *and* transient noise at once — the full chaos mode."""
    return FaultSpec(
        rank_crash_rate=0.25,
        ost_outage_rate=0.25,
        crash_window=2 * MS,
        write_fail_rate=0.05,
        aio_submit_fail_rate=0.10,
    )


FAULT_PRESETS = {
    "flaky-targets": flaky_targets,
    "degraded-aio": degraded_aio,
    "jittery-network": jittery_network,
    "stormy": stormy,
    "flaky_aggregator": flaky_aggregator,
    "ost_outage": ost_outage,
    "bitrot_cluster": bitrot_cluster,
    "degraded_cluster": degraded_cluster,
}


def fault_preset(name: str) -> FaultSpec:
    """Look up a fault preset by name."""
    try:
        factory = FAULT_PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown fault preset {name!r}; known: {sorted(FAULT_PRESETS)}"
        ) from None
    return factory()
