"""The fault model's configuration surface."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.specbase import SpecBase

__all__ = ["FaultSpec"]


@dataclass(frozen=True)
class FaultSpec(SpecBase):
    """Static description of the faults to inject into one simulation.

    All probabilities are per-decision: one draw per storage write
    request, per aio submission, per message delivery.  A spec with every
    rate at zero is *disabled* — the world then builds no injector at all
    and every code path is byte-identical to a fault-free run.

    Delays and the straggler factor are in the simulation's (possibly
    time-scaled) units; pick them relative to the cluster/file-system
    spec in use.
    """

    #: Probability one *whole* PFS write request fails transiently,
    #: however many storage targets it spans (the failure is attributed
    #: to one of them, which is occupied for its latency before the
    #: error surfaces).  Per-request, so stripe count does not compound
    #: the effective failure probability.
    write_fail_rate: float = 0.0
    #: Probability a storage target serves one write *piece* at
    #: ``straggler_factor`` times its normal service time (storage-side
    #: variance beyond the always-on log-normal noise).
    straggler_rate: float = 0.0
    #: Service-time multiplier applied to straggling write requests.
    straggler_factor: float = 4.0
    #: Probability the aio engine refuses a submission (EAGAIN-style).
    aio_submit_fail_rate: float = 0.0
    #: Probability one message delivery (eager payload or rendezvous
    #: data) is delayed by ~``message_delay`` seconds.
    message_delay_rate: float = 0.0
    #: Mean extra delivery delay, seconds (actual delay is uniform in
    #: ``[0.5, 1.5] * message_delay``).
    message_delay: float = 0.0
    #: Probability a rendezvous control message (RTS/CTS) is delayed by
    #: ~``rendezvous_delay`` seconds — a delayed handshake.
    rendezvous_delay_rate: float = 0.0
    #: Mean extra rendezvous-handshake delay, seconds.
    rendezvous_delay: float = 0.0
    #: Probability one message delivery (eager payload, rendezvous data
    #: or RMA put landing) flips one bit of the received bytes.  The
    #: flip hits the receiver-side copy only — the sender's buffer stays
    #: pristine, which is what makes source retransmission a valid
    #: repair.
    message_corrupt_rate: float = 0.0
    #: Probability one staged extent suffers an at-rest bit flip in the
    #: burst buffer between absorb and drain pickup (NVMe bitrot).
    staging_corrupt_rate: float = 0.0
    #: Probability one PFS write commits with a single flipped bit in
    #: the stored file (media corruption below the client's view).
    storage_corrupt_rate: float = 0.0
    #: Probability one PFS write is *torn*: only a prefix of the request
    #: reaches the file although the client sees success.
    torn_write_rate: float = 0.0
    #: Probability one rank crashes (permanently) during the run; the
    #: crash instant is uniform in ``[0, crash_window)``.  One draw per
    #: rank per run.  Unlike the transient faults above, crashes are not
    #: absorbed by retries — they need :mod:`repro.recovery`.
    rank_crash_rate: float = 0.0
    #: Probability one storage target goes down (permanently) during the
    #: run, rejecting every subsequent request with
    #: :class:`~repro.errors.TargetDownError`.  One draw per target; the
    #: outage instant is uniform in ``[0, crash_window)``.
    ost_outage_rate: float = 0.0
    #: Window (simulated seconds) in which permanent faults may fire.
    #: Required > 0 when either permanent rate is set; pick it relative
    #: to the run's fault-free duration (the chaos bench uses ~80% of it).
    crash_window: float = 0.0

    #: Every per-decision probability field (all must be in [0, 1]).
    _RATE_FIELDS = (
        "write_fail_rate",
        "straggler_rate",
        "aio_submit_fail_rate",
        "message_delay_rate",
        "rendezvous_delay_rate",
        "message_corrupt_rate",
        "staging_corrupt_rate",
        "storage_corrupt_rate",
        "torn_write_rate",
        "rank_crash_rate",
        "ost_outage_rate",
    )
    #: Every delay/duration field (all must be >= 0).
    _DELAY_FIELDS = ("message_delay", "rendezvous_delay", "crash_window")

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> "FaultSpec":
        """Reject out-of-range rates and negative delays.

        Runs at construction time (``__post_init__``), so an invalid
        spec cannot exist — a rate of 1.5 or a delay of -1 would
        otherwise silently skew the single-draw position/victim
        derivation instead of failing.  Returns ``self`` for chaining.
        """
        for name in self._RATE_FIELDS:
            rate = getattr(self, name)
            if not (0.0 <= rate <= 1.0):
                raise ConfigurationError(f"{name} must be in [0, 1], got {rate}")
        if self.straggler_factor < 1.0:
            raise ConfigurationError(
                f"straggler_factor must be >= 1, got {self.straggler_factor}"
            )
        for name in self._DELAY_FIELDS:
            if getattr(self, name) < 0:
                raise ConfigurationError(
                    f"{name} must be >= 0, got {getattr(self, name)}"
                )
        if (self.rank_crash_rate > 0 or self.ost_outage_rate > 0) and self.crash_window <= 0:
            raise ConfigurationError(
                "rank_crash_rate/ost_outage_rate need a positive crash_window "
                "(the interval in which permanent faults may fire)"
            )
        return self

    @property
    def enabled(self) -> bool:
        """True if any fault can actually fire."""
        return (
            self.write_fail_rate > 0
            or self.straggler_rate > 0
            or self.aio_submit_fail_rate > 0
            or (self.message_delay_rate > 0 and self.message_delay > 0)
            or (self.rendezvous_delay_rate > 0 and self.rendezvous_delay > 0)
            or self.has_corruption
            or self.has_permanent
        )

    @property
    def has_corruption(self) -> bool:
        """True if any silent-data-corruption fault can fire."""
        return (
            self.message_corrupt_rate > 0
            or self.staging_corrupt_rate > 0
            or self.storage_corrupt_rate > 0
            or self.torn_write_rate > 0
        )

    @property
    def has_permanent(self) -> bool:
        """True if crash-class (non-retryable) faults can fire.

        Runs with permanent faults must go through
        :func:`repro.recovery.manager.run_with_recovery`;
        ``run_collective_write`` routes there automatically.
        """
        return self.crash_window > 0 and (
            self.rank_crash_rate > 0 or self.ost_outage_rate > 0
        )
