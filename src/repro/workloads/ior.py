"""IOR-like 1-D workload (paper Sec. IV, benchmark 1).

The paper configures IOR with transfer size = block size = 1 GB and one
segment, i.e. every process writes one contiguous 1 GB block at offset
``rank * 1 GB`` — files of 16-704 GB for 16-704 processes.  At the default
scale of 64 the block is 16 MiB.

The general IOR file layout is supported too: with ``segment_count = S``,
segment ``s`` holds every rank's block in rank order, so rank ``r`` writes
at ``(s * nprocs + r) * block_size`` for each ``s``.
"""

from __future__ import annotations

import numpy as np

from repro.collio.view import FileView
from repro.config import DEFAULT_SCALE, scaled
from repro.errors import WorkloadError
from repro.units import GiB
from repro.workloads.base import Workload

__all__ = ["IorWorkload"]

#: The paper's IOR block size (per process, per segment): 1 GiB.
BLOCK_SIZE_UNSCALED: int = 1 * GiB


class IorWorkload(Workload):
    """1-D contiguous-block pattern (``IOR -t 1g -b 1g -s 1`` analogue)."""

    name = "ior"

    def __init__(
        self,
        nprocs: int,
        scale: int = DEFAULT_SCALE,
        block_size: int | None = None,
        segment_count: int = 1,
        random_offsets: bool = False,
        random_seed: int = 0,
    ) -> None:
        super().__init__(nprocs)
        if segment_count < 1:
            raise WorkloadError("segment_count must be >= 1")
        self.block_size = block_size if block_size is not None else scaled(BLOCK_SIZE_UNSCALED, scale)
        if self.block_size < 1:
            raise WorkloadError("block_size must be >= 1")
        self.segment_count = segment_count
        self.scale = scale
        self.random_offsets = random_offsets
        self.random_seed = random_seed
        # IOR's "Random" mode: a global permutation of block slots, so a
        # rank's blocks land at arbitrary (block-aligned) file offsets.
        # Deterministic per (nprocs, segments, seed); disjointness holds
        # because it is a permutation.
        if random_offsets:
            nblocks = nprocs * segment_count
            rng = np.random.default_rng(np.random.SeedSequence((random_seed, nblocks)))
            self._slot_of_block = rng.permutation(nblocks).astype(np.int64)
        else:
            self._slot_of_block = None

    def view(self, rank: int) -> FileView:
        if rank < 0 or rank >= self.nprocs:
            raise WorkloadError(f"rank {rank} out of range")
        blocks = np.arange(self.segment_count, dtype=np.int64) * self.nprocs + rank
        if self._slot_of_block is not None:
            slots = np.sort(self._slot_of_block[blocks])
        else:
            slots = blocks
        offs = slots * self.block_size
        lens = np.full(self.segment_count, self.block_size, dtype=np.int64)
        return FileView(offs, lens)

    def describe(self) -> dict:
        return {
            "name": self.name,
            "nprocs": self.nprocs,
            "block_size": self.block_size,
            "segment_count": self.segment_count,
            "random_offsets": self.random_offsets,
            "scale": self.scale,
            "file_size": self.nprocs * self.block_size * self.segment_count,
        }
