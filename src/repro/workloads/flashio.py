"""FLASH-IO-like checkpoint workload (paper Sec. IV, benchmark 3).

The FLASH I/O kernel writes the checkpoint of a block-structured adaptive
mesh hydrodynamics code: ``nvar = 24`` unknowns (density, pressure,
velocities, ...) on ``nxb x nyb x nzb = 8^3``-zone blocks, ~80 blocks per
process, in double precision.  The checkpoint stores each *variable* as
one global array over all blocks (variable-major layout, as the
HDF5/PnetCDF paths produce), so every process contributes one contiguous
run per variable — 24 medium-sized, widely separated extents per rank.

Scaled defaults keep 24 variables and the block structure while shrinking
blocks-per-process and zones-per-block so that per-process checkpoint
data matches the paper's ~8 MB divided by the scale factor.
"""

from __future__ import annotations

import numpy as np

from repro.collio.view import FileView
from repro.config import DEFAULT_SCALE
from repro.errors import WorkloadError
from repro.workloads.base import Workload

__all__ = ["FlashIoWorkload"]


class FlashIoWorkload(Workload):
    """Variable-major AMR checkpoint pattern."""

    name = "flash"

    #: FLASH checkpoint unknowns per zone.
    DEFAULT_NVAR = 24

    def __init__(
        self,
        nprocs: int,
        scale: int = DEFAULT_SCALE,
        nvar: int = DEFAULT_NVAR,
        blocks_per_proc: int | None = None,
        zones_per_block: int | None = None,
        bytes_per_zone: int = 8,
    ) -> None:
        super().__init__(nprocs)
        if nvar < 1 or bytes_per_zone < 1:
            raise WorkloadError("nvar and bytes_per_zone must be >= 1")
        # Full size: 80 blocks/proc x 8^3 zones x 8 B = ~4 MB per variable
        # contribution is 80*512*8 = 320 KiB; scaled down via blocks & zones.
        if blocks_per_proc is None:
            blocks_per_proc = max(1, 80 // max(1, scale // 8))
        if zones_per_block is None:
            zones_per_block = max(1, 512 // max(1, min(scale, 8)))
        if blocks_per_proc < 1 or zones_per_block < 1:
            raise WorkloadError("blocks_per_proc and zones_per_block must be >= 1")
        self.nvar = nvar
        self.blocks_per_proc = blocks_per_proc
        self.zones_per_block = zones_per_block
        self.bytes_per_zone = bytes_per_zone
        self.scale = scale

    # ------------------------------------------------------------------
    @property
    def bytes_per_proc_per_var(self) -> int:
        return self.blocks_per_proc * self.zones_per_block * self.bytes_per_zone

    @property
    def var_stride(self) -> int:
        """File bytes of one variable's global array."""
        return self.nprocs * self.bytes_per_proc_per_var

    def view(self, rank: int) -> FileView:
        if rank < 0 or rank >= self.nprocs:
            raise WorkloadError(f"rank {rank} out of range")
        per = self.bytes_per_proc_per_var
        offs = (
            np.arange(self.nvar, dtype=np.int64) * self.var_stride + rank * per
        )
        lens = np.full(self.nvar, per, dtype=np.int64)
        return FileView(offs, lens)

    def describe(self) -> dict:
        return {
            "name": self.name,
            "nprocs": self.nprocs,
            "nvar": self.nvar,
            "blocks_per_proc": self.blocks_per_proc,
            "zones_per_block": self.zones_per_block,
            "bytes_per_zone": self.bytes_per_zone,
            "file_size": self.nvar * self.var_stride,
        }
