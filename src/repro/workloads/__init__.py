"""The paper's three I/O benchmarks as workload generators.

A workload maps every rank to a :class:`~repro.collio.view.FileView` (its
file footprint) and a deterministic payload, reproducing the access
patterns of:

* **IOR** (:mod:`repro.workloads.ior`) — 1-D contiguous blocks
  (paper: transfer size = block size = 1 GB, one segment);
* **MPI-Tile-IO** (:mod:`repro.workloads.tileio`) — a 2-D dense dataset
  decomposed into one tile per process (256-byte and 1 MB elements);
* **FLASH-IO** (:mod:`repro.workloads.flashio`) — the FLASH checkpoint
  file (24 unknowns on 8^3-zone AMR blocks, variable-major layout).

All sizes are scaled by :mod:`repro.config`'s factor; see each module's
docstring for what the scaled defaults correspond to at full size.
"""

from repro.workloads.base import Workload
from repro.workloads.ior import IorWorkload
from repro.workloads.tileio import TileIoWorkload
from repro.workloads.flashio import FlashIoWorkload

WORKLOADS = {
    "ior": IorWorkload,
    "tile_256": lambda nprocs, scale=64, **kw: TileIoWorkload.config_256(nprocs, scale=scale, **kw),
    "tile_1m": lambda nprocs, scale=64, **kw: TileIoWorkload.config_1m(nprocs, scale=scale, **kw),
    "flash": FlashIoWorkload,
}


def make_workload(name: str, nprocs: int, scale: int = 64, **kwargs) -> Workload:
    """Instantiate a workload by registry name."""
    try:
        factory = WORKLOADS[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; known: {sorted(WORKLOADS)}") from None
    return factory(nprocs, scale=scale, **kwargs)


__all__ = [
    "Workload",
    "IorWorkload",
    "TileIoWorkload",
    "FlashIoWorkload",
    "WORKLOADS",
    "make_workload",
]
