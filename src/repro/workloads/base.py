"""Workload interface."""

from __future__ import annotations

import numpy as np

from repro.collio.api import default_data
from repro.collio.view import FileView
from repro.errors import WorkloadError

__all__ = ["Workload"]


class Workload:
    """Maps ranks to file views and payloads for one benchmark run."""

    name: str = ""

    def __init__(self, nprocs: int) -> None:
        if nprocs < 1:
            raise WorkloadError(f"nprocs must be >= 1, got {nprocs}")
        self.nprocs = nprocs
        #: How many full-size file extents one modeled extent stands for.
        #: 1.0 for workloads whose extents scale by size; >1 when a
        #: workload shrinks its extent *count* for tractability (the
        #: collective-write config multiplies per-piece CPU costs by it).
        self.extent_cost_factor: float = 1.0

    # -- to implement -------------------------------------------------------
    def view(self, rank: int) -> FileView:
        """The file footprint of ``rank``."""
        raise NotImplementedError

    # -- provided -----------------------------------------------------------
    def views(self) -> dict[int, FileView]:
        """All ranks' views (rank -> view)."""
        return {r: self.view(r) for r in range(self.nprocs)}

    def data(self, rank: int) -> np.ndarray:
        """Deterministic payload for ``rank`` (uint8, view-sized)."""
        return default_data(rank, self.view(rank).total_bytes)

    @property
    def total_bytes(self) -> int:
        return sum(self.view(r).total_bytes for r in range(self.nprocs))

    def describe(self) -> dict:
        """Human-readable parameter summary (for experiment records)."""
        return {"name": self.name, "nprocs": self.nprocs}

    def check_disjoint(self) -> None:
        """Assert no two ranks write the same byte (test helper)."""
        intervals = []
        for r in range(self.nprocs):
            v = self.view(r)
            intervals.extend(zip(v.offsets.tolist(), (v.offsets + v.lengths).tolist()))
        intervals.sort()
        for (a_lo, a_hi), (b_lo, _b_hi) in zip(intervals, intervals[1:]):
            if b_lo < a_hi:
                raise WorkloadError(f"overlapping extents: [{a_lo},{a_hi}) and [{b_lo},..)")
