"""MPI-Tile-IO-like 2-D dense workload (paper Sec. IV, benchmark 2).

The dataset is a dense 2-D array of fixed-size *elements*; each process
owns one rectangular tile of it.  The paper sets the tile grid so each
dimension is ``sqrt(nprocs)`` and uses two configurations:

* **Tile I/O 256**: 256-byte elements, 2048 x 1024 elements per process —
  many small, discontiguous file runs; and
* **Tile I/O 1M**: 1 MB elements, 32 x 16 elements per process — fewer,
  large runs.

Both are 512 MB per process at full size.  Scaling preserves each
configuration's *granularity identity* (the property the primitive
comparison of Fig. 4 turns on):

* Tile-256 keeps its 256-byte elements and shrinks the per-process
  element count 2048x1024 -> 256x128 (scale 64), so the many-small-runs
  character survives;
* Tile-1M keeps its 32x16 element count and shrinks the element
  1 MB -> 16 KiB, preserving the few-large-runs character.

For non-square process counts the grid is the factorization of ``nprocs``
closest to square (e.g. 704 = 22 x 32), matching how mpi-tile-io is
usually parameterized.
"""

from __future__ import annotations

import math

from repro.collio.view import FileView
from repro.config import DEFAULT_SCALE
from repro.errors import WorkloadError
from repro.mpi.datatypes import subarray
from repro.units import KiB, MiB
from repro.workloads.base import Workload

__all__ = ["TileIoWorkload", "near_square_grid"]


def near_square_grid(nprocs: int) -> tuple[int, int]:
    """The factorization ``(py, px)`` of ``nprocs`` closest to square."""
    best = (1, nprocs)
    for py in range(1, int(math.isqrt(nprocs)) + 1):
        if nprocs % py == 0:
            best = (py, nprocs // py)
    return best


class TileIoWorkload(Workload):
    """One 2-D tile per process over a global dense array."""

    name = "tileio"

    def __init__(
        self,
        nprocs: int,
        element_size: int,
        elements_y: int,
        elements_x: int,
        variant: str = "custom",
    ) -> None:
        super().__init__(nprocs)
        if element_size < 1 or elements_x < 1 or elements_y < 1:
            raise WorkloadError("element_size and element counts must be >= 1")
        self.element_size = element_size
        self.elements_y = elements_y
        self.elements_x = elements_x
        self.variant = variant
        self.grid_y, self.grid_x = near_square_grid(nprocs)

    # -- the paper's two configurations -------------------------------------
    @classmethod
    def config_256(
        cls,
        nprocs: int,
        scale: int = DEFAULT_SCALE,
        rows: int | None = None,
        row_elements: int | None = None,
    ) -> "TileIoWorkload":
        """256-byte elements; 2048x1024 per process at scale 1.

        Scaling note: this configuration's identity is its *extent count*
        (one file run per local row — 2048 per process at full size).  To
        keep the simulation affordable the row count shrinks by
        ``scale**(1/3)`` (4 at scale 64) and the row length by the rest;
        the resulting under-count of per-extent CPU work is compensated by
        :attr:`extent_cost_factor`, which the collective-write config uses
        to multiply per-piece pack/unpack/put costs.  ``rows`` /
        ``row_elements`` override the per-process shape (quick benchmark
        matrices use smaller ones); the cost factor adapts.
        """
        if rows is None:
            shrink_y = max(1, round(scale ** (1 / 3)))
            rows = max(1, 2048 // shrink_y)
        if row_elements is None:
            # Keep total bytes per process at (512 MB / scale): the full
            # 2048x1024 element grid divided by the scale factor.
            row_elements = max(1, (2048 * 1024) // (scale * rows))
        w = cls(
            nprocs,
            element_size=256,
            elements_y=rows,
            elements_x=row_elements,
            variant="tile_256",
        )
        w.extent_cost_factor = float(max(1, 2048 // rows))
        return w

    @classmethod
    def config_1m(
        cls,
        nprocs: int,
        scale: int = DEFAULT_SCALE,
        element_size: int | None = None,
    ) -> "TileIoWorkload":
        """1 MB elements (scaled) in a 32x16 per-process grid."""
        return cls(
            nprocs,
            element_size=element_size if element_size is not None else max(1, MiB // scale),
            elements_y=32,
            elements_x=16,
            variant="tile_1m",
        )

    # ------------------------------------------------------------------
    @property
    def global_elements(self) -> tuple[int, int]:
        return (self.grid_y * self.elements_y, self.grid_x * self.elements_x)

    def tile_of(self, rank: int) -> tuple[int, int]:
        """Tile coordinates ``(ty, tx)`` of a rank (row-major tiles)."""
        return divmod(rank, self.grid_x)

    def view(self, rank: int) -> FileView:
        if rank < 0 or rank >= self.nprocs:
            raise WorkloadError(f"rank {rank} out of range")
        ty, tx = self.tile_of(rank)
        gy, gx = self.global_elements
        dtype = subarray(
            sizes=[gy, gx],
            subsizes=[self.elements_y, self.elements_x],
            starts=[ty * self.elements_y, tx * self.elements_x],
            elem_size=self.element_size,
        )
        return FileView.from_datatype(dtype)

    def describe(self) -> dict:
        gy, gx = self.global_elements
        return {
            "name": self.variant,
            "nprocs": self.nprocs,
            "element_size": self.element_size,
            "per_process_elements": (self.elements_y, self.elements_x),
            "tile_grid": (self.grid_y, self.grid_x),
            "file_size": gy * gx * self.element_size,
        }
