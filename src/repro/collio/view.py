"""Per-rank file views: sorted, coalesced byte-extent lists.

A :class:`FileView` is what ``MPI_File_set_view`` + a write call reduce to:
the list of file byte ranges this rank writes, in file order.  The rank's
local buffer maps onto the extents in order (MPI's canonical pack order),
so ``local_offsets[i]`` is where extent ``i``'s bytes live in the local
buffer.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.mpi.datatypes import Datatype

__all__ = ["FileView"]


class FileView:
    """The file footprint of one rank in a collective write."""

    __slots__ = ("offsets", "lengths", "local_offsets", "total_bytes", "ends", "_cumlens")

    def __init__(self, offsets: np.ndarray, lengths: np.ndarray) -> None:
        offsets = np.asarray(offsets, dtype=np.int64)
        lengths = np.asarray(lengths, dtype=np.int64)
        if offsets.shape != lengths.shape or offsets.ndim != 1:
            raise WorkloadError("offsets and lengths must be equal-length 1-D arrays")
        ends = offsets + lengths
        if len(offsets):
            if (lengths <= 0).any():
                raise WorkloadError("extent lengths must be positive")
            if (offsets < 0).any():
                raise WorkloadError("extent offsets must be >= 0")
            if (offsets[1:] < ends[:-1]).any():
                raise WorkloadError("extents must be sorted and non-overlapping")
        self.offsets = offsets
        self.lengths = lengths
        #: Per-extent end offsets, precomputed once — :meth:`clip` and
        #: :meth:`bytes_in` run on every cycle of every rank.
        self.ends = ends
        cum = np.zeros(len(lengths) + 1, np.int64)
        if len(lengths):
            np.cumsum(lengths, out=cum[1:])
        self._cumlens = cum
        self.local_offsets = cum[:-1]
        self.total_bytes = int(cum[-1])

    # ------------------------------------------------------------------
    @classmethod
    def from_datatype(cls, dtype: Datatype, disp: int = 0, count: int = 1) -> "FileView":
        """Build a view from an MPI datatype at file displacement ``disp``."""
        flat = dtype.flatten(offset=disp, count=count)
        return cls(flat[:, 0], flat[:, 1])

    @classmethod
    def contiguous(cls, offset: int, nbytes: int) -> "FileView":
        """A single contiguous range (the IOR 1-D pattern)."""
        if nbytes == 0:
            return cls(np.zeros(0, np.int64), np.zeros(0, np.int64))
        return cls(np.array([offset]), np.array([nbytes]))

    @classmethod
    def from_pieces(
        cls, offsets: np.ndarray, lengths: np.ndarray, local_offsets: np.ndarray
    ) -> "FileView":
        """A view with explicit (non-canonical) local buffer offsets.

        The recovery layer's replay views are built this way: the
        *remaining* file extents after subtracting journal-committed
        intervals, each still pointing at its original position in the
        rank's full buffer.  ``total_bytes`` is the remaining byte count,
        which may be smaller than the buffer the local offsets address
        (see :attr:`required_buffer_bytes`).
        """
        view = cls(offsets, lengths)
        local_offsets = np.asarray(local_offsets, dtype=np.int64)
        if local_offsets.shape != view.offsets.shape:
            raise WorkloadError("local_offsets must match offsets in shape")
        if len(local_offsets) and (local_offsets < 0).any():
            raise WorkloadError("local offsets must be >= 0")
        view.local_offsets = local_offsets
        return view

    # ------------------------------------------------------------------
    @property
    def num_extents(self) -> int:
        return len(self.offsets)

    @property
    def required_buffer_bytes(self) -> int:
        """Smallest local buffer that covers every extent's bytes.

        Equals ``total_bytes`` for canonically packed views; larger for
        :meth:`from_pieces` replay views addressing a full-size buffer.
        """
        if not len(self.offsets):
            return 0
        return int((self.local_offsets + self.lengths).max())

    @property
    def file_range(self) -> tuple[int, int]:
        """``(min_offset, max_end)`` of the view; ``(0, 0)`` if empty."""
        if not len(self.offsets):
            return (0, 0)
        return int(self.offsets[0]), int(self.offsets[-1] + self.lengths[-1])

    def clip(self, lo: int, hi: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Intersect the view with ``[lo, hi)``.

        Returns ``(offsets, lengths, local_offsets)`` of the clipped
        pieces; extents straddling a boundary are trimmed and their local
        offsets adjusted so each piece still maps to the right local
        bytes.
        """
        n = len(self.offsets)
        if hi <= lo or not n:
            z = np.zeros(0, np.int64)
            return z, z, z
        if n == 1:
            # Merged-interval fast path: one contiguous extent (the IOR
            # 1-D pattern) clips with plain arithmetic.
            off = int(self.offsets[0])
            end = int(self.ends[0])
            a = max(off, lo)
            b = min(end, hi)
            if b <= a:
                z = np.zeros(0, np.int64)
                return z, z, z
            return (
                np.array([a], np.int64),
                np.array([b - a], np.int64),
                np.array([int(self.local_offsets[0]) + (a - off)], np.int64),
            )
        first = int(np.searchsorted(self.ends, lo, side="right"))
        last = int(np.searchsorted(self.offsets, hi, side="left"))
        if first >= last:
            z = np.zeros(0, np.int64)
            return z, z, z
        offs = self.offsets[first:last].copy()
        lens = self.lengths[first:last].copy()
        locs = self.local_offsets[first:last].copy()
        # Trim the first piece's head.
        head_cut = lo - offs[0]
        if head_cut > 0:
            offs[0] += head_cut
            lens[0] -= head_cut
            locs[0] += head_cut
        # Trim the last piece's tail.
        tail_cut = (offs[-1] + lens[-1]) - hi
        if tail_cut > 0:
            lens[-1] -= tail_cut
        return offs, lens, locs

    def bytes_in(self, lo: int, hi: int) -> int:
        """Total view bytes inside ``[lo, hi)``.

        Prefix-sum arithmetic over the precomputed cumulative lengths —
        no piece arrays are materialized (this runs per cycle per rank).
        """
        n = len(self.offsets)
        if hi <= lo or not n:
            return 0
        first = int(np.searchsorted(self.ends, lo, side="right"))
        last = int(np.searchsorted(self.offsets, hi, side="left"))
        if first >= last:
            return 0
        total = int(self._cumlens[last] - self._cumlens[first])
        head_cut = lo - int(self.offsets[first])
        if head_cut > 0:
            total -= head_cut
        tail_cut = int(self.ends[last - 1]) - hi
        if tail_cut > 0:
            total -= tail_cut
        return total

    def expected_file_bytes(self, data: np.ndarray, file_size: int) -> np.ndarray:
        """Scatter ``data`` through the view into a ``file_size`` byte image.

        Test helper: what the file region should contain if only this
        rank wrote.
        """
        out = np.zeros(file_size, dtype=np.uint8)
        for off, ln, loc in zip(self.offsets, self.lengths, self.local_offsets):
            out[off : off + ln] = data[loc : loc + ln]
        return out

    def __eq__(self, other: object) -> bool:
        """Value equality: same extents mapping the same local bytes.

        Needed so specs holding views (e.g. ``RunSpec``) compare equal
        after a serialization round trip.
        """
        if not isinstance(other, FileView):
            return NotImplemented
        return (
            np.array_equal(self.offsets, other.offsets)
            and np.array_equal(self.lengths, other.lengths)
            and np.array_equal(self.local_offsets, other.local_offsets)
        )

    def __hash__(self) -> int:
        return hash(
            (
                self.offsets.tobytes(),
                self.lengths.tobytes(),
                self.local_offsets.tobytes(),
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FileView {self.num_extents} extents, {self.total_bytes} bytes>"
