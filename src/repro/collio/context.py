"""Per-rank execution context shared by all overlap algorithms.

An :class:`AlgoContext` packages what one rank needs while executing a
collective write: its communicator and file handle, the global plan, its
role (aggregator or not), the collective sub-buffers (plain arrays for
two-sided shuffles, RMA windows for one-sided ones) and phase timing.

Sub-buffer discipline: cycle ``c`` always uses sub-buffer ``c % nsub``
(equivalent to the paper's pointer swapping, but index-based so every rank
agrees without communication).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.collio.config import CollectiveConfig
from repro.collio.plan import TwoPhasePlan
from repro.collio.view import FileView
from repro.errors import ConfigurationError, CorruptDataError
from repro.integrity.checksum import ChecksumLedger, crc32_concat, extent_checksum

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.comm import Communicator
    from repro.mpi.mpiio import MPIFile
    from repro.mpi.window import WindowHandle

__all__ = ["AlgoContext", "PhaseStats"]


class _NullIteration:
    """Shared no-op context for cycle iterations when spans are off."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_ITERATION = _NullIteration()


class _IterationSpan:
    """Closes a cycle's ``algo.cycle`` span at exit time."""

    __slots__ = ("_ctx", "_span")

    def __init__(self, ctx: "AlgoContext", span) -> None:
        self._ctx = ctx
        self._span = span

    def __enter__(self):
        return self._span

    def __exit__(self, *exc) -> bool:
        ctx = self._ctx
        ctx.recorder.end(self._span, ctx.mpi.now)
        return False


@dataclass
class PhaseStats:
    """Accumulated per-phase wall time and counters for one rank."""

    times: dict[str, float] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)

    def add_time(self, phase: str, seconds: float) -> None:
        self.times[phase] = self.times.get(phase, 0.0) + seconds

    def bump(self, counter: str, by: int = 1) -> None:
        self.counters[counter] = self.counters.get(counter, 0) + by

    def time_in(self, phase: str) -> float:
        return self.times.get(phase, 0.0)


class AlgoContext:
    """One rank's working state during a collective write."""

    def __init__(
        self,
        mpi: "Communicator",
        fh: "MPIFile",
        plan: TwoPhasePlan,
        view: FileView,
        data: np.ndarray,
        config: CollectiveConfig,
        nsub: int,
    ) -> None:
        if nsub not in (1, 2):
            raise ConfigurationError(f"nsub must be 1 or 2, got {nsub}")
        if data is not None:
            if data.dtype != np.uint8:
                raise ConfigurationError("local data must be uint8")
            # Replay views (recovery) keep original local offsets into the
            # full rank buffer, so require coverage rather than equality.
            if data.size < view.required_buffer_bytes:
                raise ConfigurationError(
                    f"local data has {data.size} bytes but the view needs "
                    f"{view.required_buffer_bytes}"
                )
        self.mpi = mpi
        self.fh = fh
        self.plan = plan
        self.view = view
        self.data = data
        self.config = config
        self.nsub = nsub
        self.rank = mpi.rank
        self.agg_index = plan.agg_index_of_rank.get(mpi.rank)
        self.stats = PhaseStats()
        #: The world's shared tracer; a SpanRecorder here turns every
        #: write/shuffle step into a span (base Tracer = free no-ops).
        self.recorder = mpi.world.cluster.tracer
        #: Open "io" spans of posted-but-unwaited async writes, by handle id.
        self._write_spans: dict[int, object] = {}
        #: The recovery cycle journal, or None outside recovery runs.
        #: When set, aggregators record every cycle's extent + checksum
        #: once its write completes (the commit protocol); a successor
        #: tells committed cycles from torn ones by re-verifying.
        self.journal = getattr(mpi.world, "journal", None)
        #: Journal entries of posted-but-unwaited writes, by handle id.
        self._pending_commits: dict[int, tuple] = {}
        #: This node's burst-buffer drain scheduler when the run stages
        #: writes (see repro.staging), or None: aggregators then absorb
        #: into the node-local buffer instead of writing to the PFS, and
        #: journal commits defer to drain completion (durability point).
        tier = getattr(mpi.world, "staging", None)
        self.stager = (
            tier.scheduler_for_rank(self.rank)
            if tier is not None and self.is_aggregator
            else None
        )
        #: The world's integrity layer when the run checksums its
        #: datapath (see repro.integrity), or None: aggregators then
        #: record every cycle extent's CRC-32 before posting its write
        #: and carry it through staging and storage.
        self.integrity = getattr(mpi.world, "integrity", None)
        if config.retry is not None:
            from repro.faults.retry import ReliableWriter  # local: avoids a cycle

            self.writer = ReliableWriter(mpi, fh, config.retry)
        else:
            self.writer = None
        # Plain-array sub-buffers (two-sided shuffle); RMA windows replace
        # them for one-sided shuffles.
        self._buffers: list[np.ndarray] | None = None
        self._windows: list["WindowHandle"] | None = None
        # Two-layer staging: a leader's per-sub-buffer assembly area for
        # its node's coalesced cycle data (see repro.collio.intranode).
        self._staging: list[np.ndarray] | None = None
        #: Verified piece CRCs of two-sided deliveries and local copies,
        #: keyed by absolute file offset; the extent record combines them
        #: instead of re-checksumming the cycle buffer.  (The one-sided
        #: equivalent lives on the shared Window, filed at put landing.)
        self._ledger: ChecksumLedger | None = (
            ChecksumLedger() if self.integrity is not None else None
        )
        #: Per-staging-slot ledgers keyed by staging offset (two-layer
        #: leaders only): gather files verified member piece CRCs here,
        #: the forward shuffle combines them for its coalesced sends.
        #: Slot ``c % nsub``'s ledger is cleared when cycle ``c``'s
        #: gather refills the slot.
        self._staging_ledgers: list[ChecksumLedger] | None = None

    # ------------------------------------------------------------------
    @property
    def is_aggregator(self) -> bool:
        return self.agg_index is not None

    @property
    def carries_data(self) -> bool:
        """False in size-only timing mode (no payload bytes move)."""
        return self.data is not None

    @property
    def memory_bandwidth(self) -> float:
        return self.mpi.world.cluster.spec.memory_bandwidth

    def sub_of_cycle(self, cycle: int) -> int:
        return cycle % self.nsub

    # ------------------------------------------------------------------
    # Buffer / window setup
    # ------------------------------------------------------------------
    def allocate_buffers(self) -> None:
        """Plain collective sub-buffers (aggregators only hold real memory)."""
        size = self.plan.cycle_bytes
        if self.is_aggregator:
            self._buffers = [np.zeros(size, dtype=np.uint8) for _ in range(self.nsub)]
        else:
            self._buffers = []

    def allocate_windows(self):
        """Collectively create one RMA window per sub-buffer (paper III-B2).

        Window size is the sub-buffer size on aggregators and zero on
        non-aggregators, matching the paper's ``MPI_Win_allocate`` use.
        """
        size = self.plan.cycle_bytes if self.is_aggregator else 0
        windows = []
        for _ in range(self.nsub):
            win = yield from self.mpi.win_allocate(size)
            windows.append(win)
        self._windows = windows

    def allocate_staging(self) -> None:
        """Leader staging buffers for two-layer gather (no-op otherwise).

        One slot per sub-buffer: slot ``c % nsub`` is reused once cycle
        ``c``'s forward shuffle has been waited, the same reuse
        discipline the collective sub-buffers follow.
        """
        from repro.collio.plan import TwoLayerPlan  # local: avoids a cycle at import

        plan = self.plan
        if not isinstance(plan, TwoLayerPlan) or not plan.uses_staging(self.rank):
            return
        if not self.carries_data:
            return
        size = plan.staging_bytes(self.rank)
        self._staging = [np.zeros(size, dtype=np.uint8) for _ in range(self.nsub)]
        if self.integrity is not None:
            self._staging_ledgers = [ChecksumLedger() for _ in range(self.nsub)]

    def staging(self, sub: int) -> np.ndarray:
        if self._staging is None:
            raise ConfigurationError("staging not allocated on this rank")
        return self._staging[sub]

    def send_source(self, cycle: int) -> np.ndarray | None:
        """The array backing this rank's sends in ``cycle``.

        The user buffer normally; a leader's staging slot when the plan
        coalesces node-local data (its send assignments' local offsets
        then index staging).  None in size-only mode.
        """
        if self._staging is not None:
            return self._staging[self.sub_of_cycle(cycle)]
        return self.data

    def note_message(self, dest_rank: int, nbytes: int, stage: str = "shuffle") -> None:
        """Count one message by locality (inter- vs intra-node).

        ``stage`` is ``"shuffle"`` for the (leader-to-)aggregator
        transfer and ``"gather"`` for the intra-node pre-aggregation
        hop; the bench's message-count columns read these counters.
        """
        cluster = self.mpi.world.cluster
        local = cluster.node_of_rank(dest_rank) == cluster.node_of_rank(self.rank)
        self.stats.bump("messages_intra_node" if local else "messages_inter_node")
        if stage == "gather":
            self.stats.bump("gather_messages")
            self.stats.bump("gather_bytes", nbytes)

    def buffer(self, sub: int) -> np.ndarray:
        """The sub-buffer an aggregator assembles cycle data in."""
        if self._windows is not None:
            return self._windows[sub].local_buffer
        if self._buffers is None:
            raise ConfigurationError("buffers not allocated")
        if not self.is_aggregator:
            raise ConfigurationError("non-aggregators have no collective buffer")
        return self._buffers[sub]

    def window(self, sub: int) -> "WindowHandle":
        if self._windows is None:
            raise ConfigurationError("windows not allocated")
        return self._windows[sub]

    @property
    def uses_windows(self) -> bool:
        return self._windows is not None

    # ------------------------------------------------------------------
    # Checksum carrying (producer-side piece CRCs + verified-CRC ledgers)
    # ------------------------------------------------------------------
    def piece_checksums_for(self, cycle: int, sa, src: np.ndarray | None):
        """Per-piece ``(nbytes, crc)`` CRCs of a send assignment + whole CRC.

        This is the *producer* side of checksum carrying: each piece's
        bytes are checksummed exactly once, from the send source.  When
        the source is a leader's staging slot whose ledger already holds
        verified CRCs for the range (coalesced gather data), the piece
        CRC is combined from them without touching payload bytes.
        Returns ``(None, None)`` without an integrity layer or in
        size-only mode.
        """
        integrity = self.integrity
        if integrity is None or src is None:
            return None, None
        led = (
            self._staging_ledgers[self.sub_of_cycle(cycle)]
            if self._staging_ledgers is not None and self._staging is not None
            else None
        )
        pieces = []
        for _off, ln, loc in sa.pieces:
            crc = led.combine(loc, loc + ln) if led is not None else None
            if crc is None:
                crc = extent_checksum(src[loc : loc + ln])
                integrity.checksum_computed += 1
            else:
                integrity.checksum_reused += 1
            pieces.append((int(ln), crc))
        if len(pieces) == 1:
            whole = pieces[0][1]
        else:
            whole = crc32_concat(pieces)
            integrity.checksum_reused += 1
        return tuple(pieces), whole

    def file_cycle_checksums(self, sa, piece_checksums) -> None:
        """File verified piece CRCs under their absolute file offsets.

        Called by the two-sided unpack (with the CRCs carried in the
        delivered message) and for local copies (with the CRCs the
        producer just computed); the extent record pops them back out
        via :meth:`_carried_extent_crc`.
        """
        if self._ledger is None or piece_checksums is None:
            return
        for (off, ln, _loc), (_pn, crc) in zip(sa.pieces, piece_checksums):
            self._ledger.file(off, ln, crc)

    def _carried_extent_crc(self, cycle: int, offset: int, nbytes: int) -> int | None:
        """CRC of a cycle extent from verified delivery pieces, or None.

        None when the filed pieces do not tile the extent exactly — an
        interior hole means some written bytes were never delivered this
        cycle (stale buffer content), so the caller must checksum fresh.
        """
        if self._windows is not None:
            led = self._windows[self.sub_of_cycle(cycle)].window.ledgers.get(self.rank)
        else:
            led = self._ledger
        if led is None:
            return None
        return led.combine(offset, offset + nbytes, pop=True)

    def staging_ledger(self, cycle: int) -> ChecksumLedger | None:
        """The staging slot's verified-CRC ledger for ``cycle``, or None."""
        if self._staging_ledgers is None:
            return None
        return self._staging_ledgers[self.sub_of_cycle(cycle)]

    def staged_piece_crc(self, cycle: int, loc: int, ln: int) -> int | None:
        """A put piece's CRC combined from the staging ledger, or None.

        No counter bump here — the RMA ``put`` accounts for the reuse
        when it receives a carried checksum.
        """
        led = self.staging_ledger(cycle)
        if led is None or self._staging is None:
            return None
        return led.combine(loc, loc + ln)

    # ------------------------------------------------------------------
    # Pooled receive buffers (see repro.mpi.bufpool)
    # ------------------------------------------------------------------
    def take_buffer(self, nbytes: int) -> np.ndarray | None:
        """Borrow a pooled scratch buffer (None in size-only mode)."""
        if not self.carries_data:
            return None
        return self.mpi.world.buffer_pool(self.mpi.node).take(nbytes)

    def release_buffer(self, buf: np.ndarray | None) -> None:
        if buf is not None:
            self.mpi.world.buffer_pool(self.mpi.node).release(buf)

    # ------------------------------------------------------------------
    # File access helpers (the algorithms' ``write`` / ``write_init`` /
    # ``write_wait`` steps)
    # ------------------------------------------------------------------
    def _write_slice(self, cycle: int) -> tuple[int, np.ndarray | None, int] | None:
        if not self.is_aggregator:
            return None
        rng = self.plan.write_range(self.agg_index, cycle)
        if rng is None:
            return None
        crange = self.plan.cycle_range(self.agg_index, cycle)
        assert crange is not None
        base = crange[0]
        lo, hi = rng
        if not self.carries_data:
            return lo, None, hi - lo
        buf = self.buffer(self.sub_of_cycle(cycle))
        return lo, buf[lo - base : hi - base], hi - lo

    def _journal_entry(self, cycle: int, offset: int, payload, nbytes: int):
        """Checksum a cycle's bytes *at posting time* (buffer still stable).

        The sub-buffer is reused ``nsub`` cycles later, but the PFS
        samples the bytes at write completion — strictly before any
        reuse a correct algorithm allows — so a post-time checksum equals
        the bytes on disk.
        """
        if self.journal is None:
            return None
        checksum = self.journal.checksum(payload) if payload is not None else None
        return (cycle, offset, nbytes, checksum)

    def _journal_commit(self, entry) -> None:
        """Declare a cycle durable: its write completed on the aggregator."""
        if entry is None:
            return
        cycle, offset, nbytes, checksum = entry
        self.journal.commit(
            agg_rank=self.rank, agg_index=self.agg_index, cycle=cycle,
            offset=offset, nbytes=nbytes, checksum=checksum,
        )
        self.recorder.emit(
            self.mpi.now, "recovery.journal_commit",
            rank=self.rank, cycle=cycle, bytes=nbytes,
        )

    def _drain_commit(self, entry):
        """Deferred commit for staged writes: burst-buffer contents are
        volatile, so a cycle is durable only once its extents *drained*
        to the PFS — the callback the drain scheduler fires then."""
        if entry is None:
            return None
        return lambda: self._journal_commit(entry)

    def _record_extent(self, cycle: int, offset: int, payload, nbytes: int):
        """Checksum one cycle extent at the producing aggregator.

        Files the CRC-32 in the integrity manifest and returns it for the
        write path to carry (None when the layer is off or in size-only
        mode — the fault-free paths stay byte-identical).  When the
        delivery ledgers carry verified piece CRCs that tile the extent,
        the CRC is combined from them — no byte is re-read and no memory
        pass is charged.  Only a fresh checksum (ledger miss) reads every
        byte once and charges ``nbytes`` at memory bandwidth — the honest
        residual cost the overhead benchmarks measure.
        """
        if self.integrity is None or payload is None:
            return None
        carried = self._carried_extent_crc(cycle, offset, nbytes)
        crc = self.integrity.record_extent(
            self.fh.path, self.rank, offset, payload, nbytes, checksum=carried
        )
        if carried is None:
            yield from self.mpi.compute(nbytes / self.memory_bandwidth)
        return crc

    def write_blocking(self, cycle: int):
        """Blocking file-access phase for ``cycle`` (no MPI progress)."""
        sliced = self._write_slice(cycle)
        if sliced is None:
            return
        t0 = self.mpi.now
        offset, payload, nbytes = sliced
        entry = self._journal_entry(cycle, offset, payload, nbytes)
        crc = yield from self._record_extent(cycle, offset, payload, nbytes)
        recorder = self.recorder
        call_span = io_span = None
        if recorder.active:
            call_span = recorder.begin(
                t0, "write", "io.call", rank=self.rank, cycle=cycle, bytes=nbytes
            )
            io_span = recorder.begin(
                t0, "write", "io", rank=self.rank, cycle=cycle, flow="async",
                bytes=nbytes,
            )
        if self.stager is not None:
            yield from self.fh.stage_at(
                self.stager, offset, payload, size=nbytes, cycle=cycle,
                on_drained=self._drain_commit(entry), checksum=crc,
            )
        elif self.writer is not None:
            yield from self.writer.write_at(offset, payload, size=nbytes, checksum=crc)
        else:
            yield from self.fh.write_at(offset, payload, size=nbytes, checksum=crc)
        self.recorder.end(io_span, self.mpi.now)
        self.recorder.end(call_span, self.mpi.now)
        if self.stager is None:
            self._journal_commit(entry)
        self.stats.add_time("write", self.mpi.now - t0)
        self.stats.bump("writes")

    def write_init(self, cycle: int):
        """Post an asynchronous write for ``cycle``; returns a handle."""
        sliced = self._write_slice(cycle)
        if sliced is None:
            return None
        t0 = self.mpi.now
        offset, payload, nbytes = sliced
        recorder = self.recorder
        call_span = io_span = None
        if recorder.active:
            call_span = recorder.begin(
                t0, "write_post", "io.call", rank=self.rank, cycle=cycle,
                bytes=nbytes,
            )
            io_span = recorder.begin(
                t0, "write", "io", rank=self.rank, cycle=cycle, flow="async",
                bytes=nbytes,
            )
        entry = self._journal_entry(cycle, offset, payload, nbytes)
        crc = yield from self._record_extent(cycle, offset, payload, nbytes)
        if self.stager is not None:
            req = yield from self.fh.istage_at(
                self.stager, offset, payload, size=nbytes, cycle=cycle,
                on_drained=self._drain_commit(entry), checksum=crc,
            )
        elif self.writer is not None:
            req = yield from self.writer.iwrite_at(
                offset, payload, size=nbytes, checksum=crc
            )
        else:
            req = yield from self.fh.iwrite_at(offset, payload, size=nbytes, checksum=crc)
        self.recorder.end(call_span, self.mpi.now)
        if io_span is not None:
            self._write_spans[id(req)] = io_span
        if entry is not None and self.stager is None:
            self._pending_commits[id(req)] = entry
        self.stats.add_time("write_post", self.mpi.now - t0)
        self.stats.bump("writes")
        return req

    def write_wait(self, handle):
        """Complete a previously posted asynchronous write."""
        if handle is None:
            return
        t0 = self.mpi.now
        io_span = self._write_spans.pop(id(handle), None)
        call_span = None
        if self.recorder.active:
            cycle = getattr(io_span, "cycle", -1)
            call_span = self.recorder.begin(
                t0, "write_wait", "io.call", rank=self.rank, cycle=cycle
            )
        yield from self.mpi.wait(handle)
        if io_span is not None:
            # The aio/retry layers succeed the request event with the true
            # completion timestamp; close the serviced interval there, not
            # at the (possibly later) moment this rank got around to waiting.
            value = handle.event.value if handle.event.triggered else None
            done_at = value if isinstance(value, (int, float)) else self.mpi.now
            self.recorder.end(io_span, min(float(done_at), self.mpi.now))
        self.recorder.end(call_span, self.mpi.now)
        self._journal_commit(self._pending_commits.pop(id(handle), None))
        self.stats.add_time("write", self.mpi.now - t0)

    def note_write_done(self, handle) -> None:
        """Close a posted write's "io" span when it completed inside a joint
        waitall (no simulated cost; the wait already happened)."""
        if handle is None:
            return
        self._journal_commit(self._pending_commits.pop(id(handle), None))
        io_span = self._write_spans.pop(id(handle), None)
        if io_span is None:
            return
        value = handle.event.value if handle.event.triggered else None
        done_at = value if isinstance(value, (int, float)) else self.mpi.now
        self.recorder.end(io_span, min(float(done_at), self.mpi.now))

    def staging_flush(self):
        """Make everything this node staged durable (end of the collective).

        No-op without a staging tier.  For the ``end_of_job`` policy this
        is where the whole drain happens, serialized after the last
        cycle; the asynchronous policies only wait out the in-flight
        tail.  Waiting is an MPI call (progress keeps running — peers on
        other nodes may still be shuffling their final cycles).
        """
        if self.stager is None:
            return
        from repro.mpi.request import Request  # local: avoids a cycle

        t0 = self.mpi.now
        span = None
        if self.recorder.active:
            span = self.recorder.begin(
                t0, "flush", "staging", rank=self.rank,
                policy=self.stager.spec.policy,
            )
        yield from self.mpi.wait(Request(self.stager.flush(), "staging_flush"))
        self.recorder.end(span, self.mpi.now)
        self.stats.add_time("staging_flush", self.mpi.now - t0)

    def _scrub_extent_crc(self, offset: int, nbytes: int):
        """The CRC of an extent's stored bytes, metadata-first.

        The PFS records every carried-checksum write's CRC as stored-CRC
        metadata at commit time, so the common case is a dictionary
        lookup; only extents without metadata (e.g. written before the
        layer attached) pay a simulated read plus a fresh checksum.
        """
        integrity = self.integrity
        stored = self.fh.file.stored_crc(offset, nbytes)
        if stored is not None:
            integrity.checksum_reused += 1
            return stored
        data = yield from self.fh.read_at(offset, nbytes)
        integrity.checksum_computed += 1
        return extent_checksum(data)

    def integrity_scrub(self):
        """Post-write scrub: verify this aggregator's extents on disk.

        Runs after the staging flush (everything durable) and before the
        closing barrier, so each aggregator scrubs exactly its own file
        domain — together the manifests cover the whole striped file.
        Each recorded extent's stored-CRC metadata (recorded by the PFS
        at commit time, reflecting the bytes that actually landed —
        including torn writes and commit-time bit-flips) is compared
        against the manifest CRC; extents without metadata fall back to
        a simulated read-back.  In repair mode a mismatch is rewritten
        from the escrow copy (carrying the checksum, so the rewrite is
        itself commit-verified).  Appends a :class:`ScrubReport` to the
        layer and raises :class:`CorruptDataError` if any mismatch could
        not be repaired.
        """
        integrity = self.integrity
        if (
            integrity is None
            or not integrity.enabled
            or not integrity.spec.scrub
            or not self.is_aggregator
            or not self.carries_data
        ):
            return
        from repro.integrity.report import ScrubReport

        entries = integrity.entries_for(self.fh.path, self.rank)
        if not entries:
            return
        t0 = self.mpi.now
        span = None
        if self.recorder.active:
            span = self.recorder.begin(
                t0, "scrub", "integrity", rank=self.rank, extents=len(entries)
            )
        report = ScrubReport(rank=self.rank)
        for offset, nbytes, crc in entries:
            stored_crc = yield from self._scrub_extent_crc(offset, nbytes)
            report.extents += 1
            report.bytes_scrubbed += nbytes
            if stored_crc == crc:
                continue
            report.mismatches += 1
            report.bad_offsets.append(offset)
            integrity.note(
                "detected", stage="scrub", rank=self.rank, offset=offset
            )
            source = (
                integrity.repair_source(self.fh.path, offset, nbytes)
                if integrity.repairs
                else None
            )
            if source is None:
                continue
            # The rewrite itself goes through the (still faulty) storage
            # path, so re-verify it with bounded retries even when
            # per-write read-back is off — the scrub is the last line of
            # defense and must not trade one corruption for another.
            fixed = False
            for attempt in range(integrity.spec.max_repair_attempts):
                integrity.note(
                    "rewrite", stage="scrub", rank=self.rank, offset=offset,
                    attempt=attempt,
                )
                yield from self.fh.write_at(offset, source, checksum=crc)
                stored_crc = yield from self._scrub_extent_crc(offset, nbytes)
                if stored_crc == crc:
                    fixed = True
                    break
                integrity.note(
                    "detected", stage="scrub", rank=self.rank, offset=offset,
                    attempt=attempt + 1,
                )
            if not fixed:
                continue
            report.repaired += 1
            integrity.note("repaired", stage="scrub", rank=self.rank, offset=offset)
        integrity.scrub_reports.append(report)
        self.recorder.end(span, self.mpi.now)
        self.stats.add_time("scrub", self.mpi.now - t0)
        self.stats.bump("scrub_extents", report.extents)
        if not report.clean:
            raise CorruptDataError(
                f"scrub on rank {self.rank} found {report.mismatches} corrupt "
                f"extent(s), repaired {report.repaired}"
            )

    def iteration(self, cycle: int):
        """Span over one internal-cycle iteration of an overlap algorithm.

        Returns a reusable null context when no span recorder is
        attached — cycles are the innermost per-rank loop, so the
        ``contextlib`` machinery this used to go through was measurable.
        """
        recorder = self.recorder
        if not recorder.active:
            return _NULL_ITERATION
        span = recorder.begin(
            self.mpi.now, "cycle", "algo.cycle", rank=self.rank, cycle=cycle
        )
        return _IterationSpan(self, span)

    # ------------------------------------------------------------------
    def planning_tick(self):
        """Per-cycle offset bookkeeping cost (charged to every rank)."""
        cost = self.config.cycle_planning_overhead
        if cost:
            yield from self.mpi.compute(cost)

    def pack_cost(self, nbytes: int, npieces: int) -> float:
        """Sender-side gather cost.

        A single-piece (contiguous) contribution is sent straight from
        the user buffer — zero copy, zero cost — exactly as ompio's
        vulcan does; only scattered contributions pay the per-extent
        handling plus the memcpy into the pack buffer.
        """
        if npieces <= 1:
            return 0.0
        per_piece = self.config.pack_overhead_per_extent * self.config.extent_cost_factor
        return npieces * per_piece + nbytes / self.memory_bandwidth

    def unpack_cost(self, nbytes: int, npieces: int) -> float:
        """Aggregator-side scatter cost.

        A single-piece contribution is received directly into its final
        collective-buffer position (the receive is posted at the right
        offset) — no unpack; scattered contributions are received into a
        bounce buffer and copied piecewise.
        """
        if npieces <= 1:
            return 0.0
        per_piece = self.config.unpack_overhead_per_extent * self.config.extent_cost_factor
        return npieces * per_piece + nbytes / self.memory_bandwidth

    def local_copy_cost(self, nbytes: int, npieces: int) -> float:
        """An aggregator copying its *own* contribution into the buffer.

        Always one real memcpy (user buffer -> collective buffer), plus
        per-extent handling when scattered.
        """
        per_piece = self.config.unpack_overhead_per_extent * self.config.extent_cost_factor
        return npieces * per_piece + nbytes / self.memory_bandwidth

    def extra_put_cost(self, nputs: int) -> float:
        """Compensation when one modeled put stands for several real puts.

        Charges the posting overhead of the ``factor - 1`` puts that were
        folded into each modeled one (their payload bytes are already in
        the modeled put's transfer).
        """
        factor = self.config.extent_cost_factor
        if factor <= 1.0 or nputs == 0:
            return 0.0
        spec = self.mpi.world.cluster.spec
        return nputs * (factor - 1.0) * (spec.mpi_call_overhead + spec.rma_put_overhead)
