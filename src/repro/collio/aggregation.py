"""Automatic aggregator selection (paper ref [5], Chaarawi & Gabriel).

The heuristic reproduces ompio's behaviour at the level the paper relies
on: aggregators are spread across nodes (one per node before a second on
any node) so their NICs and file-system links don't contend, and their
count adapts to the data volume — at least one, at most one per node (the
paper's runs are large enough that the per-node cap binds), and no more
than needed to give every aggregator at least one full collective buffer
of data.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.hardware.cluster import Cluster

__all__ = ["select_aggregators", "elect_leaders"]


def select_aggregators(
    cluster: Cluster,
    nprocs: int,
    total_bytes: int,
    cb_buffer_size: int,
    num_aggregators: int | None = None,
    exclude: frozenset[int] = frozenset(),
) -> list[int]:
    """Choose the aggregator ranks for a collective write.

    Returns rank ids sorted by (node, rank), one aggregator per node in
    round-robin node order, which matches the block rank placement: rank
    ``k * cores_per_node`` is the first rank of node ``k``.

    ``exclude`` removes ranks from candidacy — the recovery layer's
    deterministic re-election after an aggregator crash: every survivor
    runs this same function with the same crashed set and arrives at the
    same successors without communicating.  If every rank is excluded the
    exclusion is ignored (a fully-crashed-and-respawned world still needs
    an aggregator).
    """
    if nprocs < 1:
        raise ConfigurationError("nprocs must be >= 1")
    eligible = [r for r in range(nprocs) if r not in exclude]
    if not eligible:
        eligible = list(range(nprocs))
    # Candidate order: first rank of each used node, then second, etc.
    per_node: dict[int, list[int]] = {}
    for rank in eligible:
        per_node.setdefault(cluster.node_of_rank(rank), []).append(rank)
    nodes_used = sorted(per_node)
    candidates: list[int] = []
    depth = 0
    while len(candidates) < nprocs:
        added = False
        for node in nodes_used:
            ranks = per_node[node]
            if depth < len(ranks):
                candidates.append(ranks[depth])
                added = True
        if not added:
            break
        depth += 1

    if num_aggregators is not None:
        count = min(num_aggregators, nprocs)
    else:
        # Enough aggregators to use every node's NIC, but never so many
        # that an aggregator's domain is smaller than one buffer cycle.
        by_volume = max(1, total_bytes // max(1, cb_buffer_size))
        count = max(1, min(len(nodes_used), by_volume, nprocs))
    return sorted(candidates[:count])


def elect_leaders(
    cluster: Cluster,
    nprocs: int,
    exclude: frozenset[int] = frozenset(),
) -> dict[int, int]:
    """Elect one intra-node *leader* per node; returns rank -> leader rank.

    The leader of a node is its lowest-ranked eligible process; every
    co-resident rank (including excluded ones, which still carry data)
    maps to it.  ``exclude`` bars ranks from leadership — the same
    crash-aware contract as :func:`select_aggregators`: after a leader
    crash every survivor re-runs this pure function with the crashed set
    and deterministically agrees on the successor without communicating.
    If every rank on a node is excluded the exclusion is ignored for
    that node (a fully-respawned node still needs a gather point).
    """
    if nprocs < 1:
        raise ConfigurationError("nprocs must be >= 1")
    members: dict[int, list[int]] = {}
    for rank in range(nprocs):
        members.setdefault(cluster.node_of_rank(rank), []).append(rank)
    leader_of_rank: dict[int, int] = {}
    for node, ranks in members.items():
        eligible = [r for r in ranks if r not in exclude]
        leader = min(eligible) if eligible else min(ranks)
        for r in ranks:
            leader_of_rank[r] = leader
    return leader_of_rank
